//! Running NosWalker against a *real* file instead of the simulated SSD.
//!
//! ```text
//! cargo run --release --example real_file_backend
//! ```
//!
//! Everything else is identical — [`noswalker::storage::FileDevice`]
//! implements the same `Device` trait, with wall-clock service times.
//! Simulated time then reflects real I/O latencies (including your page
//! cache, so expect fast re-runs).

use noswalker::apps::BasicRw;
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::storage::{FileDevice, MemoryBudget};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csr = generators::rmat(14, 16, RmatParams::default(), 3);
    let mut path = std::env::temp_dir();
    path.push(format!("noswalker-example-{}.graph", std::process::id()));
    println!("storing edge region in {}", path.display());

    let device = Arc::new(FileDevice::create(&path)?);
    let graph = Arc::new(OnDiskGraph::store(
        &csr,
        device,
        csr.edge_region_bytes() / 32,
    )?);
    let budget = MemoryBudget::new(csr.edge_region_bytes() / 8);
    let app = Arc::new(BasicRw::new(50_000, 10, csr.num_vertices()));

    let engine = NosWalkerEngine::new(app, Arc::clone(&graph), EngineOptions::default(), budget);
    let m = engine.run(5)?;
    println!(
        "steps: {}  real I/O: {} MiB in {} ops  wall: {:.3}s",
        m.steps,
        m.edge_bytes_loaded >> 20,
        m.io_ops,
        m.wall_ns as f64 / 1e9,
    );
    let stats = graph.device().stats();
    println!(
        "device counters: {} reads / {} KiB read, {} writes / {} KiB written",
        stats.read_ops,
        stats.read_bytes >> 10,
        stats.write_ops,
        stats.write_bytes >> 10,
    );

    // Bonus: a *real* background loader thread (the paper's Fig. 6 ①) —
    // prefetch the first blocks off the file while the main thread works.
    let loader = noswalker::core::threaded::BackgroundLoader::spawn(
        Arc::clone(&graph),
        noswalker::storage::MemoryBudget::new(1 << 20),
        4,
    );
    for b in 0..4u32 {
        loader.request(b)?;
    }
    let mut prefetched = 0u64;
    for _ in 0..4 {
        let loaded = loader.recv()?;
        prefetched += loaded.block.info().byte_len();
    }
    println!(
        "background loader prefetched {} KiB over 4 blocks",
        prefetched >> 10
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
