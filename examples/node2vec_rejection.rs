//! Second-order random walk (Node2Vec) out-of-core, via the rejection
//! sampling extension of the paper's Appendix A.
//!
//! ```text
//! cargo run --release --example node2vec_rejection
//! ```
//!
//! Runs Node2Vec generation (p = 2, q = 0.5) on an undirected power-law
//! graph with NosWalker's decoupled candidate/rejection pipeline and
//! compares against the GraSorw bi-block baseline.

use noswalker::apps::Node2Vec;
use noswalker::baselines::GraSorw;
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csr = generators::rmat(13, 16, RmatParams::default(), 5).to_undirected();
    println!(
        "undirected graph: {} vertices, {} edges",
        csr.num_vertices(),
        csr.num_edges()
    );
    let budget_bytes = csr.edge_region_bytes() / 8;

    // The paper's §4.5 parameters: p = 2, q = 0.5, walk length 10.
    let make_app = || Arc::new(Node2Vec::new(csr.num_vertices(), 2, 10, 2.0, 0.5));

    // NosWalker: candidates from pre-samples, rejection on block residency.
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(
        &csr,
        device,
        csr.edge_region_bytes() / 32,
    )?);
    let app = make_app();
    let nw = NosWalkerEngine::new(
        Arc::clone(&app),
        graph,
        EngineOptions::default(),
        MemoryBudget::new(budget_bytes),
    )
    .run_second_order(17)?;
    println!(
        "NosWalker : {:>6.3} sim-s, {} accepts, {} rejects ({:.2} attempts/step), {} MiB I/O",
        nw.sim_secs(),
        nw.accepts,
        nw.rejects,
        app.attempts_per_step(),
        nw.edge_bytes_loaded >> 20,
    );

    // GraSorw: triangular bi-block scheduling.
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(
        &csr,
        device,
        csr.edge_region_bytes() / 32,
    )?);
    let gs = GraSorw::new(
        make_app(),
        graph,
        EngineOptions::default(),
        MemoryBudget::new(budget_bytes),
    )
    .run(17)?;
    println!(
        "GraSorw   : {:>6.3} sim-s, {} accepts, {} rejects, {} MiB I/O",
        gs.sim_secs(),
        gs.accepts,
        gs.rejects,
        gs.edge_bytes_loaded >> 20,
    );
    println!(
        "speedup   : {:.1}x",
        gs.sim_secs() / nw.sim_secs().max(1e-9)
    );
    Ok(())
}
