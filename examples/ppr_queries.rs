//! Personalized PageRank queries out-of-core (the paper's §4.2 PPR
//! workload): Monte-Carlo walks from query sources, top-k ranked results.
//!
//! ```text
//! cargo run --release --example ppr_queries
//! ```

use noswalker::apps::Ppr;
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csr = generators::rmat(15, 32, RmatParams::default(), 11);
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(
        &csr,
        device,
        csr.edge_region_bytes() / 32,
    )?);
    let budget = MemoryBudget::new(csr.edge_region_bytes() / 8);

    // The paper's setting, scaled: 2000 walks of length 10 per source.
    let sources = vec![1, 4242, 31337];
    let app = Arc::new(Ppr::new(sources.clone(), 2000, 10, csr.num_vertices()));
    let engine = NosWalkerEngine::new(Arc::clone(&app), graph, EngineOptions::default(), budget);
    let m = engine.run(23)?;

    println!(
        "ran {} walks ({} steps) in {:.3} simulated seconds, {} MiB edge I/O",
        m.walkers_finished,
        m.steps,
        m.sim_secs(),
        m.edge_bytes_loaded >> 20,
    );
    println!("query sources: {sources:?}");
    println!("top-10 PPR vertices (vertex, visits):");
    for (v, c) in app.top_k(10) {
        println!("  v{v:<8} {c}");
    }
    Ok(())
}
