//! Online multi-query serving: replay a query trace against the
//! [`noswalker::serve::ServeEngine`] and print its latency/shed report.
//!
//! ```text
//! cargo run --release --example serve_trace
//! ```
//!
//! The same trace format is accepted by the CLI
//! (`noswalker serve <graph> --script <file>`): one query per line,
//! `at_us class walkers length deadline_us` with `-` for no deadline.

use noswalker::core::{OnDiskGraph, StaticQuerySource};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::serve::{parse_script, render_report, AdmissionOptions, ServeEngine, ServeOptions};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

/// A bursty mixed-class trace: steady traffic with generous deadlines,
/// one query that cannot possibly meet its deadline, and a t=800µs
/// burst that overruns the (shallow) admission queue.
const TRACE: &str = "\
# at_us  class        walkers  length  deadline_us
0        ppr:1        2000     10      60000
120      rwr:1:0.15   1500     10      60000
250      deepwalk:0   3000     10      -
400      basic        1000     10      2500
800      ppr:4242     2000     10      60000
810      ppr:31337    2000     10      60000
820      basic        2000     10      60000
830      rwr:7:0.15   2000     10      60000
840      deepwalk:64  2000     10      60000
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csr = generators::rmat(15, 32, RmatParams::default(), 11);
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(
        &csr,
        device,
        csr.edge_region_bytes() / 32,
    )?);
    let budget = MemoryBudget::new(csr.edge_region_bytes() / 2);

    let specs = parse_script(TRACE)?;
    println!("replaying {} queries...\n", specs.len());
    let mut source = StaticQuerySource::new(specs);

    let engine = ServeEngine::new(
        graph,
        budget,
        ServeOptions {
            seed: 23,
            // A shallow queue so the t=800µs burst visibly sheds.
            admission: AdmissionOptions {
                max_pending: 3,
                ..AdmissionOptions::default()
            },
            ..ServeOptions::default()
        },
    );
    let report = engine.run(&mut source, None)?;
    print!("{}", render_report(&report));
    Ok(())
}
