//! The real concurrent runner: actual worker threads + a background I/O
//! thread, measured in wall-clock time.
//!
//! ```text
//! cargo run --release --example parallel_threads
//! ```
//!
//! Runs the same workload with 1, 2, 4 and 8 worker threads and prints the
//! wall-clock scaling. (Use the simulation engine for deterministic
//! numbers; this one is the real thing.)

use noswalker::apps::WeightedRw;
use noswalker::core::parallel::ParallelRunner;
use noswalker::core::{EngineOptions, OnDiskGraph};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Weighted sampling without alias tables is O(degree) per step — the
    // compute-heavy regime where worker threads pay off. (With cheap
    // uniform sampling the run is coordinator/I/O-bound and extra workers
    // buy little; see the module docs.)
    let csr = {
        use rand::{Rng, SeedableRng};
        let g = generators::rmat(16, 24, RmatParams::default(), 21);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        let m = g.num_edges() as usize;
        g.with_weights((0..m).map(|_| rng.gen_range(0.5f32..2.0)).collect())
    };
    println!(
        "weighted graph: {} vertices, {} edges; walkers: 50k × length 10",
        csr.num_vertices(),
        csr.num_edges()
    );
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cpus} CPU(s) — scaling is bounded by this");
    let mut base_ns = None;
    for workers in [1usize, 2, 4, 8] {
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(
            &csr,
            device,
            csr.edge_region_bytes() / 32,
        )?);
        let budget = MemoryBudget::new(csr.edge_region_bytes() / 4);
        let app = Arc::new(WeightedRw::new(50_000, 10, csr.num_vertices()));
        let runner = ParallelRunner::new(app, graph, EngineOptions::default(), budget);
        let m = runner.run(11, workers)?;
        let scaling = match base_ns {
            None => {
                base_ns = Some(m.wall_ns);
                1.0
            }
            Some(b) => b as f64 / m.wall_ns as f64,
        };
        println!(
            "{workers} worker(s): {:>7.1} ms wall, {} steps ({} on pre-samples), scaling {scaling:.2}x",
            m.wall_ns as f64 / 1e6,
            m.steps,
            m.steps_on_presample + m.steps_on_raw,
        );
    }
    Ok(())
}
