//! DeepWalk corpus extraction — the node-embedding pipeline the paper's
//! introduction motivates (random walk is the dominant cost of DeepWalk /
//! node2vec training).
//!
//! ```text
//! cargo run --release --example deepwalk_corpus
//! ```
//!
//! Extracts walk sequences from every vertex on NosWalker *and* on the
//! GraphWalker baseline, comparing the I/O bill for the same corpus.

use noswalker::apps::DeepWalk;
use noswalker::baselines::GraphWalker;
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csr = generators::rmat(14, 16, RmatParams::default(), 9);
    // DeepWalk walkers carry their whole sequence, so their state is an
    // order of magnitude heavier than a basic walker's; give the run a
    // quarter of the graph as memory so the walker pool and the
    // pre-sample pool both stay useful.
    let budget_bytes = csr.edge_region_bytes() / 4;
    println!(
        "graph: {} vertices, {} edges; budget {} KiB (25% of graph)",
        csr.num_vertices(),
        csr.num_edges(),
        budget_bytes >> 10
    );

    // 3 walks of length 10 from every vertex; keep the first 3 sequences
    // for display (a real pipeline would stream them to a trainer).
    let make_app = || Arc::new(DeepWalk::new(csr.num_vertices(), 3, 10, 3));

    for system in ["NosWalker", "GraphWalker"] {
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(
            &csr,
            device,
            csr.edge_region_bytes() / 32,
        )?);
        let budget = MemoryBudget::new(budget_bytes);
        let app = make_app();
        let m = match system {
            "NosWalker" => {
                NosWalkerEngine::new(Arc::clone(&app), graph, EngineOptions::default(), budget)
                    .run(3)?
            }
            _ => GraphWalker::new(Arc::clone(&app), graph, EngineOptions::default(), budget)
                .run(3)?,
        };
        println!(
            "{system:11}: {} sequences, {:>6.3} sim-s, {:>5} MiB edge I/O, {:>4.1} edges/step",
            m.walkers_finished,
            m.sim_secs(),
            m.edge_bytes_loaded >> 20,
            m.edges_per_step(),
        );
        if system == "NosWalker" {
            for (i, seq) in app.take_corpus().iter().enumerate() {
                println!("  sample sequence {i}: {seq:?}");
            }
        }
    }
    Ok(())
}
