//! Quickstart: run one million random walk steps out-of-core.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a power-law graph, stores its edge region on a simulated NVMe
//! SSD, caps memory at ~12 % of the graph, and runs a basic random walk on
//! the NosWalker engine, printing the paper's headline metrics.

use noswalker::apps::BasicRw;
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Kron30-style power-law graph: 2^16 vertices, ~2M edges.
    let csr = generators::rmat(16, 32, RmatParams::default(), 42);
    println!(
        "graph: {} vertices, {} edges, {} MiB CSR",
        csr.num_vertices(),
        csr.num_edges(),
        csr.csr_bytes() >> 20
    );

    // 2. Store the edge region on a simulated Intel P4618 NVMe SSD,
    //    partitioned into ~32 coarse blocks.
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let block_bytes = csr.edge_region_bytes() / 32;
    let graph = Arc::new(OnDiskGraph::store(&csr, device, block_bytes)?);

    // 3. Memory budget: 12 % of the graph — the paper's headline regime.
    let budget = MemoryBudget::new(csr.edge_region_bytes() * 12 / 100);

    // 4. 100k walkers of length 10, uniform sampling.
    let app = Arc::new(BasicRw::new(100_000, 10, csr.num_vertices()));

    // 5. Run the decoupled engine.
    let engine = NosWalkerEngine::new(app, graph, EngineOptions::default(), budget);
    let m = engine.run(7)?;

    println!("steps moved:          {}", m.steps);
    println!("  on loaded blocks:   {}", m.steps_on_block);
    println!("  on pre-samples:     {}", m.steps_on_presample);
    println!("  on raw low-degree:  {}", m.steps_on_raw);
    println!("edge data loaded:     {} MiB", m.edge_bytes_loaded >> 20);
    println!("avg edges read/step:  {:.1}", m.edges_per_step());
    println!(
        "step rate:            {:.1} M steps/s (simulated)",
        m.steps_per_sec() / 1e6
    );
    println!("simulated time:       {:.3} s", m.sim_secs());
    println!("I/O utilization:      {:.0} %", m.io_utilization() * 100.0);
    println!(
        "fine-grained mode:    {}",
        match m.fine_mode_at_step {
            Some(s) => format!("engaged at step {s}"),
            None => "never engaged".to_string(),
        }
    );
    Ok(())
}
