//! The memory budget tracker — our stand-in for the paper's cgroups cap.
//!
//! Every engine buffer (block buffers, pre-sample pools, walker pools,
//! walker swap buffers) must hold a [`Reservation`] for its bytes. The
//! budget is shared and thread-safe; a reservation releases its bytes on
//! drop, mirroring how freeing a buffer returns pages to the cgroup.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Error returned when a reservation would exceed the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently in use.
    pub in_use: u64,
    /// Budget limit.
    pub limit: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory budget exceeded: requested {} with {} of {} in use",
            self.requested, self.in_use, self.limit
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// A byte budget shared by every memory consumer of an engine run.
///
/// # Example
///
/// ```
/// use noswalker_storage::MemoryBudget;
///
/// let budget = MemoryBudget::new(1024);
/// let a = budget.try_reserve(700)?;
/// assert!(budget.try_reserve(700).is_err());
/// drop(a);
/// assert!(budget.try_reserve(700).is_ok());
/// # Ok::<(), noswalker_storage::BudgetExceeded>(())
/// ```
#[derive(Debug)]
pub struct MemoryBudget {
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl MemoryBudget {
    /// Creates a budget of `limit` bytes. Returns an `Arc` because
    /// reservations keep the budget alive.
    pub fn new(limit: u64) -> Arc<Self> {
        Arc::new(MemoryBudget {
            limit,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        })
    }

    /// An effectively unlimited budget (for in-memory baselines/tests).
    pub fn unlimited() -> Arc<Self> {
        Self::new(u64::MAX)
    }

    /// The budget limit in bytes.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.limit.saturating_sub(self.in_use())
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Attempts to reserve `bytes`.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] if the reservation would push usage past the
    /// limit; usage is unchanged on failure.
    pub fn try_reserve(self: &Arc<Self>, bytes: u64) -> Result<Reservation, BudgetExceeded> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(bytes);
            if new > self.limit {
                return Err(BudgetExceeded {
                    requested: bytes,
                    in_use: cur,
                    limit: self.limit,
                });
            }
            match self
                .used
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(Reservation {
                        budget: Arc::clone(self),
                        bytes,
                    });
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

/// RAII guard for reserved bytes; releases them on drop.
#[derive(Debug)]
pub struct Reservation {
    budget: Arc<MemoryBudget>,
    bytes: u64,
}

impl Reservation {
    /// Number of bytes this reservation holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Shrinks the reservation to `new_bytes`, releasing the difference.
    ///
    /// # Panics
    ///
    /// Panics if `new_bytes > self.bytes()` (growing requires a new
    /// reservation so failure is explicit).
    pub fn shrink_to(&mut self, new_bytes: u64) {
        assert!(
            new_bytes <= self.bytes,
            "cannot grow a reservation in place"
        );
        let release = self.bytes - new_bytes;
        self.budget.used.fetch_sub(release, Ordering::Relaxed);
        self.bytes = new_bytes;
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.budget.used.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let b = MemoryBudget::new(100);
        let r = b.try_reserve(60).unwrap();
        assert_eq!(b.in_use(), 60);
        assert_eq!(b.available(), 40);
        drop(r);
        assert_eq!(b.in_use(), 0);
        assert_eq!(b.peak(), 60);
    }

    #[test]
    fn exceeding_fails_without_side_effects() {
        let b = MemoryBudget::new(100);
        let _r = b.try_reserve(80).unwrap();
        let err = b.try_reserve(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(b.in_use(), 80);
        assert!(err.to_string().contains("memory budget exceeded"));
    }

    #[test]
    fn shrink_releases_bytes() {
        let b = MemoryBudget::new(100);
        let mut r = b.try_reserve(90).unwrap();
        r.shrink_to(40);
        assert_eq!(b.in_use(), 40);
        assert_eq!(r.bytes(), 40);
        drop(r);
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot grow")]
    fn shrink_cannot_grow() {
        let b = MemoryBudget::new(100);
        let mut r = b.try_reserve(10).unwrap();
        r.shrink_to(20);
    }

    #[test]
    fn concurrent_reservations_never_exceed_limit() {
        let b = MemoryBudget::new(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for _ in 0..1000 {
                        if let Ok(r) = b.try_reserve(7) {
                            assert!(b.in_use() <= 1000);
                            drop(r);
                        }
                    }
                });
            }
        });
        assert_eq!(b.in_use(), 0);
        assert!(b.peak() <= 1000);
    }

    #[test]
    fn unlimited_budget_accepts_everything() {
        let b = MemoryBudget::unlimited();
        let _r = b.try_reserve(u64::MAX / 2).unwrap();
        assert!(b.try_reserve(u64::MAX / 4).is_ok());
    }
}
