//! The storage-cost arithmetic that motivates out-of-core processing
//! (paper §2.2): DRAM at ~9.9 $/GB vs NVMe flash at ~0.13 $/GB means a
//! system that needs only 10 % of the graph in memory cuts storage cost
//! by `9.9 / (0.99 + 0.13) ≈ 8.8×`.

/// Per-gigabyte prices of the two tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoragePrices {
    /// DRAM price in $/GB.
    pub dram_per_gb: f64,
    /// SSD price in $/GB.
    pub ssd_per_gb: f64,
}

impl StoragePrices {
    /// The paper's 2023 figures (§2.2): ECC DRAM ≈ 9.9 $/GB, NVMe ≈ 0.13.
    pub fn paper_2023() -> Self {
        StoragePrices {
            dram_per_gb: 9.9,
            ssd_per_gb: 0.13,
        }
    }

    /// Cost in dollars of holding `graph_gb` with `memory_fraction` of it
    /// in DRAM and the whole graph on SSD.
    ///
    /// # Panics
    ///
    /// Panics if `memory_fraction` is not in `[0, 1]` or `graph_gb` is
    /// negative.
    pub fn out_of_core_cost(&self, graph_gb: f64, memory_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&memory_fraction),
            "memory fraction must be in [0, 1]"
        );
        assert!(graph_gb >= 0.0, "graph size must be non-negative");
        graph_gb * (memory_fraction * self.dram_per_gb + self.ssd_per_gb)
    }

    /// Cost of the all-in-memory alternative (ignoring the cluster,
    /// network and management overheads the paper notes on top).
    pub fn in_memory_cost(&self, graph_gb: f64) -> f64 {
        assert!(graph_gb >= 0.0, "graph size must be non-negative");
        graph_gb * self.dram_per_gb
    }

    /// The cost-reduction factor of running out-of-core at
    /// `memory_fraction` (the paper's headline 8.8× at 10 %).
    pub fn savings_factor(&self, memory_fraction: f64) -> f64 {
        self.in_memory_cost(1.0) / self.out_of_core_cost(1.0, memory_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_8_8x() {
        let p = StoragePrices::paper_2023();
        let f = p.savings_factor(0.10);
        assert!((f - 8.8).abs() < 0.1, "savings factor {f}");
    }

    #[test]
    fn more_memory_less_savings() {
        let p = StoragePrices::paper_2023();
        assert!(p.savings_factor(0.5) < p.savings_factor(0.1));
        assert!(p.savings_factor(1.0) < 1.0 + 1e-9 + 1.0); // still ≥ ~1
                                                           // At 100 % memory the SSD copy makes it slightly worse than pure
                                                           // DRAM.
        assert!(p.savings_factor(1.0) < 1.0);
    }

    #[test]
    fn costs_scale_linearly_with_size() {
        let p = StoragePrices::paper_2023();
        let one = p.out_of_core_cost(1.0, 0.12);
        let ten = p.out_of_core_cost(10.0, 0.12);
        assert!((ten - 10.0 * one).abs() < 1e-9);
        assert_eq!(p.out_of_core_cost(0.0, 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "memory fraction")]
    fn rejects_bad_fraction() {
        let _ = StoragePrices::paper_2023().out_of_core_cost(1.0, 1.5);
    }
}
