//! Storage substrate for the NosWalker reproduction.
//!
//! The paper evaluates on real NVMe hardware (an Intel P4618 SSD and a
//! 7-disk RAID-0 of S4610s) under a cgroups memory cap. This crate
//! substitutes deterministic simulations with the same *economics*:
//!
//! * [`Device`] — the byte-addressed block device abstraction every engine
//!   reads graph data through. Each operation returns its **service time**
//!   in simulated nanoseconds, so engines can build deterministic pipeline
//!   models (overlapping or not overlapping I/O with compute).
//! * [`SimSsd`] — an SSD with the two-sided cost model the paper measures
//!   (§3.3.1): sequential reads bounded by bandwidth, small random reads
//!   bounded by IOPS; `max(len/bandwidth, 1/IOPS)` per operation.
//! * [`Raid0`] — striping composition used for the multi-SSD experiments
//!   (Fig. 12 b/c): high aggregate bandwidth, low aggregate IOPS profiles
//!   are expressible either as a profile or a true striped array.
//! * [`FileDevice`] — a real file-backed device for out-of-simulation runs
//!   (used by the examples); charges wall-clock, not simulated, time.
//! * [`MemoryBudget`] — the cgroups stand-in: engines reserve every buffer
//!   against a byte budget and must evict when it is exhausted.
//! * [`IoStats`] — per-device counters (ops, bytes, busy time) that the
//!   benchmark harness diffs around each run.

#![forbid(unsafe_code)]

pub mod budget;
pub mod device;
pub mod economics;
pub mod file;
pub mod raid;
pub mod sim;

pub use budget::{BudgetExceeded, MemoryBudget, Reservation};
pub use device::{Device, DeviceError, IoStats, IoStatsSnapshot, MemDevice};
pub use economics::StoragePrices;
pub use file::FileDevice;
pub use raid::{per_shard_devices, Raid0};
pub use sim::{SimSsd, SsdProfile};
