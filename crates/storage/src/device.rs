//! The block device abstraction and shared I/O accounting.

use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Error type for device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// A read or write referenced bytes beyond the device length.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Device length.
        device_len: u64,
    },
    /// An underlying OS error (only produced by [`crate::FileDevice`]).
    Io(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfBounds {
                offset,
                len,
                device_len,
            } => write!(
                f,
                "access at offset {offset} length {len} exceeds device length {device_len}"
            ),
            DeviceError::Io(e) => write!(f, "device I/O error: {e}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Live atomic I/O counters attached to a device.
#[derive(Debug, Default)]
pub struct IoStats {
    read_ops: AtomicU64,
    read_bytes: AtomicU64,
    write_ops: AtomicU64,
    write_bytes: AtomicU64,
    busy_ns: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `bytes` that took `service_ns` of device time.
    pub fn record_read(&self, bytes: u64, service_ns: u64) {
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.read_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.busy_ns.fetch_add(service_ns, Ordering::Relaxed);
    }

    /// Records a write of `bytes` that took `service_ns` of device time.
    pub fn record_write(&self, bytes: u64, service_ns: u64) {
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        self.write_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.busy_ns.fetch_add(service_ns, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_ops: self.read_ops.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a device's [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Number of read operations.
    pub read_ops: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Number of write operations.
    pub write_ops: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Total device service time in (simulated) nanoseconds.
    pub busy_ns: u64,
}

impl IoStatsSnapshot {
    /// Counter-wise difference `self - earlier`, for bracketing a run.
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_ops: self.read_ops - earlier.read_ops,
            read_bytes: self.read_bytes - earlier.read_bytes,
            write_ops: self.write_ops - earlier.write_ops,
            write_bytes: self.write_bytes - earlier.write_bytes,
            busy_ns: self.busy_ns - earlier.busy_ns,
        }
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// A byte-addressed block device.
///
/// Reads and writes return the operation's **service time** in nanoseconds:
/// simulated time for [`crate::SimSsd`]/[`crate::Raid0`], measured wall time
/// for [`crate::FileDevice`], zero for [`MemDevice`]. Engines fold these
/// service times into their pipeline clocks; the device itself has no notion
/// of "now".
///
/// Devices grow on writes past the end (they model a file / namespace, not
/// fixed media), but reads past the end are errors.
pub trait Device: Send + Sync + fmt::Debug {
    /// Current device length in bytes.
    fn len(&self) -> u64;

    /// True if nothing has been written yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads `buf.len()` bytes at `offset`.
    ///
    /// Returns the service time in nanoseconds.
    ///
    /// # Errors
    ///
    /// [`DeviceError::OutOfBounds`] if the range exceeds the device length;
    /// [`DeviceError::Io`] for OS-level failures.
    fn read(&self, offset: u64, buf: &mut [u8]) -> Result<u64, DeviceError>;

    /// Writes `data` at `offset`, growing the device if needed.
    ///
    /// Returns the service time in nanoseconds.
    ///
    /// # Errors
    ///
    /// [`DeviceError::Io`] for OS-level failures.
    fn write(&self, offset: u64, data: &[u8]) -> Result<u64, DeviceError>;

    /// A snapshot of the device's I/O counters.
    fn stats(&self) -> IoStatsSnapshot;
}

/// A zero-cost RAM-backed device: infinite-speed storage used by the
/// in-memory baseline and by unit tests.
///
/// # Example
///
/// ```
/// use noswalker_storage::{Device, MemDevice};
///
/// let d = MemDevice::new();
/// d.write(0, b"hello")?;
/// let mut buf = [0u8; 5];
/// let ns = d.read(0, &mut buf)?;
/// assert_eq!(&buf, b"hello");
/// assert_eq!(ns, 0);
/// # Ok::<(), noswalker_storage::DeviceError>(())
/// ```
#[derive(Debug, Default)]
pub struct MemDevice {
    data: RwLock<Vec<u8>>,
    stats: IoStats,
}

impl MemDevice {
    /// Creates an empty device.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Device for MemDevice {
    fn len(&self) -> u64 {
        self.data.read().len() as u64
    }

    fn read(&self, offset: u64, buf: &mut [u8]) -> Result<u64, DeviceError> {
        let data = self.data.read();
        check_bounds(offset, buf.len() as u64, data.len() as u64)?;
        let off = offset as usize;
        buf.copy_from_slice(&data[off..off + buf.len()]);
        self.stats.record_read(buf.len() as u64, 0);
        Ok(0)
    }

    fn write(&self, offset: u64, data_in: &[u8]) -> Result<u64, DeviceError> {
        let mut data = self.data.write();
        let end = offset as usize + data_in.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(data_in);
        self.stats.record_write(data_in.len() as u64, 0);
        Ok(0)
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }
}

/// Validates `[offset, offset + len)` against `device_len`.
pub(crate) fn check_bounds(offset: u64, len: u64, device_len: u64) -> Result<(), DeviceError> {
    if offset.checked_add(len).is_none_or(|end| end > device_len) {
        return Err(DeviceError::OutOfBounds {
            offset,
            len,
            device_len,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_device_roundtrip() {
        let d = MemDevice::new();
        d.write(10, &[1, 2, 3]).unwrap();
        assert_eq!(d.len(), 13);
        let mut buf = [0u8; 3];
        d.read(10, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn mem_device_zero_fills_gap() {
        let d = MemDevice::new();
        d.write(4, &[9]).unwrap();
        let mut buf = [7u8; 4];
        d.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0, 0]);
    }

    #[test]
    fn read_past_end_errors() {
        let d = MemDevice::new();
        d.write(0, &[1, 2]).unwrap();
        let mut buf = [0u8; 4];
        let err = d.read(1, &mut buf).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfBounds { .. }));
        assert!(err.to_string().contains("exceeds device length"));
    }

    #[test]
    fn stats_accumulate_and_diff() {
        let d = MemDevice::new();
        d.write(0, &[0; 100]).unwrap();
        let before = d.stats();
        let mut buf = [0u8; 50];
        d.read(0, &mut buf).unwrap();
        d.read(50, &mut buf).unwrap();
        let delta = d.stats().since(&before);
        assert_eq!(delta.read_ops, 2);
        assert_eq!(delta.read_bytes, 100);
        assert_eq!(delta.write_ops, 0);
        assert_eq!(delta.total_bytes(), 100);
    }

    #[test]
    fn overflow_offset_is_out_of_bounds() {
        let d = MemDevice::new();
        let mut buf = [0u8; 1];
        assert!(matches!(
            d.read(u64::MAX, &mut buf),
            Err(DeviceError::OutOfBounds { .. })
        ));
    }
}
