//! The simulated SSD cost model.

use crate::device::{check_bounds, Device, DeviceError, IoStats, IoStatsSnapshot};
use parking_lot::RwLock;

/// Performance profile of an SSD (or SSD array).
///
/// The paper benchmarks two devices (§3.3.1, §4.3):
///
/// * Intel P4618 NVMe: ~3.1 GiB/s sequential, ~600 k IOPS at 4 KiB
///   (≈ 2.4 GiB/s random) — [`SsdProfile::nvme_p4618`].
/// * RAID-0 of 7 × Intel S4610 SATA: ~3.4 GiB/s sequential but only
///   ~150 k IOPS — [`SsdProfile::raid0_s4610x7`].
///
/// The per-operation service time is `max(len / bandwidth, 1 / IOPS)`:
/// large reads are bandwidth-bound, small reads are IOPS-bound. This is the
/// exact trade-off NosWalker's adaptive block granularity exploits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdProfile {
    /// Sequential read/write bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Sustained small-read operations per second (device-wide, i.e. at
    /// full queue depth).
    pub iops: u64,
}

impl SsdProfile {
    /// Intel SSD DC P4618 (the paper's primary device).
    pub fn nvme_p4618() -> Self {
        SsdProfile {
            bandwidth_bytes_per_sec: (3.1 * GIB) as u64,
            iops: 600_000,
        }
    }

    /// RAID-0 of seven Intel SSD D3 S4610 (the paper's Fig. 12 b/c device):
    /// slightly more bandwidth, 4× fewer IOPS.
    pub fn raid0_s4610x7() -> Self {
        SsdProfile {
            bandwidth_bytes_per_sec: (3.4 * GIB) as u64,
            iops: 150_000,
        }
    }

    /// Service time in nanoseconds for one operation of `len` bytes.
    pub fn service_ns(&self, len: u64) -> u64 {
        let bw_ns = len.saturating_mul(1_000_000_000) / self.bandwidth_bytes_per_sec.max(1);
        let iops_ns = 1_000_000_000 / self.iops.max(1);
        bw_ns.max(iops_ns)
    }
}

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

impl Default for SsdProfile {
    fn default() -> Self {
        SsdProfile::nvme_p4618()
    }
}

/// A deterministic simulated SSD.
///
/// Backing bytes live in host RAM; every operation is charged the profile's
/// service time and recorded in [`IoStats`]. The device is a shared-nothing
/// service-time source: it does not serialize callers — engines combine the
/// returned service times into their own pipeline clocks.
///
/// # Example
///
/// ```
/// use noswalker_storage::{Device, SimSsd, SsdProfile};
///
/// let d = SimSsd::new(SsdProfile::nvme_p4618());
/// d.write(0, &vec![0u8; 1 << 20])?;
/// let mut buf = vec![0u8; 4096];
/// let ns = d.read(0, &mut buf)?;
/// // A 4 KiB read is IOPS-bound: 1s / 600k ≈ 1.67 µs.
/// assert_eq!(ns, 1_000_000_000 / 600_000);
/// # Ok::<(), noswalker_storage::DeviceError>(())
/// ```
#[derive(Debug)]
pub struct SimSsd {
    profile: SsdProfile,
    data: RwLock<Vec<u8>>,
    stats: IoStats,
}

impl SimSsd {
    /// Creates an empty simulated SSD with the given profile.
    pub fn new(profile: SsdProfile) -> Self {
        SimSsd {
            profile,
            data: RwLock::new(Vec::new()),
            stats: IoStats::new(),
        }
    }

    /// The device's performance profile.
    pub fn profile(&self) -> SsdProfile {
        self.profile
    }
}

impl Device for SimSsd {
    fn len(&self) -> u64 {
        self.data.read().len() as u64
    }

    fn read(&self, offset: u64, buf: &mut [u8]) -> Result<u64, DeviceError> {
        let data = self.data.read();
        check_bounds(offset, buf.len() as u64, data.len() as u64)?;
        let off = offset as usize;
        buf.copy_from_slice(&data[off..off + buf.len()]);
        let ns = self.profile.service_ns(buf.len() as u64);
        self.stats.record_read(buf.len() as u64, ns);
        Ok(ns)
    }

    fn write(&self, offset: u64, data_in: &[u8]) -> Result<u64, DeviceError> {
        let mut data = self.data.write();
        let end = offset as usize + data_in.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(data_in);
        let ns = self.profile.service_ns(data_in.len() as u64);
        self.stats.record_write(data_in.len() as u64, ns);
        Ok(ns)
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_reads_are_iops_bound() {
        let p = SsdProfile::nvme_p4618();
        // 4 KiB at 3.1 GiB/s would be ~1.23 µs, but IOPS floor is 1.67 µs.
        assert_eq!(p.service_ns(4096), 1_000_000_000 / 600_000);
    }

    #[test]
    fn large_reads_are_bandwidth_bound() {
        let p = SsdProfile::nvme_p4618();
        let ns = p.service_ns(64 << 20); // 64 MiB
        let expect = (64u64 << 20) * 1_000_000_000 / p.bandwidth_bytes_per_sec;
        assert_eq!(ns, expect);
        assert!(ns > p.service_ns(4096) * 1000);
    }

    #[test]
    fn raid_profile_trades_iops_for_bandwidth() {
        let nvme = SsdProfile::nvme_p4618();
        let raid = SsdProfile::raid0_s4610x7();
        assert!(raid.bandwidth_bytes_per_sec > nvme.bandwidth_bytes_per_sec);
        assert!(raid.service_ns(4096) > nvme.service_ns(4096));
    }

    #[test]
    fn read_charges_busy_time() {
        let d = SimSsd::new(SsdProfile::nvme_p4618());
        d.write(0, &[0u8; 8192]).unwrap();
        let before = d.stats();
        let mut buf = [0u8; 4096];
        d.read(0, &mut buf).unwrap();
        d.read(4096, &mut buf).unwrap();
        let delta = d.stats().since(&before);
        assert_eq!(delta.read_ops, 2);
        assert_eq!(delta.busy_ns, 2 * (1_000_000_000 / 600_000));
    }

    #[test]
    fn data_integrity_preserved() {
        let d = SimSsd::new(SsdProfile::default());
        let payload: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        d.write(123, &payload).unwrap();
        let mut buf = vec![0u8; 10_000];
        d.read(123, &mut buf).unwrap();
        assert_eq!(buf, payload);
    }

    #[test]
    fn out_of_bounds_read_fails() {
        let d = SimSsd::new(SsdProfile::default());
        let mut buf = [0u8; 1];
        assert!(d.read(0, &mut buf).is_err());
    }
}
