//! RAID-0 striping over simulated SSDs.

use crate::device::{Device, DeviceError, IoStats, IoStatsSnapshot};
use crate::sim::{SimSsd, SsdProfile};
use std::sync::Arc;

/// A RAID-0 (striped) array of simulated SSDs.
///
/// Used for the paper's multi-SSD experiments: an operation is split into
/// per-stripe segments; segments on distinct members are serviced in
/// parallel, so the array's service time for an operation is the **maximum**
/// of each member's summed segment times. Aggregate bandwidth therefore
/// scales with member count while per-operation latency does not improve.
///
/// # Example
///
/// ```
/// use noswalker_storage::{Device, Raid0, SsdProfile};
///
/// let raid = Raid0::new(4, SsdProfile::nvme_p4618(), 64 * 1024);
/// raid.write(0, &vec![7u8; 1 << 20])?;
/// let mut buf = vec![0u8; 1 << 20];
/// let ns = raid.read(0, &mut buf)?;
/// let single = SsdProfile::nvme_p4618().service_ns(1 << 20);
/// assert!(ns < single, "4-way stripe should beat one device");
/// # Ok::<(), noswalker_storage::DeviceError>(())
/// ```
#[derive(Debug)]
pub struct Raid0 {
    members: Vec<Arc<SimSsd>>,
    stripe_bytes: u64,
    stats: IoStats,
}

impl Raid0 {
    /// Creates an array of `n` members with the given per-member profile and
    /// stripe size.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `stripe_bytes` is zero.
    pub fn new(n: usize, member_profile: SsdProfile, stripe_bytes: u64) -> Self {
        assert!(n > 0, "need at least one member");
        assert!(stripe_bytes > 0, "stripe size must be positive");
        Raid0 {
            members: (0..n)
                .map(|_| Arc::new(SimSsd::new(member_profile)))
                .collect(),
            stripe_bytes,
            stats: IoStats::new(),
        }
    }

    /// Number of member devices.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Splits `[offset, offset+len)` into `(member, member_offset, len)`
    /// segments.
    fn segments(&self, mut offset: u64, mut len: u64) -> Vec<(usize, u64, u64)> {
        let n = self.members.len() as u64;
        let mut out = Vec::new();
        while len > 0 {
            let stripe_idx = offset / self.stripe_bytes;
            let within = offset % self.stripe_bytes;
            let member = (stripe_idx % n) as usize;
            let member_stripe = stripe_idx / n;
            let seg_len = (self.stripe_bytes - within).min(len);
            out.push((member, member_stripe * self.stripe_bytes + within, seg_len));
            offset += seg_len;
            len -= seg_len;
        }
        out
    }

    /// Runs `op` per segment and combines times: per-member serial, across
    /// members parallel.
    fn run<F>(&self, offset: u64, len: u64, mut op: F) -> Result<u64, DeviceError>
    where
        F: FnMut(&SimSsd, u64, u64, u64) -> Result<u64, DeviceError>,
    {
        let mut member_ns = vec![0u64; self.members.len()];
        let mut logical = 0u64;
        for (m, moff, seg) in self.segments(offset, len) {
            let ns = op(&self.members[m], moff, logical, seg)?;
            member_ns[m] += ns;
            logical += seg;
        }
        Ok(member_ns.into_iter().max().unwrap_or(0))
    }
}

/// Builds one independent device per shard for the sharded serve plane: a
/// plain [`SimSsd`] when `members_per_shard == 1`, otherwise a [`Raid0`] of
/// that many members. Shards never share a device, so their I/O service
/// times are modeled independently and the plane's round time is the
/// slowest shard's — the modeled-parallelism assumption behind multi-shard
/// throughput scaling.
///
/// # Panics
///
/// Panics if `shards`, `members_per_shard`, or `stripe_bytes` is zero.
pub fn per_shard_devices(
    shards: usize,
    members_per_shard: usize,
    profile: SsdProfile,
    stripe_bytes: u64,
) -> Vec<Arc<dyn Device>> {
    assert!(shards > 0, "need at least one shard");
    assert!(members_per_shard > 0, "need at least one member per shard");
    (0..shards)
        .map(|_| -> Arc<dyn Device> {
            if members_per_shard == 1 {
                Arc::new(SimSsd::new(profile))
            } else {
                Arc::new(Raid0::new(members_per_shard, profile, stripe_bytes))
            }
        })
        .collect()
}

impl Device for Raid0 {
    fn len(&self) -> u64 {
        // Logical length = sum of member lengths is an overestimate when the
        // last stripe is partial; track via max end written instead: the
        // members grow in stripe units, so reconstruct from member lengths.
        self.members.iter().map(|m| m.len()).sum()
    }

    fn read(&self, offset: u64, buf: &mut [u8]) -> Result<u64, DeviceError> {
        let ns = self.run(offset, buf.len() as u64, |m, moff, logical, seg| {
            m.read(moff, &mut buf[logical as usize..(logical + seg) as usize])
        })?;
        self.stats.record_read(buf.len() as u64, ns);
        Ok(ns)
    }

    fn write(&self, offset: u64, data: &[u8]) -> Result<u64, DeviceError> {
        let ns = self.run(offset, data.len() as u64, |m, moff, logical, seg| {
            m.write(moff, &data[logical as usize..(logical + seg) as usize])
        })?;
        self.stats.record_write(data.len() as u64, ns);
        Ok(ns)
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_across_stripes() {
        let raid = Raid0::new(3, SsdProfile::default(), 16);
        let payload: Vec<u8> = (0..200u8).collect();
        raid.write(5, &payload).unwrap();
        let mut buf = vec![0u8; 200];
        raid.read(5, &mut buf).unwrap();
        assert_eq!(buf, payload);
    }

    #[test]
    fn large_read_parallelizes() {
        let profile = SsdProfile {
            bandwidth_bytes_per_sec: 1 << 30,
            iops: 1_000_000,
        };
        let raid = Raid0::new(4, profile, 1 << 16);
        let len = 4 << 20;
        raid.write(0, &vec![0u8; len]).unwrap();
        let mut buf = vec![0u8; len];
        let raid_ns = raid.read(0, &mut buf).unwrap();

        let single = SimSsd::new(profile);
        single.write(0, &vec![0u8; len]).unwrap();
        let single_ns = single.read(0, &mut buf).unwrap();
        // 4-way striping ≈ 4× faster for a bandwidth-bound read, but the
        // per-segment IOPS floor costs something.
        assert!(raid_ns < single_ns / 2, "{raid_ns} vs {single_ns}");
    }

    #[test]
    fn small_read_does_not_parallelize() {
        let raid = Raid0::new(4, SsdProfile::default(), 1 << 16);
        raid.write(0, &[1u8; 4096]).unwrap();
        let mut buf = [0u8; 4096];
        let ns = raid.read(0, &mut buf).unwrap();
        // Fits in one stripe → one member → full single-device IOPS cost.
        assert_eq!(ns, SsdProfile::default().service_ns(4096));
    }

    #[test]
    fn segments_cover_range_exactly() {
        let raid = Raid0::new(2, SsdProfile::default(), 10);
        let segs = raid.segments(7, 25);
        let total: u64 = segs.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total, 25);
        // First segment ends at a stripe boundary.
        assert_eq!(segs[0].2, 3);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_rejected() {
        let _ = Raid0::new(0, SsdProfile::default(), 1024);
    }

    #[test]
    fn per_shard_devices_are_independent() {
        let devices = per_shard_devices(3, 1, SsdProfile::default(), 1 << 16);
        assert_eq!(devices.len(), 3);
        devices[0].write(0, &[7u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        devices[1].read(0, &mut buf).unwrap_or(0);
        assert_ne!(buf, [7u8; 64], "shard devices must not share storage");
    }

    #[test]
    fn per_shard_devices_compose_raid() {
        let devices = per_shard_devices(2, 4, SsdProfile::default(), 1 << 16);
        assert_eq!(devices.len(), 2);
        let payload: Vec<u8> = (0..255u8).collect();
        devices[0].write(0, &payload).unwrap();
        let mut buf = vec![0u8; payload.len()];
        devices[0].read(0, &mut buf).unwrap();
        assert_eq!(buf, payload);
    }
}
