//! A real file-backed device for out-of-simulation runs.

use crate::device::{Device, DeviceError, IoStats, IoStatsSnapshot};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Instant;

/// A device backed by a real file.
///
/// Unlike [`crate::SimSsd`], service times are *measured wall-clock*
/// nanoseconds, so runs on a `FileDevice` report real I/O behaviour (page
/// cache included). The examples use this to run NosWalker against actual
/// storage.
///
/// # Example
///
/// ```no_run
/// use noswalker_storage::{Device, FileDevice};
///
/// let d = FileDevice::create("/tmp/graph.bin")?;
/// d.write(0, b"edges...")?;
/// # Ok::<(), noswalker_storage::DeviceError>(())
/// ```
#[derive(Debug)]
pub struct FileDevice {
    file: Mutex<File>,
    stats: IoStats,
}

impl FileDevice {
    /// Creates (truncating) a file-backed device at `path`.
    ///
    /// # Errors
    ///
    /// [`DeviceError::Io`] if the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, DeviceError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io_err)?;
        Ok(FileDevice {
            file: Mutex::new(file),
            stats: IoStats::new(),
        })
    }

    /// Opens an existing file read-write.
    ///
    /// # Errors
    ///
    /// [`DeviceError::Io`] if the file cannot be opened.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, DeviceError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io_err)?;
        Ok(FileDevice {
            file: Mutex::new(file),
            stats: IoStats::new(),
        })
    }
}

fn io_err(e: std::io::Error) -> DeviceError {
    DeviceError::Io(e.to_string())
}

impl Device for FileDevice {
    fn len(&self) -> u64 {
        self.file.lock().metadata().map(|m| m.len()).unwrap_or(0)
    }

    fn read(&self, offset: u64, buf: &mut [u8]) -> Result<u64, DeviceError> {
        // LINT-ALLOW(L3): real device service time is wall-clock by
        // definition; storage cannot depend on core's WallTimer.
        let start = Instant::now();
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset)).map_err(io_err)?;
        file.read_exact(buf).map_err(io_err)?;
        let ns = start.elapsed().as_nanos() as u64;
        self.stats.record_read(buf.len() as u64, ns);
        Ok(ns)
    }

    fn write(&self, offset: u64, data: &[u8]) -> Result<u64, DeviceError> {
        // LINT-ALLOW(L3): real device service time is wall-clock by
        // definition; storage cannot depend on core's WallTimer.
        let start = Instant::now();
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset)).map_err(io_err)?;
        file.write_all(data).map_err(io_err)?;
        let ns = start.elapsed().as_nanos() as u64;
        self.stats.record_write(data.len() as u64, ns);
        Ok(ns)
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("noswalker-filedev-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip() {
        let path = temp_path("rt");
        let d = FileDevice::create(&path).unwrap();
        d.write(100, b"hello world").unwrap();
        let mut buf = [0u8; 11];
        d.read(100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        assert_eq!(d.len(), 111);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_missing_range_errors() {
        let path = temp_path("missing");
        let d = FileDevice::create(&path).unwrap();
        let mut buf = [0u8; 4];
        assert!(matches!(d.read(0, &mut buf), Err(DeviceError::Io(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_nonexistent_fails() {
        assert!(FileDevice::open("/nonexistent/dir/x.bin").is_err());
    }

    #[test]
    fn stats_track_real_io() {
        let path = temp_path("stats");
        let d = FileDevice::create(&path).unwrap();
        d.write(0, &[1u8; 4096]).unwrap();
        let mut buf = [0u8; 4096];
        d.read(0, &mut buf).unwrap();
        let s = d.stats();
        assert_eq!(s.read_bytes, 4096);
        assert_eq!(s.write_bytes, 4096);
        std::fs::remove_file(path).ok();
    }
}
