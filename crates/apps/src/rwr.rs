//! Random Walk with Restart (Tong et al., ICDM '06) — the teleporting
//! formulation of personalized PageRank the paper cites among the core
//! random walk applications [62, 63].
//!
//! Each step, the walker restarts at its source with probability `c`;
//! otherwise it takes a uniform step. Walks are truncated at a maximum
//! length (the geometric tail beyond it is negligible for typical `c`).

use noswalker_core::apps_prelude::*;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monte-Carlo RWR from a set of query sources.
#[derive(Debug)]
pub struct RandomWalkWithRestart {
    sources: Vec<VertexId>,
    walks_per_source: u64,
    restart_prob: f32,
    max_length: u32,
    visits: Vec<AtomicU64>,
    restarts: AtomicU64,
}

/// Walker state for [`RandomWalkWithRestart`].
#[derive(Debug, Clone)]
pub struct RwrWalker {
    /// The walker's personal source (restart target).
    pub source: VertexId,
    /// Current vertex.
    pub at: VertexId,
    /// Steps taken (restarts count as steps).
    pub step: u32,
}

impl RandomWalkWithRestart {
    /// Creates the workload. Typical `restart_prob` is 0.15.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty, `num_vertices` is zero, or
    /// `restart_prob` is outside `[0, 1)`.
    pub fn new(
        sources: Vec<VertexId>,
        walks_per_source: u64,
        restart_prob: f32,
        max_length: u32,
        num_vertices: usize,
    ) -> Self {
        assert!(!sources.is_empty(), "need at least one query source");
        assert!(num_vertices > 0, "graph must have vertices");
        assert!(
            (0.0..1.0).contains(&restart_prob),
            "restart probability must be in [0, 1)"
        );
        RandomWalkWithRestart {
            sources,
            walks_per_source,
            restart_prob,
            max_length,
            visits: (0..num_vertices).map(|_| AtomicU64::new(0)).collect(),
            restarts: AtomicU64::new(0),
        }
    }

    /// Visit count of `v`.
    pub fn visits(&self, v: VertexId) -> u64 {
        self.visits[v as usize].load(Ordering::Relaxed)
    }

    /// Restarts taken across all walks.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Normalized stationary estimate (the RWR proximity vector).
    pub fn estimate(&self) -> Vec<f64> {
        let total: u64 = self.visits.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return vec![0.0; self.visits.len()];
        }
        self.visits
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as f64 / total as f64)
            .collect()
    }
}

impl Walk for RandomWalkWithRestart {
    type Walker = RwrWalker;

    fn total_walkers(&self) -> u64 {
        self.sources.len() as u64 * self.walks_per_source
    }

    fn generate(&self, n: u64, _rng: &mut WalkRng) -> RwrWalker {
        let s = self.sources[(n / self.walks_per_source) as usize];
        RwrWalker {
            source: s,
            at: s,
            step: 0,
        }
    }

    fn location(&self, w: &RwrWalker) -> VertexId {
        w.at
    }

    fn is_active(&self, w: &RwrWalker) -> bool {
        w.step < self.max_length
    }

    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        uniform_sample(v, rng)
    }

    fn action(&self, w: &mut RwrWalker, next: VertexId, rng: &mut WalkRng) -> bool {
        // Teleport with probability c; the pre-sampled destination is
        // simply not consumed in that case (we still count the hop).
        if rng.gen::<f32>() < self.restart_prob {
            w.at = w.source;
            self.restarts.fetch_add(1, Ordering::Relaxed);
            w.step += 1;
            self.visits[w.at as usize].fetch_add(1, Ordering::Relaxed);
            return false; // sample not consumed
        }
        w.at = next;
        w.step += 1;
        self.visits[next as usize].fetch_add(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn restarts_return_to_source() {
        let app = RandomWalkWithRestart::new(vec![3], 1, 0.999, 10, 8);
        let mut rng = WalkRng::seed_from_u64(1);
        let mut w = app.generate(0, &mut rng);
        let consumed = app.action(&mut w, 5, &mut rng);
        assert!(!consumed, "with c≈1 the hop must be a restart");
        assert_eq!(w.at, 3);
        assert_eq!(app.restarts(), 1);
    }

    #[test]
    fn zero_restart_behaves_like_plain_walk() {
        let app = RandomWalkWithRestart::new(vec![0], 1, 0.0, 10, 8);
        let mut rng = WalkRng::seed_from_u64(2);
        let mut w = app.generate(0, &mut rng);
        assert!(app.action(&mut w, 5, &mut rng));
        assert_eq!(w.at, 5);
        assert_eq!(app.restarts(), 0);
    }

    #[test]
    fn restart_rate_matches_probability() {
        let app = RandomWalkWithRestart::new(vec![0], 1, 0.25, 10, 8);
        let mut rng = WalkRng::seed_from_u64(3);
        let mut w = app.generate(0, &mut rng);
        let mut hops = 0u64;
        while app.is_active(&w) {
            app.action(&mut w, 1, &mut rng);
            hops += 1;
        }
        assert_eq!(hops, 10);
        // Run many walkers for the statistic.
        let app = RandomWalkWithRestart::new(vec![0], 2000, 0.25, 10, 8);
        let mut rng = WalkRng::seed_from_u64(4);
        for n in 0..2000 {
            let mut w = app.generate(n, &mut rng);
            while app.is_active(&w) {
                app.action(&mut w, 1, &mut rng);
            }
        }
        let rate = app.restarts() as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "restart rate {rate}");
    }

    #[test]
    #[should_panic(expected = "restart probability")]
    fn rejects_bad_probability() {
        let _ = RandomWalkWithRestart::new(vec![0], 1, 1.5, 10, 8);
    }
}
