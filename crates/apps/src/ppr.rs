//! Personalized PageRank by Monte-Carlo random walks (paper §4.2: "2000
//! random walks with length 10 ... starting from each query source").

use noswalker_core::apps_prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monte-Carlo PPR: for each query source, `walks_per_source` fixed-length
/// walks; the visit frequency of each vertex approximates its PPR score
/// with respect to that source's query.
#[derive(Debug)]
pub struct Ppr {
    sources: Vec<VertexId>,
    walks_per_source: u64,
    length: u32,
    visits: Vec<AtomicU64>,
}

/// Walker state for [`Ppr`].
#[derive(Debug, Clone)]
pub struct PprWalker {
    /// Current vertex.
    pub at: VertexId,
    /// Steps taken.
    pub step: u32,
}

impl Ppr {
    /// Creates the query workload.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or `num_vertices` is zero.
    pub fn new(
        sources: Vec<VertexId>,
        walks_per_source: u64,
        length: u32,
        num_vertices: usize,
    ) -> Self {
        assert!(!sources.is_empty(), "need at least one query source");
        assert!(num_vertices > 0, "graph must have vertices");
        Ppr {
            sources,
            walks_per_source,
            length,
            visits: (0..num_vertices).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Total visits recorded at `v` across all sources.
    pub fn visits(&self, v: VertexId) -> u64 {
        self.visits[v as usize].load(Ordering::Relaxed)
    }

    /// Normalized visit distribution (the PPR estimate); sums to ~1.
    pub fn estimate(&self) -> Vec<f64> {
        let total: u64 = self.visits.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return vec![0.0; self.visits.len()];
        }
        self.visits
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as f64 / total as f64)
            .collect()
    }

    /// The `k` most-visited vertices with their counts, descending.
    pub fn top_k(&self, k: usize) -> Vec<(VertexId, u64)> {
        let mut all: Vec<(VertexId, u64)> = self
            .visits
            .iter()
            .enumerate()
            .map(|(v, c)| (v as VertexId, c.load(Ordering::Relaxed)))
            .filter(|&(_, c)| c > 0)
            .collect();
        all.sort_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
        all.truncate(k);
        all
    }

    /// Per-source visit totals, for checking that every source got its
    /// walks.
    pub fn visits_by_source(&self) -> HashMap<VertexId, u64> {
        // Source attribution is not tracked per walk (the paper's PPR also
        // aggregates); report the sources with their issued walk counts.
        self.sources
            .iter()
            .map(|&s| (s, self.walks_per_source))
            .collect()
    }
}

impl Walk for Ppr {
    type Walker = PprWalker;

    fn total_walkers(&self) -> u64 {
        self.sources.len() as u64 * self.walks_per_source
    }

    fn generate(&self, n: u64, _rng: &mut WalkRng) -> PprWalker {
        let s = self.sources[(n / self.walks_per_source) as usize];
        PprWalker { at: s, step: 0 }
    }

    fn location(&self, w: &PprWalker) -> VertexId {
        w.at
    }

    fn is_active(&self, w: &PprWalker) -> bool {
        w.step < self.length
    }

    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        uniform_sample(v, rng)
    }

    fn action(&self, w: &mut PprWalker, next: VertexId, _rng: &mut WalkRng) -> bool {
        w.at = next;
        w.step += 1;
        self.visits[next as usize].fetch_add(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn walkers_start_at_their_source() {
        let app = Ppr::new(vec![3, 7], 5, 10, 16);
        let mut rng = WalkRng::seed_from_u64(0);
        assert_eq!(app.total_walkers(), 10);
        assert_eq!(app.generate(0, &mut rng).at, 3);
        assert_eq!(app.generate(4, &mut rng).at, 3);
        assert_eq!(app.generate(5, &mut rng).at, 7);
        assert_eq!(app.generate(9, &mut rng).at, 7);
    }

    #[test]
    fn visits_accumulate_and_normalize() {
        let app = Ppr::new(vec![0], 1, 4, 4);
        let mut rng = WalkRng::seed_from_u64(1);
        let mut w = app.generate(0, &mut rng);
        for v in [1u32, 2, 1, 3] {
            app.action(&mut w, v, &mut rng);
        }
        assert_eq!(app.visits(1), 2);
        let est = app.estimate();
        assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(app.top_k(1), vec![(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "at least one query source")]
    fn rejects_empty_sources() {
        let _ = Ppr::new(vec![], 10, 10, 4);
    }
}
