//! The paper's random walk applications, expressed once against the
//! [`noswalker_core::Walk`] programming model and runnable unchanged on
//! NosWalker and on every baseline engine.
//!
//! | module | paper workload (§4.2, §4.4, §4.5) |
//! |---|---|
//! | [`basic`] | Basic-RW: N walkers of fixed length, uniform sampling |
//! | [`ppr`] | Personalized PageRank: 2000 walks × length 10 per query source |
//! | [`simrank`] | SimRank: 2000 walk pairs × length 11, expected meeting time |
//! | [`rwd`] | Random Walk Domination: one length-6 walker per vertex |
//! | [`rwr`] | Random Walk with Restart: teleporting PPR (cited by the paper) |
//! | [`community`] | Network Community Profiling: PPR sweep + conductance (cited by the paper) |
//! | [`graphlet`] | Graphlet Concentration: \|V\|/100 walkers × length 3, triangle ratio |
//! | [`deepwalk`] | DeepWalk sequence extraction (walks per vertex, collected paths) |
//! | [`weighted`] | Weighted random walk over alias-table edge data (K30W) |
//! | [`node2vec`] | Node2Vec second-order walk via rejection sampling (Appendix A) |

#![forbid(unsafe_code)]

pub mod basic;
pub mod community;
pub mod deepwalk;
pub mod graphlet;
pub mod node2vec;
pub mod ppr;
pub mod rwd;
pub mod rwr;
pub mod simrank;
pub mod weighted;

pub use basic::BasicRw;
pub use community::CommunityProfiling;
pub use deepwalk::DeepWalk;
pub use graphlet::GraphletConcentration;
pub use node2vec::Node2Vec;
pub use ppr::Ppr;
pub use rwd::RandomWalkDomination;
pub use rwr::RandomWalkWithRestart;
pub use simrank::SimRank;
pub use weighted::WeightedRw;
