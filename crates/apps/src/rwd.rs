//! Random Walk Domination (paper §4.2: "start a walker with length 6 from
//! each vertex in the graph to collect the vertex visit statistics").

use noswalker_core::apps_prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Random Walk Domination: one fixed-length walker per vertex; the visit
/// statistics identify a vertex set with maximum influence diffusion.
#[derive(Debug)]
pub struct RandomWalkDomination {
    num_vertices: u32,
    length: u32,
    visits: Vec<AtomicU64>,
}

/// Walker state for [`RandomWalkDomination`].
#[derive(Debug, Clone)]
pub struct RwdWalker {
    /// Current vertex.
    pub at: VertexId,
    /// Steps taken.
    pub step: u32,
}

impl RandomWalkDomination {
    /// One walker of `length` steps per vertex.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` is zero.
    pub fn new(num_vertices: usize, length: u32) -> Self {
        assert!(num_vertices > 0, "graph must have vertices");
        RandomWalkDomination {
            num_vertices: num_vertices as u32,
            length,
            visits: (0..num_vertices).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Visit count at `v`.
    pub fn visits(&self, v: VertexId) -> u64 {
        self.visits[v as usize].load(Ordering::Relaxed)
    }

    /// A greedy dominating set estimate: the `k` most-visited vertices.
    pub fn dominating_set(&self, k: usize) -> Vec<VertexId> {
        let mut all: Vec<(u64, VertexId)> = self
            .visits
            .iter()
            .enumerate()
            .map(|(v, c)| (c.load(Ordering::Relaxed), v as VertexId))
            .collect();
        all.sort_by_key(|&(c, v)| (std::cmp::Reverse(c), v));
        all.into_iter().take(k).map(|(_, v)| v).collect()
    }

    /// Total visits recorded (equals total steps executed).
    pub fn total_visits(&self) -> u64 {
        self.visits.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

impl Walk for RandomWalkDomination {
    type Walker = RwdWalker;

    fn total_walkers(&self) -> u64 {
        self.num_vertices as u64
    }

    fn generate(&self, n: u64, _rng: &mut WalkRng) -> RwdWalker {
        RwdWalker {
            at: n as VertexId,
            step: 0,
        }
    }

    fn location(&self, w: &RwdWalker) -> VertexId {
        w.at
    }

    fn is_active(&self, w: &RwdWalker) -> bool {
        w.step < self.length
    }

    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        uniform_sample(v, rng)
    }

    fn action(&self, w: &mut RwdWalker, next: VertexId, _rng: &mut WalkRng) -> bool {
        w.at = next;
        w.step += 1;
        self.visits[next as usize].fetch_add(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn one_walker_per_vertex() {
        let app = RandomWalkDomination::new(8, 6);
        let mut rng = WalkRng::seed_from_u64(0);
        assert_eq!(app.total_walkers(), 8);
        for n in 0..8 {
            assert_eq!(app.generate(n, &mut rng).at, n as u32);
        }
    }

    #[test]
    fn dominating_set_orders_by_visits() {
        let app = RandomWalkDomination::new(4, 6);
        let mut rng = WalkRng::seed_from_u64(0);
        let mut w = app.generate(0, &mut rng);
        for v in [2u32, 2, 3] {
            app.action(&mut w, v, &mut rng);
        }
        assert_eq!(app.dominating_set(2), vec![2, 3]);
        assert_eq!(app.total_visits(), 3);
    }
}
