//! Graphlet Concentration (paper §4.2: "we use the graphlet triangle as a
//! study case. We randomly start |V|/100 walkers of length 3").
//!
//! A length-3 uniform walk that returns to its start vertex witnesses a
//! closed triangle through the start; the fraction of returning walks
//! estimates the concentration of the triangle graphlet relative to
//! length-3 paths.

use noswalker_core::apps_prelude::*;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Triangle graphlet concentration estimator.
#[derive(Debug)]
pub struct GraphletConcentration {
    walkers: u64,
    num_vertices: u32,
    completed: AtomicU64,
    closed: AtomicU64,
}

/// Walker state for [`GraphletConcentration`].
#[derive(Debug, Clone)]
pub struct GraphletWalker {
    /// Start vertex of the walk.
    pub start: VertexId,
    /// Current vertex.
    pub at: VertexId,
    /// Steps taken (walk length is fixed at 3).
    pub step: u32,
}

impl GraphletConcentration {
    /// The paper's setting: `num_vertices / 100` walkers (at least 1).
    pub fn paper_scale(num_vertices: usize) -> Self {
        Self::new(((num_vertices as u64) / 100).max(1), num_vertices)
    }

    /// `walkers` length-3 walks from uniformly random starts.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` is zero.
    pub fn new(walkers: u64, num_vertices: usize) -> Self {
        assert!(num_vertices > 0, "graph must have vertices");
        GraphletConcentration {
            walkers,
            num_vertices: num_vertices as u32,
            completed: AtomicU64::new(0),
            closed: AtomicU64::new(0),
        }
    }

    /// Walks that completed all 3 steps.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Completed walks that returned to their start (closed a triangle).
    pub fn closed(&self) -> u64 {
        self.closed.load(Ordering::Relaxed)
    }

    /// The triangle concentration estimate (`closed / completed`).
    pub fn concentration(&self) -> f64 {
        let done = self.completed();
        if done == 0 {
            0.0
        } else {
            self.closed() as f64 / done as f64
        }
    }
}

impl Walk for GraphletConcentration {
    type Walker = GraphletWalker;

    fn total_walkers(&self) -> u64 {
        self.walkers
    }

    fn generate(&self, _n: u64, rng: &mut WalkRng) -> GraphletWalker {
        let start = rng.gen_range(0..self.num_vertices);
        GraphletWalker {
            start,
            at: start,
            step: 0,
        }
    }

    fn location(&self, w: &GraphletWalker) -> VertexId {
        w.at
    }

    fn is_active(&self, w: &GraphletWalker) -> bool {
        w.step < 3
    }

    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        uniform_sample(v, rng)
    }

    fn action(&self, w: &mut GraphletWalker, next: VertexId, _rng: &mut WalkRng) -> bool {
        w.at = next;
        w.step += 1;
        if w.step == 3 {
            self.completed.fetch_add(1, Ordering::Relaxed);
            if w.at == w.start {
                self.closed.fetch_add(1, Ordering::Relaxed);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn counts_closed_walks() {
        let app = GraphletConcentration::new(2, 8);
        let mut rng = WalkRng::seed_from_u64(3);
        let mut w = app.generate(0, &mut rng);
        let s = w.start;
        app.action(&mut w, (s + 1) % 8, &mut rng);
        app.action(&mut w, (s + 2) % 8, &mut rng);
        app.action(&mut w, s, &mut rng); // returns: triangle
        assert_eq!(app.completed(), 1);
        assert_eq!(app.closed(), 1);
        let mut w2 = app.generate(1, &mut rng);
        let s2 = w2.start;
        app.action(&mut w2, (s2 + 1) % 8, &mut rng);
        app.action(&mut w2, (s2 + 2) % 8, &mut rng);
        app.action(&mut w2, (s2 + 3) % 8, &mut rng); // open
        assert_eq!(app.completed(), 2);
        assert!((app.concentration() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_is_v_over_100() {
        let app = GraphletConcentration::paper_scale(10_000);
        assert_eq!(app.total_walkers(), 100);
        let tiny = GraphletConcentration::paper_scale(5);
        assert_eq!(tiny.total_walkers(), 1);
    }
}
