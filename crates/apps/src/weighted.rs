//! Weighted random walk over alias-table edge data — the paper's K30W
//! workload (§4.4): each step samples an out-edge proportional to its
//! weight using the pre-generated per-vertex alias tables.

use noswalker_core::apps_prelude::*;
use noswalker_core::walk::{alias_sample, weighted_sample};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-length weighted random walk.
///
/// Sampling uses the alias table when the edge view carries one (O(1));
/// otherwise falls back to a linear weighted draw; on unweighted views it
/// degrades to uniform (so the same app runs on any dataset).
#[derive(Debug)]
pub struct WeightedRw {
    walkers: u64,
    length: u32,
    num_vertices: u32,
    steps_taken: AtomicU64,
}

/// Walker state for [`WeightedRw`].
#[derive(Debug, Clone)]
pub struct WeightedWalker {
    /// Current vertex.
    pub at: VertexId,
    /// Steps taken.
    pub step: u32,
}

impl WeightedRw {
    /// `walkers` weighted walks of `length` steps, round-robin starts.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` is zero.
    pub fn new(walkers: u64, length: u32, num_vertices: usize) -> Self {
        assert!(num_vertices > 0, "graph must have vertices");
        WeightedRw {
            walkers,
            length,
            num_vertices: num_vertices as u32,
            steps_taken: AtomicU64::new(0),
        }
    }

    /// Steps executed so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken.load(Ordering::Relaxed)
    }
}

impl Walk for WeightedRw {
    type Walker = WeightedWalker;

    fn total_walkers(&self) -> u64 {
        self.walkers
    }

    fn generate(&self, n: u64, _rng: &mut WalkRng) -> WeightedWalker {
        WeightedWalker {
            at: (n % self.num_vertices as u64) as VertexId,
            step: 0,
        }
    }

    fn location(&self, w: &WeightedWalker) -> VertexId {
        w.at
    }

    fn is_active(&self, w: &WeightedWalker) -> bool {
        w.step < self.length
    }

    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        if v.alias_slot(0).is_some() {
            alias_sample(v, rng)
        } else if v.weight(0).is_some() {
            weighted_sample(v, rng)
        } else {
            uniform_sample(v, rng)
        }
    }

    fn action(&self, w: &mut WeightedWalker, next: VertexId, _rng: &mut WalkRng) -> bool {
        w.at = next;
        w.step += 1;
        self.steps_taken.fetch_add(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_graph::CsrBuilder;
    use rand::SeedableRng;

    fn weighted_vertex_graph() -> noswalker_graph::Csr {
        CsrBuilder::new(3)
            .edge(0, 1)
            .edge(0, 2)
            .build()
            .with_weights(vec![1.0, 9.0])
            .build_alias_tables()
    }

    #[test]
    fn sampling_respects_alias_weights() {
        let g = weighted_vertex_graph();
        let app = WeightedRw::new(1, 1, 3);
        let view = VertexEdges::from_csr(&g, 0);
        let mut rng = WalkRng::seed_from_u64(5);
        let heavy = (0..10_000)
            .filter(|_| app.sample(&view, &mut rng) == 2)
            .count();
        let frac = heavy as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn falls_back_to_uniform_without_weights() {
        let g = CsrBuilder::new(3).edge(0, 1).edge(0, 2).build();
        let app = WeightedRw::new(1, 1, 3);
        let view = VertexEdges::from_csr(&g, 0);
        let mut rng = WalkRng::seed_from_u64(5);
        let ones = (0..10_000)
            .filter(|_| app.sample(&view, &mut rng) == 1)
            .count();
        let frac = ones as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }
}
