//! SimRank by random walk meeting time (paper §4.2: "for each of the two
//! vertices in a queried pair, we start 2000 random walks with length 11
//! to compute the expected meeting time").

use noswalker_core::apps_prelude::*;
use parking_lot::Mutex;

/// SimRank similarity estimation for one queried vertex pair `(a, b)`.
///
/// Walk `2k` walkers (`k` from each endpoint); walker `2i` pairs with
/// walker `2i + 1`. After both record their paths, the *meeting time* of
/// pair `i` is the first step at which both stood on the same vertex.
#[derive(Debug)]
pub struct SimRank {
    a: VertexId,
    b: VertexId,
    pairs: u64,
    length: u32,
    paths: Mutex<Vec<Option<Vec<VertexId>>>>,
}

/// Walker state for [`SimRank`]: the full path is carried so the meeting
/// time can be computed pairwise at the end.
#[derive(Debug, Clone)]
pub struct SimRankWalker {
    /// Walker index (`2i` walks from `a`, `2i+1` from `b`).
    pub id: u64,
    /// Visited vertices, starting with the source.
    pub path: Vec<VertexId>,
}

impl SimRank {
    /// Creates the query: `pairs` walker pairs of `length` steps from the
    /// endpoints `a` and `b`.
    pub fn new(a: VertexId, b: VertexId, pairs: u64, length: u32) -> Self {
        SimRank {
            a,
            b,
            pairs,
            length,
            paths: Mutex::new(vec![None; (pairs * 2) as usize]),
        }
    }

    /// Meeting times of all pairs where both walkers met within the walk
    /// length (`None` entries are pairs that never met).
    pub fn meeting_times(&self) -> Vec<Option<u32>> {
        let paths = self.paths.lock();
        (0..self.pairs as usize)
            .map(|i| {
                let (pa, pb) = (&paths[2 * i], &paths[2 * i + 1]);
                match (pa, pb) {
                    (Some(pa), Some(pb)) => pa
                        .iter()
                        .zip(pb.iter())
                        .position(|(x, y)| x == y)
                        .map(|p| p as u32),
                    _ => None,
                }
            })
            .collect()
    }

    /// The SimRank-style similarity estimate: `E[c^T]` over meeting times
    /// `T` (pairs that never meet contribute 0), with decay `c`.
    pub fn similarity(&self, c: f64) -> f64 {
        let times = self.meeting_times();
        if times.is_empty() {
            return 0.0;
        }
        let sum: f64 = times
            .iter()
            .map(|t| t.map_or(0.0, |t| c.powi(t as i32)))
            .sum();
        sum / times.len() as f64
    }
}

impl Walk for SimRank {
    type Walker = SimRankWalker;

    fn total_walkers(&self) -> u64 {
        self.pairs * 2
    }

    fn generate(&self, n: u64, _rng: &mut WalkRng) -> SimRankWalker {
        let start = if n.is_multiple_of(2) { self.a } else { self.b };
        let mut path = Vec::with_capacity(self.length as usize + 1);
        path.push(start);
        SimRankWalker { id: n, path }
    }

    fn location(&self, w: &SimRankWalker) -> VertexId {
        *w.path.last().expect("path starts non-empty")
    }

    fn is_active(&self, w: &SimRankWalker) -> bool {
        (w.path.len() as u32) < self.length + 1
    }

    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        uniform_sample(v, rng)
    }

    fn action(&self, w: &mut SimRankWalker, next: VertexId, _rng: &mut WalkRng) -> bool {
        w.path.push(next);
        true
    }

    fn on_terminate(&self, w: &SimRankWalker) {
        self.paths.lock()[w.id as usize] = Some(w.path.clone());
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<SimRankWalker>() + (self.length as usize + 1) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pairing_and_starts() {
        let app = SimRank::new(1, 2, 3, 11);
        let mut rng = WalkRng::seed_from_u64(0);
        assert_eq!(app.total_walkers(), 6);
        assert_eq!(app.location(&app.generate(0, &mut rng)), 1);
        assert_eq!(app.location(&app.generate(1, &mut rng)), 2);
        assert_eq!(app.location(&app.generate(4, &mut rng)), 1);
    }

    #[test]
    fn meeting_time_is_first_common_position() {
        let app = SimRank::new(0, 1, 1, 3);
        let mut rng = WalkRng::seed_from_u64(0);
        let mut wa = app.generate(0, &mut rng);
        let mut wb = app.generate(1, &mut rng);
        // a: 0 -> 5 -> 7 -> 9 ; b: 1 -> 6 -> 7 -> 9 → meet at step 2.
        for v in [5u32, 7, 9] {
            app.action(&mut wa, v, &mut rng);
        }
        for v in [6u32, 7, 9] {
            app.action(&mut wb, v, &mut rng);
        }
        app.on_terminate(&wa);
        app.on_terminate(&wb);
        assert_eq!(app.meeting_times(), vec![Some(2)]);
        let sim = app.similarity(0.6);
        assert!((sim - 0.36).abs() < 1e-12);
    }

    #[test]
    fn never_meeting_pairs_count_zero() {
        let app = SimRank::new(0, 1, 1, 2);
        let mut rng = WalkRng::seed_from_u64(0);
        let mut wa = app.generate(0, &mut rng);
        let mut wb = app.generate(1, &mut rng);
        for v in [2u32, 3] {
            app.action(&mut wa, v, &mut rng);
        }
        for v in [4u32, 5] {
            app.action(&mut wb, v, &mut rng);
        }
        app.on_terminate(&wa);
        app.on_terminate(&wb);
        assert_eq!(app.meeting_times(), vec![None]);
        assert_eq!(app.similarity(0.6), 0.0);
    }

    #[test]
    fn state_bytes_accounts_path() {
        let app = SimRank::new(0, 1, 1, 11);
        assert!(app.state_bytes() >= 12 * 4);
    }
}
