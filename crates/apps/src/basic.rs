//! Basic random walk: the kernel workload of the paper's §4.3/§4.4
//! experiments (e.g. "1 billion walkers with 10 length").

use noswalker_core::apps_prelude::*;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// How walker start vertices are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartPolicy {
    /// Walker `n` starts at vertex `n mod |V|` (the paper's Algorithm 2
    /// issues one walker per vertex this way).
    RoundRobin,
    /// Uniformly random start vertex.
    Uniform,
}

/// A fixed-length uniform random walk with per-vertex visit counting.
///
/// # Example
///
/// ```
/// use noswalker_apps::BasicRw;
/// use noswalker_core::Walk;
///
/// let app = BasicRw::new(1000, 10, 1 << 16);
/// assert_eq!(app.total_walkers(), 1000);
/// ```
#[derive(Debug)]
pub struct BasicRw {
    walkers: u64,
    length: u32,
    num_vertices: u32,
    start: StartPolicy,
    steps_taken: AtomicU64,
}

/// Walker state for [`BasicRw`].
#[derive(Debug, Clone)]
pub struct BasicWalker {
    /// Current vertex.
    pub at: VertexId,
    /// Steps taken so far.
    pub step: u32,
}

impl BasicRw {
    /// `walkers` uniform walks of `length` steps over `num_vertices`
    /// vertices, round-robin starts.
    pub fn new(walkers: u64, length: u32, num_vertices: usize) -> Self {
        Self::with_start(walkers, length, num_vertices, StartPolicy::RoundRobin)
    }

    /// As [`BasicRw::new`] with an explicit start policy.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` is zero.
    pub fn with_start(walkers: u64, length: u32, num_vertices: usize, start: StartPolicy) -> Self {
        assert!(num_vertices > 0, "graph must have vertices");
        BasicRw {
            walkers,
            length,
            num_vertices: num_vertices as u32,
            start,
            steps_taken: AtomicU64::new(0),
        }
    }

    /// Steps executed so far (across all engines/runs of this instance).
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken.load(Ordering::Relaxed)
    }

    /// Walk length.
    pub fn length(&self) -> u32 {
        self.length
    }
}

impl Walk for BasicRw {
    type Walker = BasicWalker;

    fn total_walkers(&self) -> u64 {
        self.walkers
    }

    fn generate(&self, n: u64, rng: &mut WalkRng) -> BasicWalker {
        let at = match self.start {
            StartPolicy::RoundRobin => (n % self.num_vertices as u64) as VertexId,
            StartPolicy::Uniform => rng.gen_range(0..self.num_vertices),
        };
        BasicWalker { at, step: 0 }
    }

    fn location(&self, w: &BasicWalker) -> VertexId {
        w.at
    }

    fn is_active(&self, w: &BasicWalker) -> bool {
        w.step < self.length
    }

    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        uniform_sample(v, rng)
    }

    fn action(&self, w: &mut BasicWalker, next: VertexId, _rng: &mut WalkRng) -> bool {
        w.at = next;
        w.step += 1;
        self.steps_taken.fetch_add(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn round_robin_starts() {
        let app = BasicRw::new(10, 5, 4);
        let mut rng = WalkRng::seed_from_u64(0);
        for n in 0..10 {
            let w = app.generate(n, &mut rng);
            assert_eq!(w.at, (n % 4) as u32);
            assert!(app.is_active(&w));
        }
    }

    #[test]
    fn uniform_starts_in_range() {
        let app = BasicRw::with_start(100, 5, 7, StartPolicy::Uniform);
        let mut rng = WalkRng::seed_from_u64(1);
        for n in 0..100 {
            assert!(app.generate(n, &mut rng).at < 7);
        }
    }

    #[test]
    fn terminates_after_length_steps() {
        let app = BasicRw::new(1, 3, 4);
        let mut rng = WalkRng::seed_from_u64(2);
        let mut w = app.generate(0, &mut rng);
        for _ in 0..3 {
            assert!(app.is_active(&w));
            app.action(&mut w, 1, &mut rng);
        }
        assert!(!app.is_active(&w));
        assert_eq!(app.steps_taken(), 3);
    }
}
