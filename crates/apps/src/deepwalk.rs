//! DeepWalk-style sequence extraction (Perozzi et al., KDD '14): the
//! upstream task the paper's introduction motivates — extract a corpus of
//! random walk sequences to feed a skip-gram embedding model.

use noswalker_core::apps_prelude::*;
use parking_lot::Mutex;

/// DeepWalk corpus extraction: `walks_per_vertex` walks of `length` steps
/// from every vertex, with the full sequences collected.
#[derive(Debug)]
pub struct DeepWalk {
    num_vertices: u32,
    walks_per_vertex: u32,
    length: u32,
    /// Collected sequences (capped by `max_collected` to bound host
    /// memory; the count of *generated* sequences is always exact).
    corpus: Mutex<Vec<Vec<VertexId>>>,
    max_collected: usize,
}

/// Walker state for [`DeepWalk`]: carries its sequence.
#[derive(Debug, Clone)]
pub struct DeepWalkWalker {
    /// The sequence so far, starting at the source vertex.
    pub path: Vec<VertexId>,
}

impl DeepWalk {
    /// Creates the extraction task; at most `max_collected` sequences are
    /// retained in memory (the rest are generated and dropped, as a
    /// downstream trainer consuming a stream would).
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` is zero.
    pub fn new(
        num_vertices: usize,
        walks_per_vertex: u32,
        length: u32,
        max_collected: usize,
    ) -> Self {
        assert!(num_vertices > 0, "graph must have vertices");
        DeepWalk {
            num_vertices: num_vertices as u32,
            walks_per_vertex,
            length,
            corpus: Mutex::new(Vec::new()),
            max_collected,
        }
    }

    /// Takes the collected sequences out.
    pub fn take_corpus(&self) -> Vec<Vec<VertexId>> {
        std::mem::take(&mut self.corpus.lock())
    }

    /// Number of sequences currently retained.
    pub fn collected(&self) -> usize {
        self.corpus.lock().len()
    }
}

impl Walk for DeepWalk {
    type Walker = DeepWalkWalker;

    fn total_walkers(&self) -> u64 {
        self.num_vertices as u64 * self.walks_per_vertex as u64
    }

    fn generate(&self, n: u64, _rng: &mut WalkRng) -> DeepWalkWalker {
        let start = (n / self.walks_per_vertex as u64) as VertexId;
        let mut path = Vec::with_capacity(self.length as usize + 1);
        path.push(start);
        DeepWalkWalker { path }
    }

    fn location(&self, w: &DeepWalkWalker) -> VertexId {
        *w.path.last().expect("non-empty path")
    }

    fn is_active(&self, w: &DeepWalkWalker) -> bool {
        (w.path.len() as u32) < self.length + 1
    }

    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        uniform_sample(v, rng)
    }

    fn action(&self, w: &mut DeepWalkWalker, next: VertexId, _rng: &mut WalkRng) -> bool {
        w.path.push(next);
        true
    }

    fn on_terminate(&self, w: &DeepWalkWalker) {
        let mut corpus = self.corpus.lock();
        if corpus.len() < self.max_collected {
            corpus.push(w.path.clone());
        }
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<DeepWalkWalker>() + (self.length as usize + 1) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn walks_per_vertex_schedule() {
        let app = DeepWalk::new(4, 3, 5, 100);
        let mut rng = WalkRng::seed_from_u64(0);
        assert_eq!(app.total_walkers(), 12);
        assert_eq!(app.location(&app.generate(0, &mut rng)), 0);
        assert_eq!(app.location(&app.generate(2, &mut rng)), 0);
        assert_eq!(app.location(&app.generate(3, &mut rng)), 1);
        assert_eq!(app.location(&app.generate(11, &mut rng)), 3);
    }

    #[test]
    fn corpus_collection_is_capped() {
        let app = DeepWalk::new(4, 1, 2, 2);
        let mut rng = WalkRng::seed_from_u64(0);
        for n in 0..4 {
            let mut w = app.generate(n, &mut rng);
            app.action(&mut w, 1, &mut rng);
            app.action(&mut w, 2, &mut rng);
            app.on_terminate(&w);
        }
        assert_eq!(app.collected(), 2);
        let corpus = app.take_corpus();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus[0].len(), 3);
        assert_eq!(app.collected(), 0);
    }
}
