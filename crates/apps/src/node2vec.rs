//! Node2Vec second-order random walk (Grover & Leskovec, KDD '16),
//! implemented with the paper's rejection-sampling extension
//! (Appendix A, Algorithm 4).
//!
//! The transition weight for a walker that came from `u`, stands on `v`,
//! and considers neighbor `x` is
//!
//! ```text
//!           ⎧ 1/p   if d(u, x) = 0   (going back)
//!   α(v,x) = ⎨ 1     if d(u, x) = 1   (staying close)
//!           ⎩ 1/q   if d(u, x) = 2   (exploring)
//! ```
//!
//! Rejection sampling decouples *candidate generation* (a uniform edge
//! sample at `v` plus a uniform coordinate `h ∈ [0, max(1/p, 1, 1/q)]`)
//! from the *accept test* (which needs `x`'s own edge list to evaluate
//! `d(u, x)`), so candidates can come from pre-sampled buffers and the
//! test is deferred until `x`'s block is resident.

use noswalker_core::apps_prelude::*;
use parking_lot::Mutex;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// The Node2Vec walk generation task: `walks_per_vertex` walks of `length`
/// steps from every vertex of an **undirected** graph.
#[derive(Debug)]
pub struct Node2Vec {
    num_vertices: u32,
    walks_per_vertex: u32,
    length: u32,
    /// Return parameter `p`.
    p: f32,
    /// In-out parameter `q`.
    q: f32,
    accepts: AtomicU64,
    rejects: AtomicU64,
    corpus: Mutex<Vec<Vec<VertexId>>>,
    max_collected: usize,
}

/// Walker state for [`Node2Vec`] (Algorithm 4).
#[derive(Debug, Clone)]
pub struct Node2VecWalker {
    /// The previous vertex (`None` before the first hop, making it
    /// uniform).
    pub prev: Option<VertexId>,
    /// Current vertex.
    pub at: VertexId,
    /// Pending candidate destination.
    pub candidate: Option<VertexId>,
    /// The vertical rejection coordinate drawn with the candidate.
    pub h: f32,
    /// Steps committed.
    pub step: u32,
    /// The sequence so far (only grown when collection is enabled).
    pub path: Vec<VertexId>,
}

impl Node2Vec {
    /// Creates the task with the paper's §4.5 defaults in mind
    /// (10 walks/vertex, p = 2, q = 0.5, length 10).
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` is zero or `p`/`q` are not positive.
    pub fn new(num_vertices: usize, walks_per_vertex: u32, length: u32, p: f32, q: f32) -> Self {
        assert!(num_vertices > 0, "graph must have vertices");
        assert!(p > 0.0 && q > 0.0, "p and q must be positive");
        Node2Vec {
            num_vertices: num_vertices as u32,
            walks_per_vertex,
            length,
            p,
            q,
            accepts: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
            corpus: Mutex::new(Vec::new()),
            max_collected: 0,
        }
    }

    /// Enables sequence collection (up to `max` sequences).
    pub fn collecting(mut self, max: usize) -> Self {
        self.max_collected = max;
        self
    }

    /// Accepted candidates so far.
    pub fn accepts(&self) -> u64 {
        self.accepts.load(Ordering::Relaxed)
    }

    /// Rejected candidates so far.
    pub fn rejects(&self) -> u64 {
        self.rejects.load(Ordering::Relaxed)
    }

    /// Mean rejection-sampling attempts per committed step (the paper's
    /// `E`, Equation 3 — small even on huge graphs).
    pub fn attempts_per_step(&self) -> f64 {
        let a = self.accepts() as f64;
        if a == 0.0 {
            0.0
        } else {
            (a + self.rejects() as f64) / a
        }
    }

    /// Takes the collected sequences out.
    pub fn take_corpus(&self) -> Vec<Vec<VertexId>> {
        std::mem::take(&mut self.corpus.lock())
    }

    fn h_max(&self) -> f32 {
        (1.0 / self.p).max(1.0).max(1.0 / self.q)
    }
}

impl Walk for Node2Vec {
    type Walker = Node2VecWalker;

    fn total_walkers(&self) -> u64 {
        self.num_vertices as u64 * self.walks_per_vertex as u64
    }

    fn generate(&self, n: u64, _rng: &mut WalkRng) -> Node2VecWalker {
        let start = (n / self.walks_per_vertex as u64) as VertexId;
        let mut path = Vec::new();
        if self.max_collected > 0 {
            path.reserve(self.length as usize + 1);
            path.push(start);
        }
        Node2VecWalker {
            prev: None,
            at: start,
            candidate: None,
            h: 0.0,
            step: 0,
            path,
        }
    }

    fn location(&self, w: &Node2VecWalker) -> VertexId {
        w.at
    }

    fn is_active(&self, w: &Node2VecWalker) -> bool {
        w.step < self.length
    }

    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        // Candidates are uniform: the rejection test shapes the final
        // distribution (Appendix A.2 step 1).
        uniform_sample(v, rng)
    }

    fn action(&self, w: &mut Node2VecWalker, next: VertexId, rng: &mut WalkRng) -> bool {
        if w.candidate.is_some() {
            return false; // already waiting for a rejection test
        }
        w.candidate = Some(next);
        w.h = rng.gen_range(0.0..self.h_max());
        true
    }

    fn on_terminate(&self, w: &Node2VecWalker) {
        if self.max_collected > 0 {
            let mut corpus = self.corpus.lock();
            if corpus.len() < self.max_collected {
                corpus.push(w.path.clone());
            }
        }
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Node2VecWalker>()
            + if self.max_collected > 0 {
                (self.length as usize + 1) * 4
            } else {
                0
            }
    }
}

impl SecondOrderWalk for Node2Vec {
    fn candidate(&self, w: &Node2VecWalker) -> Option<VertexId> {
        w.candidate
    }

    fn rejection(&self, w: &mut Node2VecWalker, cedges: &VertexEdges<'_>, _rng: &mut WalkRng) {
        let c = w.candidate.take().expect("rejection needs a candidate");
        let weight = match w.prev {
            None => 1.0, // first hop: uniform
            Some(u) if u == c => 1.0 / self.p,
            // Undirected graph: d(u, c) = 1 ⟺ u ∈ edges(c).
            Some(u) if cedges.contains_target(u) => 1.0,
            Some(_) => 1.0 / self.q,
        };
        if w.h <= weight {
            self.accepts.fetch_add(1, Ordering::Relaxed);
            w.prev = Some(w.at);
            w.at = c;
            w.step += 1;
            if self.max_collected > 0 {
                w.path.push(c);
            }
        } else {
            self.rejects.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_graph::CsrBuilder;
    use rand::SeedableRng;

    /// Triangle 0-1-2 plus pendant 3 attached to 1, undirected.
    fn square_graph() -> noswalker_graph::Csr {
        CsrBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .edge(1, 3)
            .build()
            .to_undirected()
    }

    #[test]
    fn candidate_then_rejection_commits_moves() {
        let g = square_graph();
        let app = Node2Vec::new(4, 1, 2, 2.0, 0.5);
        let mut rng = WalkRng::seed_from_u64(1);
        let mut w = app.generate(0, &mut rng); // starts at 0
        assert!(app.action(&mut w, 1, &mut rng));
        assert_eq!(app.candidate(&w), Some(1));
        // Second action while a candidate is pending is refused.
        assert!(!app.action(&mut w, 2, &mut rng));
        let cedges = VertexEdges::from_csr(&g, 1);
        app.rejection(&mut w, &cedges, &mut rng);
        // First hop weight is 1.0 and h ∈ [0, 2): may reject; either way the
        // candidate is cleared.
        assert_eq!(app.candidate(&w), None);
        assert_eq!(app.accepts() + app.rejects(), 1);
    }

    #[test]
    fn distances_pick_correct_weights() {
        let g = square_graph();
        let app = Node2Vec::new(4, 1, 10, 2.0, 0.5);
        let mut rng = WalkRng::seed_from_u64(2);
        // Walker came from 0, stands on 1.
        let mut w = app.generate(0, &mut rng);
        w.prev = Some(0);
        w.at = 1;
        // Candidate 0 = going back: weight 1/p = 0.5.
        w.candidate = Some(0);
        w.h = 0.6; // > 0.5 → must reject
        app.rejection(&mut w, &VertexEdges::from_csr(&g, 0), &mut rng);
        assert_eq!(w.at, 1);
        // Candidate 2: 0 ∈ edges(2) → d = 1 → weight 1 → h=0.6 accepts.
        w.candidate = Some(2);
        w.h = 0.6;
        app.rejection(&mut w, &VertexEdges::from_csr(&g, 2), &mut rng);
        assert_eq!(w.at, 2);
        assert_eq!(w.prev, Some(1));
        // Back on 1 via a fresh walker: candidate 3 from (prev=0, at=1):
        // 0 ∉ edges(3) → d = 2 → weight 1/q = 2 → h=1.9 accepts.
        let mut w2 = app.generate(1, &mut rng);
        w2.prev = Some(0);
        w2.at = 1;
        w2.candidate = Some(3);
        w2.h = 1.9;
        app.rejection(&mut w2, &VertexEdges::from_csr(&g, 3), &mut rng);
        assert_eq!(w2.at, 3);
    }

    #[test]
    fn attempts_per_step_counts_rejections() {
        let app = Node2Vec::new(4, 1, 10, 2.0, 0.5);
        app.accepts.store(10, Ordering::Relaxed);
        app.rejects.store(5, Ordering::Relaxed);
        assert!((app.attempts_per_step() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn collection_records_paths() {
        let g = square_graph();
        let app = Node2Vec::new(4, 1, 1, 2.0, 0.5).collecting(10);
        let mut rng = WalkRng::seed_from_u64(3);
        let mut w = app.generate(0, &mut rng);
        w.candidate = Some(1);
        w.h = 0.0;
        app.rejection(&mut w, &VertexEdges::from_csr(&g, 1), &mut rng);
        app.on_terminate(&w);
        let corpus = app.take_corpus();
        assert_eq!(corpus, vec![vec![0, 1]]);
    }
}
