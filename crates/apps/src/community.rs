//! Network Community Profiling (Fortunato & Hric, Physics Reports '16) —
//! one of the random-walk applications the paper's introduction motivates:
//! find a good local community around a seed vertex by sweeping the
//! PPR-ordered vertices for the minimum-conductance prefix.

use noswalker_core::apps_prelude::*;
use noswalker_graph::Csr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Local community profiling: PPR-style walks from a seed, then a
/// conductance sweep over the visit-ranked vertices.
#[derive(Debug)]
pub struct CommunityProfiling {
    seed_vertex: VertexId,
    walks: u64,
    length: u32,
    visits: Vec<AtomicU64>,
}

/// Walker state for [`CommunityProfiling`].
#[derive(Debug, Clone)]
pub struct CommunityWalker {
    /// Current vertex.
    pub at: VertexId,
    /// Steps taken.
    pub step: u32,
}

/// Result of the conductance sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Community {
    /// Vertices of the best prefix, in visit order (seed first).
    pub members: Vec<VertexId>,
    /// Its conductance `cut(S) / min(vol(S), vol(V∖S))`; lower is better.
    pub conductance: f64,
}

impl CommunityProfiling {
    /// `walks` walks of `length` steps from `seed_vertex`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` is zero or the seed is out of range.
    pub fn new(seed_vertex: VertexId, walks: u64, length: u32, num_vertices: usize) -> Self {
        assert!(num_vertices > 0, "graph must have vertices");
        assert!(
            (seed_vertex as usize) < num_vertices,
            "seed vertex out of range"
        );
        CommunityProfiling {
            seed_vertex,
            walks,
            length,
            visits: (0..num_vertices).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Visit count at `v` (the seed itself counts one visit per walk).
    pub fn visits(&self, v: VertexId) -> u64 {
        self.visits[v as usize].load(Ordering::Relaxed)
    }

    /// Sweep: order vertices by visit count (seed forced first), compute
    /// the conductance of every prefix up to `max_size`, return the best.
    ///
    /// Needs the graph to count cut edges; call it after the walk run.
    /// Returns `None` if no vertex was visited.
    pub fn sweep(&self, csr: &Csr, max_size: usize) -> Option<Community> {
        let mut ranked: Vec<(u64, VertexId)> = self
            .visits
            .iter()
            .enumerate()
            .map(|(v, c)| (c.load(Ordering::Relaxed), v as VertexId))
            .filter(|&(c, v)| c > 0 || v == self.seed_vertex)
            .collect();
        if ranked.is_empty() {
            return None;
        }
        // Seed first, then by visits descending (ties by id for
        // determinism).
        ranked.sort_by_key(|&(c, v)| (v != self.seed_vertex, std::cmp::Reverse(c), v));

        let total_vol: u64 = (0..csr.num_vertices()).map(|v| csr.degree(v as u32)).sum();
        let mut in_set = vec![false; csr.num_vertices()];
        let mut vol = 0u64;
        let mut cut = 0i64;
        let mut best: Option<Community> = None;
        let mut members = Vec::new();
        for &(_, v) in ranked.iter().take(max_size.max(1)) {
            // Adding v: every edge v→u (and u→v for in-set u) flips between
            // cut and internal. With CSR we only see out-edges; treat the
            // graph as its symmetrized volume for the sweep (standard NCP
            // practice on directed data).
            for &u in csr.neighbors(v) {
                if u == v {
                    continue;
                }
                if in_set[u as usize] {
                    cut -= 1;
                } else {
                    cut += 1;
                }
            }
            // Edges from existing members into v stop being cut.
            for &m in &members {
                let m: VertexId = m;
                if csr.has_edge(m, v) {
                    cut -= 1;
                }
            }
            in_set[v as usize] = true;
            vol += csr.degree(v);
            members.push(v);
            if vol == 0 || vol >= total_vol {
                continue;
            }
            let denom = vol.min(total_vol - vol) as f64;
            let cond = (cut.max(0) as f64) / denom;
            if best.as_ref().is_none_or(|b| cond < b.conductance) {
                best = Some(Community {
                    members: members.clone(),
                    conductance: cond,
                });
            }
        }
        best
    }
}

impl Walk for CommunityProfiling {
    type Walker = CommunityWalker;

    fn total_walkers(&self) -> u64 {
        self.walks
    }

    fn generate(&self, _n: u64, _rng: &mut WalkRng) -> CommunityWalker {
        self.visits[self.seed_vertex as usize].fetch_add(1, Ordering::Relaxed);
        CommunityWalker {
            at: self.seed_vertex,
            step: 0,
        }
    }

    fn location(&self, w: &CommunityWalker) -> VertexId {
        w.at
    }

    fn is_active(&self, w: &CommunityWalker) -> bool {
        w.step < self.length
    }

    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        uniform_sample(v, rng)
    }

    fn action(&self, w: &mut CommunityWalker, next: VertexId, _rng: &mut WalkRng) -> bool {
        w.at = next;
        w.step += 1;
        self.visits[next as usize].fetch_add(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_graph::CsrBuilder;
    use rand::SeedableRng;

    /// Two dense 4-cliques joined by a single bridge edge.
    fn two_cliques() -> Csr {
        let mut b = CsrBuilder::new(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        b.push_edge(base + i, base + j);
                    }
                }
            }
        }
        b.push_edge(3, 4);
        b.push_edge(4, 3);
        b.build()
    }

    #[test]
    fn sweep_finds_the_seeds_clique() {
        let g = two_cliques();
        let app = CommunityProfiling::new(0, 400, 4, 8);
        // Drive the walks directly (engine-level runs are covered by the
        // cross-engine tests; this validates the sweep logic).
        let mut rng = WalkRng::seed_from_u64(5);
        for n in 0..400 {
            let mut w = app.generate(n, &mut rng);
            while app.is_active(&w) {
                let view = noswalker_graph::layout::VertexEdges::from_csr(&g, w.at);
                if view.is_empty() {
                    break;
                }
                let dst = app.sample(&view, &mut rng);
                app.action(&mut w, dst, &mut rng);
            }
        }
        let community = app.sweep(&g, 8).expect("some community found");
        let mut members = community.members.clone();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2, 3], "should recover the clique");
        // Clique conductance: 1 cut edge (3→4 out) + 1 (4→3 in, counted
        // from the out-edges of 4 which is outside)… with out-edge
        // counting: cut = 1 (3→4). Volume = 4*3 + 1 = 13.
        assert!(community.conductance < 0.2, "{}", community.conductance);
    }

    #[test]
    fn sweep_without_visits_returns_seed_only_or_none() {
        let g = two_cliques();
        let app = CommunityProfiling::new(2, 0, 4, 8);
        // No walks at all: seed has zero recorded visits.
        let c = app.sweep(&g, 8);
        // The seed is force-included; a 1-vertex prefix still has a
        // defined conductance.
        let c = c.expect("seed prefix");
        assert_eq!(c.members, vec![2]);
    }

    #[test]
    #[should_panic(expected = "seed vertex out of range")]
    fn rejects_bad_seed() {
        let _ = CommunityProfiling::new(99, 1, 1, 8);
    }
}
