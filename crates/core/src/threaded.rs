//! A real background block loader thread.
//!
//! The simulation engines model the paper's background I/O thread with the
//! deterministic [`crate::PipelineClock`]; when running against *real*
//! storage (a [`noswalker_storage::FileDevice`]), this module provides the
//! genuine article: a dedicated thread that services block-load requests
//! through a bounded channel, overlapping actual disk reads with walker
//! processing (paper Fig. 6, ①).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use noswalker_core::threaded::BackgroundLoader;
//! use noswalker_core::OnDiskGraph;
//! use noswalker_graph::generators;
//! use noswalker_storage::{MemDevice, MemoryBudget};
//!
//! let csr = generators::uniform_degree(256, 4, 1);
//! let graph = Arc::new(OnDiskGraph::store(&csr, Arc::new(MemDevice::new()), 256)?);
//! let budget = MemoryBudget::new(1 << 20);
//! let loader = BackgroundLoader::spawn(Arc::clone(&graph), budget, 2);
//! loader.request(0)?;
//! let block = loader.recv()?.block;
//! assert_eq!(block.info().id, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::block::LoadedBlock;
use crate::disk_graph::{LoadError, OnDiskGraph};
use crossbeam::channel::{bounded, Receiver, Sender};
use noswalker_graph::partition::BlockId;
use noswalker_storage::MemoryBudget;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A completed background load.
#[derive(Debug)]
pub struct Loaded {
    /// The loaded coarse block.
    pub block: LoadedBlock,
    /// Device service time reported for the read, in nanoseconds.
    pub service_ns: u64,
}

/// Errors from interacting with the loader.
#[derive(Debug)]
pub enum LoaderError {
    /// The loader thread has shut down.
    Disconnected,
    /// The load itself failed.
    Load(LoadError),
}

impl std::fmt::Display for LoaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoaderError::Disconnected => write!(f, "background loader has shut down"),
            LoaderError::Load(e) => write!(f, "background load failed: {e}"),
        }
    }
}

impl std::error::Error for LoaderError {}

/// Handle to a background loader thread.
///
/// Dropping the handle shuts the thread down after in-flight requests
/// drain. Up to `queue_depth` requests may be outstanding; further
/// [`BackgroundLoader::request`] calls block — which is exactly the
/// back-pressure a small block-buffer set implies.
#[derive(Debug)]
pub struct BackgroundLoader {
    requests: Sender<BlockId>,
    results: Receiver<Result<Loaded, LoadError>>,
    handle: Option<JoinHandle<()>>,
}

impl BackgroundLoader {
    /// Spawns the loader thread.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn spawn(graph: Arc<OnDiskGraph>, budget: Arc<MemoryBudget>, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue depth must be positive");
        let (req_tx, req_rx) = bounded::<BlockId>(queue_depth);
        let (res_tx, res_rx) = bounded::<Result<Loaded, LoadError>>(queue_depth);
        let handle = std::thread::Builder::new()
            .name("noswalker-loader".into())
            .spawn(move || {
                while let Ok(b) = req_rx.recv() {
                    let out = graph
                        .load_block(b, &budget)
                        .map(|(block, service_ns)| Loaded { block, service_ns });
                    if res_tx.send(out).is_err() {
                        break; // receiver gone: shut down
                    }
                }
            })
            // LINT-ALLOW(L5): thread spawning fails only on OS resource
            // exhaustion, which has no recovery path here.
            .expect("spawning the loader thread");
        BackgroundLoader {
            requests: req_tx,
            results: res_rx,
            handle: Some(handle),
        }
    }

    /// Enqueues a block load; blocks when the queue is full.
    ///
    /// # Errors
    ///
    /// [`LoaderError::Disconnected`] if the thread has exited.
    pub fn request(&self, b: BlockId) -> Result<(), LoaderError> {
        self.requests.send(b).map_err(|_| LoaderError::Disconnected)
    }

    /// Enqueues a block load only if the queue has space right now.
    ///
    /// Returns `Ok(true)` when the request was enqueued and `Ok(false)`
    /// when the queue is full — the caller should retry later rather than
    /// stall. This is what opportunistic prefetching wants: topping up the
    /// in-flight window must never block the dispatch loop.
    ///
    /// # Errors
    ///
    /// [`LoaderError::Disconnected`] if the thread has exited.
    pub fn try_request(&self, b: BlockId) -> Result<bool, LoaderError> {
        match self.requests.try_send(b) {
            Ok(()) => Ok(true),
            Err(crossbeam::channel::TrySendError::Full(_)) => Ok(false),
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                Err(LoaderError::Disconnected)
            }
        }
    }

    /// Waits for the next completed load.
    ///
    /// # Errors
    ///
    /// [`LoaderError::Load`] if the load failed;
    /// [`LoaderError::Disconnected`] if the thread has exited.
    pub fn recv(&self) -> Result<Loaded, LoaderError> {
        match self.results.recv() {
            Ok(Ok(l)) => Ok(l),
            Ok(Err(e)) => Err(LoaderError::Load(e)),
            Err(_) => Err(LoaderError::Disconnected),
        }
    }

    /// Returns a completed load if one is ready, without blocking.
    ///
    /// # Errors
    ///
    /// As for [`BackgroundLoader::recv`]; `Ok(None)` when nothing is ready.
    pub fn try_recv(&self) -> Result<Option<Loaded>, LoaderError> {
        match self.results.try_recv() {
            Ok(Ok(l)) => Ok(Some(l)),
            Ok(Err(e)) => Err(LoaderError::Load(e)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(LoaderError::Disconnected),
        }
    }
}

impl Drop for BackgroundLoader {
    fn drop(&mut self) {
        // Close the request channel so the thread's recv() loop ends, then
        // drain any in-flight results so its send() cannot block forever.
        let (tx, _) = bounded::<BlockId>(1);
        let _ = std::mem::replace(&mut self.requests, tx);
        while let Ok(Some(_)) = self.try_recv() {}
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_graph::generators;
    use noswalker_storage::{MemDevice, SimSsd, SsdProfile};

    fn setup() -> (Arc<OnDiskGraph>, Arc<MemoryBudget>) {
        let csr = generators::uniform_degree(1024, 8, 3);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        (graph, MemoryBudget::new(1 << 20))
    }

    #[test]
    fn loads_requested_blocks_in_order() {
        let (graph, budget) = setup();
        let loader = BackgroundLoader::spawn(Arc::clone(&graph), budget, 4);
        for b in 0..4u32 {
            loader.request(b).unwrap();
        }
        for b in 0..4u32 {
            let loaded = loader.recv().unwrap();
            assert_eq!(loaded.block.info().id, b);
            assert!(loaded.service_ns > 0);
        }
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (graph, budget) = setup();
        let loader = BackgroundLoader::spawn(graph, budget, 2);
        // Nothing requested yet: either empty or, never, an error.
        assert!(matches!(loader.try_recv(), Ok(None)));
        loader.request(1).unwrap();
        // Eventually the result arrives.
        let mut spins = 0;
        loop {
            match loader.try_recv().unwrap() {
                Some(l) => {
                    assert_eq!(l.block.info().id, 1);
                    break;
                }
                None => {
                    spins += 1;
                    assert!(spins < 1_000_000, "loader never produced the block");
                    std::hint::spin_loop();
                }
            }
        }
    }

    #[test]
    fn try_request_reports_full_without_blocking() {
        let (graph, budget) = setup();
        let loader = BackgroundLoader::spawn(graph, budget, 1);
        // Saturate the depth-1 request queue. The loader thread may have
        // already dequeued the first request, so a second attempt can
        // also succeed — keep pushing until one reports Full.
        let mut accepted = 0;
        loop {
            match loader.try_request(0).unwrap() {
                true => {
                    accepted += 1;
                    assert!(accepted < 1_000, "queue never filled");
                }
                false => break,
            }
        }
        assert!(accepted >= 1);
        // Every accepted request completes.
        for _ in 0..accepted {
            loader.recv().unwrap();
        }
    }

    #[test]
    fn budget_failures_surface_as_errors() {
        let csr = generators::uniform_degree(1024, 8, 3);
        let graph = Arc::new(OnDiskGraph::store(&csr, Arc::new(MemDevice::new()), 2048).unwrap());
        let budget = MemoryBudget::new(16); // cannot hold any block
        let loader = BackgroundLoader::spawn(graph, budget, 1);
        loader.request(0).unwrap();
        assert!(matches!(loader.recv(), Err(LoaderError::Load(_))));
    }

    #[test]
    fn drop_shuts_the_thread_down() {
        let (graph, budget) = setup();
        let loader = BackgroundLoader::spawn(graph, budget, 2);
        loader.request(0).unwrap();
        drop(loader); // must not hang
    }

    #[test]
    fn overlaps_with_foreground_work() {
        let (graph, budget) = setup();
        let loader = BackgroundLoader::spawn(Arc::clone(&graph), budget, 2);
        loader.request(2).unwrap();
        // Foreground "compute" while the loader works.
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        assert!(acc > 0);
        let loaded = loader.recv().unwrap();
        let view = loaded
            .block
            .vertex_edges(&graph, loaded.block.info().vertex_start);
        assert!(view.is_some());
    }
}
