//! The out-of-core graph: CSR index in memory, edge region on a device.
//!
//! All engines (NosWalker and every baseline) address graph data through
//! [`OnDiskGraph`]. Following the paper (§3.3.1), the CSR *index* — the
//! offsets prefix-sum — stays resident in host memory, while the edge
//! records live on the device and are only reachable through explicit
//! block/page loads that charge simulated I/O time.

use crate::block::{FineLoad, LoadedBlock};
use noswalker_graph::layout::{encode_edge_region, EdgeFormat, LayoutError};
use noswalker_graph::partition::{BlockId, Partition, FINE_PAGE_BYTES};
use noswalker_graph::{Csr, VertexId};
use noswalker_storage::{Device, DeviceError, MemoryBudget};
use std::ops::Range;
use std::sync::Arc;

/// A graph whose edge region lives on a [`Device`].
#[derive(Debug)]
pub struct OnDiskGraph {
    device: Arc<dyn Device>,
    offsets: Vec<u64>,
    partition: Partition,
    format: EdgeFormat,
    /// Byte offset of the edge region on the device.
    base: u64,
}

impl OnDiskGraph {
    /// Serializes `csr`'s edge region onto `device` (at offset 0) and
    /// partitions it into coarse blocks of at most `block_bytes`.
    ///
    /// The write is *setup*, not workload: benchmark harnesses snapshot
    /// device stats after construction.
    ///
    /// # Errors
    ///
    /// Propagates device write failures.
    pub fn store(csr: &Csr, device: Arc<dyn Device>, block_bytes: u64) -> Result<Self, StoreError> {
        Self::store_with_format(csr, device, block_bytes, csr.edge_format())
    }

    /// Like [`OnDiskGraph::store`] with an explicit edge record format.
    ///
    /// # Errors
    ///
    /// [`StoreError::Layout`] if the format requires weight/alias data the
    /// CSR lacks; [`StoreError::Device`] on device write failure.
    pub fn store_with_format(
        csr: &Csr,
        device: Arc<dyn Device>,
        block_bytes: u64,
        format: EdgeFormat,
    ) -> Result<Self, StoreError> {
        let bytes = encode_edge_region(csr, format)?;
        device.write(0, &bytes)?;
        let partition = Partition::by_block_bytes(csr, format, block_bytes);
        Ok(OnDiskGraph {
            device,
            offsets: csr.offsets().to_vec(),
            partition,
            format,
            base: 0,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Edge record format on the device.
    pub fn format(&self) -> EdgeFormat {
        self.format
    }

    /// The coarse block partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of coarse blocks.
    pub fn num_blocks(&self) -> usize {
        self.partition.num_blocks()
    }

    /// The block holding vertex `v`'s edges.
    pub fn block_of(&self, v: VertexId) -> BlockId {
        self.partition.block_of_vertex(v)
    }

    /// Total size of the on-device edge region in bytes.
    pub fn edge_region_bytes(&self) -> u64 {
        self.num_edges() * self.format.record_bytes() as u64
    }

    /// The device the edge region lives on.
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.device
    }

    /// Byte range (within the edge region) of `v`'s records.
    pub fn vertex_byte_range(&self, v: VertexId) -> Range<u64> {
        let rec = self.format.record_bytes() as u64;
        (self.offsets[v as usize] * rec)..(self.offsets[v as usize + 1] * rec)
    }

    /// Loads the entire coarse block `b`, charging one sequential read.
    ///
    /// Returns the loaded block and the device service time in nanoseconds.
    /// The block buffer is charged against `budget`.
    ///
    /// # Errors
    ///
    /// Fails if the budget cannot hold the block buffer or the device read
    /// fails.
    pub fn load_block(
        &self,
        b: BlockId,
        budget: &Arc<MemoryBudget>,
    ) -> Result<(LoadedBlock, u64), LoadError> {
        let info = *self.partition.block(b);
        let reservation = budget.try_reserve(info.byte_len())?;
        let mut data = vec![0u8; info.byte_len() as usize];
        let ns = self.device.read(self.base + info.byte_start, &mut data)?;
        Ok((LoadedBlock::new(info, data, reservation), ns))
    }

    /// Loads only the 4 KiB pages of block `b` needed to cover `vertices`
    /// (NosWalker's fine-grained mode, §3.3.1). Adjacent marked pages are
    /// merged into single contiguous reads, each charged separately — the
    /// IOPS side of the device model.
    ///
    /// Returns the sparse load and the *summed* service time.
    ///
    /// # Errors
    ///
    /// Fails if the budget cannot hold the marked pages or a read fails.
    ///
    /// # Panics
    ///
    /// Panics if any vertex is not in block `b`.
    pub fn load_fine(
        &self,
        b: BlockId,
        vertices: &[VertexId],
        budget: &Arc<MemoryBudget>,
    ) -> Result<(FineLoad, u64), LoadError> {
        let info = *self.partition.block(b);
        // Mark pages (the paper's bitmap, Fig. 7).
        let num_pages = info.num_fine_pages() as usize;
        let mut marked = vec![false; num_pages];
        for &v in vertices {
            assert!(info.contains_vertex(v), "vertex {v} not in block {b}");
            let r = self.vertex_byte_range(v);
            if r.is_empty() {
                continue;
            }
            let first = (r.start - info.byte_start) / FINE_PAGE_BYTES;
            let last = (r.end - 1 - info.byte_start) / FINE_PAGE_BYTES;
            for p in first..=last {
                marked[p as usize] = true;
            }
        }
        // Merge adjacent marked pages into runs.
        let mut runs: Vec<Range<u64>> = Vec::new();
        let mut p = 0;
        while p < num_pages {
            if marked[p] {
                let start = p;
                while p < num_pages && marked[p] {
                    p += 1;
                }
                let byte_start = info.byte_start + start as u64 * FINE_PAGE_BYTES;
                let byte_end = (info.byte_start + p as u64 * FINE_PAGE_BYTES).min(info.byte_end);
                runs.push(byte_start..byte_end);
            } else {
                p += 1;
            }
        }
        let total_bytes: u64 = runs.iter().map(|r| r.end - r.start).sum();
        let reservation = budget.try_reserve(total_bytes)?;
        let mut loaded = Vec::with_capacity(runs.len());
        let mut total_ns = 0u64;
        for r in runs {
            let mut buf = vec![0u8; (r.end - r.start) as usize];
            total_ns += self.device.read(self.base + r.start, &mut buf)?;
            loaded.push((r.start, buf));
        }
        Ok((FineLoad::new(info, loaded, reservation), total_ns))
    }
}

/// Errors from serializing a graph onto a device.
#[derive(Debug)]
pub enum StoreError {
    /// The edge format needs data the CSR does not carry.
    Layout(LayoutError),
    /// The device write failed.
    Device(DeviceError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Layout(e) => write!(f, "store failed: {e}"),
            StoreError::Device(e) => write!(f, "store failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<LayoutError> for StoreError {
    fn from(e: LayoutError) -> Self {
        StoreError::Layout(e)
    }
}

impl From<DeviceError> for StoreError {
    fn from(e: DeviceError) -> Self {
        StoreError::Device(e)
    }
}

/// Errors from block/page loading.
#[derive(Debug)]
pub enum LoadError {
    /// The memory budget could not hold the buffer.
    Budget(noswalker_storage::BudgetExceeded),
    /// The device failed.
    Device(DeviceError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Budget(e) => write!(f, "load failed: {e}"),
            LoadError::Device(e) => write!(f, "load failed: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<noswalker_storage::BudgetExceeded> for LoadError {
    fn from(e: noswalker_storage::BudgetExceeded) -> Self {
        LoadError::Budget(e)
    }
}

impl From<DeviceError> for LoadError {
    fn from(e: DeviceError) -> Self {
        LoadError::Device(e)
    }
}

/// Re-exported for engines that need block descriptors.
pub use noswalker_graph::partition::BlockInfo as Block;

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_graph::generators;
    use noswalker_storage::{MemDevice, SimSsd, SsdProfile};

    fn graph_on_ssd(block_bytes: u64) -> (Csr, OnDiskGraph) {
        let csr = generators::uniform_degree(256, 8, 3);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let g = OnDiskGraph::store(&csr, device, block_bytes).unwrap();
        (csr, g)
    }

    #[test]
    fn store_preserves_shape() {
        let (csr, g) = graph_on_ssd(1024);
        assert_eq!(g.num_vertices(), csr.num_vertices());
        assert_eq!(g.num_edges(), csr.num_edges());
        assert_eq!(g.degree(10), csr.degree(10));
        assert!(g.num_blocks() > 1);
    }

    #[test]
    fn coarse_block_roundtrips_edges() {
        let (csr, g) = graph_on_ssd(1024);
        let budget = MemoryBudget::new(1 << 20);
        for b in 0..g.num_blocks() as BlockId {
            let (block, ns) = g.load_block(b, &budget).unwrap();
            assert!(ns > 0);
            let info = *g.partition().block(b);
            for v in info.vertex_start..info.vertex_end {
                let view = block.vertex_edges(&g, v).expect("vertex in block");
                assert_eq!(view.degree() as u64, csr.degree(v));
                for i in 0..view.degree() {
                    assert_eq!(view.target(i), csr.neighbors(v)[i]);
                }
            }
        }
    }

    #[test]
    fn block_load_charges_budget_and_releases() {
        let (_, g) = graph_on_ssd(1024);
        let budget = MemoryBudget::new(4096);
        let before = budget.in_use();
        {
            let (_block, _) = g.load_block(0, &budget).unwrap();
            assert!(budget.in_use() > before);
        }
        assert_eq!(budget.in_use(), before);
    }

    #[test]
    fn block_load_fails_on_tiny_budget() {
        let (_, g) = graph_on_ssd(1024);
        let budget = MemoryBudget::new(16);
        assert!(matches!(
            g.load_block(0, &budget),
            Err(LoadError::Budget(_))
        ));
    }

    #[test]
    fn fine_load_covers_requested_vertices_only() {
        let csr = generators::uniform_degree(8192, 8, 5);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let g = OnDiskGraph::store(&csr, device, 1 << 20).unwrap();
        let budget = MemoryBudget::new(1 << 20);
        let wanted = vec![100u32, 101, 5000];
        let (fine, ns) = g.load_fine(0, &wanted, &budget).unwrap();
        assert!(ns > 0);
        for &v in &wanted {
            let view = fine.vertex_edges(&g, v).expect("requested vertex loaded");
            assert_eq!(view.degree() as u64, csr.degree(v));
            for i in 0..view.degree() {
                assert_eq!(view.target(i), csr.neighbors(v)[i]);
            }
        }
        // A vertex far from any marked page is not available.
        assert!(fine.vertex_edges(&g, 3000).is_none());
        // Fine load must be much smaller than the whole block.
        let info = *g.partition().block(0);
        assert!(fine.loaded_bytes() < info.byte_len() / 4);
    }

    #[test]
    fn fine_load_merges_adjacent_pages() {
        let csr = generators::uniform_degree(8192, 8, 5);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let g = OnDiskGraph::store(&csr, device, 1 << 20).unwrap();
        let budget = MemoryBudget::new(1 << 20);
        // 200 consecutive vertices of degree 8 = 6.4 KB => 2-3 pages, 1 run.
        let wanted: Vec<u32> = (500..700).collect();
        let (fine, _) = g.load_fine(0, &wanted, &budget).unwrap();
        assert_eq!(fine.num_runs(), 1);
    }

    #[test]
    fn works_on_mem_device_with_zero_cost() {
        let csr = generators::uniform_degree(64, 4, 1);
        let device = Arc::new(MemDevice::new());
        let g = OnDiskGraph::store(&csr, device, 256).unwrap();
        let budget = MemoryBudget::unlimited();
        let (_, ns) = g.load_block(0, &budget).unwrap();
        assert_eq!(ns, 0);
    }
}
