//! Run auditing and structured per-run tracing.
//!
//! Two complementary observability tools for every engine in the workspace:
//!
//! * [`TraceSink`] — a cheap event stream. Engines emit [`TraceEvent`]s at
//!   their I/O and scheduling decision points (block loads, pre-sample
//!   refills and evictions, stalls with the block being waited on, swap
//!   traffic, the fine-grained mode switch). The default is no sink at all:
//!   emission goes through [`Trace`], which holds `Option<&mut dyn
//!   TraceSink>` and takes the event as a closure, so a disabled trace
//!   never constructs the event — the cost is one branch per site.
//! * [`RunAudit`] — an invariant checker asserting the engine
//!   *conservation laws* over the final [`RunMetrics`]: every step must be
//!   attributed to exactly one data source, every walker must finish,
//!   pre-sample consumption cannot exceed production, the memory budget
//!   must return to its pre-run floor, and byte counters must be
//!   consistent with the load counters that produced them.
//!
//! The laws are what the paper's evaluation implicitly relies on: a run
//! whose step attribution doesn't sum, or whose budget leaks, produces
//! figures that *look* fine but measure nothing. Test builds run every
//! engine through [`RunAudit::assert_clean`](AuditReport::assert_clean).

use crate::metrics::RunMetrics;
use noswalker_graph::partition::BlockId;
use noswalker_storage::MemoryBudget;

/// A structured event emitted by an engine during a run.
///
/// All timestamps are simulated nanoseconds from the run's
/// [`PipelineClock`](crate::PipelineClock) (baselines without a pipeline
/// clock report their own simulated time base).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A coarse (whole-block) load was issued to the device.
    CoarseLoad {
        /// Block that was loaded.
        block: BlockId,
        /// Bytes read from the device (0 on a cache hit).
        bytes: u64,
        /// True when the block was already resident and no I/O happened.
        cache_hit: bool,
        /// Simulated time the load was issued.
        at_ns: u64,
    },
    /// A fine-grained (4 KiB-page) load batch was issued (§3.3.1).
    FineLoad {
        /// Block the target vertices live in.
        block: BlockId,
        /// Stalled vertices served by this batch.
        vertices: u64,
        /// Contiguous device runs (individual read ops) issued.
        runs: u64,
        /// Bytes read from the device.
        bytes: u64,
        /// Simulated time the load was issued.
        at_ns: u64,
    },
    /// Pre-sample buffers were (re)filled from a resident block (§2.4.1).
    PresampleRefill {
        /// Block whose vertices were pre-sampled.
        block: BlockId,
        /// Vertices that received reserved samples.
        slots: u64,
        /// Total samples drawn.
        draws: u64,
        /// Simulated time of the refill.
        at_ns: u64,
    },
    /// A pre-sample buffer was evicted to free budget.
    PresampleEvict {
        /// Block whose buffer was dropped.
        block: BlockId,
        /// Budget bytes reclaimed.
        bytes: u64,
        /// Simulated time of the eviction.
        at_ns: u64,
    },
    /// A cached block buffer was evicted to free budget.
    CacheEvict {
        /// Simulated time of the eviction.
        at_ns: u64,
    },
    /// The engine stalled waiting for I/O.
    Stall {
        /// Block the engine was waiting on (`None` when the stall is not
        /// attributable to a single block, e.g. a swap drain).
        waiting_for: Option<BlockId>,
        /// Simulated time the stall began.
        from_ns: u64,
        /// Simulated time the stall ended.
        until_ns: u64,
    },
    /// Walker-state swap traffic (engines without walker management).
    Swap {
        /// Bytes moved (write + read-back).
        bytes: u64,
        /// Simulated time of the swap.
        at_ns: u64,
    },
    /// A new pre-sample buffer generation was atomically published to the
    /// parallel runner's lock-free shared pool (background refill ④).
    PoolPublish {
        /// Block whose generation was replaced.
        block: BlockId,
        /// Vertices that received slots in the new generation.
        slots: u64,
        /// Samples drawn while building it.
        draws: u64,
        /// Simulated time the publish was observed.
        at_ns: u64,
    },
    /// A prefetched coarse block arrived: consumed by a waiting walker
    /// bucket (`hit`) or discarded unneeded (`!hit`).
    Prefetch {
        /// The prefetched block.
        block: BlockId,
        /// Whether walkers were still waiting for it.
        hit: bool,
        /// Simulated time the block arrived.
        at_ns: u64,
    },
    /// The engine switched to fine-grained I/O mode (§3.3.1).
    FineModeSwitch {
        /// Global step count at the switch.
        at_step: u64,
        /// Simulated time of the switch.
        at_ns: u64,
    },
    /// The run finished.
    RunEnd {
        /// Total steps moved.
        steps: u64,
        /// Walkers that finished.
        walkers_finished: u64,
        /// Simulated end time.
        at_ns: u64,
    },
    /// The serving layer admitted a query into the active set.
    QueryAdmitted {
        /// Query id.
        query: u64,
        /// Walker budget the query carries.
        walkers: u64,
        /// Absolute deadline in simulated time (`None` = best effort).
        deadline_ns: Option<u64>,
        /// Simulated admission time.
        at_ns: u64,
    },
    /// A query finished serving: every issued walker was retired.
    QueryCompleted {
        /// Query id.
        query: u64,
        /// Walkers actually issued into the engine.
        issued: u64,
        /// Walkers that completed their walk.
        completed: u64,
        /// Walkers cancelled by the query's timeout.
        cancelled: u64,
        /// True when the result is partial (walkers were cancelled or
        /// never issued, or the deadline passed).
        degraded: bool,
        /// Simulated completion time.
        at_ns: u64,
    },
    /// Admission control rejected a query (backpressure or stall-rate
    /// shedding) instead of queueing it unboundedly.
    QueryShed {
        /// Query id.
        query: u64,
        /// Suggested simulated-time delay before retrying.
        retry_after_ns: u64,
        /// Simulated shed time.
        at_ns: u64,
    },
    /// A caller cancelled a query mid-flight (realtime ingress `Cancel`
    /// command). The query still reaches `ServeReport::outcomes` — as a
    /// degraded partial when it was already active, or with zero issued
    /// walkers when it was still queued — so the per-query conservation
    /// law stays exact.
    QueryCancelled {
        /// Query id.
        query: u64,
        /// Simulated (or wall, in realtime mode) time of the cancel.
        at_ns: u64,
    },
    /// A query's deadline passed before its walkers finished.
    QueryDeadlineMiss {
        /// Query id.
        query: u64,
        /// The deadline that was missed.
        deadline_ns: u64,
        /// Simulated time the miss was observed.
        at_ns: u64,
    },
    /// A batch of walkers crossed a shard partition boundary and was
    /// drained into the destination shard's handoff queue (sharded
    /// serving). The handoff-conservation law balances these against
    /// re-admissions: `walkers_emigrated == walkers_immigrated +
    /// in_flight`, with `in_flight` drained to zero by run end.
    ShardHandoff {
        /// Shard the walkers emigrated from.
        from_shard: u32,
        /// Shard the walkers will be re-admitted on next round.
        to_shard: u32,
        /// Walkers in the batch.
        walkers: u64,
        /// Simulated time the batch was drained.
        at_ns: u64,
    },
}

impl TraceEvent {
    /// Stable lowercase name of the event kind (JSON/TSV `event` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::CoarseLoad { .. } => "coarse_load",
            TraceEvent::FineLoad { .. } => "fine_load",
            TraceEvent::PresampleRefill { .. } => "presample_refill",
            TraceEvent::PresampleEvict { .. } => "presample_evict",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::Stall { .. } => "stall",
            TraceEvent::Swap { .. } => "swap",
            TraceEvent::PoolPublish { .. } => "pool_publish",
            TraceEvent::Prefetch { .. } => "prefetch",
            TraceEvent::FineModeSwitch { .. } => "fine_mode_switch",
            TraceEvent::RunEnd { .. } => "run_end",
            TraceEvent::QueryAdmitted { .. } => "query_admitted",
            TraceEvent::QueryCompleted { .. } => "query_completed",
            TraceEvent::QueryShed { .. } => "query_shed",
            TraceEvent::QueryCancelled { .. } => "query_cancelled",
            TraceEvent::QueryDeadlineMiss { .. } => "query_deadline_miss",
            TraceEvent::ShardHandoff { .. } => "shard_handoff",
        }
    }

    /// The event's payload as `(key, JSON-ready value)` pairs. Values are
    /// already valid JSON scalars (numbers, `true`/`false`, `null`), so
    /// both exporters share this without an escaping pass.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        fn opt(v: Option<BlockId>) -> String {
            v.map_or_else(|| "null".to_string(), |b| b.to_string())
        }
        match self {
            TraceEvent::CoarseLoad {
                block,
                bytes,
                cache_hit,
                at_ns,
            } => vec![
                ("block", block.to_string()),
                ("bytes", bytes.to_string()),
                ("cache_hit", cache_hit.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::FineLoad {
                block,
                vertices,
                runs,
                bytes,
                at_ns,
            } => vec![
                ("block", block.to_string()),
                ("vertices", vertices.to_string()),
                ("runs", runs.to_string()),
                ("bytes", bytes.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::PresampleRefill {
                block,
                slots,
                draws,
                at_ns,
            } => vec![
                ("block", block.to_string()),
                ("slots", slots.to_string()),
                ("draws", draws.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::PresampleEvict {
                block,
                bytes,
                at_ns,
            } => vec![
                ("block", block.to_string()),
                ("bytes", bytes.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::CacheEvict { at_ns } => vec![("at_ns", at_ns.to_string())],
            TraceEvent::Stall {
                waiting_for,
                from_ns,
                until_ns,
            } => vec![
                ("waiting_for", opt(*waiting_for)),
                ("from_ns", from_ns.to_string()),
                ("until_ns", until_ns.to_string()),
            ],
            TraceEvent::Swap { bytes, at_ns } => {
                vec![("bytes", bytes.to_string()), ("at_ns", at_ns.to_string())]
            }
            TraceEvent::PoolPublish {
                block,
                slots,
                draws,
                at_ns,
            } => vec![
                ("block", block.to_string()),
                ("slots", slots.to_string()),
                ("draws", draws.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::Prefetch { block, hit, at_ns } => vec![
                ("block", block.to_string()),
                ("hit", hit.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::FineModeSwitch { at_step, at_ns } => vec![
                ("at_step", at_step.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::RunEnd {
                steps,
                walkers_finished,
                at_ns,
            } => vec![
                ("steps", steps.to_string()),
                ("walkers_finished", walkers_finished.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::QueryAdmitted {
                query,
                walkers,
                deadline_ns,
                at_ns,
            } => vec![
                ("query", query.to_string()),
                ("walkers", walkers.to_string()),
                (
                    "deadline_ns",
                    deadline_ns.map_or_else(|| "null".to_string(), |d| d.to_string()),
                ),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::QueryCompleted {
                query,
                issued,
                completed,
                cancelled,
                degraded,
                at_ns,
            } => vec![
                ("query", query.to_string()),
                ("issued", issued.to_string()),
                ("completed", completed.to_string()),
                ("cancelled", cancelled.to_string()),
                ("degraded", degraded.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::QueryShed {
                query,
                retry_after_ns,
                at_ns,
            } => vec![
                ("query", query.to_string()),
                ("retry_after_ns", retry_after_ns.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::QueryCancelled { query, at_ns } => {
                vec![("query", query.to_string()), ("at_ns", at_ns.to_string())]
            }
            TraceEvent::QueryDeadlineMiss {
                query,
                deadline_ns,
                at_ns,
            } => vec![
                ("query", query.to_string()),
                ("deadline_ns", deadline_ns.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
            TraceEvent::ShardHandoff {
                from_shard,
                to_shard,
                walkers,
                at_ns,
            } => vec![
                ("from_shard", from_shard.to_string()),
                ("to_shard", to_shard.to_string()),
                ("walkers", walkers.to_string()),
                ("at_ns", at_ns.to_string()),
            ],
        }
    }
}

/// A consumer of [`TraceEvent`]s.
///
/// Sinks are driven from the engine's coordinating thread only; worker
/// threads in [`ParallelRunner`](crate::parallel::ParallelRunner) do not
/// emit (the sink is `&mut`, not shared).
pub trait TraceSink {
    /// Records one event. Called in run order.
    fn record(&mut self, ev: &TraceEvent);
}

/// A sink that discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &TraceEvent) {}
}

/// A sink that buffers events in memory and exports them as JSON or TSV.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// The recorded events, in run order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for MemorySink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the events as a JSON array of objects, one per event, each
    /// with an `"event"` kind plus the event's fields.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str("  {\"event\":\"");
            out.push_str(ev.kind());
            out.push('"');
            for (k, v) in ev.fields() {
                out.push_str(",\"");
                out.push_str(k);
                out.push_str("\":");
                out.push_str(&v);
            }
            out.push('}');
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }

    /// Renders the events as TSV: `kind<TAB>key=value<TAB>...`, one event
    /// per line — greppable and `cut`-able without a JSON parser.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(ev.kind());
            for (k, v) in ev.fields() {
                out.push('\t');
                out.push_str(k);
                out.push('=');
                out.push_str(&v);
            }
            out.push('\n');
        }
        out
    }

    /// Total stalled nanoseconds across all [`TraceEvent::Stall`] events.
    pub fn total_stall_ns(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Stall {
                    from_ns, until_ns, ..
                } => Some(until_ns.saturating_sub(*from_ns)),
                _ => None,
            })
            .sum()
    }

    /// Stall time attributed per block, worst offender first. `None` keys
    /// collect stalls not attributable to a single block.
    pub fn stall_by_block(&self) -> Vec<(Option<BlockId>, u64)> {
        let mut agg: Vec<(Option<BlockId>, u64)> = Vec::new();
        for ev in &self.events {
            if let TraceEvent::Stall {
                waiting_for,
                from_ns,
                until_ns,
            } = ev
            {
                let ns = until_ns.saturating_sub(*from_ns);
                match agg.iter_mut().find(|(k, _)| k == waiting_for) {
                    Some((_, total)) => *total += ns,
                    None => agg.push((*waiting_for, ns)),
                }
            }
        }
        agg.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        agg
    }
}

/// A handle engines thread through their run loops: either disabled (the
/// default — one branch per site, the event is never constructed) or
/// pointing at a caller-owned [`TraceSink`].
pub struct Trace<'a> {
    sink: Option<&'a mut dyn TraceSink>,
}

impl std::fmt::Debug for Trace<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl Default for Trace<'_> {
    fn default() -> Self {
        Trace::off()
    }
}

impl<'a> Trace<'a> {
    /// A disabled trace: `emit` is a single `None` check.
    pub fn off() -> Self {
        Trace { sink: None }
    }

    /// A trace recording into `sink`.
    pub fn on(sink: &'a mut dyn TraceSink) -> Self {
        Trace { sink: Some(sink) }
    }

    /// Wraps an optional sink (the shape engine entry points take).
    pub fn from_option(sink: Option<&'a mut dyn TraceSink>) -> Self {
        Trace { sink }
    }

    /// Whether events will be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event built by `f` — only calling `f` when a sink is
    /// attached, so disabled tracing never pays for event construction.
    #[inline]
    pub fn emit(&mut self, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            let ev = f();
            sink.record(&ev);
        }
    }
}

/// One violated conservation law.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable short name of the law (e.g. `step-attribution`).
    pub law: &'static str,
    /// Human-readable account of the mismatch, with both sides' values.
    pub detail: String,
}

/// The outcome of a [`RunAudit`] check.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Every violated law, in check order. Empty means the run conserved.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// True when no law was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with every violation listed unless the report is clean.
    /// Intended for test builds and debug assertions.
    pub fn assert_clean(&self) {
        if !self.is_clean() {
            let mut msg = String::from("run audit failed:\n");
            for v in &self.violations {
                msg.push_str("  [");
                msg.push_str(v.law);
                msg.push_str("] ");
                msg.push_str(&v.detail);
                msg.push('\n');
            }
            // LINT-ALLOW(L5): panicking is this method's documented purpose
            // — it is the assertion form of the audit report.
            panic!("{msg}");
        }
    }
}

/// Checks the engine conservation laws over a finished run.
///
/// Construct it *before* the run with [`RunAudit::begin`] (capturing the
/// memory budget's pre-run floor), then call [`RunAudit::verify`] on the
/// returned metrics:
///
/// ```
/// # use noswalker_core::audit::RunAudit;
/// # use noswalker_core::RunMetrics;
/// # use noswalker_storage::MemoryBudget;
/// let budget = MemoryBudget::new(1 << 20);
/// let audit = RunAudit::begin(10, &budget);
/// let mut m = RunMetrics::default();
/// m.steps = 50;
/// m.steps_on_block = 50;
/// m.walkers_finished = 10;
/// audit.verify(&m, &budget).assert_clean();
/// ```
#[derive(Debug, Clone)]
pub struct RunAudit {
    total_walkers: u64,
    budget_floor: u64,
}

impl RunAudit {
    /// Starts an audit: `total_walkers` is the number the app will
    /// generate; the budget's current `in_use` becomes the floor the run
    /// must return to.
    pub fn begin(total_walkers: u64, budget: &MemoryBudget) -> Self {
        RunAudit {
            total_walkers,
            budget_floor: budget.in_use(),
        }
    }

    /// Starts an audit with an explicit budget floor (for callers without
    /// a budget handle, or replaying recorded runs).
    pub fn with_floor(total_walkers: u64, budget_floor: u64) -> Self {
        RunAudit {
            total_walkers,
            budget_floor,
        }
    }

    /// Checks the metrics-only laws plus the budget-floor law.
    pub fn verify(&self, m: &RunMetrics, budget: &MemoryBudget) -> AuditReport {
        let mut report = self.verify_metrics(m);
        let in_use = budget.in_use();
        if in_use != self.budget_floor {
            report.violations.push(Violation {
                law: "budget-floor",
                detail: format!(
                    "budget in_use {} != pre-run floor {} (reservation leak)",
                    in_use, self.budget_floor
                ),
            });
        }
        report
    }

    /// Checks every law derivable from the metrics alone:
    ///
    /// 1. **step-attribution** — `steps == steps_on_block +
    ///    steps_on_presample + steps_on_raw`: every step came from exactly
    ///    one data source.
    /// 2. **walker-completion** — `walkers_finished + walkers_cancelled ==
    ///    total_walkers`: every walker either completed its walk or was
    ///    explicitly cancelled; no path may silently drop one.
    /// 3. **presample-balance** — `presamples_consumed + claims_burned <=
    ///    presamples_filled`: consumption (served or burned) cannot outrun
    ///    production.
    /// 4. **load-byte-consistency** — bytes were loaded iff loads (and
    ///    I/O ops) were issued, in both directions.
    /// 5. **clock-sanity** — `stall_ns <= sim_ns`.
    /// 6. **edge-accounting** — `edges_loaded <= edge_bytes_loaded`: an
    ///    edge costs at least one byte, so the logical count can never
    ///    exceed the byte count.
    /// 7. **swap-attribution** — swap traffic (`swap_bytes`) implies the
    ///    run had walkers to swap.
    /// 8. **second-order-balance** — `accepts <= steps_on_block` (every
    ///    accepted candidate is recorded as a resident-block step), and
    ///    any rejection-sampling activity implies edge data was loaded.
    /// 9. **prefetch-accounting** — `prefetch_hits <= coarse_loads`, and
    ///    any prefetch outcome (hit or wasted) implies at least one
    ///    coarse load (the first load is always a demand load).
    /// 10. **pool-accounting** — a published pre-sample buffer
    ///     (`pool_publishes`) is built from loaded block data, so it
    ///     implies a coarse load.
    /// 11. **stall-accounting** — a stalled or deferred walker survives
    ///     and eventually steps (or is cancelled), so stalls or
    ///     deferrals (`pool_deferrals` — visits that found no published
    ///     generation at all) with zero steps and zero cancellations
    ///     mean a walker was lost mid-wait.
    /// 12. **budget-peak** — a recorded `peak_memory` can never be below
    ///     the budget's pre-run floor (the peak is a running maximum over
    ///     a quantity that starts at the floor).
    /// 13. **claim-conservation** — every slot claimed from the shared
    ///     pool (plus every stalled visit) must end up consumed by a
    ///     step, burned as a batch leftover, or recorded as a stall:
    ///     `pool_attempts <= presamples_consumed + claims_burned +
    ///     pool_stalls`. A claimed slot cannot leak. (One-directional
    ///     because merged sequential runs consume pre-samples without
    ///     pool attempts.)
    /// 14. **handoff-conservation** — cross-shard walker handoff cannot
    ///     invent walkers: `walkers_immigrated <= walkers_emigrated`
    ///     (re-admission never outruns emigration; the difference is the
    ///     in-flight queue depth, which [`audit_handoffs`] checks exactly
    ///     round by round), and every emigrated walker was retired on its
    ///     source shard via the cancellation path, so
    ///     `walkers_emigrated <= walkers_cancelled`.
    pub fn verify_metrics(&self, m: &RunMetrics) -> AuditReport {
        let mut violations = Vec::new();
        let mut fail = |law: &'static str, detail: String| {
            violations.push(Violation { law, detail });
        };

        let attributed = m.steps_on_block + m.steps_on_presample + m.steps_on_raw;
        if m.steps != attributed {
            fail(
                "step-attribution",
                format!(
                    "steps {} != on_block {} + on_presample {} + on_raw {} (= {})",
                    m.steps, m.steps_on_block, m.steps_on_presample, m.steps_on_raw, attributed
                ),
            );
        }
        if m.walkers_finished + m.walkers_cancelled != self.total_walkers {
            fail(
                "walker-completion",
                format!(
                    "walkers_finished {} + walkers_cancelled {} != total_walkers {}",
                    m.walkers_finished, m.walkers_cancelled, self.total_walkers
                ),
            );
        }
        if m.presamples_consumed + m.claims_burned > m.presamples_filled {
            fail(
                "presample-balance",
                format!(
                    "presamples_consumed {} + claims_burned {} > presamples_filled {}",
                    m.presamples_consumed, m.claims_burned, m.presamples_filled
                ),
            );
        }
        if m.pool_attempts > m.presamples_consumed + m.claims_burned + m.pool_stalls {
            fail(
                "claim-conservation",
                format!(
                    "pool_attempts {} > presamples_consumed {} + claims_burned {} + \
                     pool_stalls {} — a claimed slot leaked without being consumed, \
                     burned, or stalled",
                    m.pool_attempts, m.presamples_consumed, m.claims_burned, m.pool_stalls
                ),
            );
        }
        let loads = m.coarse_loads + m.fine_loads;
        if m.edge_bytes_loaded > 0 && (loads == 0 || m.io_ops == 0) {
            fail(
                "load-byte-consistency",
                format!(
                    "edge_bytes_loaded {} with coarse_loads {} + fine_loads {} and io_ops {}",
                    m.edge_bytes_loaded, m.coarse_loads, m.fine_loads, m.io_ops
                ),
            );
        }
        if loads > 0 && m.edge_bytes_loaded == 0 {
            fail(
                "load-byte-consistency",
                format!(
                    "{} loads issued ({} coarse, {} fine) but edge_bytes_loaded == 0",
                    loads, m.coarse_loads, m.fine_loads
                ),
            );
        }
        if m.stall_ns > m.sim_ns {
            fail(
                "clock-sanity",
                format!("stall_ns {} > sim_ns {}", m.stall_ns, m.sim_ns),
            );
        }
        if m.edges_loaded > m.edge_bytes_loaded {
            fail(
                "edge-accounting",
                format!(
                    "edges_loaded {} > edge_bytes_loaded {} (an edge costs at least one byte)",
                    m.edges_loaded, m.edge_bytes_loaded
                ),
            );
        }
        if m.swap_bytes > 0 && self.total_walkers == 0 {
            fail(
                "swap-attribution",
                format!(
                    "swap_bytes {} moved but the run had no walkers to swap",
                    m.swap_bytes
                ),
            );
        }
        if m.accepts > m.steps_on_block {
            fail(
                "second-order-balance",
                format!(
                    "accepts {} > steps_on_block {} (every accepted candidate is a \
                     resident-block step)",
                    m.accepts, m.steps_on_block
                ),
            );
        }
        if m.accepts + m.rejects > 0 && loads == 0 {
            fail(
                "second-order-balance",
                format!(
                    "rejection sampling ran ({} accepts, {} rejects) with no loads — \
                     candidate edges must come from loaded data",
                    m.accepts, m.rejects
                ),
            );
        }
        if m.prefetch_hits > m.coarse_loads {
            fail(
                "prefetch-accounting",
                format!(
                    "prefetch_hits {} > coarse_loads {} (every hit is a coarse load \
                     served early)",
                    m.prefetch_hits, m.coarse_loads
                ),
            );
        }
        if m.prefetch_hits + m.prefetch_wasted > 0 && m.coarse_loads == 0 {
            fail(
                "prefetch-accounting",
                format!(
                    "prefetch outcomes recorded ({} hits, {} wasted) with no coarse \
                     loads — the first load is always a demand load",
                    m.prefetch_hits, m.prefetch_wasted
                ),
            );
        }
        if m.pool_publishes > 0 && m.coarse_loads == 0 {
            fail(
                "pool-accounting",
                format!(
                    "pool_publishes {} with no coarse loads — published buffers are \
                     built from loaded block data",
                    m.pool_publishes
                ),
            );
        }
        if m.presample_stalls + m.pool_stalls + m.pool_deferrals > 0
            && m.steps == 0
            && m.walkers_cancelled == 0
        {
            fail(
                "stall-accounting",
                format!(
                    "stalls recorded ({} presample, {} pool, {} deferred) but the run \
                     took no steps and cancelled no walkers — a waiting walker was lost",
                    m.presample_stalls, m.pool_stalls, m.pool_deferrals
                ),
            );
        }
        if m.walkers_immigrated > m.walkers_emigrated {
            fail(
                "handoff-conservation",
                format!(
                    "walkers_immigrated {} > walkers_emigrated {} — a shard re-admitted \
                     a walker that never crossed a boundary",
                    m.walkers_immigrated, m.walkers_emigrated
                ),
            );
        }
        if m.walkers_emigrated > m.walkers_cancelled {
            fail(
                "handoff-conservation",
                format!(
                    "walkers_emigrated {} > walkers_cancelled {} — every emigrated walker \
                     is retired on its source shard via the cancellation path",
                    m.walkers_emigrated, m.walkers_cancelled
                ),
            );
        }
        if m.peak_memory != 0 && m.peak_memory < self.budget_floor {
            fail(
                "budget-peak",
                format!(
                    "peak_memory {} below the pre-run budget floor {} (the peak is a \
                     running maximum starting at the floor)",
                    m.peak_memory, self.budget_floor
                ),
            );
        }

        AuditReport { violations }
    }
}

/// Checks the exact cross-shard handoff conservation law at a point in
/// time: `walkers_emigrated == walkers_immigrated + in_flight`, where
/// `in_flight` is the summed depth of every handoff queue. The sharded
/// serve plane runs this in debug builds after every round (queues may
/// hold walkers mid-run) and again at run end with `in_flight == 0` —
/// a walker drained into a queue must be re-admitted exactly once.
pub fn audit_handoffs(emigrated: u64, immigrated: u64, in_flight: u64) -> AuditReport {
    let mut violations = Vec::new();
    if emigrated != immigrated + in_flight {
        violations.push(Violation {
            law: "handoff-conservation",
            detail: format!(
                "walkers_emigrated {emigrated} != walkers_immigrated {immigrated} + \
                 in_flight {in_flight} — a handed-off walker was lost or duplicated",
            ),
        });
    }
    AuditReport { violations }
}

/// Checks the per-query conservation law over a finished serving run:
/// for every query id, **query-conservation** — walkers issued ==
/// walkers completed + walkers cancelled (a cancelled walker must be
/// counted, never dropped), and a query may not issue more walkers than
/// its admitted budget.
///
/// The serving layer runs this in debug builds at every query
/// completion, mirroring how the engines run
/// [`RunAudit::verify`] on every run.
pub fn audit_queries(stats: &[crate::query::QueryStats]) -> AuditReport {
    let mut violations = Vec::new();
    for s in stats {
        if s.issued != s.completed + s.cancelled {
            violations.push(Violation {
                law: "query-conservation",
                detail: format!(
                    "query {}: issued {} != completed {} + cancelled {}",
                    s.id, s.issued, s.completed, s.cancelled
                ),
            });
        }
        if s.issued > s.budget {
            violations.push(Violation {
                law: "query-conservation",
                detail: format!(
                    "query {}: issued {} exceeds admitted walker budget {}",
                    s.id, s.issued, s.budget
                ),
            });
        }
    }
    AuditReport { violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conserving_metrics() -> RunMetrics {
        RunMetrics {
            sim_ns: 1_000,
            stall_ns: 200,
            steps: 100,
            steps_on_block: 60,
            steps_on_presample: 30,
            steps_on_raw: 10,
            walkers_finished: 10,
            presamples_filled: 50,
            presamples_consumed: 30,
            pool_stalls: 5,
            pool_attempts: 20,
            claims_burned: 2,
            edge_bytes_loaded: 4096,
            coarse_loads: 2,
            io_ops: 2,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn clean_run_passes_every_law() {
        let audit = RunAudit::with_floor(10, 0);
        let report = audit.verify_metrics(&conserving_metrics());
        assert!(report.is_clean(), "{:?}", report.violations);
        report.assert_clean();
    }

    #[test]
    fn each_law_trips_independently() {
        let audit = RunAudit::with_floor(10, 0);

        let mut m = conserving_metrics();
        m.steps_on_raw = 0;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "step-attribution"
        );

        let mut m = conserving_metrics();
        m.walkers_finished = 9;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "walker-completion"
        );

        let mut m = conserving_metrics();
        m.presamples_consumed = m.presamples_filled + 1;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "presample-balance"
        );

        // Burned claims weigh into the balance too: burning more than the
        // fill covers is a violation even with modest consumption.
        let mut m = conserving_metrics();
        m.claims_burned = m.presamples_filled - m.presamples_consumed + 1;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "presample-balance"
        );

        let mut m = conserving_metrics();
        m.pool_attempts = m.presamples_consumed + m.claims_burned + m.pool_stalls + 1;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "claim-conservation"
        );

        let mut m = conserving_metrics();
        m.coarse_loads = 0;
        m.io_ops = 0;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "load-byte-consistency"
        );

        let mut m = conserving_metrics();
        m.edge_bytes_loaded = 0;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "load-byte-consistency"
        );

        let mut m = conserving_metrics();
        m.stall_ns = m.sim_ns + 1;
        assert_eq!(audit.verify_metrics(&m).violations[0].law, "clock-sanity");

        let mut m = conserving_metrics();
        m.edges_loaded = m.edge_bytes_loaded + 1;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "edge-accounting"
        );

        let no_walkers = RunAudit::with_floor(0, 0);
        let m = RunMetrics {
            swap_bytes: 128,
            ..RunMetrics::default()
        };
        assert_eq!(
            no_walkers.verify_metrics(&m).violations[0].law,
            "swap-attribution"
        );

        let mut m = conserving_metrics();
        m.accepts = m.steps_on_block + 1;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "second-order-balance"
        );

        let mut m = conserving_metrics();
        m.rejects = 3;
        m.coarse_loads = 0;
        m.fine_loads = 0;
        m.edge_bytes_loaded = 0;
        m.io_ops = 0;
        let laws: Vec<_> = audit
            .verify_metrics(&m)
            .violations
            .iter()
            .map(|v| v.law)
            .collect();
        assert!(laws.contains(&"second-order-balance"), "{laws:?}");

        let mut m = conserving_metrics();
        m.prefetch_hits = m.coarse_loads + 1;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "prefetch-accounting"
        );

        let mut m = conserving_metrics();
        m.coarse_loads = 0;
        m.fine_loads = 1; // keep load-byte-consistency satisfied
        m.prefetch_wasted = 2;
        let laws: Vec<_> = audit
            .verify_metrics(&m)
            .violations
            .iter()
            .map(|v| v.law)
            .collect();
        assert!(laws.contains(&"prefetch-accounting"), "{laws:?}");

        let mut m = conserving_metrics();
        m.coarse_loads = 0;
        m.fine_loads = 1;
        m.pool_publishes = 1;
        let laws: Vec<_> = audit
            .verify_metrics(&m)
            .violations
            .iter()
            .map(|v| v.law)
            .collect();
        assert!(laws.contains(&"pool-accounting"), "{laws:?}");

        let m = RunMetrics {
            pool_stalls: 1,
            ..RunMetrics::default()
        };
        let lost = RunAudit::with_floor(0, 0);
        assert_eq!(
            lost.verify_metrics(&m).violations[0].law,
            "stall-accounting"
        );

        let floored = RunAudit::with_floor(10, 4096);
        let mut m = conserving_metrics();
        m.peak_memory = 4095;
        assert_eq!(floored.verify_metrics(&m).violations[0].law, "budget-peak");
        m.peak_memory = 4096;
        floored.verify_metrics(&m).assert_clean();
        m.peak_memory = 0; // runs that never record a peak stay exempt
        floored.verify_metrics(&m).assert_clean();
    }

    #[test]
    fn new_counters_stay_clean_on_a_conserving_run() {
        // A run that exercises every new counter consistently passes.
        let audit = RunAudit::with_floor(10, 100);
        let mut m = conserving_metrics();
        m.edges_loaded = 512; // 4096 bytes loaded
        m.swap_bytes = 64;
        m.accepts = 5;
        m.rejects = 7;
        m.prefetch_hits = 1;
        m.prefetch_wasted = 1;
        m.pool_publishes = 2;
        m.pool_stalls = 1;
        m.presample_stalls = 1;
        m.peak_memory = 4096;
        audit.verify_metrics(&m).assert_clean();
    }

    #[test]
    fn budget_floor_law_detects_leaks() {
        let budget = MemoryBudget::new(1 << 20);
        let audit = RunAudit::begin(10, &budget);
        let r = budget.try_reserve(512).unwrap();
        let report = audit.verify(&conserving_metrics(), &budget);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].law, "budget-floor");
        drop(r);
        audit.verify(&conserving_metrics(), &budget).assert_clean();
    }

    #[test]
    #[should_panic(expected = "walker-completion")]
    fn assert_clean_panics_with_law_name() {
        let audit = RunAudit::with_floor(11, 0);
        audit.verify_metrics(&conserving_metrics()).assert_clean();
    }

    #[test]
    fn cancelled_walkers_balance_the_completion_law() {
        let audit = RunAudit::with_floor(10, 0);
        let mut m = conserving_metrics();
        m.walkers_finished = 7;
        m.walkers_cancelled = 3;
        audit.verify_metrics(&m).assert_clean();
        m.walkers_cancelled = 2; // one walker silently dropped
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "walker-completion"
        );
    }

    #[test]
    fn query_conservation_law() {
        use crate::query::QueryStats;
        let ok = QueryStats {
            id: 1,
            budget: 64,
            issued: 64,
            completed: 60,
            cancelled: 4,
        };
        assert!(audit_queries(std::slice::from_ref(&ok)).is_clean());
        let dropped = QueryStats {
            completed: 59,
            ..ok.clone()
        };
        let r = audit_queries(&[ok.clone(), dropped]);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].law, "query-conservation");
        assert!(r.violations[0].detail.contains("query 1"));
        let over = QueryStats {
            issued: 65,
            completed: 61,
            ..ok
        };
        let r = audit_queries(&[over]);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].detail.contains("exceeds"));
    }

    #[test]
    fn handoff_conservation_law() {
        let audit = RunAudit::with_floor(10, 0);

        // Immigration outrunning emigration is a fabricated walker.
        let mut m = conserving_metrics();
        m.walkers_emigrated = 2;
        m.walkers_immigrated = 3;
        m.walkers_cancelled = 2;
        m.walkers_finished = 8;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "handoff-conservation"
        );

        // An emigrated walker must have retired via the cancellation path.
        let mut m = conserving_metrics();
        m.walkers_emigrated = 1;
        assert_eq!(
            audit.verify_metrics(&m).violations[0].law,
            "handoff-conservation"
        );

        // Balanced handoff traffic passes.
        let mut m = conserving_metrics();
        m.walkers_emigrated = 3;
        m.walkers_immigrated = 3;
        m.walkers_cancelled = 3;
        m.walkers_finished = 7;
        audit.verify_metrics(&m).assert_clean();

        // The exact point-in-time law accounts for queued walkers.
        audit_handoffs(5, 3, 2).assert_clean();
        audit_handoffs(0, 0, 0).assert_clean();
        let r = audit_handoffs(5, 3, 1);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].law, "handoff-conservation");
        assert!(r.violations[0].detail.contains("lost or duplicated"));
    }

    #[test]
    fn shard_handoff_event_exports_cleanly() {
        let mut sink = MemorySink::new();
        sink.record(&TraceEvent::ShardHandoff {
            from_shard: 0,
            to_shard: 2,
            walkers: 17,
            at_ns: 42,
        });
        let json = sink.to_json();
        assert!(json.contains(
            "{\"event\":\"shard_handoff\",\"from_shard\":0,\"to_shard\":2,\"walkers\":17,\"at_ns\":42}"
        ));
        let tsv = sink.to_tsv();
        assert!(tsv.contains("shard_handoff\tfrom_shard=0\tto_shard=2\twalkers=17\tat_ns=42"));
    }

    #[test]
    fn query_events_export_cleanly() {
        let mut sink = MemorySink::new();
        sink.record(&TraceEvent::QueryAdmitted {
            query: 3,
            walkers: 64,
            deadline_ns: None,
            at_ns: 10,
        });
        sink.record(&TraceEvent::QueryDeadlineMiss {
            query: 3,
            deadline_ns: 500,
            at_ns: 600,
        });
        sink.record(&TraceEvent::QueryCompleted {
            query: 3,
            issued: 64,
            completed: 60,
            cancelled: 4,
            degraded: true,
            at_ns: 700,
        });
        sink.record(&TraceEvent::QueryShed {
            query: 4,
            retry_after_ns: 1_000,
            at_ns: 701,
        });
        let json = sink.to_json();
        assert!(json.contains("\"event\":\"query_admitted\""));
        assert!(json.contains("\"deadline_ns\":null"));
        assert!(json.contains("\"event\":\"query_completed\",\"query\":3,\"issued\":64,\"completed\":60,\"cancelled\":4,\"degraded\":true"));
        let tsv = sink.to_tsv();
        assert!(tsv.contains("query_shed\tquery=4\tretry_after_ns=1000"));
        assert!(tsv.contains("query_deadline_miss\tquery=3\tdeadline_ns=500"));
    }

    #[test]
    fn disabled_trace_skips_event_construction() {
        let mut trace = Trace::off();
        let mut built = false;
        trace.emit(|| {
            built = true;
            TraceEvent::CacheEvict { at_ns: 0 }
        });
        assert!(!built);
        assert!(!trace.is_enabled());
    }

    #[test]
    fn memory_sink_records_in_order() {
        let mut sink = MemorySink::new();
        {
            let mut trace = Trace::on(&mut sink);
            assert!(trace.is_enabled());
            trace.emit(|| TraceEvent::CoarseLoad {
                block: 3,
                bytes: 4096,
                cache_hit: false,
                at_ns: 10,
            });
            trace.emit(|| TraceEvent::Stall {
                waiting_for: Some(3),
                from_ns: 10,
                until_ns: 60,
            });
            trace.emit(|| TraceEvent::RunEnd {
                steps: 1,
                walkers_finished: 1,
                at_ns: 60,
            });
        }
        assert_eq!(sink.events.len(), 3);
        assert_eq!(sink.events[0].kind(), "coarse_load");
        assert_eq!(sink.total_stall_ns(), 50);
    }

    #[test]
    fn stall_attribution_aggregates_and_sorts() {
        let mut sink = MemorySink::new();
        let stalls = [
            (Some(1), 0, 10),
            (Some(2), 10, 40),
            (Some(1), 40, 45),
            (None, 45, 46),
        ];
        for (b, f, u) in stalls {
            sink.record(&TraceEvent::Stall {
                waiting_for: b,
                from_ns: f,
                until_ns: u,
            });
        }
        let by_block = sink.stall_by_block();
        assert_eq!(by_block, vec![(Some(2), 30), (Some(1), 15), (None, 1)]);
    }

    #[test]
    fn json_export_is_parseable_shape() {
        let mut sink = MemorySink::new();
        sink.record(&TraceEvent::CoarseLoad {
            block: 7,
            bytes: 2048,
            cache_hit: true,
            at_ns: 5,
        });
        sink.record(&TraceEvent::Stall {
            waiting_for: None,
            from_ns: 5,
            until_ns: 9,
        });
        let json = sink.to_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("{\"event\":\"coarse_load\",\"block\":7,\"bytes\":2048,\"cache_hit\":true,\"at_ns\":5},"));
        assert!(json.contains("\"waiting_for\":null"));
    }

    #[test]
    fn tsv_export_one_line_per_event() {
        let mut sink = MemorySink::new();
        sink.record(&TraceEvent::Swap {
            bytes: 48,
            at_ns: 7,
        });
        sink.record(&TraceEvent::FineModeSwitch {
            at_step: 900,
            at_ns: 12,
        });
        let tsv = sink.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "swap\tbytes=48\tat_ns=7");
        assert_eq!(lines[1], "fine_mode_switch\tat_step=900\tat_ns=12");
    }
}
