//! The NosWalker out-of-core random walk engine (the paper's contribution).
//!
//! NosWalker replaces the graph-oriented, block-centric scheduling that
//! existing out-of-core systems inherit from general graph frameworks with a
//! **decoupled, walker-oriented architecture** (paper §3):
//!
//! ```text
//!   device ──▶ block buffers ──▶ pre-sampled edge buffers ──▶ walker pools
//!             (a few, loaded       (compact (idx, cnt) CSR      (small, never
//!              hottest-first)       of sampled destinations)     swapped out)
//! ```
//!
//! * The **background loader** keeps a small number of block buffers full,
//!   hottest block first (Algorithm 1, `BackgroundBlockLoad`).
//! * Loading and walking are decoupled by the **pre-sampled edge buffers**
//!   ([`presample`]): when a block is resident, the engine draws *more*
//!   samples than currently needed and reserves the surplus — a succinct
//!   stand-in for the evicted edge data (§2.4.1).
//! * The **walker pool** ([`engine`]) holds only a bounded set of live
//!   walkers and generates new ones as old ones terminate, so walker state
//!   is never swapped to disk (§2.4.2).
//! * When walkers grow sparse the engine switches to **fine-grained 4 KiB
//!   I/O** targeted at stalled vertices (§3.3.1), trading bandwidth for
//!   IOPS to beat the long tail.
//! * Second-order walks (Node2Vec) run through **rejection sampling**
//!   (Appendix A): pre-samples serve as uniform candidates and the
//!   accept/reject test is deferred until the candidate's block is loaded.
//!
//! Applications implement the four-function programming model of §3.2
//! ([`Walk`]: `generate` / `sample` / `is_active` / `action`, plus
//! [`SecondOrderWalk::rejection`] for second-order tasks) and run unchanged
//! on NosWalker and on every baseline engine in `noswalker-baselines`.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use noswalker_core::{apps_prelude::*, EngineOptions, NosWalkerEngine, OnDiskGraph};
//! use noswalker_graph::generators;
//! use noswalker_storage::{MemoryBudget, SimSsd, SsdProfile};
//!
//! // A tiny basic random walk: 100 walkers of length 5.
//! #[derive(Debug)]
//! struct Basic;
//! #[derive(Debug, Clone)]
//! struct W { at: u32, step: u32 }
//! impl Walk for Basic {
//!     type Walker = W;
//!     fn total_walkers(&self) -> u64 { 100 }
//!     fn generate(&self, n: u64, _rng: &mut WalkRng) -> W {
//!         W { at: (n % 64) as u32, step: 0 }
//!     }
//!     fn location(&self, w: &W) -> u32 { w.at }
//!     fn is_active(&self, w: &W) -> bool { w.step < 5 }
//!     fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> u32 {
//!         uniform_sample(v, rng)
//!     }
//!     fn action(&self, w: &mut W, next: u32, _rng: &mut WalkRng) -> bool {
//!         w.at = next;
//!         w.step += 1;
//!         true
//!     }
//! }
//!
//! let csr = generators::uniform_degree(64, 4, 7);
//! let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
//! let graph = Arc::new(OnDiskGraph::store(&csr, device, 512)?);
//! let budget = MemoryBudget::new(64 << 10);
//! let engine = NosWalkerEngine::new(Arc::new(Basic), graph, EngineOptions::default(), budget);
//! let metrics = engine.run(42)?;
//! assert_eq!(metrics.steps, 500);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
// The engine's walker-movement loops re-borrow the slab mutably inside the
// body, so clippy's `while let` suggestion does not compile there.
#![allow(clippy::while_let_loop)]

pub mod audit;
pub mod block;
pub mod clock;
pub mod disk_graph;
pub mod engine;
pub mod kernel;
pub mod metrics;
pub mod options;
pub mod parallel;
pub mod presample;
pub mod query;
pub mod threaded;
pub mod walk;

pub use audit::{
    audit_handoffs, audit_queries, AuditReport, MemorySink, RunAudit, Trace, TraceEvent, TraceSink,
};
pub use block::{BlockCache, FineLoad, LoadedBlock};
pub use clock::{ModelClock, PipelineClock, TickClock, WallTimer};
pub use disk_graph::{OnDiskGraph, StoreError};
pub use engine::{EngineError, NosWalkerEngine};
pub use kernel::{Backend, ParallelKernel, RoundOutcome, SequentialKernel, StepKernel};
pub use metrics::{LatencyHistogram, RunMetrics, StepSource};
pub use options::EngineOptions;
pub use query::{
    BufferedQuerySource, QueryId, QuerySource, QuerySpec, QueryStats, StaticQuerySource,
};
pub use walk::{uniform_sample, SecondOrderWalk, Walk, WalkRng};

/// Convenience prelude for implementing applications.
pub mod apps_prelude {
    pub use crate::walk::{uniform_sample, SecondOrderWalk, Walk, WalkRng};
    pub use noswalker_graph::layout::VertexEdges;
    pub use noswalker_graph::VertexId;
}
