//! Run metrics shared by every engine.
//!
//! All mutation goes through the tracked helpers on [`RunMetrics`] (and,
//! for the real-thread runner, [`SharedMetrics`] / [`LocalCounters`]): the
//! `nosw-lint` L1 rule forbids direct field writes outside this module, so
//! the audit conservation laws cannot be bypassed by an engine quietly
//! bumping a counter. In particular [`RunMetrics::record_step`] couples
//! `steps` to exactly one of the three attribution counters, making the
//! step-attribution law structurally true at every call site.

use crate::clock::{PipelineClock, WallTimer};
use std::sync::atomic::{AtomicU64, Ordering};

/// Where a walker step got its edge data from — the paper's three serving
/// tiers (§3.3): the resident block buffer, a reserved pre-sample, or a
/// raw retained low-degree edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepSource {
    /// Served from a loaded (coarse or fine) block buffer.
    Block,
    /// Served from a reserved pre-sampled slot.
    PreSample,
    /// Served from raw retained low-degree edges.
    Raw,
}

/// Everything a run reports: the raw material for every figure in the
/// paper's evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// End-to-end simulated time in nanoseconds (compute + exposed I/O
    /// stalls under the engine's pipeline model).
    pub sim_ns: u64,
    /// Wall-clock time the simulation itself took (host seconds, for
    /// curiosity only — never an input to any modeled figure). The
    /// serving layer zeroes it internally so replays stay bit-identical;
    /// the bench/CLI boundary re-stamps it with the measured replay time
    /// via [`RunMetrics::set_wall_ns`].
    pub wall_ns: u64,
    /// Time spent stalled on I/O.
    pub stall_ns: u64,
    /// Total device service time consumed.
    pub io_busy_ns: u64,
    /// Total walker steps moved.
    pub steps: u64,
    /// Steps taken directly on a loaded block buffer (§3.3.5).
    pub steps_on_block: u64,
    /// Steps taken from reserved pre-samples after the block was evicted.
    pub steps_on_presample: u64,
    /// Steps taken on raw retained low-degree edges (§3.3.4).
    pub steps_on_raw: u64,
    /// Bytes of edge data read from the device.
    pub edge_bytes_loaded: u64,
    /// Edge records loaded (bytes / record size).
    pub edges_loaded: u64,
    /// Device read operations issued for edge data.
    pub io_ops: u64,
    /// Bytes of walker-state swap traffic (engines without in-memory
    /// walker management, §2.4.2).
    pub swap_bytes: u64,
    /// Coarse block loads performed.
    pub coarse_loads: u64,
    /// Fine-grained load batches performed.
    pub fine_loads: u64,
    /// Walkers that finished.
    pub walkers_finished: u64,
    /// Walkers retired by cancellation (their query was withdrawn — e.g. a
    /// serving deadline fired) rather than by completing their walk. The
    /// walker-completion audit law balances finished + cancelled against
    /// the total, so no cancellation path can silently drop a walker.
    pub walkers_cancelled: u64,
    /// Walker visits that found an empty reserved pre-sample slot and had
    /// to wait for the block (the sequential mirror of `pool_stalls`; the
    /// serving layer's shedding policy watches this rate).
    pub presample_stalls: u64,
    /// Step count at which the engine switched to fine-grained mode
    /// (`None` = never switched).
    pub fine_mode_at_step: Option<u64>,
    /// Pre-sample slots drawn while refilling buffers.
    pub presamples_filled: u64,
    /// Pre-sampled slots consumed by moves.
    pub presamples_consumed: u64,
    /// Pre-sample buffer generations published to the parallel runner's
    /// lock-free shared pool.
    pub pool_publishes: u64,
    /// Walker visits that claimed against a *live* published generation
    /// and found its sampled slots depleted: the quota planner's
    /// actionable miss signal (it sized this vertex's quota too small for
    /// the demand that materialized). The walker falls back to the
    /// coordinator.
    pub pool_stalls: u64,
    /// Walker visits that found no published generation at all for their
    /// destination block — warmup before the block's first residency, a
    /// budget-pressure eviction, or a refill skipped for lack of a
    /// worthwhile share. There was no pool to claim from, so these are
    /// not pool attempts; the walker defers to the block's next
    /// residency and is served on-block.
    pub pool_deferrals: u64,
    /// Pool demand in slots: sampled slots claimed from published buffers
    /// plus one per stalled visit. The claim-conservation audit law checks
    /// `pool_attempts <= presamples_consumed + claims_burned + pool_stalls`
    /// — a claimed slot must end up consumed, burned, or stalled.
    pub pool_attempts: u64,
    /// Claimed pre-sampled slots retired without serving a step: batch
    /// leftovers swept when a walker bucket ends (rejected-hop slots are
    /// returned to the batch first, so a rejection alone no longer burns).
    pub claims_burned: u64,
    /// Prefetched coarse blocks that a waiting walker bucket consumed.
    pub prefetch_hits: u64,
    /// Prefetched coarse blocks discarded because no walker needed them by
    /// the time they arrived.
    pub prefetch_wasted: u64,
    /// Walkers that crossed a shard boundary and were drained into a
    /// cross-shard handoff queue (sharded serving only). The handoff
    /// conservation audit law balances emigration against immigration:
    /// `walkers_emigrated == walkers_immigrated + in_flight`, with
    /// `in_flight` reaching zero by the end of every run.
    pub walkers_emigrated: u64,
    /// Walkers re-admitted on their destination shard after a cross-shard
    /// handoff (sharded serving only; see `walkers_emigrated`).
    pub walkers_immigrated: u64,
    /// Second-order candidates accepted.
    pub accepts: u64,
    /// Second-order candidates rejected.
    pub rejects: u64,
    /// Peak memory-budget usage in bytes.
    pub peak_memory: u64,
}

impl RunMetrics {
    // ------------------------------------------------------------------
    // Tracked mutation helpers (the only sanctioned write sites; lint L1)
    // ------------------------------------------------------------------

    /// Records one walker step served from `src`. Couples `steps` to its
    /// attribution counter so the audit's step-attribution law
    /// (`steps == on_block + on_presample + on_raw`) holds by construction.
    pub fn record_step(&mut self, src: StepSource) {
        self.steps += 1;
        match src {
            StepSource::Block => self.steps_on_block += 1,
            StepSource::PreSample => self.steps_on_presample += 1,
            StepSource::Raw => self.steps_on_raw += 1,
        }
    }

    /// Records a second-order rejection round: an accepted candidate is a
    /// real step (on the resident block), a rejected one only counts
    /// toward the accept/reject ratio.
    pub fn record_second_order(&mut self, accepted: bool) {
        if accepted {
            self.accepts += 1;
            self.record_step(StepSource::Block);
        } else {
            self.rejects += 1;
        }
    }

    /// Records one walker reaching its end state.
    pub fn record_walker_finished(&mut self) {
        self.walkers_finished += 1;
    }

    /// Records one walker retired by cancellation (its query was withdrawn
    /// before the walk completed). Every cancellation path must tick this
    /// counter — the walker-completion audit law checks
    /// `finished + cancelled == total`.
    pub fn record_walker_cancelled(&mut self) {
        self.walkers_cancelled += 1;
    }

    /// Records a walker visit that found an empty reserved pre-sample slot
    /// (the walker stalls until its block loads).
    pub fn record_presample_stall(&mut self) {
        self.presample_stalls += 1;
    }

    /// Overwrites the finished-walker count from an engine that tracks
    /// completion externally (e.g. a [`crate::Walk`]-set epilogue).
    pub fn set_walkers_finished(&mut self, n: u64) {
        self.walkers_finished = n;
    }

    /// Records one coarse block load of `bytes` from the device.
    pub fn record_coarse_load(&mut self, bytes: u64) {
        self.record_coarse_loads(1, bytes);
    }

    /// Records `loads` coarse loads moving `bytes` in total (one device
    /// read operation per load).
    pub fn record_coarse_loads(&mut self, loads: u64, bytes: u64) {
        self.coarse_loads += loads;
        self.io_ops += loads;
        self.edge_bytes_loaded += bytes;
    }

    /// Records one fine-grained load batch of `runs` contiguous page runs
    /// (each a device read operation) moving `bytes`.
    pub fn record_fine_load(&mut self, runs: u64, bytes: u64) {
        self.fine_loads += 1;
        self.io_ops += runs;
        self.edge_bytes_loaded += bytes;
    }

    /// Records walker-state swap traffic (`ops` extra device operations;
    /// engines that fold the swap into an existing operation pass 0).
    pub fn record_swap(&mut self, bytes: u64, ops: u64) {
        self.swap_bytes += bytes;
        self.io_ops += ops;
    }

    /// Records `draws` pre-sample slots drawn during a buffer refill.
    pub fn record_presamples_filled(&mut self, draws: u64) {
        self.presamples_filled += draws;
    }

    /// Records one reserved pre-sampled slot consumed by a move.
    pub fn record_presample_consumed(&mut self) {
        self.presamples_consumed += 1;
    }

    /// Records a prefetched block that a waiting walker bucket consumed.
    pub fn record_prefetch_hit(&mut self) {
        self.prefetch_hits += 1;
    }

    /// Records a prefetched block that arrived after its bucket drained
    /// (or the run ended) and was discarded unconsumed.
    pub fn record_prefetch_wasted(&mut self) {
        self.prefetch_wasted += 1;
    }

    /// Records `n` walkers drained into cross-shard handoff queues after
    /// hopping over a partition boundary. Every emigration path must tick
    /// this counter — the handoff-conservation audit law balances it
    /// against `walkers_immigrated`.
    pub fn record_walkers_emigrated(&mut self, n: u64) {
        self.walkers_emigrated += n;
    }

    /// Records `n` walkers re-admitted on their destination shard after a
    /// cross-shard handoff (the receiving half of the handoff-conservation
    /// audit law).
    pub fn record_walkers_immigrated(&mut self, n: u64) {
        self.walkers_immigrated += n;
    }

    /// Marks the switch to fine-grained I/O at the current step count
    /// (§3.3.1); the first call wins.
    pub fn mark_fine_mode_switch(&mut self) {
        if self.fine_mode_at_step.is_none() {
            self.fine_mode_at_step = Some(self.steps);
        }
    }

    /// Derives `edges_loaded` from the bytes moved and the on-disk record
    /// size.
    pub fn derive_edges_loaded(&mut self, record_bytes: u64) {
        self.edges_loaded = self.edge_bytes_loaded / record_bytes.max(1);
    }

    /// Overwrites `edges_loaded` for engines that count records directly
    /// (e.g. the in-memory baseline's one ingest scan).
    pub fn set_edges_loaded(&mut self, n: u64) {
        self.edges_loaded = n;
    }

    /// Records the peak memory-budget usage.
    pub fn set_peak_memory(&mut self, bytes: u64) {
        self.peak_memory = bytes;
    }

    /// Copies the simulated-time totals out of the pipeline clock.
    pub fn finalize_clock(&mut self, clock: &PipelineClock) {
        self.sim_ns = clock.now();
        self.stall_ns = clock.stall_ns();
        self.io_busy_ns = clock.io_busy_ns();
    }

    /// Sets the simulated-time totals directly (engines with a closed-form
    /// cost model instead of a pipeline clock).
    pub fn set_sim_times(&mut self, sim_ns: u64, stall_ns: u64, io_busy_ns: u64) {
        self.sim_ns = sim_ns;
        self.stall_ns = stall_ns;
        self.io_busy_ns = io_busy_ns;
    }

    /// Records the host wall-clock time of the run.
    pub fn finalize_wall(&mut self, timer: &WallTimer) {
        self.wall_ns = timer.elapsed_ns();
    }

    /// Sets `wall_ns` directly (real-thread runners also report it as
    /// `sim_ns`).
    pub fn set_wall_ns(&mut self, ns: u64) {
        self.wall_ns = ns;
    }

    /// Reports wall-clock time as the simulated time too (real-thread
    /// runners have no simulated clock).
    pub fn set_sim_from_wall(&mut self) {
        self.sim_ns = self.wall_ns;
    }

    /// Folds another run's metrics into this one (multi-query experiments
    /// that report summed totals). Additive counters and times sum;
    /// `peak_memory` takes the maximum; `fine_mode_at_step` keeps the
    /// first recorded switch.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.sim_ns += other.sim_ns;
        self.wall_ns += other.wall_ns;
        self.stall_ns += other.stall_ns;
        self.io_busy_ns += other.io_busy_ns;
        self.steps += other.steps;
        self.steps_on_block += other.steps_on_block;
        self.steps_on_presample += other.steps_on_presample;
        self.steps_on_raw += other.steps_on_raw;
        self.edge_bytes_loaded += other.edge_bytes_loaded;
        self.edges_loaded += other.edges_loaded;
        self.io_ops += other.io_ops;
        self.swap_bytes += other.swap_bytes;
        self.coarse_loads += other.coarse_loads;
        self.fine_loads += other.fine_loads;
        self.walkers_finished += other.walkers_finished;
        self.walkers_cancelled += other.walkers_cancelled;
        self.presample_stalls += other.presample_stalls;
        if self.fine_mode_at_step.is_none() {
            self.fine_mode_at_step = other.fine_mode_at_step;
        }
        self.presamples_filled += other.presamples_filled;
        self.presamples_consumed += other.presamples_consumed;
        self.pool_publishes += other.pool_publishes;
        self.pool_stalls += other.pool_stalls;
        self.pool_deferrals += other.pool_deferrals;
        self.pool_attempts += other.pool_attempts;
        self.claims_burned += other.claims_burned;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_wasted += other.prefetch_wasted;
        self.walkers_emigrated += other.walkers_emigrated;
        self.walkers_immigrated += other.walkers_immigrated;
        self.accepts += other.accepts;
        self.rejects += other.rejects;
        self.peak_memory = self.peak_memory.max(other.peak_memory);
    }

    // ------------------------------------------------------------------
    // Derived metrics
    // ------------------------------------------------------------------

    /// Average edge records loaded per step — the paper's Fig. 2(a) metric.
    pub fn edges_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.edges_loaded as f64 / self.steps as f64
        }
    }

    /// Steps per simulated second — the paper's Fig. 2(b) metric.
    pub fn steps_per_sec(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            self.steps as f64 * 1e9 / self.sim_ns as f64
        }
    }

    /// Simulated seconds.
    pub fn sim_secs(&self) -> f64 {
        self.sim_ns as f64 / 1e9
    }

    /// Total device bytes moved (edges + swap).
    pub fn total_io_bytes(&self) -> u64 {
        self.edge_bytes_loaded + self.swap_bytes
    }

    /// Fraction of elapsed time spent with the device busy.
    pub fn io_utilization(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            (self.io_busy_ns as f64 / self.sim_ns as f64).min(1.0)
        }
    }

    // ------------------------------------------------------------------
    // Snapshot writer (the single field enumeration every report uses)
    // ------------------------------------------------------------------

    /// Every counter as `(name, JSON scalar)` in declaration order — the
    /// one place that enumerates the fields. The CLI report, the bench
    /// JSON artifacts, and the TSV writers all render from this list, so
    /// a new counter shows up everywhere at once instead of drifting
    /// between hand-rolled copies.
    pub fn snapshot_fields(&self) -> Vec<(&'static str, String)> {
        // Unset optionals render as 0, not `null`: every engine then emits
        // the same scalar shape and downstream tooling needs no
        // per-backend special case (0 is unambiguous — a real fine-mode
        // switch at step 0 would mean "before any step", which no engine
        // produces).
        let opt = |v: Option<u64>| v.unwrap_or(0).to_string();
        vec![
            ("sim_ns", self.sim_ns.to_string()),
            ("wall_ns", self.wall_ns.to_string()),
            ("stall_ns", self.stall_ns.to_string()),
            ("io_busy_ns", self.io_busy_ns.to_string()),
            ("steps", self.steps.to_string()),
            ("steps_on_block", self.steps_on_block.to_string()),
            ("steps_on_presample", self.steps_on_presample.to_string()),
            ("steps_on_raw", self.steps_on_raw.to_string()),
            ("edge_bytes_loaded", self.edge_bytes_loaded.to_string()),
            ("edges_loaded", self.edges_loaded.to_string()),
            ("io_ops", self.io_ops.to_string()),
            ("swap_bytes", self.swap_bytes.to_string()),
            ("coarse_loads", self.coarse_loads.to_string()),
            ("fine_loads", self.fine_loads.to_string()),
            ("walkers_finished", self.walkers_finished.to_string()),
            ("walkers_cancelled", self.walkers_cancelled.to_string()),
            ("presample_stalls", self.presample_stalls.to_string()),
            ("fine_mode_at_step", opt(self.fine_mode_at_step)),
            ("presamples_filled", self.presamples_filled.to_string()),
            ("presamples_consumed", self.presamples_consumed.to_string()),
            ("pool_publishes", self.pool_publishes.to_string()),
            ("pool_stalls", self.pool_stalls.to_string()),
            ("pool_deferrals", self.pool_deferrals.to_string()),
            ("pool_attempts", self.pool_attempts.to_string()),
            ("claims_burned", self.claims_burned.to_string()),
            ("prefetch_hits", self.prefetch_hits.to_string()),
            ("prefetch_wasted", self.prefetch_wasted.to_string()),
            ("walkers_emigrated", self.walkers_emigrated.to_string()),
            ("walkers_immigrated", self.walkers_immigrated.to_string()),
            ("accepts", self.accepts.to_string()),
            ("rejects", self.rejects.to_string()),
            ("peak_memory", self.peak_memory.to_string()),
        ]
    }

    /// The snapshot as one JSON object, indented by `indent` spaces per
    /// level (values are the raw scalars from [`RunMetrics::snapshot_fields`]).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let fields = self.snapshot_fields();
        let mut out = String::from("{\n");
        for (i, (k, v)) in fields.iter().enumerate() {
            let comma = if i + 1 < fields.len() { "," } else { "" };
            out.push_str(&format!("{pad}{pad}\"{k}\": {v}{comma}\n"));
        }
        out.push_str(&format!("{pad}}}"));
        out
    }

    /// Tab-separated header matching [`RunMetrics::to_tsv_row`].
    pub fn tsv_header() -> String {
        RunMetrics::default()
            .snapshot_fields()
            .iter()
            .map(|(k, _)| *k)
            .collect::<Vec<_>>()
            .join("\t")
    }

    /// The snapshot as one tab-separated row (unset optionals render as
    /// 0, same as the JSON writer).
    pub fn to_tsv_row(&self) -> String {
        self.snapshot_fields()
            .iter()
            .map(|(_, v)| v.as_str())
            .collect::<Vec<_>>()
            .join("\t")
    }
}

// ----------------------------------------------------------------------
// Latency histogram (serving observability)
// ----------------------------------------------------------------------

/// Sub-buckets per power-of-two octave: bounds the relative quantile
/// error to `1/SUB_BUCKETS` while keeping the whole `u64` range in under
/// a thousand buckets.
const SUB_BUCKETS: u64 = 16;
const SUB_SHIFT: u32 = SUB_BUCKETS.trailing_zeros();

/// A log-bucketed latency histogram (log-linear, HdrHistogram-style).
///
/// Values below [`SUB_BUCKETS`] get exact unit-width buckets; above, each
/// power-of-two octave is split into [`SUB_BUCKETS`] linear sub-buckets,
/// so recorded values land within `1/16` of their true magnitude. Merge
/// is element-wise addition, which makes it associative and commutative —
/// per-worker or per-round histograms fold into totals in any order.
///
/// The serving layer keeps one per query class and reports
/// p50/p90/p99 from [`LatencyHistogram::quantile`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// The bucket index covering `v` (log-linear: exact below
    /// [`SUB_BUCKETS`], `1/SUB_BUCKETS` relative width above).
    pub fn bucket_of(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros();
        let shift = octave - SUB_SHIFT;
        let sub = (v >> shift) - SUB_BUCKETS;
        ((u64::from(shift) + 1) * SUB_BUCKETS + sub) as usize
    }

    /// The smallest value that lands in bucket `i` (inclusive lower
    /// bound; bucket `i` covers `[lower(i), lower(i + 1))`).
    pub fn bucket_lower(i: usize) -> u64 {
        let i = i as u64;
        if i < 2 * SUB_BUCKETS {
            return i;
        }
        let block = i / SUB_BUCKETS - 1;
        let pos = i % SUB_BUCKETS;
        (SUB_BUCKETS + pos) << block
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let i = Self::bucket_of(v);
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) with linear interpolation inside
    /// the covering bucket. Returns 0 on an empty histogram; `q = 1.0`
    /// returns the exact recorded maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = Self::bucket_lower(i);
                let width = Self::bucket_lower(i + 1) - lo;
                // Midpoint-of-rank interpolation: the k-th of n values in
                // a bucket sits at fraction (k - 0.5) / n of its width.
                let frac = (rank - seen) as f64 - 0.5;
                let est = lo as f64 + width as f64 * (frac / n as f64);
                return (est as u64).min(self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Folds `other` into `self` (element-wise; associative and
    /// commutative).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Shared per-run counters for the real-thread runner: the cross-thread
/// mirror of the tracked [`RunMetrics`] step/pre-sample counters.
#[derive(Debug, Default)]
pub(crate) struct SharedMetrics {
    steps: AtomicU64,
    steps_on_block: AtomicU64,
    steps_on_presample: AtomicU64,
    steps_on_raw: AtomicU64,
    presamples_filled: AtomicU64,
    presamples_consumed: AtomicU64,
    pool_publishes: AtomicU64,
    pool_stalls: AtomicU64,
    pool_deferrals: AtomicU64,
    pool_attempts: AtomicU64,
    claims_burned: AtomicU64,
    finished: AtomicU64,
    cancelled: AtomicU64,
}

impl SharedMetrics {
    /// Adds `n` finished walkers (coordinator-side terminations).
    pub(crate) fn add_finished(&self, n: u64) {
        self.finished.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` cancelled walkers (coordinator-side cancellations).
    pub(crate) fn add_cancelled(&self, n: u64) {
        self.cancelled.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `draws` pre-sample slots drawn by a background refill.
    pub(crate) fn add_presamples_filled(&self, draws: u64) {
        self.presamples_filled.fetch_add(draws, Ordering::Relaxed);
    }

    /// Records one buffer generation published to the shared pool.
    pub(crate) fn add_pool_publish(&self) {
        self.pool_publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the accumulated totals into `m`.
    pub(crate) fn drain_into(&self, m: &mut RunMetrics) {
        m.steps = self.steps.load(Ordering::Relaxed);
        m.steps_on_block = self.steps_on_block.load(Ordering::Relaxed);
        m.steps_on_presample = self.steps_on_presample.load(Ordering::Relaxed);
        m.steps_on_raw = self.steps_on_raw.load(Ordering::Relaxed);
        m.presamples_filled = self.presamples_filled.load(Ordering::Relaxed);
        m.presamples_consumed = self.presamples_consumed.load(Ordering::Relaxed);
        m.pool_publishes = self.pool_publishes.load(Ordering::Relaxed);
        m.pool_stalls = self.pool_stalls.load(Ordering::Relaxed);
        m.pool_deferrals = self.pool_deferrals.load(Ordering::Relaxed);
        m.pool_attempts = self.pool_attempts.load(Ordering::Relaxed);
        m.claims_burned = self.claims_burned.load(Ordering::Relaxed);
        m.walkers_finished = self.finished.load(Ordering::Relaxed);
        m.walkers_cancelled = self.cancelled.load(Ordering::Relaxed);
    }
}

/// Per-worker counter accumulation: flushed into [`SharedMetrics`] once
/// per job so the hot loop never touches shared cache lines.
#[derive(Debug, Default)]
pub(crate) struct LocalCounters {
    steps: u64,
    steps_on_block: u64,
    steps_on_presample: u64,
    steps_on_raw: u64,
    presamples_consumed: u64,
    pool_stalls: u64,
    pool_deferrals: u64,
    pool_attempts: u64,
    claims_burned: u64,
    finished: u64,
    cancelled: u64,
}

impl LocalCounters {
    /// Records one walker step served from `src` (see
    /// [`RunMetrics::record_step`]).
    pub(crate) fn record_step(&mut self, src: StepSource) {
        self.steps += 1;
        match src {
            StepSource::Block => self.steps_on_block += 1,
            StepSource::PreSample => self.steps_on_presample += 1,
            StepSource::Raw => self.steps_on_raw += 1,
        }
    }

    /// Records one reserved pre-sampled slot consumed by a move.
    pub(crate) fn record_presample_consumed(&mut self) {
        self.presamples_consumed += 1;
    }

    /// Records a walker visit that claimed against a live published
    /// buffer and found its slots depleted: the walker falls back to the
    /// coordinator. A stall is also one pool attempt, keeping the
    /// claim-conservation law structurally balanced.
    pub(crate) fn record_pool_stall(&mut self) {
        self.pool_stalls += 1;
        self.pool_attempts += 1;
    }

    /// Records `n` walker visits that found no published generation at
    /// all for their block: not pool attempts (there was nothing to
    /// claim from) — the walkers defer to the block's next residency.
    pub(crate) fn record_pool_deferrals(&mut self, n: u64) {
        self.pool_deferrals += n;
    }

    /// Records `n` sampled slots claimed from a published buffer (batched
    /// claims pass the batch length).
    pub(crate) fn record_pool_attempts(&mut self, n: u64) {
        self.pool_attempts += n;
    }

    /// Records `n` claimed slots retired unserved when a walker bucket
    /// ends (batch leftovers).
    pub(crate) fn record_claims_burned(&mut self, n: u64) {
        self.claims_burned += n;
    }

    /// Records one walker reaching its end state.
    pub(crate) fn record_finished(&mut self) {
        self.finished += 1;
    }

    /// Records one walker retired by cancellation (see
    /// [`RunMetrics::record_walker_cancelled`]).
    pub(crate) fn record_cancelled(&mut self) {
        self.cancelled += 1;
    }

    /// Total steps recorded so far (the runner's deterministic compute
    /// model charges a round by its jobs' step counts).
    pub(crate) fn steps_total(&self) -> u64 {
        self.steps
    }

    /// Steps that performed an on-line sample draw (block + raw; reserved
    /// slots were drawn at refill time and are charged there).
    pub(crate) fn samples_total(&self) -> u64 {
        self.steps_on_block + self.steps_on_raw
    }

    /// Flushes the accumulated counts into the shared totals.
    pub(crate) fn flush(&self, shared: &SharedMetrics) {
        shared.steps.fetch_add(self.steps, Ordering::Relaxed);
        shared
            .steps_on_block
            .fetch_add(self.steps_on_block, Ordering::Relaxed);
        shared
            .steps_on_presample
            .fetch_add(self.steps_on_presample, Ordering::Relaxed);
        shared
            .steps_on_raw
            .fetch_add(self.steps_on_raw, Ordering::Relaxed);
        shared
            .presamples_consumed
            .fetch_add(self.presamples_consumed, Ordering::Relaxed);
        shared
            .pool_stalls
            .fetch_add(self.pool_stalls, Ordering::Relaxed);
        shared
            .pool_deferrals
            .fetch_add(self.pool_deferrals, Ordering::Relaxed);
        shared
            .pool_attempts
            .fetch_add(self.pool_attempts, Ordering::Relaxed);
        shared
            .claims_burned
            .fetch_add(self.claims_burned, Ordering::Relaxed);
        shared.finished.fetch_add(self.finished, Ordering::Relaxed);
        shared
            .cancelled
            .fetch_add(self.cancelled, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_attribution_is_conserved_by_construction() {
        let mut m = RunMetrics::default();
        m.record_step(StepSource::Block);
        m.record_step(StepSource::PreSample);
        m.record_step(StepSource::Raw);
        m.record_second_order(true);
        m.record_second_order(false);
        assert_eq!(m.steps, 4);
        assert_eq!(
            m.steps,
            m.steps_on_block + m.steps_on_presample + m.steps_on_raw
        );
        assert_eq!((m.accepts, m.rejects), (1, 1));
    }

    #[test]
    fn load_helpers_couple_ops_to_bytes() {
        let mut m = RunMetrics::default();
        m.record_coarse_load(4096);
        m.record_fine_load(3, 1024);
        m.record_swap(512, 1);
        assert_eq!(m.coarse_loads, 1);
        assert_eq!(m.fine_loads, 1);
        assert_eq!(m.io_ops, 1 + 3 + 1);
        assert_eq!(m.edge_bytes_loaded, 5120);
        assert_eq!(m.swap_bytes, 512);
        m.derive_edges_loaded(8);
        assert_eq!(m.edges_loaded, 640);
    }

    #[test]
    fn fine_mode_switch_marks_first_step_only() {
        let mut m = RunMetrics::default();
        m.record_step(StepSource::Block);
        m.mark_fine_mode_switch();
        m.record_step(StepSource::Block);
        m.mark_fine_mode_switch();
        assert_eq!(m.fine_mode_at_step, Some(1));
    }

    #[test]
    fn local_counters_flush_into_shared() {
        let shared = SharedMetrics::default();
        let mut local = LocalCounters::default();
        local.record_step(StepSource::Block);
        local.record_step(StepSource::PreSample);
        local.record_presample_consumed();
        local.record_pool_stall();
        local.record_pool_attempts(3);
        local.record_claims_burned(2);
        local.record_finished();
        assert_eq!(local.steps_total(), 2);
        assert_eq!(local.samples_total(), 1); // pre-sample steps draw nothing
        local.flush(&shared);
        shared.add_finished(2);
        shared.add_presamples_filled(7);
        shared.add_pool_publish();
        let mut m = RunMetrics::default();
        shared.drain_into(&mut m);
        assert_eq!(m.steps, 2);
        assert_eq!(m.steps_on_block, 1);
        assert_eq!(m.steps_on_presample, 1);
        assert_eq!(m.presamples_consumed, 1);
        assert_eq!(m.presamples_filled, 7);
        assert_eq!(m.pool_publishes, 1);
        assert_eq!(m.pool_stalls, 1);
        // The stall ticked one attempt on top of the three explicit ones.
        assert_eq!(m.pool_attempts, 4);
        assert_eq!(m.claims_burned, 2);
        assert_eq!(m.walkers_finished, 3);
    }

    #[test]
    fn prefetch_helpers_and_merge_cover_pool_counters() {
        let mut m = RunMetrics::default();
        m.record_prefetch_hit();
        m.record_prefetch_hit();
        m.record_prefetch_wasted();
        let mut other = RunMetrics::default();
        other.record_prefetch_hit();
        other.record_prefetch_wasted();
        other.pool_publishes = 3;
        other.pool_stalls = 5;
        other.pool_attempts = 11;
        other.claims_burned = 4;
        m.merge(&other);
        assert_eq!(m.prefetch_hits, 3);
        assert_eq!(m.prefetch_wasted, 2);
        assert_eq!(m.pool_publishes, 3);
        assert_eq!(m.pool_stalls, 5);
        assert_eq!(m.pool_attempts, 11);
        assert_eq!(m.claims_burned, 4);
    }

    #[test]
    fn derived_metrics() {
        let m = RunMetrics {
            sim_ns: 2_000_000_000,
            steps: 1000,
            edges_loaded: 32_000,
            edge_bytes_loaded: 128_000,
            swap_bytes: 64_000,
            io_busy_ns: 1_000_000_000,
            ..Default::default()
        };
        assert_eq!(m.edges_per_step(), 32.0);
        assert_eq!(m.steps_per_sec(), 500.0);
        assert_eq!(m.sim_secs(), 2.0);
        assert_eq!(m.total_io_bytes(), 192_000);
        assert!((m.io_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_run_is_safe() {
        let m = RunMetrics::default();
        assert_eq!(m.edges_per_step(), 0.0);
        assert_eq!(m.steps_per_sec(), 0.0);
        assert_eq!(m.io_utilization(), 0.0);
    }

    #[test]
    fn cancelled_walkers_are_tracked_and_merged() {
        let mut m = RunMetrics::default();
        m.record_walker_finished();
        m.record_walker_cancelled();
        m.record_walker_cancelled();
        m.record_presample_stall();
        let mut other = RunMetrics::default();
        other.record_walker_cancelled();
        other.record_presample_stall();
        m.merge(&other);
        assert_eq!(m.walkers_finished, 1);
        assert_eq!(m.walkers_cancelled, 3);
        assert_eq!(m.presample_stalls, 2);
    }

    #[test]
    fn shared_metrics_carry_cancellations() {
        let shared = SharedMetrics::default();
        let mut local = LocalCounters::default();
        local.record_cancelled();
        local.record_finished();
        local.flush(&shared);
        shared.add_cancelled(2);
        let mut m = RunMetrics::default();
        shared.drain_into(&mut m);
        assert_eq!(m.walkers_cancelled, 3);
        assert_eq!(m.walkers_finished, 1);
    }

    #[test]
    fn handoff_counters_are_tracked_and_merged() {
        let mut m = RunMetrics::default();
        m.record_walkers_emigrated(3);
        m.record_walkers_immigrated(2);
        let mut other = RunMetrics::default();
        other.record_walkers_emigrated(1);
        other.record_walkers_immigrated(2);
        m.merge(&other);
        assert_eq!(m.walkers_emigrated, 4);
        assert_eq!(m.walkers_immigrated, 4);
        let json = m.to_json(2);
        assert!(json.contains("\"walkers_emigrated\": 4"));
        assert!(json.contains("\"walkers_immigrated\": 4"));
    }

    #[test]
    fn snapshot_enumerates_every_counter_once() {
        let mut m = RunMetrics::default();
        m.record_walker_cancelled();
        m.mark_fine_mode_switch();
        let fields = m.snapshot_fields();
        let mut names: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate snapshot field");
        for key in [
            "sim_ns",
            "steps",
            "walkers_finished",
            "walkers_cancelled",
            "presample_stalls",
            "pool_stalls",
            "prefetch_hits",
            "peak_memory",
        ] {
            assert!(names.binary_search(&key).is_ok(), "missing {key}");
        }
        let json = m.to_json(2);
        assert!(json.contains("\"walkers_cancelled\": 1"));
        assert!(json.contains("\"fine_mode_at_step\": 0"));
        // Unset optionals also render as 0 — every backend emits the same
        // scalar shape (no `null` special case downstream).
        assert!(RunMetrics::default()
            .to_json(2)
            .contains("\"fine_mode_at_step\": 0"));
        let header = RunMetrics::tsv_header();
        let row = m.to_tsv_row();
        assert_eq!(
            header.split('\t').count(),
            row.split('\t').count(),
            "TSV header and row must align"
        );
    }

    // ------------------------------------------------------------------
    // Latency histogram
    // ------------------------------------------------------------------

    #[test]
    fn histogram_bucket_boundaries_are_log_linear() {
        // Exact unit buckets below SUB_BUCKETS…
        for v in 0..SUB_BUCKETS {
            assert_eq!(LatencyHistogram::bucket_of(v), v as usize);
            assert_eq!(LatencyHistogram::bucket_lower(v as usize), v);
        }
        // …then each octave splits into SUB_BUCKETS linear sub-buckets.
        assert_eq!(LatencyHistogram::bucket_of(16), 16);
        assert_eq!(LatencyHistogram::bucket_of(31), 31);
        assert_eq!(LatencyHistogram::bucket_of(32), 32);
        assert_eq!(LatencyHistogram::bucket_of(33), 32); // width-2 bucket
        assert_eq!(LatencyHistogram::bucket_of(63), 47);
        assert_eq!(LatencyHistogram::bucket_of(64), 48);
        assert_eq!(LatencyHistogram::bucket_lower(32), 32);
        assert_eq!(LatencyHistogram::bucket_lower(47), 62);
        assert_eq!(LatencyHistogram::bucket_lower(48), 64);
        // Every value lands in the bucket whose range contains it, and
        // bucket widths bound the relative error by 1/SUB_BUCKETS.
        for v in [1u64, 15, 16, 100, 1_000, 123_456, 1 << 40, u64::MAX / 2] {
            let i = LatencyHistogram::bucket_of(v);
            let lo = LatencyHistogram::bucket_lower(i);
            let hi = LatencyHistogram::bucket_lower(i + 1);
            assert!(lo <= v && v < hi, "{v} outside [{lo}, {hi})");
            assert!(
                hi - lo <= (lo / SUB_BUCKETS).max(1),
                "bucket too wide at {v}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        // Small exact values: quantiles are exact.
        for v in 1..=10 {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.1), 1);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.max(), 10);
        assert!((h.mean() - 5.5).abs() < 1e-9);
        // A bucketed value keeps 1/SUB_BUCKETS relative accuracy, and the
        // estimate interpolates inside the bucket instead of snapping to
        // its lower bound.
        let mut big = LatencyHistogram::new();
        big.record(1_000_000);
        let p50 = big.quantile(0.5);
        let err = (p50 as f64 - 1_000_000.0).abs() / 1_000_000.0;
        assert!(err <= 1.0 / SUB_BUCKETS as f64, "p50 {p50} off by {err}");
        let lo = LatencyHistogram::bucket_lower(LatencyHistogram::bucket_of(1_000_000));
        assert!(p50 > lo, "interpolation must land inside the bucket");
    }

    #[test]
    fn histogram_merge_is_associative() {
        let samples: [&[u64]; 3] = [&[1, 5, 900, 70_000], &[2, 2, 2, 1 << 30], &[40, 41, 65_536]];
        let hist = |vals: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (hist(samples[0]), hist(samples[1]), hist(samples[2]));
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == record-all-at-once.
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        let all: Vec<u64> = samples.iter().flat_map(|s| s.iter().copied()).collect();
        let direct = hist(&all);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, direct);
        assert_eq!(ab_c.count(), 11);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(ab_c.quantile(q), direct.quantile(q));
        }
    }
}
