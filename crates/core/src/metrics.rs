//! Run metrics shared by every engine.

/// Everything a run reports: the raw material for every figure in the
/// paper's evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// End-to-end simulated time in nanoseconds (compute + exposed I/O
    /// stalls under the engine's pipeline model).
    pub sim_ns: u64,
    /// Wall-clock time the simulation itself took (host seconds, for
    /// curiosity only).
    pub wall_ns: u64,
    /// Time spent stalled on I/O.
    pub stall_ns: u64,
    /// Total device service time consumed.
    pub io_busy_ns: u64,
    /// Total walker steps moved.
    pub steps: u64,
    /// Steps taken directly on a loaded block buffer (§3.3.5).
    pub steps_on_block: u64,
    /// Steps taken from reserved pre-samples after the block was evicted.
    pub steps_on_presample: u64,
    /// Steps taken on raw retained low-degree edges (§3.3.4).
    pub steps_on_raw: u64,
    /// Bytes of edge data read from the device.
    pub edge_bytes_loaded: u64,
    /// Edge records loaded (bytes / record size).
    pub edges_loaded: u64,
    /// Device read operations issued for edge data.
    pub io_ops: u64,
    /// Bytes of walker-state swap traffic (engines without in-memory
    /// walker management, §2.4.2).
    pub swap_bytes: u64,
    /// Coarse block loads performed.
    pub coarse_loads: u64,
    /// Fine-grained load batches performed.
    pub fine_loads: u64,
    /// Walkers that finished.
    pub walkers_finished: u64,
    /// Step count at which the engine switched to fine-grained mode
    /// (`None` = never switched).
    pub fine_mode_at_step: Option<u64>,
    /// Pre-sample slots drawn while refilling buffers.
    pub presamples_filled: u64,
    /// Pre-sampled slots consumed by moves.
    pub presamples_consumed: u64,
    /// Second-order candidates accepted.
    pub accepts: u64,
    /// Second-order candidates rejected.
    pub rejects: u64,
    /// Peak memory-budget usage in bytes.
    pub peak_memory: u64,
}

impl RunMetrics {
    /// Average edge records loaded per step — the paper's Fig. 2(a) metric.
    pub fn edges_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.edges_loaded as f64 / self.steps as f64
        }
    }

    /// Steps per simulated second — the paper's Fig. 2(b) metric.
    pub fn steps_per_sec(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            self.steps as f64 * 1e9 / self.sim_ns as f64
        }
    }

    /// Simulated seconds.
    pub fn sim_secs(&self) -> f64 {
        self.sim_ns as f64 / 1e9
    }

    /// Total device bytes moved (edges + swap).
    pub fn total_io_bytes(&self) -> u64 {
        self.edge_bytes_loaded + self.swap_bytes
    }

    /// Fraction of elapsed time spent with the device busy.
    pub fn io_utilization(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            (self.io_busy_ns as f64 / self.sim_ns as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let m = RunMetrics {
            sim_ns: 2_000_000_000,
            steps: 1000,
            edges_loaded: 32_000,
            edge_bytes_loaded: 128_000,
            swap_bytes: 64_000,
            io_busy_ns: 1_000_000_000,
            ..Default::default()
        };
        assert_eq!(m.edges_per_step(), 32.0);
        assert_eq!(m.steps_per_sec(), 500.0);
        assert_eq!(m.sim_secs(), 2.0);
        assert_eq!(m.total_io_bytes(), 192_000);
        assert!((m.io_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_run_is_safe() {
        let m = RunMetrics::default();
        assert_eq!(m.edges_per_step(), 0.0);
        assert_eq!(m.steps_per_sec(), 0.0);
        assert_eq!(m.io_utilization(), 0.0);
    }
}
