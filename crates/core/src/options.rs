//! Engine configuration, including the ablation knobs of Fig. 14.

use noswalker_storage::MemoryBudget;

/// Configuration for [`crate::NosWalkerEngine`].
///
/// The three `enable_*` knobs reproduce the paper's optimization breakdown
/// (§4.4): the *base implementation* (all off) behaves like GraphWalker but
/// with asynchronous, overlapped I/O; the optimizations are then added one
/// by one — walker management, shrink block size, pre-sample edges.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOptions {
    /// Upper bound on live walkers held in the pool. The effective pool is
    /// additionally capped at a quarter of the memory budget (walker pools
    /// and pre-sample buffers share memory and are adjusted against each
    /// other — the "Adjust" arrow of the paper's Fig. 6).
    pub walker_pool_size: usize,
    /// Dynamic in-memory walker generation (§2.4.2). When off, all walkers
    /// conceptually exist from the start and moving a block's walkers
    /// charges swap I/O for their states, like GraphWalker's fixed-length
    /// walker buffer.
    pub enable_walker_management: bool,
    /// Adaptive coarse→fine block granularity (§3.3.1).
    pub enable_shrink_block: bool,
    /// Pre-sampled edge buffers (§2.4.1, §3.3.2–3.3.5).
    pub enable_presample: bool,
    /// Unevenness factor α in the fine-mode switch condition
    /// `α·|Wa|·4KiB < S_G` (default 4, §3.3.1).
    pub alpha: u64,
    /// Retain raw edges instead of samples for vertices with degree ≤ this
    /// (§3.3.4; the paper uses 1–4 depending on graph size).
    pub low_degree_threshold: u32,
    /// Hard cap of pre-sample slots per vertex per refill.
    pub presample_cap_per_vertex: u32,
    /// Hub retention: vertices with degree ≥ this get their *whole* edge
    /// list retained raw (with an O(1) alias table on weighted graphs,
    /// ThunderRW-style) when it fits the refill budget, so the hottest
    /// vertices never deplete their slots. `u32::MAX` disables hub
    /// retention.
    pub alias_degree_threshold: u32,
    /// Sampled slots a parallel phase-B worker claims per atomic RMW once
    /// a vertex shows reuse within its walker bucket (batched claim
    /// amortization). Leftover slots are burned (`claims_burned`) when the
    /// bucket retires; 1 disables batching.
    pub claim_batch: u32,
    /// Fraction of the *remaining* memory budget (after block buffers)
    /// given to pre-sample buffers.
    pub presample_budget_fraction: f64,
    /// Simulated compute cost per walker step in nanoseconds (divided by
    /// `threads`).
    pub step_ns: u64,
    /// Simulated compute cost per pre-sample draw in nanoseconds (divided
    /// by `threads`).
    pub sample_ns: u64,
    /// Degree of walker-processing parallelism the compute model assumes.
    pub threads: u64,
    /// Per-walker swap record bytes when walker management is off (walker
    /// state as serialized by GraphWalker-style buffers).
    pub swap_record_bytes: u64,
    /// Coarse blocks the parallel runner's loader queue keeps in flight
    /// beyond the demand load (next-hottest prefetching; 0 disables it).
    pub prefetch_depth: u32,
    /// Ablation: allocate pre-sample slots uniformly instead of
    /// proportionally to the carried visit counters (§3.3.2). Off by
    /// default (the paper's design).
    pub uniform_presample_alloc: bool,
    /// Service-time multiplier for the *buffered, synchronous* I/O path of
    /// the GraphChi-derived baselines. The paper measures their disk
    /// utilization at 20–30 % against NosWalker's 70–90 % (§4.4); a 3.5×
    /// de-rate reproduces that measured gap. NosWalker itself never uses
    /// this (its asynchronous pipeline model yields utilization directly).
    pub buffered_io_penalty: f64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            walker_pool_size: 1 << 20,
            enable_walker_management: true,
            enable_shrink_block: true,
            enable_presample: true,
            alpha: 4,
            low_degree_threshold: 4,
            presample_cap_per_vertex: 4096,
            alias_degree_threshold: 64,
            claim_batch: 2,
            presample_budget_fraction: 0.9,
            step_ns: 120,
            sample_ns: 40,
            threads: 16,
            swap_record_bytes: 24,
            prefetch_depth: 2,
            uniform_presample_alloc: false,
            buffered_io_penalty: 3.5,
        }
    }
}

impl EngineOptions {
    /// The paper's "Base Implementation" (Fig. 14): GraphWalker-like
    /// workflow, but with NosWalker's asynchronous overlapped I/O.
    pub fn base() -> Self {
        EngineOptions {
            enable_walker_management: false,
            enable_shrink_block: false,
            enable_presample: false,
            ..Self::default()
        }
    }

    /// Base + in-memory walker management (Fig. 14, second bar).
    pub fn with_walker_management() -> Self {
        EngineOptions {
            enable_walker_management: true,
            ..Self::base()
        }
    }

    /// Base + walker management + shrink block size (Fig. 14, third bar).
    pub fn with_shrink_block() -> Self {
        EngineOptions {
            enable_shrink_block: true,
            ..Self::with_walker_management()
        }
    }

    /// All optimizations (Fig. 14, fourth bar) — same as `default()`.
    pub fn full() -> Self {
        Self::default()
    }

    /// The number of walkers a pool may hold for an app whose state takes
    /// `state_bytes` per walker, out of `total` walkers overall.
    ///
    /// Pool auto-sizing (Fig. 6's "Adjust"): walker pools may take at most
    /// a quarter of the budget, leaving the rest for block buffers and the
    /// pre-sample pool. A floor of 64 walkers keeps tiny budgets from
    /// serializing walk execution — but the floor is itself clamped so the
    /// pool's *bytes* never exceed half the budget, otherwise a large
    /// per-walker state under a small budget would make the reservation
    /// overshoot the limit outright.
    ///
    /// This is the single sizing rule shared by the sequential engine, its
    /// pool-capacity check and the parallel runner — it must not be
    /// re-derived at call sites.
    pub fn walker_pool_quota(&self, budget: &MemoryBudget, state_bytes: usize, total: u64) -> u64 {
        let state = state_bytes.max(1) as u64;
        let by_budget = budget.limit() / 4 / state;
        let hard_cap = (budget.limit() / 2 / state).max(1);
        (self.walker_pool_size as u64)
            .min(total.max(1))
            .min(by_budget.max(64))
            .min(hard_cap)
    }

    /// Effective compute nanoseconds for one step.
    pub fn step_cost(&self) -> u64 {
        (self.step_ns / self.threads.max(1)).max(1)
    }

    /// Effective compute nanoseconds for one pre-sample draw (also charged
    /// for direct on-block sampling).
    pub fn sample_cost(&self) -> u64 {
        (self.sample_ns / self.threads.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_ladder_is_cumulative() {
        let base = EngineOptions::base();
        assert!(!base.enable_walker_management);
        assert!(!base.enable_shrink_block);
        assert!(!base.enable_presample);
        let wm = EngineOptions::with_walker_management();
        assert!(wm.enable_walker_management && !wm.enable_shrink_block);
        let sb = EngineOptions::with_shrink_block();
        assert!(sb.enable_walker_management && sb.enable_shrink_block && !sb.enable_presample);
        let full = EngineOptions::full();
        assert!(full.enable_presample && full.enable_shrink_block);
    }

    #[test]
    fn costs_divide_by_threads() {
        let o = EngineOptions {
            step_ns: 160,
            threads: 16,
            ..Default::default()
        };
        assert_eq!(o.step_cost(), 10);
        let single = EngineOptions {
            step_ns: 160,
            threads: 1,
            ..Default::default()
        };
        assert_eq!(single.step_cost(), 160);
    }

    #[test]
    fn pool_quota_respects_budget_even_with_large_state() {
        let o = EngineOptions::default();
        let budget = MemoryBudget::new(64 << 10);
        // A 4 KiB walker state: the 64-walker floor alone would want
        // 256 KiB — four times the whole budget.
        let q = o.walker_pool_quota(&budget, 4096, 1_000);
        assert!(q >= 1);
        assert!(q * 4096 <= budget.limit() / 2);
        // Small states still enjoy the 64-walker floor.
        let q = o.walker_pool_quota(&budget, 16, 1_000);
        assert!(q >= 64);
        // Never more walkers than the app will ever generate.
        assert_eq!(o.walker_pool_quota(&budget, 16, 5), 5);
    }

    #[test]
    fn zero_threads_does_not_divide_by_zero() {
        let o = EngineOptions {
            threads: 0,
            ..Default::default()
        };
        assert!(o.step_cost() >= 1);
    }
}
