//! A real multithreaded NosWalker runner with a lock-free step kernel.
//!
//! The simulation engine ([`crate::NosWalkerEngine`]) models the paper's
//! concurrency deterministically through the pipeline clock. This module is
//! the *actual* concurrent implementation: a background loader thread
//! services hottest-block requests (with a small prefetch window) while a
//! pool of worker threads moves walkers over loaded blocks and the shared
//! pre-sample pool.
//!
//! The division of labour mirrors the paper's Fig. 6:
//!
//! * **coordinator** (caller thread): walker generation ②, bucket
//!   bookkeeping, hottest-block scheduling and prefetch top-up, refill
//!   dispatch ④;
//! * **loader thread** ①: block reads, up to `prefetch_depth` in flight
//!   beyond the demand load;
//! * **workers** ③: run the batched step kernel — resident-block walking,
//!   then per-bucket draining of the published pre-sample pool.
//!
//! # The published pre-sample pool
//!
//! Pre-sample buffers are *built privately* on a worker (a refill job,
//! serialized per block by a try-lock gate) and then *published* as an
//! immutable [`PublishedBuffer`] behind an `Arc`. Consumption is lock-free:
//! a worker acquires the `Arc` once per walker bucket and then claims
//! sampled slots in small batches — one `fetch_add` covers up to
//! [`EngineOptions::claim_batch`] hops once a vertex shows reuse inside
//! the bucket ([`PublishedBuffer::claim_batch`]). Slots the application
//! declines (e.g. restarts) return to the bucket's claim cache for the
//! next walker; slots still cached when the bucket retires are surfaced
//! as `claims_burned`, so `pool_attempts` stays conserved against
//! consumption, burn, and stalls (`DESIGN.md` §10, law 13).
//!
//! Refills are scheduled by *demand*: each block tallies claims and
//! stalls against its current generation
//! ([`crate::presample::BlockDemand`]), and the coordinator dispatches a
//! refill as soon as the remaining slots dip under a demand-derived low
//! watermark — proactively, while workers still chew on the round, not
//! only after the pool runs dry. The refill's slot budget is split across
//! blocks proportionally to that same demand signal. The per-slot mutex
//! of the sequential engine's pool never appears on the step path — the
//! only locks are the brief pointer swap at publish time and the pointer
//! clone at bucket-acquire time. See `DESIGN.md` §11 for the full
//! protocol and its ordering argument.
//!
//! # The simulated clock
//!
//! Wall-clock timing on a shared host measures the host, not the
//! architecture — so, like the sequential engine, this runner reports
//! `sim_ns` from a deterministic model: each round of walk jobs charges
//! `max(longest job, total work / workers)` of compute — priced with the
//! same per-thread [`EngineOptions::step_cost`] /
//! [`EngineOptions::sample_cost`] the sequential engine charges, so the
//! two `sim_ns` figures are directly comparable — and block loads flow
//! through a single-channel FIFO device timeline fed by the storage
//! device's own service times. `wall_ns` still reports honest wall time.
//! Walk *semantics* are identical to the sequential engine (same `Walk`
//! contract), which the tests check.

use crate::audit::{RunAudit, Trace, TraceEvent, TraceSink};
use crate::block::LoadedBlock;
use crate::clock::WallTimer;
use crate::disk_graph::{LoadError, OnDiskGraph};
use crate::engine::EngineError;
use crate::metrics::{LocalCounters, RunMetrics, SharedMetrics, StepSource};
use crate::options::EngineOptions;
use crate::presample::{plan_quotas, BatchClaim, BlockDemand, PreSampleBuffer, PublishedBuffer};
use crate::threaded::{BackgroundLoader, LoaderError};
use crate::walk::{Walk, WalkRng};
use noswalker_graph::partition::BlockId;
use noswalker_graph::VertexId;
use noswalker_storage::MemoryBudget;
use parking_lot::Mutex;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One block's slot in the published pool.
#[derive(Debug)]
struct PoolSlot {
    /// The current published generation, if any. Locked only to swap or
    /// clone the `Arc` — never while stepping walkers.
    published: Mutex<Option<Arc<PublishedBuffer>>>,
    /// Serializes refills per block: a contended gate means another worker
    /// is already rebuilding this buffer, so the loser just skips.
    refill_gate: Mutex<()>,
    /// Demand observed against the current generation (sampled claims and
    /// stalls since the last publish) — the low-watermark refill signal
    /// and the weight of this block's share of the refill budget.
    demand: BlockDemand,
    /// Visit cursors of the last *retired* generation, so a budget-pressure
    /// eviction does not erase the popularity history the next quota plan
    /// feeds on. Taken (and cleared) by the next refill. Deliberately NOT
    /// blended across healthy refills: walk demand here is non-stationary
    /// (walkers finish and move on), and measured stall rates are lower
    /// when quotas track only the latest generation's cursors.
    carried_weights: Mutex<Option<Vec<u32>>>,
    /// Set while a refill job for this block is queued or running, so the
    /// coordinator schedules at most one refill per block at a time.
    refill_pending: AtomicBool,
}

/// The published pre-sample pool: one slot per coarse block.
#[derive(Debug)]
struct SharedPool {
    slots: Vec<PoolSlot>,
    /// Bytes held by the currently published generations (in-flight reader
    /// `Arc`s briefly keep retired generations alive beyond this figure —
    /// the refill planner's budget fraction leaves slack for exactly
    /// that). Lets refills self-limit so the pool never squeezes the
    /// loader's block buffers into a budget failure.
    published_bytes: AtomicU64,
    /// The pool's total byte budget, fixed at run start: the memory
    /// budget minus the walker pool's hold and the loader's block working
    /// set, scaled by `presample_budget_fraction`. Refills split this
    /// figure demand-weighted; `published_bytes` must stay under it.
    byte_budget: u64,
}

impl SharedPool {
    fn new(num_blocks: usize, byte_budget: u64) -> Self {
        SharedPool {
            slots: (0..num_blocks)
                .map(|_| PoolSlot {
                    published: Mutex::new(None),
                    refill_gate: Mutex::new(()),
                    demand: BlockDemand::default(),
                    carried_weights: Mutex::new(None),
                    refill_pending: AtomicBool::new(false),
                })
                .collect(),
            published_bytes: AtomicU64::new(0),
            byte_budget,
        }
    }

    /// Clones the current generation's handle (one brief lock per walker
    /// bucket; all subsequent claims on the handle are lock-free).
    fn acquire(&self, b: BlockId) -> Option<Arc<PublishedBuffer>> {
        self.slots[b as usize].published.lock().clone()
    }

    /// Swaps in a freshly built generation, returning the old one.
    fn publish(&self, b: BlockId, buf: Arc<PublishedBuffer>) -> Option<Arc<PublishedBuffer>> {
        // The byte tally is an advisory planning input (refills size
        // their next share from it), never a synchronization edge; the
        // generation swap itself is ordered by the slot mutex.
        let added = buf.memory_bytes();
        // LINT-ALLOW(L10): mergeable advisory counter, see above.
        self.published_bytes.fetch_add(added, Ordering::Relaxed);
        let old = self.slots[b as usize].published.lock().replace(buf);
        if let Some(old) = &old {
            let freed = old.memory_bytes();
            // LINT-ALLOW(L10): same advisory byte tally as above.
            self.published_bytes.fetch_sub(freed, Ordering::Relaxed);
        }
        old
    }

    /// Retires the current generation (its memory reservation is released
    /// once the last outstanding `Arc` drops), snapshotting its visit
    /// cursors into the slot so the next refill still plans with the
    /// demand the eviction would otherwise erase.
    fn unpublish(&self, b: BlockId) -> Option<Arc<PublishedBuffer>> {
        let slot = &self.slots[b as usize];
        let buf = slot.published.lock().take();
        if let Some(buf) = &buf {
            *slot.carried_weights.lock() = Some(buf.visit_weights_snapshot());
            let freed = buf.memory_bytes();
            // LINT-ALLOW(L10): advisory byte tally, see `publish`.
            self.published_bytes.fetch_sub(freed, Ordering::Relaxed);
        }
        buf
    }

    /// Bytes currently committed to published generations. Refills cap
    /// their plans so this never exceeds the pool's budget share — the
    /// loader's block working set must never be squeezed by the pool,
    /// because a budget-pressure eviction darkens whole blocks (every
    /// claim on them stalls) until their next residency.
    fn published_bytes(&self) -> u64 {
        // LINT-ALLOW(L10): advisory byte tally, see `publish`.
        self.published_bytes.load(Ordering::Relaxed)
    }

    /// Takes the visit history saved by an eviction-time [`Self::unpublish`]
    /// (cleared so it feeds exactly one rebuild).
    fn take_carried_weights(&self, b: BlockId) -> Option<Vec<u32>> {
        self.slots[b as usize].carried_weights.lock().take()
    }

    /// The demand tally for block `b`, fed by the phase-B kernel and read
    /// by the refill planner.
    fn demand(&self, b: BlockId) -> &BlockDemand {
        &self.slots[b as usize].demand
    }

    /// Total demand pressure across all blocks — the denominator of the
    /// demand-weighted refill budget split.
    fn total_demand(&self) -> u64 {
        self.slots.iter().map(|s| s.demand.pressure()).sum()
    }

    /// The low-watermark refill policy (§3.3.2): a block wants a refill
    /// when it has no published generation at all, or when its remaining
    /// sampled slots dip under a watermark derived from the demand seen
    /// against the current generation. The watermark is clamped to
    /// `[cap/8, cap/2]`, so an idle block still refills when seven
    /// eighths drained and a hammered one refills no earlier than half —
    /// the refill always lands *before* walkers hit a dry pool.
    fn needs_refill(&self, b: BlockId) -> bool {
        let slot = &self.slots[b as usize];
        let Some(buf) = slot.published.lock().clone() else {
            return true;
        };
        let cap = buf.sampled_capacity();
        if cap == 0 {
            return false;
        }
        let watermark = slot.demand.pressure().clamp(cap / 8, cap / 2).max(1);
        buf.remaining_sampled() < watermark
    }

    /// Claims the right to schedule one refill job for `b`. Returns false
    /// while an earlier refill is still queued or running.
    fn try_begin_refill(&self, b: BlockId) -> bool {
        let pending = &self.slots[b as usize].refill_pending;
        // ORDERING: the Acquire success ordering pairs with the Release
        // store in `end_refill`, so the scheduler that wins the flag
        // observes everything the previous refill wrote (the swapped-in
        // generation and the reset demand tally) before dispatching the
        // next job; failure also loads Acquire so a losing check never
        // reads stale state either.
        let won = pending.compare_exchange(false, true, Ordering::Acquire, Ordering::Acquire);
        won.is_ok()
    }

    /// Re-arms refill scheduling for `b` once its refill job finished
    /// (whether or not it published a new generation).
    fn end_refill(&self, b: BlockId) {
        let pending = &self.slots[b as usize].refill_pending;
        // ORDERING: Release pairs with the Acquire compare-exchange in
        // `try_begin_refill`: the publish and the demand reset performed
        // by this refill happen-before the next refill of the same block.
        pending.store(false, Ordering::Release);
    }
}

/// Completed refill, reported back to the coordinator for tracing and for
/// charging the refill's compute into the simulated clock.
#[derive(Debug, Clone, Copy)]
struct RefillReport {
    block: BlockId,
    /// Sampled slot capacity of the published generation.
    slots: u64,
    /// Samples actually drawn while building it.
    draws: u64,
}

/// What a finished walk job hands back to the coordinator.
struct WalkOutcome<W> {
    /// Walkers that stalled on the pool and need re-bucketing.
    survivors: Vec<W>,
    /// Steps taken by this job (for the compute model).
    steps: u64,
    /// Direct sample draws by this job (on-block + raw; pre-drawn samples
    /// were already billed at refill time).
    samples: u64,
}

/// The deterministic performance model: a compute timeline (`now`) fed by
/// per-round job costs, and a single-channel FIFO device timeline
/// (`io_free_at`) fed by the storage device's service times.
#[derive(Debug, Default)]
struct ModelClock {
    now: u64,
    io_free_at: u64,
    stalled: u64,
    io_busy: u64,
}

impl ModelClock {
    /// Pushes a load issued at `issued_ns` through the device FIFO and
    /// returns its completion time.
    fn load_done(&mut self, issued_ns: u64, service_ns: u64) -> u64 {
        let start = self.io_free_at.max(issued_ns);
        let done = start + service_ns;
        self.io_free_at = done;
        self.io_busy += service_ns;
        done
    }

    /// Advances `now` to `t`, charging the wait as an I/O stall. Returns
    /// the stall interval when one actually occurred.
    fn wait_until(&mut self, t: u64) -> Option<(u64, u64)> {
        if t > self.now {
            let from = self.now;
            self.stalled += t - self.now;
            self.now = t;
            Some((from, t))
        } else {
            None
        }
    }

    /// Charges one round of concurrent jobs: bounded below by the longest
    /// job (critical path) and by total work spread over `workers`.
    fn charge_round(&mut self, job_costs: &[u64], workers: usize) {
        let longest = job_costs.iter().copied().max().unwrap_or(0);
        let total: u64 = job_costs.iter().sum();
        self.now += longest.max(total.div_ceil(workers.max(1) as u64));
    }
}

/// A real-thread NosWalker runner for first-order walks.
#[derive(Debug)]
pub struct ParallelRunner<A: Walk> {
    app: Arc<A>,
    graph: Arc<OnDiskGraph>,
    opts: EngineOptions,
    budget: Arc<MemoryBudget>,
}

impl<A: Walk + 'static> ParallelRunner<A> {
    /// Creates a runner.
    pub fn new(
        app: Arc<A>,
        graph: Arc<OnDiskGraph>,
        opts: EngineOptions,
        budget: Arc<MemoryBudget>,
    ) -> Self {
        ParallelRunner {
            app,
            graph,
            opts,
            budget,
        }
    }

    /// Runs to completion with `workers` walker-processing threads (plus
    /// the background loader thread).
    ///
    /// The returned metrics report modeled time in `sim_ns` (see the
    /// module docs) and honest wall-clock time in `wall_ns`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Budget`] / [`EngineError::Load`] as for the
    /// sequential engine.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn run(&self, seed: u64, workers: usize) -> Result<RunMetrics, EngineError> {
        self.run_with_sink(seed, workers, None)
    }

    /// Like [`ParallelRunner::run`], recording [`TraceEvent`]s into `sink`.
    ///
    /// Only the coordinator thread emits (loads, stalls, pool publishes,
    /// prefetch outcomes, run end); worker threads never touch the sink,
    /// so tracing adds no synchronization to the walking hot path. Refill
    /// completions reach the coordinator over a channel and are stamped
    /// when it drains them. Timestamps are modeled nanoseconds on the
    /// simulated clock.
    ///
    /// # Errors
    ///
    /// As for [`ParallelRunner::run`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn run_with_sink(
        &self,
        seed: u64,
        workers: usize,
        sink: Option<&mut dyn TraceSink>,
    ) -> Result<RunMetrics, EngineError> {
        let audit = RunAudit::begin(self.app.total_walkers(), &self.budget);
        let metrics = self.run_inner(seed, workers, Trace::from_option(sink))?;
        if cfg!(debug_assertions) {
            audit.verify(&metrics, &self.budget).assert_clean();
        }
        Ok(metrics)
    }

    fn run_inner(
        &self,
        seed: u64,
        workers: usize,
        mut trace: Trace<'_>,
    ) -> Result<RunMetrics, EngineError> {
        assert!(workers > 0, "need at least one worker");
        let wall = WallTimer::start();
        let num_blocks = self.graph.num_blocks();
        let total = self.app.total_walkers();
        let shared = Arc::new(SharedMetrics::default());
        let mut metrics = RunMetrics::default();
        let mut model = ModelClock::default();

        // Budget: the walker pool's share (see
        // `EngineOptions::walker_pool_quota`).
        let state = self.app.state_bytes().max(1) as u64;
        let cap = self
            .opts
            .walker_pool_quota(&self.budget, self.app.state_bytes(), total);
        let _pool_hold = self.budget.try_reserve(cap * state)?;

        // The pre-sample pool's fixed byte budget: whatever the walker
        // hold and the loader's block working set (the resident target
        // plus `prefetch_depth + 1` loads queued or in flight) leave of
        // the limit, scaled by the configured fraction (whose slack
        // covers retired generations briefly kept alive by in-flight
        // reader `Arc`s). Sized once here — where every other
        // subsystem's hold is known — so refills never squeeze the
        // loader into a budget failure, whose eviction fallback darkens
        // whole blocks.
        let max_block_bytes = self
            .graph
            .partition()
            .blocks()
            .iter()
            .map(|b| b.byte_len())
            .max()
            .unwrap_or(1)
            .max(1);
        let working_set = (self.opts.prefetch_depth as u64 + 1).saturating_mul(max_block_bytes);
        let headroom = self
            .budget
            .limit()
            .saturating_sub(cap * state)
            .saturating_sub(working_set);
        let pool_bytes = (headroom as f64 * self.opts.presample_budget_fraction) as u64;
        let pool = Arc::new(SharedPool::new(num_blocks, pool_bytes));

        // The loader queue holds the demand load plus the prefetch window.
        let prefetch_depth = self.opts.prefetch_depth as usize;
        let loader = BackgroundLoader::spawn(
            Arc::clone(&self.graph),
            Arc::clone(&self.budget),
            prefetch_depth + 1,
        );

        // Persistent worker threads. Walk jobs carry an Arc of the
        // resident block plus an owned chunk of walkers and report an
        // outcome back; refill jobs regenerate a block's published
        // pre-sample buffer asynchronously (the paper's background
        // pre-sampling ④).
        enum Job<W> {
            Walk(Arc<LoadedBlock>, Vec<W>),
            Refill(Arc<LoadedBlock>),
        }
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job<A::Walker>>();
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<WalkOutcome<A::Walker>>();
        let (refill_tx, refill_rx) = crossbeam::channel::unbounded::<RefillReport>();
        let mut worker_handles = Vec::with_capacity(workers);
        for wi in 0..workers {
            let app = Arc::clone(&self.app);
            let graph = Arc::clone(&self.graph);
            let pool = Arc::clone(&pool);
            let shared = Arc::clone(&shared);
            let budget = Arc::clone(&self.budget);
            let opts = self.opts.clone();
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let refill_tx = refill_tx.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("noswalker-worker-{wi}"))
                    .spawn(move || {
                        let mut wrng = WalkRng::seed_from_u64(
                            seed ^ (wi as u64 + 1).wrapping_mul(0x9E37_79B9),
                        );
                        while let Ok(job) = job_rx.recv() {
                            match job {
                                Job::Walk(block, walkers) => {
                                    let mut local = LocalCounters::default();
                                    let ctx = StepCtx {
                                        app: &*app,
                                        graph: &graph,
                                        block: block.as_ref(),
                                        pool: &pool,
                                        batch: opts.claim_batch,
                                    };
                                    let survivors =
                                        drive_batch(&ctx, &mut local, &mut wrng, walkers);
                                    let outcome = WalkOutcome {
                                        steps: local.steps_total(),
                                        samples: local.samples_total(),
                                        survivors,
                                    };
                                    local.flush(&shared);
                                    if res_tx.send(outcome).is_err() {
                                        break;
                                    }
                                }
                                Job::Refill(block) => {
                                    let b = block.info().id;
                                    if let Some(rep) = refill_block(
                                        &*app, &graph, &pool, &budget, &opts, &block, &mut wrng,
                                    ) {
                                        shared.add_presamples_filled(rep.draws);
                                        shared.add_pool_publish();
                                        let _ = refill_tx.send(rep);
                                    }
                                    // Re-arm scheduling even when nothing
                                    // was published (gate lost, above the
                                    // watermark, or out of budget).
                                    pool.end_refill(b);
                                }
                            }
                        }
                    })
                    // LINT-ALLOW(L5): thread spawning fails only on OS
                    // resource exhaustion, which has no recovery path here.
                    .expect("spawning a worker thread"),
            );
        }
        drop(job_rx);
        drop(res_tx);
        drop(refill_tx);

        // Coordinator-owned state.
        let mut rng = WalkRng::seed_from_u64(seed);
        let mut buckets: Vec<Vec<A::Walker>> = vec![Vec::new(); num_blocks];
        let mut live = 0u64;
        let mut next_id = 0u64;
        // Requests handed to the loader, oldest first: (block, is_prefetch,
        // modeled issue time). Results come back in the same order.
        let mut inflight: VecDeque<(BlockId, bool, u64)> = VecDeque::new();

        let bucket_of = |app: &A, w: &A::Walker, graph: &OnDiskGraph| -> usize {
            graph.block_of(app.location(w)) as usize
        };
        // The hottest block with walkers waiting that is not already on
        // its way from the loader.
        let hottest = |buckets: &[Vec<A::Walker>],
                       inflight: &VecDeque<(BlockId, bool, u64)>|
         -> Option<BlockId> {
            buckets
                .iter()
                .enumerate()
                .filter(|&(i, v)| {
                    !v.is_empty() && !inflight.iter().any(|&(b, _, _)| b as usize == i)
                })
                .max_by_key(|(_, v)| v.len())
                .map(|(i, _)| i as BlockId)
        };

        // Inline generation into the coordinator loop.
        macro_rules! generate {
            () => {
                while live < cap && next_id < total {
                    let w = self.app.generate(next_id, &mut rng);
                    next_id += 1;
                    if !self.app.is_active(&w) {
                        let cancelled = self.app.is_cancelled(&w);
                        self.app.on_terminate(&w);
                        if cancelled {
                            shared.add_cancelled(1);
                        } else {
                            shared.add_finished(1);
                        }
                        continue;
                    }
                    let b = bucket_of(&self.app, &w, &self.graph);
                    buckets[b].push(w);
                    live += 1;
                }
            };
        }

        generate!();
        // Private stream for warm-up pre-sampling below: the coordinator's
        // `rng` is the walker-generation stream and must not be perturbed
        // by how many blocks happened to need a first generation.
        let mut warm_rng = WalkRng::seed_from_u64(seed ^ 0xD6E8_FEB8_6659_FD93);
        // Consecutive budget-failed loads tolerated before giving up: one
        // full in-flight window can fail from a single scarcity episode
        // (the loader computed those results before any eviction), plus
        // slack for a refill racing the retry. Reset on every delivery.
        let evict_retries = prefetch_depth + 3;
        let mut retries_left = evict_retries;
        while live > 0 || next_id < total {
            // Demand-schedule the hottest block when nothing is in flight.
            if inflight.is_empty() {
                let Some(b) = hottest(&buckets, &inflight) else {
                    break;
                };
                loader.request(b).map_err(loader_err)?;
                inflight.push_back((b, false, model.now));
            }
            let Some((target, was_prefetch, issued_ns)) = inflight.pop_front() else {
                break;
            };
            let loaded = match loader.recv() {
                Ok(l) => {
                    retries_left = evict_retries;
                    l
                }
                // Budget pressure: the published pre-sample pool is the
                // only memory the coordinator can reclaim (the sequential
                // engine's block cache evicts in the same spot). Retire
                // the *coldest half* of the published generations first —
                // readers holding an Arc finish their bucket first; the
                // rest of the reservations free immediately — so the hot
                // blocks keep their buffers and, crucially, the visit
                // cursors the next quota plan feeds on. Only a repeat
                // failure escalates to retiring everything. Then re-queue
                // the failed load behind the in-flight window so result
                // order stays FIFO.
                Err(LoaderError::Load(LoadError::Budget(_))) if retries_left > 0 => {
                    let first_try = retries_left == evict_retries;
                    retries_left -= 1;
                    if first_try {
                        // Mostly-drained generations hold memory but serve
                        // little; fresh full ones are the pool's working
                        // capital. (The eviction keeps every generation's
                        // visit cursors via `unpublish`.) Keys are sampled
                        // once up front: workers keep ticking the claim
                        // cursors while we sort, and a comparator that
                        // re-reads them would not be a total order.
                        let mut victims: Vec<(u64, BlockId)> = (0..num_blocks as BlockId)
                            .map(|b| (pool.acquire(b).map_or(0, |buf| buf.remaining_sampled()), b))
                            .collect();
                        victims.sort_unstable();
                        for &(_, b) in &victims[..num_blocks.div_ceil(2)] {
                            drop(pool.unpublish(b));
                        }
                    } else {
                        for b in 0..num_blocks {
                            drop(pool.unpublish(b as BlockId));
                        }
                    }
                    loader.request(target).map_err(loader_err)?;
                    inflight.push_back((target, was_prefetch, model.now));
                    continue;
                }
                Err(e) => return Err(loader_err(e)),
            };
            let done_ns = model.load_done(issued_ns, loaded.service_ns);
            let block = Arc::new(loaded.block);
            debug_assert_eq!(block.info().id, target);
            let bytes = block.info().byte_len();

            if buckets[target as usize].is_empty() {
                // Nobody wants this block any more: account the I/O and
                // move on (only prefetches can end up here).
                if bytes > 0 {
                    metrics.record_coarse_load(bytes);
                    trace.emit(|| TraceEvent::CoarseLoad {
                        block: target,
                        bytes,
                        cache_hit: false,
                        at_ns: done_ns,
                    });
                }
                if was_prefetch {
                    metrics.record_prefetch_wasted();
                    trace.emit(|| TraceEvent::Prefetch {
                        block: target,
                        hit: false,
                        at_ns: done_ns,
                    });
                }
                continue;
            }

            if let Some((from, until)) = model.wait_until(done_ns) {
                trace.emit(|| TraceEvent::Stall {
                    waiting_for: Some(target),
                    from_ns: from,
                    until_ns: until,
                });
            }
            if bytes > 0 {
                metrics.record_coarse_load(bytes);
                let at = model.now;
                trace.emit(|| TraceEvent::CoarseLoad {
                    block: target,
                    bytes,
                    cache_hit: false,
                    at_ns: at,
                });
            }
            if was_prefetch {
                metrics.record_prefetch_hit();
                let at = model.now;
                trace.emit(|| TraceEvent::Prefetch {
                    block: target,
                    hit: true,
                    at_ns: at,
                });
            }

            // Warm-up pre-sampling: a block delivered with no published
            // generation would push every walker of its first dispatch
            // through the raw-sampling deferral path. The load just
            // arrived and the workers are idle, so build the first
            // generation here on the coordinator before fanning out; the
            // draw cost is billed into this round like any refill.
            let mut warm: Option<RefillReport> = None;
            if self.opts.enable_presample
                && pool.acquire(target).is_none()
                && pool.try_begin_refill(target)
            {
                warm = refill_block(
                    &*self.app,
                    &self.graph,
                    &pool,
                    &self.budget,
                    &self.opts,
                    &block,
                    &mut warm_rng,
                );
                pool.end_refill(target);
                if let Some(rep) = &warm {
                    shared.add_presamples_filled(rep.draws);
                    shared.add_pool_publish();
                    let at = model.now;
                    let (blk, slots, draws) = (rep.block, rep.slots, rep.draws);
                    trace.emit(|| TraceEvent::PoolPublish {
                        block: blk,
                        slots,
                        draws,
                        at_ns: at,
                    });
                }
            }

            // Fan the block's walkers out to the persistent workers. Chunks
            // are kept coarse (at most one per worker) so per-job overhead
            // stays negligible next to the walking itself.
            let batch = std::mem::take(&mut buckets[target as usize]);
            let batch_len = batch.len() as u64;
            let mut jobs = 0;
            if !batch.is_empty() {
                let chunk = batch.len().div_ceil(workers).max(64);
                let mut batch = batch;
                while !batch.is_empty() {
                    let tail = batch.split_off(batch.len().saturating_sub(chunk));
                    job_tx
                        .send(Job::Walk(Arc::clone(&block), tail))
                        .map_err(|_| worker_died())?;
                    jobs += 1;
                }
            }

            // Top up the prefetch window while the workers chew: the
            // loader reads ahead into the blocks that will most likely be
            // scheduled next. `try_request` never blocks the coordinator.
            while inflight.len() < prefetch_depth {
                let Some(nb) = hottest(&buckets, &inflight) else {
                    break;
                };
                match loader.try_request(nb) {
                    Ok(true) => inflight.push_back((nb, true, model.now)),
                    Ok(false) => break,
                    Err(e) => return Err(loader_err(e)),
                }
            }

            // Proactive refill (④): if the block's buffer is already
            // under its demand watermark, schedule the rebuild while the
            // workers still chew on this round's walkers. The pending
            // flag keeps refills single-flight per block.
            if self.opts.enable_presample
                && pool.needs_refill(target)
                && pool.try_begin_refill(target)
            {
                job_tx
                    .send(Job::Refill(Arc::clone(&block)))
                    .map_err(|_| worker_died())?;
            }

            let mut survivors = Vec::new();
            let mut job_costs: Vec<u64> = Vec::with_capacity(jobs + 1);
            if let Some(rep) = &warm {
                job_costs.push(rep.draws * self.opts.sample_cost());
            }
            for _ in 0..jobs {
                let out = res_rx.recv().map_err(|_| worker_died())?;
                job_costs.push(
                    out.steps * self.opts.step_cost() + out.samples * self.opts.sample_cost(),
                );
                survivors.extend(out.survivors);
            }
            // Refills that completed since the last round bill their
            // drawing work into this round and surface as publishes.
            while let Ok(rep) = refill_rx.try_recv() {
                job_costs.push(rep.draws * self.opts.sample_cost());
                let at = model.now;
                trace.emit(|| TraceEvent::PoolPublish {
                    block: rep.block,
                    slots: rep.slots,
                    draws: rep.draws,
                    at_ns: at,
                });
            }
            model.charge_round(&job_costs, workers);

            let finished_now = batch_len - survivors.len() as u64;
            live -= finished_now;
            for w in survivors {
                let b = bucket_of(&self.app, &w, &self.graph);
                buckets[b].push(w);
            }

            // Post-round check: this round's phase-B claims may have
            // pushed the buffer under its watermark; schedule the rebuild
            // before the block leaves memory (the Arc keeps the data
            // alive until the refill job runs).
            if self.opts.enable_presample
                && pool.needs_refill(target)
                && pool.try_begin_refill(target)
            {
                job_tx
                    .send(Job::Refill(Arc::clone(&block)))
                    .map_err(|_| worker_died())?;
            }
            drop(block);
            generate!();
        }

        // Drain prefetches still in flight so their I/O is accounted and
        // the loader can shut down cleanly.
        while let Some((b, was_prefetch, issued_ns)) = inflight.pop_front() {
            let loaded = match loader.recv() {
                Ok(l) => l,
                // A prefetch that lost the budget race delivered nothing:
                // no walker is waiting (the run is over), so it is just a
                // wasted prefetch, not a run failure.
                Err(LoaderError::Load(LoadError::Budget(_))) => {
                    if was_prefetch {
                        metrics.record_prefetch_wasted();
                        let at = model.now;
                        trace.emit(|| TraceEvent::Prefetch {
                            block: b,
                            hit: false,
                            at_ns: at,
                        });
                    }
                    continue;
                }
                Err(e) => return Err(loader_err(e)),
            };
            let done_ns = model.load_done(issued_ns, loaded.service_ns);
            let bytes = loaded.block.info().byte_len();
            if bytes > 0 {
                metrics.record_coarse_load(bytes);
                trace.emit(|| TraceEvent::CoarseLoad {
                    block: b,
                    bytes,
                    cache_hit: false,
                    at_ns: done_ns,
                });
            }
            if was_prefetch {
                metrics.record_prefetch_wasted();
                trace.emit(|| TraceEvent::Prefetch {
                    block: b,
                    hit: false,
                    at_ns: done_ns,
                });
            }
        }

        drop(job_tx);
        for h in worker_handles {
            let _ = h.join();
        }
        // Publishes whose reports arrived after the coordinator's last
        // drain still get traced (their draws were already counted by the
        // worker; bill the compute too).
        let mut tail_costs: Vec<u64> = Vec::new();
        while let Ok(rep) = refill_rx.try_recv() {
            tail_costs.push(rep.draws * self.opts.sample_cost());
            let at = model.now;
            trace.emit(|| TraceEvent::PoolPublish {
                block: rep.block,
                slots: rep.slots,
                draws: rep.draws,
                at_ns: at,
            });
        }
        if !tail_costs.is_empty() {
            model.charge_round(&tail_costs, workers);
        }

        shared.drain_into(&mut metrics);
        metrics.set_peak_memory(self.budget.peak());
        metrics.derive_edges_loaded(self.graph.format().record_bytes() as u64);
        metrics.finalize_wall(&wall);
        metrics.set_sim_times(model.now.max(1), model.stalled, model.io_busy);
        let (steps, walkers_finished, at) = (metrics.steps, metrics.walkers_finished, model.now);
        trace.emit(|| TraceEvent::RunEnd {
            steps,
            walkers_finished,
            at_ns: at,
        });
        Ok(metrics)
    }
}

/// Rebuilds a block's pre-sample buffer and publishes it (run on a worker
/// thread; the block's `refill_gate` serializes concurrent refills —
/// losers skip rather than queue). The build happens entirely on private
/// data; readers of the previous generation are never blocked.
///
/// Returns `None` when nothing was published (gate contended, remaining
/// slots still above the demand watermark, or no budget even after
/// retiring the old generation).
fn refill_block<A: Walk>(
    app: &A,
    graph: &OnDiskGraph,
    pool: &SharedPool,
    budget: &Arc<MemoryBudget>,
    opts: &EngineOptions,
    block: &LoadedBlock,
    rng: &mut WalkRng,
) -> Option<RefillReport> {
    let info = *block.info();
    let b = info.id;
    let nv = info.num_vertices() as usize;
    if nv == 0 {
        return None;
    }
    // LINT-ALLOW(L11): the refill gate must span the whole buffer build —
    // holding it is what makes refills single-flight per block. It is a
    // non-blocking try_lock: losers return immediately and steppers never
    // wait on it, so the loop it crosses runs on private data only.
    let _gate = pool.slots[b as usize].refill_gate.try_lock()?;
    let demand = pool.demand(b);
    // Carry the previous generation's visit counters forward: claims count
    // both served steps and overflow stalls, which is exactly the demand
    // signal `plan_quotas` wants (§3.3.2). The old generation's footprint
    // counts as reclaimable headroom below — publishing its successor
    // retires it.
    let (weights, own_bytes): (Vec<u32>, u64) = match pool.acquire(b) {
        Some(prev) => {
            let cap = prev.sampled_capacity();
            if cap > 0 {
                // Re-check the watermark under the gate: the coordinator's
                // `needs_refill` ran earlier and demand may have moved.
                let watermark = demand.pressure().clamp(cap / 8, cap / 2).max(1);
                if prev.remaining_sampled() >= watermark {
                    return None; // comfortably above the watermark
                }
            }
            (prev.visit_weights_snapshot(), prev.memory_bytes())
        }
        // Evicted under budget pressure: plan from the cursors the retired
        // generation saved on its way out (zeros only on a true first
        // build).
        None => (
            pool.take_carried_weights(b)
                .filter(|w| w.len() == nv)
                .unwrap_or_else(|| vec![0; nv]),
            0,
        ),
    };
    let degrees: Vec<u64> = (0..nv)
        .map(|i| graph.degree(info.vertex_start + i as VertexId))
        .collect();
    // Demand-weighted split of the *stable* pool budget fixed at run
    // start. Sizing shares from `budget.available()` self-throttles: once
    // every block holds a published generation, "available" is only the
    // slack between generations, so each refill shrinks towards the
    // metadata floor and the pool starves at ~100 slots per publish.
    let total_budget = pool.byte_budget;
    // A block's share is proportional to the pressure it reported since
    // its last publish, clamped to [even/4, total/2] so no block starves
    // and none monopolizes — then capped by *need*: twice the claims the
    // last generation actually saw (plus metadata), so a block whose
    // relative pressure is high only because the run just started cannot
    // grab half the pool, starve the loader, and trigger the mass-retire
    // fallback that wipes every block's visit history. With no demand
    // signal yet, fall back to an even split.
    let meta = nv as u64 * 9 + 4;
    let even = total_budget / graph.num_blocks().max(1) as u64;
    let total_demand = pool.total_demand();
    let pressure = demand.pressure();
    let share = if total_demand == 0 || pressure == 0 {
        even
    } else {
        let s = (total_budget as u128 * pressure as u128 / total_demand as u128) as u64;
        let need = meta + pressure.saturating_mul(8);
        s.clamp(even / 4, total_budget / 2).min(need)
    };
    // Never plan past what is actually reservable right now: the free
    // budget plus this block's own generation (retired on publish). The
    // stable split says what the block *deserves*; the headroom says what
    // the run can *afford* this instant. The pool additionally
    // self-limits to `total_budget` across all generations — without
    // that cap the pool creeps into the loader's working set, the next
    // load fails on budget pressure, and the eviction fallback darkens
    // half the pool (every claim on an unpublished block is a stall
    // until its next residency).
    let pool_free = total_budget
        .saturating_sub(pool.published_bytes())
        .saturating_add(own_bytes);
    let avail = share
        .min(pool_free)
        .min(budget.available().saturating_add(own_bytes));
    if avail <= meta {
        return None;
    }
    let plan = plan_quotas(
        &degrees,
        &weights,
        (avail - meta) / 4,
        opts.low_degree_threshold,
        opts.alias_degree_threshold,
        opts.presample_cap_per_vertex,
    );
    if plan.total_slots == 0 {
        return None;
    }
    let bytes = PreSampleBuffer::planned_bytes(&plan, false);
    let reservation = match budget.try_reserve(bytes) {
        Ok(r) => r,
        Err(_) => {
            // Retire the old generation to free its reservation (readers
            // holding an Arc keep it alive until they finish their
            // bucket), then retry once.
            drop(pool.unpublish(b));
            budget.try_reserve(bytes).ok()?
        }
    };
    let (mut buf, draws) = PreSampleBuffer::build(
        info.vertex_start,
        &plan,
        false,
        |v| {
            // LINT-ALLOW(L5): the quota planner only covers block vertices.
            let view = block.vertex_edges(graph, v).expect("vertex in block");
            app.sample(&view, rng)
        },
        |v, edges, _| {
            // LINT-ALLOW(L5): the quota planner only covers block vertices.
            let view = block.vertex_edges(graph, v).expect("vertex in block");
            for i in 0..view.degree() {
                edges.push(view.target(i));
            }
        },
    );
    buf.set_reservation(reservation);
    drop(pool.publish(b, Arc::new(buf.into_published())));
    // A fresh generation starts with a clean demand tally: the watermark
    // should reflect pressure against *this* buffer, not its ancestors.
    demand.reset();
    Some(RefillReport {
        block: b,
        slots: plan.total_slots,
        draws,
    })
}

fn loader_err(e: crate::threaded::LoaderError) -> EngineError {
    match e {
        crate::threaded::LoaderError::Load(l) => EngineError::Load(l),
        crate::threaded::LoaderError::Disconnected => {
            EngineError::Load(crate::disk_graph::LoadError::Device(
                noswalker_storage::DeviceError::Io("background loader disconnected".into()),
            ))
        }
    }
}

/// The error reported when a worker thread exits early (its channel
/// endpoint hung up), e.g. after a panic in application code.
fn worker_died() -> EngineError {
    EngineError::Load(crate::disk_graph::LoadError::Device(
        noswalker_storage::DeviceError::Io("a worker thread died mid-run".into()),
    ))
}

/// The shared, read-only context one walk job steps against.
struct StepCtx<'a, A: Walk> {
    app: &'a A,
    graph: &'a OnDiskGraph,
    block: &'a LoadedBlock,
    pool: &'a SharedPool,
    /// Sampled slots to claim per atomic RMW once a vertex shows reuse
    /// inside a bucket (see [`EngineOptions::claim_batch`]).
    batch: u32,
}

/// Why a walker stopped moving on the resident block.
enum OnBlock {
    /// The walk ended (length reached or dead end); already finalized.
    Terminated,
    /// The walker stepped off the resident block (still active, not at a
    /// dead end).
    Left,
}

/// Finalizes a finished walker, attributing a cancellation to the
/// cancelled counter so the walker-completion law stays balanced.
fn finish<A: Walk>(app: &A, local: &mut LocalCounters, w: A::Walker) {
    let cancelled = app.is_cancelled(&w);
    app.on_terminate(&w);
    if cancelled {
        local.record_cancelled();
    } else {
        local.record_finished();
    }
}

/// Moves one walker as far as the resident block carries it.
fn drive_on_block<A: Walk>(
    ctx: &StepCtx<'_, A>,
    local: &mut LocalCounters,
    rng: &mut WalkRng,
    w: &mut A::Walker,
) -> OnBlock {
    loop {
        if !ctx.app.is_active(w) {
            return OnBlock::Terminated;
        }
        let loc = ctx.app.location(w);
        if ctx.graph.degree(loc) == 0 {
            return OnBlock::Terminated;
        }
        let Some(view) = ctx.block.vertex_edges(ctx.graph, loc) else {
            return OnBlock::Left;
        };
        let dst = ctx.app.sample_for(w, &view, rng);
        ctx.app.action(w, dst, rng);
        local.record_step(StepSource::Block);
    }
}

/// A batch of claimed sampled slots being served to one bucket's walkers.
struct Cached<'a> {
    dsts: &'a [VertexId],
    next: usize,
}

impl Cached<'_> {
    /// Serves the next claimed slot, if one is left.
    fn pop(&mut self) -> Option<VertexId> {
        let d = self.dsts.get(self.next).copied();
        if d.is_some() {
            self.next += 1;
        }
        d
    }

    /// Returns the most recently popped slot (the app declined the hop),
    /// so the next walker at this vertex re-serves it instead of burning
    /// a fresh claim.
    fn unpop(&mut self) {
        self.next = self.next.saturating_sub(1);
    }

    /// Claimed slots never served — burned when the bucket retires.
    fn leftover(&self) -> u64 {
        (self.dsts.len() - self.next) as u64
    }
}

/// The batched step kernel: runs a whole chunk of walkers to quiescence.
///
/// Alternates two phases until no walker can move: (A) every walker on the
/// resident block runs to exhaustion against the in-memory edges; (B) the
/// walkers that left are grouped by destination block and each group
/// drains the published pre-sample pool — *one* buffer acquire per group,
/// then lock-free batched [`PublishedBuffer::claim_batch`]es. The first
/// claim for a vertex takes a single slot; once a vertex shows reuse
/// inside the bucket (its cache entry ran dry), claims escalate to
/// [`StepCtx::batch`] slots per RMW, amortizing cursor traffic on hot
/// vertices while bounding tail waste on cold ones. Slots the app
/// declines (e.g. restarts) are returned to the cache; slots still cached
/// when the bucket retires are recorded as `claims_burned`, keeping
/// `pool_attempts == presamples_consumed + claims_burned + pool_stalls`
/// conserved. Walkers that land back on the resident block return to
/// phase A; walkers that hop to a third block join that bucket for the
/// next phase-B sweep.
///
/// Returns the walkers the pool could not move — the coordinator
/// re-buckets them for a future block schedule. Two causes are counted
/// apart: a claim against a live generation whose slots ran dry is a
/// *stall* ([`LocalCounters::record_pool_stall`], a quota-planning miss),
/// while a group whose block has no published generation at all *defers*
/// ([`LocalCounters::record_pool_deferrals`] — nothing existed to claim
/// from, so it is not a pool attempt). Both are tallied into the block's
/// [`BlockDemand`], so refill scheduling and quota planning see the full
/// demand signal either way.
fn drive_batch<A: Walk>(
    ctx: &StepCtx<'_, A>,
    local: &mut LocalCounters,
    rng: &mut WalkRng,
    walkers: Vec<A::Walker>,
) -> Vec<A::Walker> {
    let resident_id = ctx.block.info().id;
    let mut resident = walkers;
    let mut buckets: BTreeMap<BlockId, Vec<A::Walker>> = BTreeMap::new();
    let mut stalled = Vec::new();
    while !resident.is_empty() || !buckets.is_empty() {
        // Phase A: the resident block serves from memory.
        for mut w in std::mem::take(&mut resident) {
            match drive_on_block(ctx, local, rng, &mut w) {
                OnBlock::Terminated => finish(ctx.app, local, w),
                OnBlock::Left => {
                    let b = ctx.graph.block_of(ctx.app.location(&w));
                    buckets.entry(b).or_default().push(w);
                }
            }
        }
        // Phase B: each destination bucket drains the published pool.
        for (b, group) in std::mem::take(&mut buckets) {
            let demand = ctx.pool.demand(b);
            let Some(buf) = ctx.pool.acquire(b) else {
                // No generation published for this block at all: there is
                // no pool to claim from, so the group *defers* to the
                // block's next residency rather than stalling a claim.
                // The demand tally still sees the visits — absence of a
                // generation is exactly what the refill scheduler must
                // learn about.
                demand.note_stalls(group.len() as u64);
                local.record_pool_deferrals(group.len() as u64);
                stalled.extend(group);
                continue;
            };
            // Per-bucket claim cache: batched claims land here and are
            // served slot by slot across the bucket's walkers.
            let mut cache: BTreeMap<VertexId, Cached<'_>> = BTreeMap::new();
            let mut claimed = 0u64;
            let mut stalls = 0u64;
            'walkers: for mut w in group {
                loop {
                    let loc = ctx.app.location(&w);
                    let mut served = cache.get_mut(&loc).and_then(Cached::pop);
                    if served.is_none() {
                        // First claim for a vertex takes one slot; a dry
                        // cache entry is evidence of reuse and escalates
                        // to a full batch.
                        let n = if cache.contains_key(&loc) {
                            ctx.batch
                        } else {
                            1
                        };
                        match buf.claim_batch(loc, n) {
                            BatchClaim::Sampled(dsts) => {
                                local.record_pool_attempts(dsts.len() as u64);
                                claimed += dsts.len() as u64;
                                let mut c = Cached { dsts, next: 0 };
                                served = c.pop();
                                cache.insert(loc, c);
                            }
                            BatchClaim::Raw(view) => {
                                let dst = ctx.app.sample_for(&mut w, &view, rng);
                                ctx.app.action(&mut w, dst, rng);
                                local.record_step(StepSource::Raw);
                            }
                            BatchClaim::Stalled => {
                                local.record_pool_stall();
                                stalls += 1;
                                stalled.push(w);
                                continue 'walkers;
                            }
                        }
                    }
                    if let Some(dst) = served {
                        // A slot only counts as consumed when the app
                        // really took the step; a declined hop (e.g. a
                        // restart) returns the slot to the cache for the
                        // next walker at this vertex.
                        if ctx.app.action(&mut w, dst, rng) {
                            local.record_presample_consumed();
                        } else if let Some(c) = cache.get_mut(&loc) {
                            c.unpop();
                        }
                        local.record_step(StepSource::PreSample);
                    }
                    if !ctx.app.is_active(&w) {
                        finish(ctx.app, local, w);
                        continue 'walkers;
                    }
                    let nloc = ctx.app.location(&w);
                    if ctx.graph.degree(nloc) == 0 {
                        finish(ctx.app, local, w);
                        continue 'walkers;
                    }
                    let nb = ctx.graph.block_of(nloc);
                    if nb == resident_id {
                        resident.push(w);
                        continue 'walkers;
                    }
                    if nb != b {
                        buckets.entry(nb).or_default().push(w);
                        continue 'walkers;
                    }
                    // Still on block `b`: serve again from the cache or
                    // the buffer we already hold.
                }
            }
            // Bucket retires: burn the claimed-but-unserved slots so the
            // claim-conservation law stays balanced, and report demand.
            let leftover: u64 = cache.values().map(Cached::leftover).sum();
            if leftover > 0 {
                local.record_claims_burned(leftover);
            }
            demand.note_claims(claimed);
            if stalls > 0 {
                demand.note_stalls(stalls);
            }
        }
    }
    stalled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::MemorySink;
    use noswalker_graph::generators;
    use noswalker_storage::{SimSsd, SsdProfile};
    use std::sync::atomic::{AtomicU64 as A64, Ordering};

    #[derive(Debug)]
    struct Basic {
        walkers: u64,
        length: u32,
        n: u32,
        visits: A64,
    }
    #[derive(Debug, Clone)]
    struct W {
        at: u32,
        step: u32,
    }
    impl Walk for Basic {
        type Walker = W;
        fn total_walkers(&self) -> u64 {
            self.walkers
        }
        fn generate(&self, i: u64, _r: &mut WalkRng) -> W {
            W {
                at: (i % self.n as u64) as u32,
                step: 0,
            }
        }
        fn location(&self, w: &W) -> u32 {
            w.at
        }
        fn is_active(&self, w: &W) -> bool {
            w.step < self.length
        }
        fn sample(&self, v: &noswalker_graph::layout::VertexEdges<'_>, r: &mut WalkRng) -> u32 {
            crate::walk::uniform_sample(v, r)
        }
        fn action(&self, w: &mut W, next: u32, _r: &mut WalkRng) -> bool {
            self.visits.fetch_add(1, Ordering::Relaxed);
            w.at = next;
            w.step += 1;
            true
        }
    }

    fn runner(walkers: u64) -> (Arc<Basic>, ParallelRunner<Basic>) {
        let csr = generators::uniform_degree(512, 8, 7);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        let app = Arc::new(Basic {
            walkers,
            length: 9,
            n: 512,
            visits: A64::new(0),
        });
        let r = ParallelRunner::new(
            Arc::clone(&app),
            graph,
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        );
        (app, r)
    }

    #[test]
    fn completes_all_walkers_with_multiple_threads() {
        let (app, r) = runner(5000);
        let m = r.run(3, 4).unwrap();
        assert_eq!(m.walkers_finished, 5000);
        // Uniform graph, no dead ends: exact step count.
        assert_eq!(m.steps, 5000 * 9);
        assert_eq!(app.visits.load(Ordering::Relaxed), m.steps);
        assert!(m.wall_ns > 0);
        assert!(m.sim_ns > 0);
    }

    #[test]
    fn single_thread_matches_semantics() {
        let (app, r) = runner(800);
        let m = r.run(5, 1).unwrap();
        assert_eq!(m.walkers_finished, 800);
        assert_eq!(m.steps, 800 * 9);
        assert_eq!(app.visits.load(Ordering::Relaxed), m.steps);
    }

    #[test]
    fn presamples_are_used() {
        let (_, r) = runner(20_000);
        let m = r.run(7, 4).unwrap();
        assert!(
            m.steps_on_presample + m.steps_on_raw > 0,
            "the shared pre-sample pool should serve some steps"
        );
        assert!(
            m.pool_publishes > 0,
            "refills should publish at least one generation"
        );
    }

    #[test]
    fn budget_violation_is_reported() {
        let csr = generators::uniform_degree(512, 8, 7);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        let app = Arc::new(Basic {
            walkers: 100,
            length: 3,
            n: 512,
            visits: A64::new(0),
        });
        let r = ParallelRunner::new(app, graph, EngineOptions::default(), MemoryBudget::new(64));
        assert!(r.run(1, 2).is_err());
    }

    #[test]
    fn tight_budget_evicts_published_pool_instead_of_failing() {
        // A power-law graph under all-raw retention makes published
        // buffers nearly as large as the blocks they mirror, so on a
        // tight budget they starve demand loads mid-run. The coordinator
        // must retire published generations and retry the load — the
        // sequential engine's eviction behaviour — not fail the run.
        let csr = generators::rmat(10, 10, generators::RmatParams::default(), 19);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        let app = Arc::new(Basic {
            walkers: 2000,
            length: 8,
            n: 1024,
            visits: A64::new(0),
        });
        let opts = EngineOptions {
            low_degree_threshold: u32::MAX,
            ..EngineOptions::default()
        };
        let r = ParallelRunner::new(Arc::clone(&app), graph, opts, MemoryBudget::new(24 << 10));
        let m = r.run(17, 2).expect("tight budget must evict, not fail");
        assert_eq!(m.walkers_finished + m.walkers_cancelled, 2000);
    }

    #[test]
    fn trace_carries_pool_and_prefetch_events() {
        let (_, r) = runner(20_000);
        let mut sink = MemorySink::default();
        let m = r.run_with_sink(11, 4, Some(&mut sink)).unwrap();
        let publishes = sink
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::PoolPublish { .. }))
            .count() as u64;
        assert_eq!(publishes, m.pool_publishes);
        let (hits, wasted) = sink.events.iter().fold((0u64, 0u64), |(h, w), e| match e {
            TraceEvent::Prefetch { hit: true, .. } => (h + 1, w),
            TraceEvent::Prefetch { hit: false, .. } => (h, w + 1),
            _ => (h, w),
        });
        assert_eq!(hits, m.prefetch_hits);
        assert_eq!(wasted, m.prefetch_wasted);
    }

    #[test]
    fn watermark_schedules_refill_before_depletion() {
        let pool = SharedPool::new(1, 1 << 20);
        assert!(
            pool.needs_refill(0),
            "an unpublished slot always wants a refill"
        );
        let degrees = vec![100u64; 4];
        let weights = vec![1u32; 4];
        let plan = plan_quotas(&degrees, &weights, 64, 0, u32::MAX, 64);
        let (buf, _) = PreSampleBuffer::build(0, &plan, false, |_| 1, |_, _, _| unreachable!());
        pool.publish(0, Arc::new(buf.into_published()));
        assert!(
            !pool.needs_refill(0),
            "a fresh generation sits above the watermark"
        );
        let buf = pool.acquire(0).unwrap();
        let cap = buf.sampled_capacity();
        assert!(cap > 0);
        // Drain slots while feeding the demand tally, the way phase B
        // does: the watermark must trip strictly before the pool is dry.
        let mut drained = 0u64;
        while !pool.needs_refill(0) {
            assert!(drained < 2 * cap, "watermark never tripped");
            match buf.claim_batch((drained % 4) as u32, 1) {
                BatchClaim::Sampled(dsts) => pool.demand(0).note_claims(dsts.len() as u64),
                BatchClaim::Stalled => pool.demand(0).note_stalls(1),
                BatchClaim::Raw(_) => unreachable!("no raw vertices planned"),
            }
            drained += 1;
        }
        assert!(
            buf.remaining_sampled() > 0,
            "the watermark must trip while slots remain, not after the pool runs dry"
        );
        assert!(pool.try_begin_refill(0));
        assert!(
            !pool.try_begin_refill(0),
            "refill scheduling is single-flight per block"
        );
        pool.end_refill(0);
        assert!(pool.try_begin_refill(0), "end_refill re-arms scheduling");
    }

    /// Declines every third hop (like PPR restarts): steps still advance
    /// so walks terminate, but a declined pre-sampled slot must be
    /// re-served or burned — never silently lost or double-charged.
    #[derive(Debug)]
    struct Decliner {
        walkers: u64,
        length: u32,
        n: u32,
    }
    impl Walk for Decliner {
        type Walker = W;
        fn total_walkers(&self) -> u64 {
            self.walkers
        }
        fn generate(&self, i: u64, _r: &mut WalkRng) -> W {
            W {
                at: (i % self.n as u64) as u32,
                step: 0,
            }
        }
        fn location(&self, w: &W) -> u32 {
            w.at
        }
        fn is_active(&self, w: &W) -> bool {
            w.step < self.length
        }
        fn sample(&self, v: &noswalker_graph::layout::VertexEdges<'_>, r: &mut WalkRng) -> u32 {
            crate::walk::uniform_sample(v, r)
        }
        fn action(&self, w: &mut W, next: u32, _r: &mut WalkRng) -> bool {
            w.step += 1;
            if w.step.is_multiple_of(3) {
                return false; // decline the hop, stay put
            }
            w.at = next;
            true
        }
    }

    #[test]
    fn declined_claims_conserve_pool_attempts() {
        let csr = generators::uniform_degree(512, 8, 7);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        let app = Arc::new(Decliner {
            walkers: 4000,
            length: 9,
            n: 512,
        });
        let r = ParallelRunner::new(
            app,
            graph,
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        );
        let m = r.run(21, 1).unwrap();
        assert_eq!(m.walkers_finished, 4000);
        assert!(m.pool_attempts > 0, "phase B must claim from the pool");
        // Exact conservation (law 13 holds with equality inside one run):
        // every claimed slot was consumed or burned, and every stalled
        // attempt was counted.
        assert_eq!(
            m.pool_attempts,
            m.presamples_consumed + m.claims_burned + m.pool_stalls
        );
    }

    #[test]
    fn first_generation_publishes_at_load_delivery() {
        // Warm-up pre-sampling builds a block's first generation on the
        // coordinator the moment its load is delivered — before the first
        // walk-job fan-out — instead of queueing an async refill behind
        // the walk jobs. Pinned via the trace: each block's first
        // `PoolPublish` carries the same model timestamp as a
        // `CoarseLoad` of that same block (publish-at-delivery), and
        // every block gets a generation.
        let csr = generators::uniform_degree(512, 8, 7);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        let num_blocks = graph.num_blocks();
        let app = Arc::new(Basic {
            walkers: 3000,
            length: 9,
            n: 512,
            visits: A64::new(0),
        });
        let r = ParallelRunner::new(
            app,
            graph,
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        );
        let mut sink = MemorySink::new();
        let m = r.run_with_sink(9, 1, Some(&mut sink)).unwrap();
        assert_eq!(m.walkers_finished, 3000);
        assert!(
            m.pool_publishes >= num_blocks as u64,
            "every block must get a first generation ({} publishes, {num_blocks} blocks)",
            m.pool_publishes
        );
        let mut loads: BTreeMap<BlockId, Vec<u64>> = BTreeMap::new();
        let mut first_publish: BTreeMap<BlockId, u64> = BTreeMap::new();
        for e in &sink.events {
            match *e {
                TraceEvent::CoarseLoad { block, at_ns, .. } => {
                    loads.entry(block).or_default().push(at_ns);
                }
                TraceEvent::PoolPublish { block, at_ns, .. } => {
                    first_publish.entry(block).or_insert(at_ns);
                }
                _ => {}
            }
        }
        assert_eq!(first_publish.len(), num_blocks);
        for (&b, &at) in &first_publish {
            assert!(
                loads.get(&b).is_some_and(|ts| ts.contains(&at)),
                "block {b}: first publish at {at} ns must coincide with its load delivery"
            );
        }
    }

    #[test]
    fn prefetch_can_be_disabled() {
        let csr = generators::uniform_degree(512, 8, 7);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        let app = Arc::new(Basic {
            walkers: 3000,
            length: 9,
            n: 512,
            visits: A64::new(0),
        });
        let opts = EngineOptions {
            prefetch_depth: 0,
            ..EngineOptions::default()
        };
        let r = ParallelRunner::new(app, graph, opts, MemoryBudget::new(1 << 20));
        let m = r.run(13, 2).unwrap();
        assert_eq!(m.walkers_finished, 3000);
        assert_eq!(m.prefetch_hits + m.prefetch_wasted, 0);
    }
}
