//! A real multithreaded NosWalker runner.
//!
//! The simulation engine ([`crate::NosWalkerEngine`]) models the paper's
//! concurrency deterministically through the pipeline clock. This module is
//! the *actual* concurrent implementation for running against real storage
//! (e.g. a [`noswalker_storage::FileDevice`]): a background loader thread
//! services hottest-block requests while a pool of worker threads moves
//! walkers over loaded blocks and the shared pre-sample pool.
//!
//! The division of labour mirrors the paper's Fig. 6:
//!
//! * **coordinator** (caller thread): walker generation ②, bucket
//!   bookkeeping, hottest-block scheduling, pre-sample refills ④;
//! * **loader thread** ①: block reads, double-buffered;
//! * **workers** ③: move batches of walkers on the resident block, then
//!   chase the lock-sharded pre-sample pool.
//!
//! Wall-clock results depend on the host (including how many CPUs it
//! actually grants); use the simulation engine for reproducible numbers.
//! Walk *semantics* are identical (same `Walk` contract), which the tests
//! check against the sequential engine.

use crate::audit::{RunAudit, Trace, TraceEvent, TraceSink};
use crate::block::LoadedBlock;
use crate::clock::WallTimer;
use crate::disk_graph::OnDiskGraph;
use crate::engine::EngineError;
use crate::metrics::{LocalCounters, RunMetrics, SharedMetrics, StepSource};
use crate::options::EngineOptions;
use crate::presample::{plan_quotas, Peek, PreSampleBuffer};
use crate::threaded::BackgroundLoader;
use crate::walk::{Walk, WalkRng};
use noswalker_graph::partition::BlockId;
use noswalker_graph::VertexId;
use noswalker_storage::MemoryBudget;
use parking_lot::Mutex;
use rand::SeedableRng;
use std::sync::Arc;

/// The lock-sharded pre-sample pool.
#[derive(Debug)]
struct SharedPool {
    buffers: Vec<Mutex<Option<PreSampleBuffer>>>,
}

/// A real-thread NosWalker runner for first-order walks.
#[derive(Debug)]
pub struct ParallelRunner<A: Walk> {
    app: Arc<A>,
    graph: Arc<OnDiskGraph>,
    opts: EngineOptions,
    budget: Arc<MemoryBudget>,
}

impl<A: Walk + 'static> ParallelRunner<A> {
    /// Creates a runner.
    pub fn new(
        app: Arc<A>,
        graph: Arc<OnDiskGraph>,
        opts: EngineOptions,
        budget: Arc<MemoryBudget>,
    ) -> Self {
        ParallelRunner {
            app,
            graph,
            opts,
            budget,
        }
    }

    /// Runs to completion with `workers` walker-processing threads (plus
    /// the background loader thread).
    ///
    /// The returned metrics report wall-clock time in both `sim_ns` and
    /// `wall_ns` (there is no simulated clock here).
    ///
    /// # Errors
    ///
    /// [`EngineError::Budget`] / [`EngineError::Load`] as for the
    /// sequential engine.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn run(&self, seed: u64, workers: usize) -> Result<RunMetrics, EngineError> {
        self.run_with_sink(seed, workers, None)
    }

    /// Like [`ParallelRunner::run`], recording [`TraceEvent`]s into `sink`.
    ///
    /// Only the coordinator thread emits (loads, load stalls, run end);
    /// worker threads never touch the sink, so tracing adds no
    /// synchronization to the walking hot path. Timestamps are wall-clock
    /// nanoseconds since the run started (there is no simulated clock
    /// here).
    ///
    /// # Errors
    ///
    /// As for [`ParallelRunner::run`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn run_with_sink(
        &self,
        seed: u64,
        workers: usize,
        sink: Option<&mut dyn TraceSink>,
    ) -> Result<RunMetrics, EngineError> {
        let audit = RunAudit::begin(self.app.total_walkers(), &self.budget);
        let metrics = self.run_inner(seed, workers, Trace::from_option(sink))?;
        if cfg!(debug_assertions) {
            audit.verify(&metrics, &self.budget).assert_clean();
        }
        Ok(metrics)
    }

    fn run_inner(
        &self,
        seed: u64,
        workers: usize,
        mut trace: Trace<'_>,
    ) -> Result<RunMetrics, EngineError> {
        assert!(workers > 0, "need at least one worker");
        let wall = WallTimer::start();
        let num_blocks = self.graph.num_blocks();
        let total = self.app.total_walkers();
        let shared = Arc::new(SharedMetrics::default());
        let pool = Arc::new(SharedPool {
            buffers: (0..num_blocks).map(|_| Mutex::new(None)).collect(),
        });
        let mut metrics = RunMetrics::default();

        // Budget: the walker pool's share (see
        // `EngineOptions::walker_pool_quota`).
        let state = self.app.state_bytes().max(1) as u64;
        let cap = self
            .opts
            .walker_pool_quota(&self.budget, self.app.state_bytes(), total);
        let _pool_hold = self.budget.try_reserve(cap * state)?;

        let loader = BackgroundLoader::spawn(Arc::clone(&self.graph), Arc::clone(&self.budget), 2);

        // Persistent worker threads. Walk jobs carry an Arc of the
        // resident block plus an owned chunk of walkers and report
        // survivors back; refill jobs regenerate a block's pre-sample
        // buffer asynchronously (the paper's background pre-sampling ④).
        enum Job<W> {
            Walk(Arc<LoadedBlock>, Vec<W>),
            Refill(Arc<LoadedBlock>),
        }
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job<A::Walker>>();
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<Vec<A::Walker>>();
        let mut worker_handles = Vec::with_capacity(workers);
        for wi in 0..workers {
            let app = Arc::clone(&self.app);
            let graph = Arc::clone(&self.graph);
            let pool = Arc::clone(&pool);
            let shared = Arc::clone(&shared);
            let budget = Arc::clone(&self.budget);
            let opts = self.opts.clone();
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("noswalker-worker-{wi}"))
                    .spawn(move || {
                        let mut wrng = WalkRng::seed_from_u64(
                            seed ^ (wi as u64 + 1).wrapping_mul(0x9E37_79B9),
                        );
                        while let Ok(job) = job_rx.recv() {
                            match job {
                                Job::Walk(block, walkers) => {
                                    let mut out = Vec::new();
                                    let mut local = LocalCounters::default();
                                    for w in walkers {
                                        if let Some(w) = drive_walker(
                                            &*app, &graph, &block, &pool, &mut local, &opts, w,
                                            &mut wrng,
                                        ) {
                                            out.push(w);
                                        }
                                    }
                                    local.flush(&shared);
                                    if res_tx.send(out).is_err() {
                                        break;
                                    }
                                }
                                Job::Refill(block) => {
                                    let draws = refill_block(
                                        &*app, &graph, &pool, &budget, &opts, &block, &mut wrng,
                                    );
                                    shared.add_presamples_filled(draws);
                                }
                            }
                        }
                    })
                    // LINT-ALLOW(L5): thread spawning fails only on OS
                    // resource exhaustion, which has no recovery path here.
                    .expect("spawning a worker thread"),
            );
        }
        drop(job_rx);
        drop(res_tx);

        // Coordinator-owned state.
        let mut rng = WalkRng::seed_from_u64(seed);
        let mut buckets: Vec<Vec<A::Walker>> = vec![Vec::new(); num_blocks];
        let mut live = 0u64;
        let mut next_id = 0u64;
        let mut pending: Option<BlockId> = None;

        let bucket_of = |app: &A, w: &A::Walker, graph: &OnDiskGraph| -> usize {
            graph.block_of(app.location(w)) as usize
        };

        // Inline generation into the coordinator loop.
        macro_rules! generate {
            () => {
                while live < cap && next_id < total {
                    let w = self.app.generate(next_id, &mut rng);
                    next_id += 1;
                    if !self.app.is_active(&w) {
                        self.app.on_terminate(&w);
                        shared.add_finished(1);
                        continue;
                    }
                    let b = bucket_of(&self.app, &w, &self.graph);
                    buckets[b].push(w);
                    live += 1;
                }
            };
        }

        generate!();
        while live > 0 || next_id < total {
            // Schedule the hottest block.
            let target = match pending.take() {
                Some(b) => b,
                None => {
                    let Some((b, _)) = buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| !v.is_empty())
                        .max_by_key(|(_, v)| v.len())
                    else {
                        break;
                    };
                    loader.request(b as BlockId).map_err(loader_err)?;
                    b as BlockId
                }
            };
            let wait_from = wall.elapsed_ns();
            let loaded = loader.recv().map_err(loader_err)?;
            let wait_until = wall.elapsed_ns();
            if wait_until > wait_from {
                trace.emit(|| TraceEvent::Stall {
                    waiting_for: Some(target),
                    from_ns: wait_from,
                    until_ns: wait_until,
                });
            }
            let block = Arc::new(loaded.block);
            debug_assert_eq!(block.info().id, target);
            metrics.record_coarse_load(block.info().byte_len());
            let bytes = block.info().byte_len();
            trace.emit(|| TraceEvent::CoarseLoad {
                block: target,
                bytes,
                cache_hit: false,
                at_ns: wait_until,
            });

            // Prefetch the next-hottest other block while workers process.
            if let Some((nb, _)) = buckets
                .iter()
                .enumerate()
                .filter(|&(i, v)| i != target as usize && !v.is_empty())
                .max_by_key(|(_, v)| v.len())
            {
                if loader.request(nb as BlockId).is_ok() {
                    pending = Some(nb as BlockId);
                }
            }

            // Fan the block's walkers out to the persistent workers. Chunks
            // are kept coarse (at most one per worker) so per-job overhead
            // stays negligible next to the walking itself.
            let batch = std::mem::take(&mut buckets[target as usize]);
            let batch_len = batch.len() as u64;
            let mut jobs = 0;
            if !batch.is_empty() {
                let chunk = batch.len().div_ceil(workers).max(64);
                let mut batch = batch;
                while !batch.is_empty() {
                    let tail = batch.split_off(batch.len().saturating_sub(chunk));
                    job_tx
                        .send(Job::Walk(Arc::clone(&block), tail))
                        .map_err(|_| worker_died())?;
                    jobs += 1;
                }
            }
            let mut survivors = Vec::new();
            for _ in 0..jobs {
                survivors.extend(res_rx.recv().map_err(|_| worker_died())?);
            }
            let finished_now = batch_len - survivors.len() as u64;
            live -= finished_now;
            for w in survivors {
                let b = bucket_of(&self.app, &w, &self.graph);
                buckets[b].push(w);
            }

            // Refill the block's pre-sample buffer (④) asynchronously;
            // the block Arc keeps the buffer alive until the refill runs.
            if self.opts.enable_presample {
                job_tx
                    .send(Job::Refill(Arc::clone(&block)))
                    .map_err(|_| worker_died())?;
            }
            drop(block);
            generate!();
        }

        drop(job_tx);
        for h in worker_handles {
            let _ = h.join();
        }

        shared.drain_into(&mut metrics);
        metrics.set_peak_memory(self.budget.peak());
        metrics.derive_edges_loaded(self.graph.format().record_bytes() as u64);
        metrics.finalize_wall(&wall);
        metrics.set_sim_from_wall();
        let (steps, walkers_finished, at) =
            (metrics.steps, metrics.walkers_finished, metrics.wall_ns);
        trace.emit(|| TraceEvent::RunEnd {
            steps,
            walkers_finished,
            at_ns: at,
        });
        Ok(metrics)
    }
}

/// Rebuilds a block's pre-sample buffer from the resident block (run on a
/// worker thread; the pool slot's mutex serializes concurrent refills).
/// Returns the number of samples drawn, for `presamples_filled`.
fn refill_block<A: Walk>(
    app: &A,
    graph: &OnDiskGraph,
    pool: &SharedPool,
    budget: &Arc<MemoryBudget>,
    opts: &EngineOptions,
    block: &LoadedBlock,
    rng: &mut WalkRng,
) -> u64 {
    let info = *block.info();
    let b = info.id;
    let nv = info.num_vertices() as usize;
    if nv == 0 {
        return 0;
    }
    let mut slot = pool.buffers[b as usize].lock();
    if let Some(buf) = &*slot {
        let cap = buf.sampled_capacity();
        if cap > 0 && buf.remaining_sampled() * 4 > cap {
            return 0; // still mostly full
        }
    }
    let weights: Vec<u32> = match &*slot {
        Some(buf) => buf.visit_weights().to_vec(),
        None => vec![0; nv],
    };
    *slot = None; // release the old generation's memory
    let degrees: Vec<u64> = (0..nv)
        .map(|i| graph.degree(info.vertex_start + i as VertexId))
        .collect();
    let avail = (budget.available() as f64 * opts.presample_budget_fraction) as u64
        / graph.num_blocks().max(1) as u64;
    let meta = nv as u64 * 9 + 4;
    if avail <= meta {
        return 0;
    }
    let plan = plan_quotas(
        &degrees,
        &weights,
        (avail - meta) / 4,
        opts.low_degree_threshold,
        opts.presample_cap_per_vertex,
    );
    if plan.total_slots == 0 {
        return 0;
    }
    let Ok(reservation) = budget.try_reserve(PreSampleBuffer::planned_bytes(&plan, false)) else {
        return 0;
    };
    let (mut buf, draws) = PreSampleBuffer::build(
        info.vertex_start,
        &plan,
        false,
        |v| {
            // LINT-ALLOW(L5): the quota planner only covers block vertices.
            let view = block.vertex_edges(graph, v).expect("vertex in block");
            app.sample(&view, rng)
        },
        |v, edges, _| {
            // LINT-ALLOW(L5): the quota planner only covers block vertices.
            let view = block.vertex_edges(graph, v).expect("vertex in block");
            for i in 0..view.degree() {
                edges.push(view.target(i));
            }
        },
    );
    buf.set_reservation(reservation);
    *slot = Some(buf);
    draws
}

fn loader_err(e: crate::threaded::LoaderError) -> EngineError {
    match e {
        crate::threaded::LoaderError::Load(l) => EngineError::Load(l),
        crate::threaded::LoaderError::Disconnected => {
            EngineError::Load(crate::disk_graph::LoadError::Device(
                noswalker_storage::DeviceError::Io("background loader disconnected".into()),
            ))
        }
    }
}

/// The error reported when a worker thread exits early (its channel
/// endpoint hung up), e.g. after a panic in application code.
fn worker_died() -> EngineError {
    EngineError::Load(crate::disk_graph::LoadError::Device(
        noswalker_storage::DeviceError::Io("a worker thread died mid-run".into()),
    ))
}

/// Moves one walker as far as possible: within the resident block, then on
/// the shared pre-sample pool. Returns the walker if it is still alive (it
/// left the block and found no pre-samples), `None` if it terminated.
#[allow(clippy::too_many_arguments)]
fn drive_walker<A: Walk>(
    app: &A,
    graph: &OnDiskGraph,
    block: &LoadedBlock,
    pool: &SharedPool,
    local: &mut LocalCounters,
    _opts: &EngineOptions,
    mut w: A::Walker,
    rng: &mut WalkRng,
) -> Option<A::Walker> {
    loop {
        if !app.is_active(&w) {
            app.on_terminate(&w);
            local.record_finished();
            return None;
        }
        let loc = app.location(&w);
        if graph.degree(loc) == 0 {
            app.on_terminate(&w);
            local.record_finished();
            return None;
        }
        if let Some(view) = block.vertex_edges(graph, loc) {
            let dst = app.sample(&view, rng);
            app.action(&mut w, dst, rng);
            local.record_step(StepSource::Block);
            continue;
        }
        // Outside the block: try the pre-sample pool.
        let b = graph.block_of(loc) as usize;
        let mut guard = pool.buffers[b].lock();
        let Some(buf) = guard.as_mut() else {
            return Some(w);
        };
        match buf.peek(loc) {
            Peek::Sampled(dst) => {
                let consumed = app.action(&mut w, dst, rng);
                if consumed {
                    buf.consume(loc);
                    local.record_presample_consumed();
                }
                local.record_step(StepSource::PreSample);
            }
            Peek::Raw(view) => {
                let dst = app.sample(&view, rng);
                // Unconditional: raw slots never deplete; `consume` only
                // ticks the visit counter (see `Run::chase_presamples`).
                buf.consume(loc);
                app.action(&mut w, dst, rng);
                local.record_step(StepSource::Raw);
            }
            Peek::Empty => {
                buf.record_stall(loc);
                return Some(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_graph::generators;
    use noswalker_storage::{SimSsd, SsdProfile};
    use std::sync::atomic::{AtomicU64 as A64, Ordering};

    #[derive(Debug)]
    struct Basic {
        walkers: u64,
        length: u32,
        n: u32,
        visits: A64,
    }
    #[derive(Debug, Clone)]
    struct W {
        at: u32,
        step: u32,
    }
    impl Walk for Basic {
        type Walker = W;
        fn total_walkers(&self) -> u64 {
            self.walkers
        }
        fn generate(&self, i: u64, _r: &mut WalkRng) -> W {
            W {
                at: (i % self.n as u64) as u32,
                step: 0,
            }
        }
        fn location(&self, w: &W) -> u32 {
            w.at
        }
        fn is_active(&self, w: &W) -> bool {
            w.step < self.length
        }
        fn sample(&self, v: &noswalker_graph::layout::VertexEdges<'_>, r: &mut WalkRng) -> u32 {
            crate::walk::uniform_sample(v, r)
        }
        fn action(&self, w: &mut W, next: u32, _r: &mut WalkRng) -> bool {
            self.visits.fetch_add(1, Ordering::Relaxed);
            w.at = next;
            w.step += 1;
            true
        }
    }

    fn runner(walkers: u64) -> (Arc<Basic>, ParallelRunner<Basic>) {
        let csr = generators::uniform_degree(512, 8, 7);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        let app = Arc::new(Basic {
            walkers,
            length: 9,
            n: 512,
            visits: A64::new(0),
        });
        let r = ParallelRunner::new(
            Arc::clone(&app),
            graph,
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        );
        (app, r)
    }

    #[test]
    fn completes_all_walkers_with_multiple_threads() {
        let (app, r) = runner(5000);
        let m = r.run(3, 4).unwrap();
        assert_eq!(m.walkers_finished, 5000);
        // Uniform graph, no dead ends: exact step count.
        assert_eq!(m.steps, 5000 * 9);
        assert_eq!(app.visits.load(Ordering::Relaxed), m.steps);
        assert!(m.wall_ns > 0);
    }

    #[test]
    fn single_thread_matches_semantics() {
        let (app, r) = runner(800);
        let m = r.run(5, 1).unwrap();
        assert_eq!(m.walkers_finished, 800);
        assert_eq!(m.steps, 800 * 9);
        assert_eq!(app.visits.load(Ordering::Relaxed), m.steps);
    }

    #[test]
    fn presamples_are_used() {
        let (_, r) = runner(20_000);
        let m = r.run(7, 4).unwrap();
        assert!(
            m.steps_on_presample + m.steps_on_raw > 0,
            "the shared pre-sample pool should serve some steps"
        );
    }

    #[test]
    fn budget_violation_is_reported() {
        let csr = generators::uniform_degree(512, 8, 7);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        let app = Arc::new(Basic {
            walkers: 100,
            length: 3,
            n: 512,
            visits: A64::new(0),
        });
        let r = ParallelRunner::new(app, graph, EngineOptions::default(), MemoryBudget::new(64));
        assert!(r.run(1, 2).is_err());
    }
}
