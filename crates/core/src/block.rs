//! In-memory buffers holding loaded edge data.

use crate::disk_graph::OnDiskGraph;
use noswalker_graph::layout::VertexEdges;
use noswalker_graph::partition::BlockInfo;
use noswalker_graph::VertexId;
use noswalker_storage::Reservation;

/// A fully loaded coarse block: one contiguous byte range of the edge
/// region, memory charged against the run's budget for its lifetime.
#[derive(Debug)]
pub struct LoadedBlock {
    info: BlockInfo,
    data: Vec<u8>,
    _reservation: Reservation,
}

impl LoadedBlock {
    pub(crate) fn new(info: BlockInfo, data: Vec<u8>, reservation: Reservation) -> Self {
        debug_assert_eq!(data.len() as u64, info.byte_len());
        LoadedBlock {
            info,
            data,
            _reservation: reservation,
        }
    }

    /// The block descriptor.
    pub fn info(&self) -> &BlockInfo {
        &self.info
    }

    /// Decodes vertex `v`'s out-edges from the buffer, or `None` if `v`
    /// is not in this block.
    pub fn vertex_edges<'a>(&'a self, graph: &OnDiskGraph, v: VertexId) -> Option<VertexEdges<'a>> {
        if !self.info.contains_vertex(v) {
            return None;
        }
        let r = graph.vertex_byte_range(v);
        let s = (r.start - self.info.byte_start) as usize;
        let e = (r.end - self.info.byte_start) as usize;
        Some(VertexEdges::from_raw(&self.data[s..e], graph.format()))
    }
}

/// A sparse fine-grained load: merged runs of 4 KiB pages within one coarse
/// block (paper §3.3.1). Only the vertices whose full byte range falls
/// inside a loaded run are readable.
#[derive(Debug)]
pub struct FineLoad {
    info: BlockInfo,
    /// Sorted `(edge_region_byte_start, bytes)` runs.
    runs: Vec<(u64, Vec<u8>)>,
    _reservation: Reservation,
}

impl FineLoad {
    pub(crate) fn new(
        info: BlockInfo,
        runs: Vec<(u64, Vec<u8>)>,
        reservation: Reservation,
    ) -> Self {
        debug_assert!(runs.windows(2).all(|w| w[0].0 < w[1].0), "runs sorted");
        FineLoad {
            info,
            runs,
            _reservation: reservation,
        }
    }

    /// The block descriptor this load belongs to.
    pub fn info(&self) -> &BlockInfo {
        &self.info
    }

    /// Number of contiguous runs read.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Total bytes loaded across all runs.
    pub fn loaded_bytes(&self) -> u64 {
        self.runs.iter().map(|(_, d)| d.len() as u64).sum()
    }

    /// Decodes vertex `v`'s out-edges if its byte range is fully covered by
    /// one loaded run.
    pub fn vertex_edges<'a>(&'a self, graph: &OnDiskGraph, v: VertexId) -> Option<VertexEdges<'a>> {
        if !self.info.contains_vertex(v) {
            return None;
        }
        let r = graph.vertex_byte_range(v);
        if r.is_empty() {
            return Some(VertexEdges::from_raw(&[], graph.format()));
        }
        // Find the run whose start is <= r.start (runs are sorted).
        let idx = self.runs.partition_point(|(s, _)| *s <= r.start);
        if idx == 0 {
            return None;
        }
        let (run_start, data) = &self.runs[idx - 1];
        let run_end = run_start + data.len() as u64;
        if r.end > run_end {
            return None;
        }
        let s = (r.start - run_start) as usize;
        let e = (r.end - run_start) as usize;
        Some(VertexEdges::from_raw(&data[s..e], graph.format()))
    }
}

/// A budget-bounded LRU cache of loaded coarse blocks.
///
/// The paper's baselines run under a cgroups cap that *includes the OS
/// page cache* (§4.1), so graphs smaller than the memory budget are
/// effectively served from memory after the first sweep. The baseline
/// engines model that with this cache: hits cost no I/O; on budget
/// pressure the least-recently-used block is evicted.
#[derive(Debug)]
pub struct BlockCache {
    slots: Vec<Option<std::sync::Arc<LoadedBlock>>>,
    lru: std::collections::VecDeque<u32>,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    /// An empty cache over `num_blocks` block ids.
    pub fn new(num_blocks: usize) -> Self {
        BlockCache {
            slots: (0..num_blocks).map(|_| None).collect(),
            lru: std::collections::VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evicts the least-recently-used cached block. Returns `false` when
    /// the cache is empty.
    pub fn evict_one(&mut self) -> bool {
        match self.lru.pop_front() {
            Some(victim) => {
                self.slots[victim as usize] = None;
                true
            }
            None => false,
        }
    }

    /// Returns block `b`, loading it through `graph` on a miss (evicting
    /// LRU blocks if the budget is tight). The second tuple element is the
    /// device service time and the third whether this was a cache hit
    /// (hits cost no I/O and move no bytes).
    ///
    /// # Errors
    ///
    /// Propagates device errors; budget errors only if the block cannot
    /// fit even with the whole cache evicted.
    pub fn load(
        &mut self,
        graph: &crate::disk_graph::OnDiskGraph,
        b: u32,
        budget: &std::sync::Arc<noswalker_storage::MemoryBudget>,
    ) -> Result<(std::sync::Arc<LoadedBlock>, u64, bool), crate::disk_graph::LoadError> {
        if let Some(block) = &self.slots[b as usize] {
            self.hits += 1;
            self.lru.retain(|&x| x != b);
            self.lru.push_back(b);
            return Ok((std::sync::Arc::clone(block), 0, true));
        }
        self.misses += 1;
        loop {
            match graph.load_block(b, budget) {
                Ok((block, ns)) => {
                    let arc = std::sync::Arc::new(block);
                    self.slots[b as usize] = Some(std::sync::Arc::clone(&arc));
                    self.lru.push_back(b);
                    return Ok((arc, ns, false));
                }
                Err(crate::disk_graph::LoadError::Budget(e)) => match self.lru.pop_front() {
                    Some(victim) => {
                        self.slots[victim as usize] = None;
                    }
                    None => return Err(crate::disk_graph::LoadError::Budget(e)),
                },
                Err(other) => return Err(other),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Behaviour of LoadedBlock / FineLoad is exercised end-to-end in
    // `disk_graph::tests` (loads need a stored graph); here we only test
    // the run lookup edge cases that are hard to hit from above.
    use super::*;
    use noswalker_graph::generators;
    use noswalker_storage::{MemoryBudget, SimSsd, SsdProfile};
    use std::sync::Arc;

    #[test]
    fn fine_load_boundary_vertices() {
        let csr = generators::uniform_degree(4096, 8, 9);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let g = OnDiskGraph::store(&csr, device, 1 << 20).unwrap();
        let budget = MemoryBudget::unlimited();
        // Request the very first and very last vertices of the block.
        let info = *g.partition().block(0);
        let wanted = vec![info.vertex_start, info.vertex_end - 1];
        let (fine, _) = g.load_fine(0, &wanted, &budget).unwrap();
        assert!(fine.vertex_edges(&g, info.vertex_start).is_some());
        assert!(fine.vertex_edges(&g, info.vertex_end - 1).is_some());
        // Out-of-block vertex yields None even if pages might overlap.
        assert!(fine.vertex_edges(&g, info.vertex_end).is_none());
    }

    #[test]
    fn block_cache_hits_after_first_load() {
        let csr = generators::uniform_degree(1024, 8, 9);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let g = OnDiskGraph::store(&csr, device, 8192).unwrap();
        let budget = MemoryBudget::new(1 << 20);
        let mut cache = super::BlockCache::new(g.num_blocks());
        let (_, ns1, hit1) = cache.load(&g, 0, &budget).unwrap();
        assert!(!hit1);
        assert!(ns1 > 0);
        let (_, ns2, hit2) = cache.load(&g, 0, &budget).unwrap();
        assert!(hit2);
        assert_eq!(ns2, 0);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn block_cache_evicts_lru_under_pressure() {
        let csr = generators::uniform_degree(1024, 8, 9);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let g = OnDiskGraph::store(&csr, device, 8192).unwrap();
        // Budget holds ~1.5 blocks.
        let budget = MemoryBudget::new(12 << 10);
        let mut cache = super::BlockCache::new(g.num_blocks());
        let (b0, _, _) = cache.load(&g, 0, &budget).unwrap();
        drop(b0);
        let (b1, _, _) = cache.load(&g, 1, &budget).unwrap();
        drop(b1);
        // Block 0 was evicted to make room: loading it again is a miss.
        let (_, _, hit) = cache.load(&g, 0, &budget).unwrap();
        assert!(!hit);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn block_cache_errors_when_nothing_left_to_evict() {
        let csr = generators::uniform_degree(1024, 8, 9);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let g = OnDiskGraph::store(&csr, device, 8192).unwrap();
        let budget = MemoryBudget::new(64);
        let mut cache = super::BlockCache::new(g.num_blocks());
        assert!(cache.load(&g, 0, &budget).is_err());
    }

    #[test]
    fn fine_load_empty_vertex_is_trivially_available() {
        use noswalker_graph::CsrBuilder;
        let mut b = CsrBuilder::new(10);
        b.push_edge(0, 1);
        // vertices 1..9 have no edges
        let csr = b.build();
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let g = OnDiskGraph::store(&csr, device, 1 << 20).unwrap();
        let budget = MemoryBudget::unlimited();
        let (fine, _) = g.load_fine(0, &[5], &budget).unwrap();
        let view = fine.vertex_edges(&g, 5).unwrap();
        assert_eq!(view.degree(), 0);
        assert_eq!(fine.num_runs(), 0);
    }
}
