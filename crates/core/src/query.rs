//! Query-driven walker generation — the serving front end's contract.
//!
//! The paper's property (b) (walkers are independent; the engine only
//! needs a bounded pool runnable at a time, generating new walkers as old
//! ones terminate — Algorithm 1) means walker generation does not have to
//! come from a fixed up-front walk plan: it can be driven by a *live
//! queue of queries*. [`QuerySource`] is that abstraction. Each
//! [`QuerySpec`] pulled from a source carries a walker budget, a class
//! label (binding it to an application — PPR, DeepWalk, …), and an
//! optional deadline in simulated time.
//!
//! `noswalker-serve` provides the production implementation (an admission
//! controller with bounded in-flight quota, deadline-aware ordering and
//! backpressure); [`StaticQuerySource`] here is the minimal FIFO
//! reference implementation used by tests and examples.
//!
//! Terminal accounting lands in [`QueryStats`], which the per-query
//! conservation law ([`crate::audit::audit_queries`]) checks: walkers
//! issued must equal walkers completed plus walkers cancelled — a
//! timeout may cancel a walker, but it may never silently drop one.

use std::collections::VecDeque;

/// Identifies one query for its whole lifetime (admission → completion
/// or shed).
pub type QueryId = u64;

/// What one query asks of the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Unique id, assigned at arrival.
    pub id: QueryId,
    /// Class label for latency reporting (e.g. `"ppr"`, `"deepwalk"`);
    /// the serving layer keeps one histogram per class.
    pub class: String,
    /// Walker budget: how many walkers the query may issue in total.
    pub walkers: u64,
    /// Maximum steps per walker.
    pub walk_length: u32,
    /// Absolute deadline in simulated nanoseconds (`None` = best
    /// effort). Past the deadline, remaining walkers are cancelled and
    /// the result is returned partial, flagged degraded.
    pub deadline_ns: Option<u64>,
    /// Simulated arrival time (latency is measured from here).
    pub arrival_ns: u64,
}

/// Terminal walker accounting for one query — the input to the
/// per-query conservation law ([`crate::audit::audit_queries`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// The query.
    pub id: QueryId,
    /// Admitted walker budget.
    pub budget: u64,
    /// Walkers actually issued into an engine.
    pub issued: u64,
    /// Issued walkers that completed their walk.
    pub completed: u64,
    /// Issued walkers retired by cancellation.
    pub cancelled: u64,
}

/// A live source of queries: the serving loop pulls admitted work from
/// it instead of iterating a fixed walk plan.
///
/// All times are simulated nanoseconds on the serving loop's clock, so a
/// trace replay is deterministic.
pub trait QuerySource {
    /// The next query ready to start at time `now_ns` given `room` free
    /// walker slots, or `None` when nothing is admissible right now
    /// (either nothing has arrived yet, or every waiting query needs
    /// more than `room` walkers).
    fn next_ready(&mut self, now_ns: u64, room: u64) -> Option<QuerySpec>;

    /// The earliest future time at which [`QuerySource::next_ready`] may
    /// have new work (`None` when nothing further is scheduled); an idle
    /// serving loop advances its clock here instead of spinning.
    fn next_pending_at(&self, now_ns: u64) -> Option<u64>;

    /// True once the source will never produce another query.
    fn is_exhausted(&self) -> bool;
}

/// The minimal [`QuerySource`]: a fixed arrival schedule served FIFO
/// with no admission policy beyond the caller's `room`. Used by tests
/// and examples; the production source is `noswalker-serve`'s admission
/// controller.
#[derive(Debug, Default)]
pub struct StaticQuerySource {
    queue: VecDeque<QuerySpec>,
}

impl StaticQuerySource {
    /// A source over `specs`, served in ascending `arrival_ns` order.
    pub fn new(mut specs: Vec<QuerySpec>) -> Self {
        specs.sort_by_key(|s| s.arrival_ns);
        StaticQuerySource {
            queue: specs.into(),
        }
    }

    /// Queries not yet handed out.
    pub fn remaining(&self) -> usize {
        self.queue.len()
    }
}

impl QuerySource for StaticQuerySource {
    fn next_ready(&mut self, now_ns: u64, room: u64) -> Option<QuerySpec> {
        let head = self.queue.front()?;
        if head.arrival_ns <= now_ns && head.walkers <= room {
            self.queue.pop_front()
        } else {
            None
        }
    }

    fn next_pending_at(&self, now_ns: u64) -> Option<u64> {
        self.queue.front().map(|s| s.arrival_ns.max(now_ns))
    }

    fn is_exhausted(&self) -> bool {
        self.queue.is_empty()
    }
}

/// A pushable [`QuerySource`] for drivers whose arrivals come from a live
/// ingress queue rather than a fixed schedule (the realtime serving
/// driver feeds one from its command channel). Queries are served in
/// ascending `arrival_ns` order, FIFO among equal arrivals — the same
/// order [`StaticQuerySource`] produces for the same specs — and the
/// source only reports exhaustion once [`close`](Self::close) has been
/// called *and* the queue is empty: an open ingress may always produce
/// more work.
#[derive(Debug, Default)]
pub struct BufferedQuerySource {
    queue: VecDeque<QuerySpec>,
    closed: bool,
}

impl BufferedQuerySource {
    /// An empty, open source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a query, keeping ascending-arrival order (FIFO among
    /// equal arrivals).
    pub fn push(&mut self, q: QuerySpec) {
        let pos = self
            .queue
            .iter()
            .position(|p| p.arrival_ns > q.arrival_ns)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, q);
    }

    /// Removes a not-yet-served query (a cancellation that raced ahead of
    /// admission); returns it if it was still queued.
    pub fn remove(&mut self, id: QueryId) -> Option<QuerySpec> {
        let pos = self.queue.iter().position(|p| p.id == id)?;
        self.queue.remove(pos)
    }

    /// Marks the ingress closed: no further [`push`](Self::push) is
    /// expected, so the source is exhausted once drained.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Queries not yet handed out.
    pub fn remaining(&self) -> usize {
        self.queue.len()
    }
}

impl QuerySource for BufferedQuerySource {
    fn next_ready(&mut self, now_ns: u64, room: u64) -> Option<QuerySpec> {
        let head = self.queue.front()?;
        if head.arrival_ns <= now_ns && head.walkers <= room {
            self.queue.pop_front()
        } else {
            None
        }
    }

    fn next_pending_at(&self, now_ns: u64) -> Option<u64> {
        self.queue.front().map(|s| s.arrival_ns.max(now_ns))
    }

    fn is_exhausted(&self) -> bool {
        self.closed && self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: QueryId, arrival_ns: u64, walkers: u64) -> QuerySpec {
        QuerySpec {
            id,
            class: "test".into(),
            walkers,
            walk_length: 4,
            deadline_ns: None,
            arrival_ns,
        }
    }

    #[test]
    fn static_source_serves_fifo_by_arrival() {
        let mut src = StaticQuerySource::new(vec![spec(2, 50, 8), spec(1, 10, 8)]);
        assert!(!src.is_exhausted());
        assert_eq!(src.next_pending_at(0), Some(10));
        // Nothing has arrived at t=5.
        assert!(src.next_ready(5, 100).is_none());
        let q = src.next_ready(10, 100).unwrap();
        assert_eq!(q.id, 1);
        // Head arrived but needs more room than offered.
        assert!(src.next_ready(60, 4).is_none());
        assert_eq!(src.next_pending_at(60), Some(60));
        assert_eq!(src.next_ready(60, 8).unwrap().id, 2);
        assert!(src.is_exhausted());
        assert_eq!(src.next_pending_at(60), None);
    }

    #[test]
    fn buffered_source_orders_by_arrival_and_stays_open_until_closed() {
        let mut src = BufferedQuerySource::new();
        assert!(!src.is_exhausted(), "an open empty ingress is not done");
        src.push(spec(2, 50, 8));
        src.push(spec(1, 10, 8));
        src.push(spec(3, 50, 8)); // ties serve FIFO: 2 before 3
        assert_eq!(src.next_pending_at(0), Some(10));
        assert_eq!(src.next_ready(60, 100).unwrap().id, 1);
        assert_eq!(src.next_ready(60, 100).unwrap().id, 2);
        assert_eq!(src.next_ready(60, 100).unwrap().id, 3);
        assert!(!src.is_exhausted());
        src.close();
        assert!(src.is_closed());
        assert!(src.is_exhausted());
    }

    #[test]
    fn buffered_source_matches_static_order_for_the_same_specs() {
        let specs = vec![
            spec(2, 50, 8),
            spec(1, 10, 8),
            spec(4, 50, 8),
            spec(3, 0, 8),
        ];
        let mut st = StaticQuerySource::new(specs.clone());
        let mut buf = BufferedQuerySource::new();
        for q in specs {
            buf.push(q);
        }
        buf.close();
        while let Some(a) = st.next_ready(u64::MAX, u64::MAX) {
            let b = buf.next_ready(u64::MAX, u64::MAX).expect("same length");
            assert_eq!(a, b);
        }
        assert!(buf.is_exhausted());
    }

    #[test]
    fn buffered_source_removes_queued_queries() {
        let mut src = BufferedQuerySource::new();
        src.push(spec(1, 10, 8));
        src.push(spec(2, 20, 8));
        assert_eq!(src.remove(2).map(|q| q.id), Some(2));
        assert_eq!(src.remove(2), None);
        assert_eq!(src.remaining(), 1);
    }
}
