//! The NosWalker engine: decoupled, walker-oriented scheduling
//! (paper §3.1, Algorithms 1 and 3).
//!
//! Two workflows share one `Run` state:
//!
//! * **Pooled** (walker management on — the real NosWalker): a bounded
//!   walker pool, pre-sample chasing between loads, hottest-block
//!   asynchronous loading, adaptive fine-grained I/O.
//! * **Epoch** (walker management off — the Fig. 14 "Base
//!   Implementation"): every walker exists upfront, block-at-a-time
//!   processing with walker-state swap I/O, still with asynchronous
//!   double-buffered loads (the paper's base is faster than GraphWalker
//!   precisely because of overlapped I/O).
//!
//! Time is simulated through [`PipelineClock`]: device service times come
//! from the storage layer, compute is charged per step/sample, and stalls
//! are whatever the pipeline exposes.

use crate::audit::{RunAudit, Trace, TraceEvent, TraceSink};
use crate::block::{BlockCache, FineLoad, LoadedBlock};
use crate::clock::{PipelineClock, WallTimer};
use crate::disk_graph::{LoadError, OnDiskGraph};
use crate::metrics::{RunMetrics, StepSource};
use crate::options::EngineOptions;
use crate::presample::{plan_quotas, Peek, PreSampleBuffer};
use crate::walk::{SecondOrderWalk, Walk, WalkRng};
use noswalker_graph::layout::VertexEdges;
use noswalker_graph::partition::BlockId;
use noswalker_graph::VertexId;
use noswalker_storage::{BudgetExceeded, MemoryBudget, Reservation};
use rand::SeedableRng;
use std::sync::Arc;

/// Errors an engine run can produce.
#[derive(Debug)]
pub enum EngineError {
    /// The memory budget cannot hold the engine's minimum working set
    /// (e.g. a single block buffer) — the configuration is infeasible, the
    /// same condition under which the paper's DrunkardMob "cannot process"
    /// a graph.
    Budget(BudgetExceeded),
    /// A device operation failed.
    Load(LoadError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Budget(e) => write!(f, "engine: {e}"),
            EngineError::Load(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<BudgetExceeded> for EngineError {
    fn from(e: BudgetExceeded) -> Self {
        EngineError::Budget(e)
    }
}

impl From<LoadError> for EngineError {
    fn from(e: LoadError) -> Self {
        match e {
            LoadError::Budget(b) => EngineError::Budget(b),
            other => EngineError::Load(other),
        }
    }
}

/// A source of decoded vertex edges (a coarse block or a fine load).
trait EdgeSource {
    fn edges<'a>(&'a self, graph: &OnDiskGraph, v: VertexId) -> Option<VertexEdges<'a>>;
}

impl EdgeSource for LoadedBlock {
    fn edges<'a>(&'a self, graph: &OnDiskGraph, v: VertexId) -> Option<VertexEdges<'a>> {
        self.vertex_edges(graph, v)
    }
}

impl EdgeSource for FineLoad {
    fn edges<'a>(&'a self, graph: &OnDiskGraph, v: VertexId) -> Option<VertexEdges<'a>> {
        self.vertex_edges(graph, v)
    }
}

/// The NosWalker engine.
///
/// Construction is cheap and the engine is reusable — every
/// [`NosWalkerEngine::run`] is an independent deterministic simulation
/// under its seed. See the crate-level docs for a complete example.
#[derive(Debug)]
pub struct NosWalkerEngine<A: Walk> {
    app: Arc<A>,
    graph: Arc<OnDiskGraph>,
    opts: EngineOptions,
    budget: Arc<MemoryBudget>,
}

impl<A: Walk> NosWalkerEngine<A> {
    /// Creates an engine for `app` over `graph` under `budget`.
    pub fn new(
        app: Arc<A>,
        graph: Arc<OnDiskGraph>,
        opts: EngineOptions,
        budget: Arc<MemoryBudget>,
    ) -> Self {
        NosWalkerEngine {
            app,
            graph,
            opts,
            budget,
        }
    }

    /// The engine's options.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Runs the first-order workflow (Algorithm 1) to completion.
    ///
    /// # Errors
    ///
    /// [`EngineError::Budget`] if the budget cannot hold the minimum
    /// working set; [`EngineError::Load`] on device failure.
    pub fn run(&self, seed: u64) -> Result<RunMetrics, EngineError> {
        self.run_with_sink(seed, None)
    }

    /// Like [`NosWalkerEngine::run`], recording structured
    /// [`TraceEvent`]s into `sink` when one is supplied. With `None` the
    /// cost is one branch per emission site.
    ///
    /// In debug builds the returned metrics are additionally checked
    /// against the [`RunAudit`] conservation laws.
    ///
    /// # Errors
    ///
    /// As for [`NosWalkerEngine::run`].
    pub fn run_with_sink<'a>(
        &'a self,
        seed: u64,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> Result<RunMetrics, EngineError> {
        let audit = RunAudit::begin(self.app.total_walkers(), &self.budget);
        let mut run = Run::new(self, seed, Trace::from_option(sink))?;
        if self.opts.enable_walker_management {
            run.run_pooled()?;
        } else {
            run.run_epochs()?;
        }
        let metrics = run.finish();
        if cfg!(debug_assertions) {
            audit.verify(&metrics, &self.budget).assert_clean();
        }
        Ok(metrics)
    }
}

impl<A: SecondOrderWalk> NosWalkerEngine<A> {
    /// Runs the second-order workflow (Algorithm 3): pre-samples provide
    /// uniform candidates; rejection is processed when each candidate's
    /// block is resident.
    ///
    /// # Errors
    ///
    /// As for [`NosWalkerEngine::run`].
    ///
    /// # Panics
    ///
    /// Panics if `enable_walker_management` is off — the second-order
    /// extension is defined on the full decoupled architecture.
    pub fn run_second_order(&self, seed: u64) -> Result<RunMetrics, EngineError> {
        self.run_second_order_with_sink(seed, None)
    }

    /// Like [`NosWalkerEngine::run_second_order`], recording structured
    /// [`TraceEvent`]s into `sink` when one is supplied.
    ///
    /// # Errors
    ///
    /// As for [`NosWalkerEngine::run`].
    ///
    /// # Panics
    ///
    /// As for [`NosWalkerEngine::run_second_order`].
    pub fn run_second_order_with_sink<'a>(
        &'a self,
        seed: u64,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> Result<RunMetrics, EngineError> {
        assert!(
            self.opts.enable_walker_management,
            "second-order runs require walker management"
        );
        let audit = RunAudit::begin(self.app.total_walkers(), &self.budget);
        let mut run = Run::new(self, seed, Trace::from_option(sink))?;
        run.run_pooled_2nd()?;
        let metrics = run.finish();
        if cfg!(debug_assertions) {
            audit.verify(&metrics, &self.budget).assert_clean();
        }
        Ok(metrics)
    }
}

/// A pending asynchronous load.
enum Pending {
    Coarse {
        block: std::sync::Arc<LoadedBlock>,
        ready_at: u64,
    },
    Fine {
        load: FineLoad,
        ready_at: u64,
    },
}

impl Pending {
    fn ready_at(&self) -> u64 {
        match self {
            Pending::Coarse { ready_at, .. } | Pending::Fine { ready_at, .. } => *ready_at,
        }
    }

    fn block_id(&self) -> BlockId {
        match self {
            Pending::Coarse { block, .. } => block.info().id,
            Pending::Fine { load, .. } => load.info().id,
        }
    }
}

/// A bucket entry: a walker slot plus the vertex whose edge data it is
/// waiting for (its location; for second order with a pending candidate,
/// the candidate).
type Entry = (usize, VertexId);

/// All mutable state of one engine run.
struct Run<'e, A: Walk> {
    app: &'e A,
    graph: &'e OnDiskGraph,
    opts: &'e EngineOptions,
    budget: &'e Arc<MemoryBudget>,
    rng: WalkRng,
    clock: PipelineClock,
    metrics: RunMetrics,
    slab: Vec<Option<A::Walker>>,
    free: Vec<usize>,
    /// Walker entries bucketed by the block of their needed vertex.
    buckets: Vec<Vec<Entry>>,
    live: u64,
    next_id: u64,
    total: u64,
    presample: Vec<Option<PreSampleBuffer>>,
    pool_reservation: Option<Reservation>,
    fine_mode: bool,
    /// Page-cache stand-in for coarse blocks (the cgroups budget covers
    /// the OS page cache for every system, §4.1).
    cache: BlockCache,
    /// Offset of the walker-state swap region on the device (epoch mode).
    swap_base: u64,
    /// Largest coarse block, for sizing fixed overhead.
    max_block_bytes: u64,
    trace: Trace<'e>,
    wall: WallTimer,
}

/// The live walker in slot `i`. Bucket entries only reference live slots,
/// so a vacant slot here is engine-state corruption, not a user error.
fn live<W>(slab: &[Option<W>], i: usize) -> &W {
    // LINT-ALLOW(L5): bucket entries always reference live slab slots.
    slab[i].as_ref().expect("bucketed walker slot is live")
}

/// Mutable access to the live walker in slot `i` (see [`live`]).
fn live_mut<W>(slab: &mut [Option<W>], i: usize) -> &mut W {
    // LINT-ALLOW(L5): bucket entries always reference live slab slots.
    slab[i].as_mut().expect("bucketed walker slot is live")
}

/// Takes the live walker out of slot `i` for retirement (see [`live`]).
fn take_live<W>(slab: &mut [Option<W>], i: usize) -> W {
    // LINT-ALLOW(L5): bucket entries always reference live slab slots.
    slab[i].take().expect("retiring a live walker")
}

/// The pre-sample buffer for block `b`, which the caller has just peeked
/// (the shared `Peek` borrow ends before this mutable re-borrow starts).
fn peeked_buf(bufs: &mut [Option<PreSampleBuffer>], b: usize) -> &mut PreSampleBuffer {
    bufs[b]
        .as_mut()
        // LINT-ALLOW(L5): callers check the buffer is present before mutating.
        .expect("pre-sample buffer peeked by caller")
}

impl<'e, A: Walk> Run<'e, A> {
    fn new(
        engine: &'e NosWalkerEngine<A>,
        seed: u64,
        trace: Trace<'e>,
    ) -> Result<Self, EngineError> {
        let num_blocks = engine.graph.num_blocks();
        let total = engine.app.total_walkers();
        // Pooled mode charges the pool; epoch mode charges only the fixed
        // in-memory walker buffer (the remaining states live on disk and
        // cost swap I/O instead, §2.4.2).
        let charged =
            engine
                .opts
                .walker_pool_quota(&engine.budget, engine.app.state_bytes(), total);
        let pool_bytes = charged * engine.app.state_bytes() as u64;
        let pool_reservation = engine.budget.try_reserve(pool_bytes)?;
        let max_block_bytes = engine
            .graph
            .partition()
            .blocks()
            .iter()
            .map(|b| b.byte_len())
            .max()
            .unwrap_or(0);
        Ok(Run {
            app: &engine.app,
            graph: &engine.graph,
            opts: &engine.opts,
            budget: &engine.budget,
            rng: WalkRng::seed_from_u64(seed),
            clock: PipelineClock::new(),
            metrics: RunMetrics::default(),
            slab: Vec::new(),
            free: Vec::new(),
            buckets: vec![Vec::new(); num_blocks],
            live: 0,
            next_id: 0,
            total,
            presample: (0..num_blocks).map(|_| None).collect(),
            pool_reservation: Some(pool_reservation),
            fine_mode: false,
            cache: BlockCache::new(num_blocks),
            swap_base: engine.graph.edge_region_bytes(),
            max_block_bytes,
            trace,
            wall: WallTimer::start(),
        })
    }

    fn finish(mut self) -> RunMetrics {
        let at = self.clock.now();
        let steps = self.metrics.steps;
        let walkers_finished = self.metrics.walkers_finished;
        self.trace.emit(|| TraceEvent::RunEnd {
            steps,
            walkers_finished,
            at_ns: at,
        });
        self.metrics.finalize_clock(&self.clock);
        self.metrics.finalize_wall(&self.wall);
        self.metrics.set_peak_memory(self.budget.peak());
        self.metrics
            .derive_edges_loaded(self.graph.format().record_bytes() as u64);
        self.metrics
    }

    // ------------------------------------------------------------------
    // Walker bookkeeping
    // ------------------------------------------------------------------

    fn remaining(&self) -> u64 {
        self.total - self.metrics.walkers_finished - self.metrics.walkers_cancelled
    }

    /// The effective walker pool capacity (see
    /// [`EngineOptions::walker_pool_quota`]).
    fn pool_cap(&self) -> u64 {
        self.opts
            .walker_pool_quota(self.budget, self.app.state_bytes(), self.total)
    }

    fn done(&self) -> bool {
        self.next_id >= self.total && self.live == 0
    }

    fn insert_walker(&mut self, w: A::Walker, needed: VertexId) -> usize {
        let idx = if let Some(i) = self.free.pop() {
            self.slab[i] = Some(w);
            i
        } else {
            self.slab.push(Some(w));
            self.slab.len() - 1
        };
        let b = self.graph.block_of(needed) as usize;
        self.buckets[b].push((idx, needed));
        self.live += 1;
        idx
    }

    fn retire(&mut self, i: usize) {
        let w = take_live(&mut self.slab, i);
        let cancelled = self.app.is_cancelled(&w);
        self.app.on_terminate(&w);
        self.free.push(i);
        self.live -= 1;
        if cancelled {
            self.metrics.record_walker_cancelled();
        } else {
            self.metrics.record_walker_finished();
        }
    }

    /// Re-buckets walker `i` by `needed`; no-op if it terminated.
    fn rebucket(&mut self, i: usize, needed: impl Fn(&Self, &A::Walker) -> VertexId) {
        if let Some(w) = &self.slab[i] {
            let v = needed(self, w);
            let b = self.graph.block_of(v) as usize;
            self.buckets[b].push((i, v));
        }
    }

    /// Generates walkers up to `cap` live, shrinking the pool reservation
    /// once generation is exhausted (memory recycling, §3.3.3). `needed`
    /// computes the bucket vertex for a fresh walker.
    fn generate(&mut self, cap: u64, needed: impl Fn(&Self, &A::Walker) -> VertexId) {
        while self.live < cap && self.next_id < self.total {
            let w = self.app.generate(self.next_id, &mut self.rng);
            self.next_id += 1;
            if !self.app.is_active(&w) {
                let cancelled = self.app.is_cancelled(&w);
                self.app.on_terminate(&w);
                if cancelled {
                    self.metrics.record_walker_cancelled();
                } else {
                    self.metrics.record_walker_finished();
                }
                continue;
            }
            let v = needed(self, &w);
            self.insert_walker(w, v);
        }
        if self.next_id >= self.total {
            let cap = self.pool_cap();
            if let Some(r) = &mut self.pool_reservation {
                let want = self.live.min(cap) * self.app.state_bytes() as u64;
                if want < r.bytes() {
                    r.shrink_to(want);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Moving
    // ------------------------------------------------------------------

    /// Takes one step for walker `i` to `dst`, served from `src`. Returns
    /// `(alive, consumed)`: whether the walker survived, and whether it
    /// consumed the supplied destination (the paper's `Action` return
    /// value, Algorithm 1 line 17 — `false` means e.g. a restart hop that
    /// ignored the sample). Threading the [`StepSource`] through here means
    /// every step is attributed to exactly one serving tier.
    fn step_to(&mut self, i: usize, dst: VertexId, src: StepSource) -> (bool, bool) {
        let w = live_mut(&mut self.slab, i);
        let consumed = self.app.action(w, dst, &mut self.rng);
        self.clock.advance_compute(self.opts.step_cost());
        self.metrics.record_step(src);
        let alive = self.app.is_active(live(&self.slab, i));
        if !alive {
            self.retire(i);
        }
        (alive, consumed)
    }

    /// Moves walker `i` as far as possible on pre-sampled / raw slots
    /// (the decoupled fast path). Returns steps taken.
    fn chase_presamples(&mut self, i: usize) -> u64 {
        let mut steps = 0u64;
        loop {
            let Some(w) = self.slab[i].as_ref() else {
                break;
            };
            if !self.app.is_active(w) {
                self.retire(i);
                break;
            }
            let loc = self.app.location(w);
            if self.graph.degree(loc) == 0 {
                self.retire(i);
                break;
            }
            let b = self.graph.block_of(loc) as usize;
            let Some(buf) = &self.presample[b] else {
                break;
            };
            match buf.peek(loc) {
                Peek::Sampled(dst) => {
                    steps += 1;
                    let (alive, consumed) = self.step_to(i, dst, StepSource::PreSample);
                    if consumed {
                        // Pop only when Action consumed the sample
                        // (Algorithm 1, lines 17-18).
                        peeked_buf(&mut self.presample, b).consume(loc);
                        self.metrics.record_presample_consumed();
                    }
                    if !alive {
                        break;
                    }
                }
                Peek::Raw(view) => {
                    let dst =
                        self.app
                            .sample_for(live_mut(&mut self.slab, i), &view, &mut self.rng);
                    self.clock.advance_compute(self.opts.sample_cost());
                    // Unlike the `Sampled` arm, `consume` here is
                    // unconditional: raw retained slots never deplete
                    // (`PreSampleBuffer::consume` only bumps the visit
                    // counter that steers the next generation's quotas),
                    // so an `Action` that ignores the destination loses
                    // nothing — there is no reserved sample to waste.
                    peeked_buf(&mut self.presample, b).consume(loc);
                    steps += 1;
                    if !self.step_to(i, dst, StepSource::Raw).0 {
                        break;
                    }
                }
                Peek::Empty => {
                    peeked_buf(&mut self.presample, b).record_stall(loc);
                    self.metrics.record_presample_stall();
                    break;
                }
            }
        }
        steps
    }

    /// Moves walker `i` as far as possible inside edge source `src`
    /// (GraphWalker-style re-entry; "use loaded edges as pre-sampled
    /// edges", §3.3.5), then keeps going on pre-samples. Returns steps.
    fn chase_block(&mut self, i: usize, src: &dyn EdgeSource) -> u64 {
        let mut steps = 0u64;
        loop {
            let Some(w) = self.slab[i].as_ref() else {
                break;
            };
            if !self.app.is_active(w) {
                self.retire(i);
                break;
            }
            let loc = self.app.location(w);
            if self.graph.degree(loc) == 0 {
                self.retire(i);
                break;
            }
            let Some(view) = src.edges(self.graph, loc) else {
                steps += self.chase_presamples(i);
                break;
            };
            let dst = self
                .app
                .sample_for(live_mut(&mut self.slab, i), &view, &mut self.rng);
            self.clock.advance_compute(self.opts.sample_cost());
            steps += 1;
            if !self.step_to(i, dst, StepSource::Block).0 {
                break;
            }
        }
        steps
    }

    // ------------------------------------------------------------------
    // Loading and pre-sampling
    // ------------------------------------------------------------------

    /// Evicts pre-sample buffers (largest first) until `bytes` fit in the
    /// budget. Errors if they cannot fit even with everything evicted.
    fn make_room(&mut self, bytes: u64) -> Result<(), BudgetExceeded> {
        while self.budget.available() < bytes {
            // Cached blocks are the cheapest to give back (they can be
            // reloaded); reserved pre-samples go next.
            if self.cache.evict_one() {
                let at = self.clock.now();
                self.trace.emit(|| TraceEvent::CacheEvict { at_ns: at });
                continue;
            }
            let victim = (0..self.presample.len())
                .filter(|&b| self.presample[b].is_some())
                .max_by_key(|&b| self.presample[b].as_ref().map_or(0, |p| p.memory_bytes()));
            match victim {
                Some(b) => {
                    let at = self.clock.now();
                    let freed = self.presample[b].as_ref().map_or(0, |p| p.memory_bytes());
                    self.trace.emit(|| TraceEvent::PresampleEvict {
                        block: b as BlockId,
                        bytes: freed,
                        at_ns: at,
                    });
                    self.presample[b] = None;
                }
                None => {
                    return Err(BudgetExceeded {
                        requested: bytes,
                        in_use: self.budget.in_use(),
                        limit: self.budget.limit(),
                    })
                }
            }
        }
        Ok(())
    }

    /// The block with the most waiting walkers, excluding `skip`.
    fn hottest_block(&self, skip: Option<BlockId>) -> Option<BlockId> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(i, b)| Some(i as BlockId) != skip && !b.is_empty())
            .max_by_key(|(_, b)| b.len())
            .map(|(i, _)| i as BlockId)
    }

    /// Fine-mode switch `α·|Wa|·4KiB < S_G` (§3.3.1); sticky once taken.
    fn check_fine_mode(&mut self) {
        if self.fine_mode || !self.opts.enable_shrink_block {
            return;
        }
        let lhs = self.opts.alpha * self.remaining() * noswalker_graph::FINE_PAGE_BYTES;
        if lhs < self.graph.edge_region_bytes() {
            self.fine_mode = true;
            self.metrics.mark_fine_mode_switch();
            let at_step = self.metrics.steps;
            let at = self.clock.now();
            self.trace
                .emit(|| TraceEvent::FineModeSwitch { at_step, at_ns: at });
        }
    }

    /// Like [`Run::issue_load`], but tolerates a tight budget by skipping
    /// the prefetch (used while the previous block buffer is still alive).
    fn try_prefetch(&mut self, skip: Option<BlockId>) -> Result<Option<Pending>, EngineError> {
        match self.issue_load(skip) {
            Ok(p) => Ok(p),
            Err(EngineError::Budget(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Issues the next load (hottest block; fine-grained in fine mode),
    /// or `None` if no walker is waiting for anything.
    fn issue_load(&mut self, skip: Option<BlockId>) -> Result<Option<Pending>, EngineError> {
        let Some(b) = self.hottest_block(skip) else {
            return Ok(None);
        };
        self.check_fine_mode();
        if self.fine_mode {
            let mut verts: Vec<VertexId> =
                self.buckets[b as usize].iter().map(|&(_, v)| v).collect();
            verts.sort_unstable();
            verts.dedup();
            // Bound the batch so its pages fit comfortably in memory; the
            // remaining stalled vertices are served by later batches.
            let cap = (self.budget.limit() / 4).max(noswalker_graph::FINE_PAGE_BYTES * 4);
            let mut estimate = 0u64;
            let mut keep = verts.len();
            for (i, &v) in verts.iter().enumerate() {
                let r = self.graph.vertex_byte_range(v);
                estimate += (r.end - r.start) + 2 * noswalker_graph::FINE_PAGE_BYTES;
                if estimate > cap {
                    keep = i.max(1);
                    break;
                }
            }
            verts.truncate(keep);
            self.make_room(estimate.min(cap))?;
            let (load, ns) = self.graph.load_fine(b, &verts, self.budget)?;
            let at = self.clock.now();
            let ready_at = self.clock.issue_io(ns);
            self.metrics
                .record_fine_load(load.num_runs() as u64, load.loaded_bytes());
            let (vertices, runs, bytes) = (
                verts.len() as u64,
                load.num_runs() as u64,
                load.loaded_bytes(),
            );
            self.trace.emit(|| TraceEvent::FineLoad {
                block: b,
                vertices,
                runs,
                bytes,
                at_ns: at,
            });
            Ok(Some(Pending::Fine { load, ready_at }))
        } else {
            self.issue_coarse(b)
                .map(|(block, ready_at)| Some(Pending::Coarse { block, ready_at }))
        }
    }

    /// Issues an asynchronous coarse load of block `b`; returns the buffer
    /// and its completion time.
    fn issue_coarse(&mut self, b: BlockId) -> Result<(Arc<LoadedBlock>, u64), EngineError> {
        let info = *self.graph.partition().block(b);
        if self.budget.available() < info.byte_len() {
            self.make_room(info.byte_len())?;
        }
        let (block, ns, hit) = self
            .cache
            .load(self.graph, b, self.budget)
            .map_err(EngineError::from)?;
        let at = self.clock.now();
        let ready_at = self.clock.issue_io(ns);
        // An empty block (only zero-degree vertices) is a zero-byte no-op
        // read, not an I/O op — counting it would break the audit's
        // load-byte-consistency law (loads issued ⇔ bytes moved).
        if !hit && info.byte_len() > 0 {
            self.metrics.record_coarse_load(info.byte_len());
        }
        self.trace.emit(|| TraceEvent::CoarseLoad {
            block: b,
            bytes: if hit { 0 } else { info.byte_len() },
            cache_hit: hit,
            at_ns: at,
        });
        Ok((block, ready_at))
    }

    /// Rebuilds block `b`'s pre-sample buffer from a loaded source
    /// (§3.3.2): drop the old generation, reallocate slots proportional to
    /// carried visit counters, refill by sampling. `only` restricts slots
    /// to the vertices actually covered by a fine load.
    fn rebuild_presamples(&mut self, b: BlockId, src: &dyn EdgeSource, only: Option<&[VertexId]>) {
        if !self.opts.enable_presample {
            return;
        }
        // Regenerating a buffer discards its unconsumed slots (the compact
        // CSR layout cannot be appended to, §3.3.2); only do so once the
        // current generation is mostly drained, so reserved samples are not
        // wasted on every reload of a hot block.
        if let Some(buf) = &self.presample[b as usize] {
            let cap = buf.sampled_capacity();
            if cap > 0 && buf.remaining_sampled() * 4 > cap {
                return;
            }
        }
        let info = *self.graph.partition().block(b);
        let nv = info.num_vertices() as usize;
        if nv == 0 {
            return;
        }
        let old = self.presample[b as usize].take();
        let weights: Vec<u32> = if self.opts.uniform_presample_alloc {
            vec![0; nv] // zero weights → the planner falls back to uniform
        } else {
            match &old {
                Some(buf) => buf.visit_weights().to_vec(),
                None => vec![0; nv],
            }
        };
        drop(old); // release the old generation's memory first
        let degrees: Vec<u64> = (0..nv)
            .map(|i| {
                let v = info.vertex_start + i as VertexId;
                let covered = match only {
                    Some(list) => list.binary_search(&v).is_ok(),
                    None => true,
                };
                if covered && src.edges(self.graph, v).is_some() {
                    self.graph.degree(v)
                } else {
                    0
                }
            })
            .collect();
        let weighted = self.graph.format() != noswalker_graph::EdgeFormat::Unweighted;
        // Sampled slots are 4 B regardless of edge format — the succinct
        // representation that makes pre-sampling shine on weighted data.
        let slot_bytes: u64 = 4;
        let meta_bytes = nv as u64 * 9 + 4;
        // Fair share: the pre-sample pool as a whole gets a fraction of the
        // budget left after the fixed working set (two block buffers + the
        // walker pool), split evenly across blocks. This is what lets the
        // reserved samples cover the *entire* graph at a few slots per
        // vertex — the succinct-representation effect of §2.4.1 — instead
        // of a handful of blocks hoarding deep sample queues.
        let fixed =
            2 * self.max_block_bytes + self.pool_reservation.as_ref().map_or(0, |r| r.bytes());
        let pool_budget = (self.budget.limit().saturating_sub(fixed) as f64
            * self.opts.presample_budget_fraction) as u64;
        let fair = pool_budget / self.graph.num_blocks().max(1) as u64;
        let avail = self.budget.available();
        let cap_bytes = fair.min(avail);
        if cap_bytes <= meta_bytes {
            return;
        }
        let mut capacity_slots = (cap_bytes - meta_bytes) / slot_bytes;
        let (plan, reservation) = loop {
            let plan = plan_quotas(
                &degrees,
                &weights,
                capacity_slots,
                self.opts.low_degree_threshold,
                self.opts.alias_degree_threshold,
                self.opts.presample_cap_per_vertex,
            );
            if plan.total_slots == 0 {
                return;
            }
            match self
                .budget
                .try_reserve(PreSampleBuffer::planned_bytes(&plan, weighted))
            {
                Ok(r) => break (plan, r),
                Err(_) if capacity_slots > 64 => capacity_slots /= 2,
                Err(_) => return, // budget too tight right now; retry later
            }
        };
        let app = self.app;
        let graph = self.graph;
        let rng = &mut self.rng;
        let (mut buf, draws) = PreSampleBuffer::build(
            info.vertex_start,
            &plan,
            weighted,
            |v| {
                // LINT-ALLOW(L5): the quota planner zeroes uncovered vertices.
                let view = src.edges(graph, v).expect("planned vertices are covered");
                app.sample(&view, rng)
            },
            |v, edges, mut wts| {
                // LINT-ALLOW(L5): the quota planner zeroes uncovered vertices.
                let view = src.edges(graph, v).expect("planned vertices are covered");
                for i in 0..view.degree() {
                    edges.push(view.target(i));
                    if let Some(w) = wts.as_deref_mut() {
                        w.push(view.weight(i).unwrap_or(1.0));
                    }
                }
            },
        );
        buf.set_reservation(reservation);
        self.clock.advance_compute(draws * self.opts.sample_cost());
        self.metrics.record_presamples_filled(draws);
        let at = self.clock.now();
        let slots = plan.total_slots;
        self.trace.emit(|| TraceEvent::PresampleRefill {
            block: b,
            slots,
            draws,
            at_ns: at,
        });
        self.presample[b as usize] = Some(buf);
    }

    // ------------------------------------------------------------------
    // First-order pooled workflow (Algorithm 1)
    // ------------------------------------------------------------------

    fn run_pooled(&mut self) -> Result<(), EngineError> {
        let cap = self.pool_cap();
        let by_loc = |run: &Self, w: &A::Walker| run.app.location(w);
        self.generate(cap, by_loc);
        let mut pending: Option<Pending> = None;
        loop {
            if self.done() {
                break;
            }
            // Integrate a completed load; issue the next one first so the
            // loader never idles (background I/O thread, Algorithm 1).
            let now = self.clock.now();
            if let Some(p) = pending.take_if(|p| p.ready_at() <= now) {
                pending = self.try_prefetch(Some(p.block_id()))?;
                self.integrate_first_order(p);
                self.generate(cap, by_loc);
            }
            // Keep walkers moving on reserved pre-samples meanwhile.
            let moved = self.presample_pass();
            self.generate(cap, by_loc);
            if self.done() {
                break;
            }
            if pending.is_none() {
                pending = self.issue_load(None)?;
            }
            if moved == 0 {
                match &pending {
                    Some(p) => {
                        let t = p.ready_at();
                        self.stall_on(Some(p.block_id()), t);
                    }
                    None => {
                        debug_assert!(self.done(), "walkers remain but nothing to load");
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// One pass over all waiting walkers, chasing pre-samples. Returns
    /// total steps moved.
    fn presample_pass(&mut self) -> u64 {
        if !self.opts.enable_presample {
            return 0;
        }
        let mut moved = 0u64;
        for b in 0..self.buckets.len() {
            if self.presample[b].is_none() || self.buckets[b].is_empty() {
                continue;
            }
            let bucket = std::mem::take(&mut self.buckets[b]);
            for (i, _) in bucket {
                moved += self.chase_presamples(i);
                self.rebucket(i, |run, w| run.app.location(w));
            }
        }
        moved
    }

    fn integrate_first_order(&mut self, p: Pending) {
        let b = p.block_id();
        let src: &dyn EdgeSource = match &p {
            Pending::Coarse { block, .. } => &**block,
            Pending::Fine { load, .. } => load,
        };
        let mut served: Vec<VertexId> = Vec::new();
        // Process the waiting walkers, then adaptively generate more
        // (Fig. 6 ②): fresh walkers whose start vertex lies in the
        // resident block are drained immediately while the data is hot,
        // freeing their pool slots for yet more generation. Iterate until
        // the block has no runnable walker left or the pool is pinned by
        // walkers stuck elsewhere.
        let cap = self.pool_cap();
        loop {
            let progress_mark = self.metrics.steps + self.metrics.walkers_finished + self.next_id;
            let bucket = std::mem::take(&mut self.buckets[b as usize]);
            if bucket.is_empty() {
                self.generate(cap, |run, w| run.app.location(w));
                if self.next_id + self.metrics.walkers_finished == progress_mark
                    || self.buckets[b as usize].is_empty()
                {
                    break;
                }
                continue;
            }
            for (i, needed) in bucket {
                if matches!(p, Pending::Fine { .. }) {
                    served.push(needed);
                }
                self.chase_block(i, src);
                self.rebucket(i, |run, w| run.app.location(w));
            }
            if self.metrics.steps + self.metrics.walkers_finished + self.next_id == progress_mark {
                break; // remaining walkers cannot move on this load
            }
        }
        served.sort_unstable();
        served.dedup();
        match &p {
            Pending::Coarse { block, .. } => self.rebuild_presamples(b, &**block, None),
            Pending::Fine { load, .. } => self.rebuild_presamples(b, load, Some(&served)),
        }
        // `p` drops here; the coarse buffer stays alive in the cache.
    }

    // ------------------------------------------------------------------
    // Epoch workflow (walker management off — Fig. 14 base)
    // ------------------------------------------------------------------

    fn run_epochs(&mut self) -> Result<(), EngineError> {
        let by_loc = |run: &Self, w: &A::Walker| run.app.location(w);
        self.generate(u64::MAX, by_loc);
        // Epoch mode never shrinks to fine-grained I/O, so pending loads
        // are plain coarse buffers (no `Pending` enum needed).
        let mut pending: Option<(Arc<LoadedBlock>, u64)> = None;
        while !self.done() {
            let (block, ready_at) = match pending.take() {
                Some(p) => p,
                None => match self.hottest_block(None) {
                    Some(b) => self.issue_coarse(b)?,
                    None => break,
                },
            };
            let b = block.info().id;
            self.stall_on(Some(b), ready_at);
            // Walker-state swap (GraphWalker's fixed walker buffer,
            // §2.4.2): the block's walker states are read from and written
            // back to a swap region on the same device.
            let in_block = self.buckets[b as usize].len() as u64;
            self.charge_swap(in_block)?;
            // Prefetch the next-hottest block while processing (skipped
            // when the budget cannot hold two block buffers).
            if let Some(nb) = self.hottest_block(Some(b)) {
                match self.issue_coarse(nb) {
                    Ok(p) => pending = Some(p),
                    Err(EngineError::Budget(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            let bucket = std::mem::take(&mut self.buckets[b as usize]);
            for (i, _) in bucket {
                self.chase_block(i, &*block);
                self.rebucket(i, by_loc);
            }
        }
        Ok(())
    }

    /// Stalls the clock until `t`, attributing the wait to `block` in the
    /// trace (no event when `t` is already past).
    fn stall_on(&mut self, block: Option<BlockId>, t: u64) {
        let from = self.clock.now();
        self.clock.stall_until(t);
        if t > from {
            self.trace.emit(|| TraceEvent::Stall {
                waiting_for: block,
                from_ns: from,
                until_ns: t,
            });
        }
    }

    /// Performs the swap-region I/O for `n` walker states: write back, then
    /// read in — real device operations so the cost model and stats agree.
    fn charge_swap(&mut self, n: u64) -> Result<(), EngineError> {
        let bytes = n * self.opts.swap_record_bytes;
        if bytes == 0 {
            return Ok(());
        }
        const CHUNK: u64 = 16 << 20;
        let mut left = bytes;
        let buf_len = left.min(CHUNK) as usize;
        let mut buf = vec![0u8; buf_len];
        let device = self.graph.device();
        while left > 0 {
            let n = left.min(CHUNK) as usize;
            let wns = device
                .write(self.swap_base, &buf[..n])
                .map_err(|e| EngineError::Load(LoadError::Device(e)))?;
            let rns = device
                .read(self.swap_base, &mut buf[..n])
                .map_err(|e| EngineError::Load(LoadError::Device(e)))?;
            self.clock.sync_io(wns + rns);
            left -= n as u64;
        }
        self.metrics.record_swap(2 * bytes, 0);
        let at = self.clock.now();
        self.trace.emit(|| TraceEvent::Swap {
            bytes: 2 * bytes,
            at_ns: at,
        });
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Second-order pooled workflow (Algorithm 3)
// ----------------------------------------------------------------------

impl<'e, A: SecondOrderWalk> Run<'e, A> {
    /// The vertex whose edges this walker needs next: the pending
    /// candidate (for rejection) or the current location (for sampling).
    fn needed_vertex(&self, w: &A::Walker) -> VertexId {
        self.app
            .candidate(w)
            .unwrap_or_else(|| self.app.location(w))
    }

    fn run_pooled_2nd(&mut self) -> Result<(), EngineError> {
        let cap = self.pool_cap();
        let by_need = |run: &Self, w: &A::Walker| run.needed_vertex(w);
        self.generate(cap, by_need);
        let mut pending: Option<Pending> = None;
        loop {
            if self.done() {
                break;
            }
            let now = self.clock.now();
            if let Some(p) = pending.take_if(|p| p.ready_at() <= now) {
                pending = self.try_prefetch(Some(p.block_id()))?;
                self.integrate_2nd(p);
                self.generate(cap, by_need);
            }
            let moved = self.candidate_pass();
            self.generate(cap, by_need);
            if self.done() {
                break;
            }
            if pending.is_none() {
                pending = self.issue_load(None)?;
            }
            if moved == 0 {
                match &pending {
                    Some(p) => {
                        let t = p.ready_at();
                        self.stall_on(Some(p.block_id()), t);
                    }
                    None => break,
                }
            }
        }
        Ok(())
    }

    /// Hands candidates to candidate-less walkers from pre-samples
    /// (steps 1–2 of the rejection method, Appendix A.2).
    fn candidate_pass(&mut self) -> u64 {
        if !self.opts.enable_presample {
            return 0;
        }
        let mut progress = 0u64;
        for b in 0..self.buckets.len() {
            if self.presample[b].is_none() || self.buckets[b].is_empty() {
                continue;
            }
            let bucket = std::mem::take(&mut self.buckets[b]);
            for (i, _) in bucket {
                progress += self.acquire_candidate(i);
                self.rebucket(i, |run, w| run.needed_vertex(w));
            }
        }
        progress
    }

    fn acquire_candidate(&mut self, i: usize) -> u64 {
        let Some(w) = self.slab[i].as_ref() else {
            return 0;
        };
        if !self.app.is_active(w) {
            self.retire(i);
            return 0;
        }
        if self.app.candidate(w).is_some() {
            return 0; // waiting for rejection, not for a sample
        }
        let loc = self.app.location(w);
        if self.graph.degree(loc) == 0 {
            self.retire(i);
            return 0;
        }
        let b = self.graph.block_of(loc) as usize;
        let Some(buf) = &self.presample[b] else {
            return 0;
        };
        match buf.peek(loc) {
            Peek::Sampled(dst) => {
                let w = live_mut(&mut self.slab, i);
                let consumed = self.app.action(w, dst, &mut self.rng);
                self.clock.advance_compute(self.opts.step_cost());
                if consumed {
                    peeked_buf(&mut self.presample, b).consume(loc);
                    self.metrics.record_presample_consumed();
                }
                1
            }
            Peek::Raw(view) => {
                let dst = self.app.sample(&view, &mut self.rng);
                self.clock.advance_compute(self.opts.sample_cost());
                let w = live_mut(&mut self.slab, i);
                self.app.action(w, dst, &mut self.rng);
                // Unconditional on purpose: raw slots never deplete, so
                // `consume` is a visit-popularity tick, not a pop (see
                // `chase_presamples`).
                peeked_buf(&mut self.presample, b).consume(loc);
                1
            }
            Peek::Empty => {
                peeked_buf(&mut self.presample, b).record_stall(loc);
                self.metrics.record_presample_stall();
                0
            }
        }
    }

    /// Integrates a load for second order: RejectionProcess for walkers
    /// whose candidate lives here, then in-block candidate + rejection
    /// chaining (Algorithm 3).
    fn integrate_2nd(&mut self, p: Pending) {
        let b = p.block_id();
        let src: &dyn EdgeSource = match &p {
            Pending::Coarse { block, .. } => &**block,
            Pending::Fine { load, .. } => load,
        };
        let bucket = std::mem::take(&mut self.buckets[b as usize]);
        let mut served: Vec<VertexId> = Vec::new();
        for (i, needed) in bucket {
            if matches!(p, Pending::Fine { .. }) {
                served.push(needed);
            }
            loop {
                let Some(w) = self.slab[i].as_ref() else {
                    break;
                };
                if !self.app.is_active(w) {
                    self.retire(i);
                    break;
                }
                if let Some(c) = self.app.candidate(w) {
                    let Some(cedges) = src.edges(self.graph, c) else {
                        break; // candidate's pages not in this load
                    };
                    let before = self.app.location(w);
                    let wm = live_mut(&mut self.slab, i);
                    self.app.rejection(wm, &cedges, &mut self.rng);
                    self.clock.advance_compute(self.opts.step_cost());
                    let w = live(&self.slab, i);
                    let accepted = self.app.location(w) != before;
                    self.metrics.record_second_order(accepted);
                    continue;
                }
                let loc = self.app.location(w);
                if self.graph.degree(loc) == 0 {
                    self.retire(i);
                    break;
                }
                let Some(view) = src.edges(self.graph, loc) else {
                    break;
                };
                let dst = self.app.sample(&view, &mut self.rng);
                self.clock.advance_compute(self.opts.sample_cost());
                let wm = live_mut(&mut self.slab, i);
                self.app.action(wm, dst, &mut self.rng);
            }
            self.rebucket(i, |run, w| run.needed_vertex(w));
        }
        served.sort_unstable();
        served.dedup();
        match &p {
            Pending::Coarse { block, .. } => self.rebuild_presamples(b, &**block, None),
            Pending::Fine { load, .. } => self.rebuild_presamples(b, load, Some(&served)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::uniform_sample;
    use noswalker_graph::generators;
    use noswalker_storage::{SimSsd, SsdProfile};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A basic fixed-length uniform walk that counts visits.
    #[derive(Debug)]
    struct Basic {
        walkers: u64,
        length: u32,
        start_mod: u32,
        visits: Vec<AtomicU64>,
    }

    impl Basic {
        fn new(walkers: u64, length: u32, n: usize) -> Self {
            Basic {
                walkers,
                length,
                start_mod: n as u32,
                visits: (0..n).map(|_| AtomicU64::new(0)).collect(),
            }
        }
    }

    #[derive(Debug, Clone)]
    struct BasicWalker {
        at: VertexId,
        step: u32,
    }

    impl Walk for Basic {
        type Walker = BasicWalker;
        fn total_walkers(&self) -> u64 {
            self.walkers
        }
        fn generate(&self, n: u64, _rng: &mut WalkRng) -> BasicWalker {
            BasicWalker {
                at: (n % self.start_mod as u64) as u32,
                step: 0,
            }
        }
        fn location(&self, w: &BasicWalker) -> VertexId {
            w.at
        }
        fn is_active(&self, w: &BasicWalker) -> bool {
            w.step < self.length
        }
        fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
            uniform_sample(v, rng)
        }
        fn action(&self, w: &mut BasicWalker, next: VertexId, _rng: &mut WalkRng) -> bool {
            self.visits[next as usize].fetch_add(1, Ordering::Relaxed);
            w.at = next;
            w.step += 1;
            true
        }
    }

    fn small_setup(opts: EngineOptions, budget_bytes: u64) -> (Arc<Basic>, NosWalkerEngine<Basic>) {
        let csr = generators::rmat(10, 8, generators::RmatParams::default(), 11);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        let app = Arc::new(Basic::new(500, 10, csr.num_vertices()));
        let budget = MemoryBudget::new(budget_bytes);
        let engine = NosWalkerEngine::new(Arc::clone(&app), graph, opts, budget);
        (app, engine)
    }

    /// `Basic` with a deliberately huge declared walker state, to pin the
    /// pool-sizing byte clamp.
    #[derive(Debug)]
    struct FatState(Basic);

    impl Walk for FatState {
        type Walker = BasicWalker;
        fn total_walkers(&self) -> u64 {
            self.0.total_walkers()
        }
        fn generate(&self, n: u64, rng: &mut WalkRng) -> BasicWalker {
            self.0.generate(n, rng)
        }
        fn location(&self, w: &BasicWalker) -> VertexId {
            self.0.location(w)
        }
        fn is_active(&self, w: &BasicWalker) -> bool {
            self.0.is_active(w)
        }
        fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
            self.0.sample(v, rng)
        }
        fn action(&self, w: &mut BasicWalker, next: VertexId, rng: &mut WalkRng) -> bool {
            self.0.action(w, next, rng)
        }
        fn state_bytes(&self) -> usize {
            4096
        }
    }

    #[test]
    fn pool_sizing_respects_tiny_budgets_with_fat_walker_state() {
        // 4096-byte walker states under a 64 KiB budget: the former
        // 64-walker pool floor would have demanded 256 KiB up front and
        // errored. The byte clamp caps the pool so the run completes.
        let csr = generators::rmat(10, 8, generators::RmatParams::default(), 11);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        let app = Arc::new(FatState(Basic::new(200, 6, csr.num_vertices())));
        let engine = NosWalkerEngine::new(
            app,
            graph,
            EngineOptions::default(),
            MemoryBudget::new(64 << 10),
        );
        let m = engine
            .run(7)
            .expect("byte-clamped pool must fit the budget");
        assert_eq!(m.walkers_finished, 200);
    }

    #[test]
    fn full_engine_completes_all_steps() {
        let (app, engine) = small_setup(EngineOptions::default(), 64 << 10);
        let m = engine.run(7).unwrap();
        assert_eq!(m.walkers_finished, 500);
        // Every step lands on a vertex; walkers at dead ends terminate
        // early, so steps <= walkers * length.
        assert!(m.steps <= 500 * 10);
        assert!(m.steps > 0);
        let visited: u64 = app.visits.iter().map(|v| v.load(Ordering::Relaxed)).sum();
        assert_eq!(visited, m.steps);
        assert!(m.sim_ns > 0);
    }

    #[test]
    fn base_mode_completes_with_swap_traffic() {
        let (_, engine) = small_setup(EngineOptions::base(), 64 << 10);
        let m = engine.run(7).unwrap();
        assert_eq!(m.walkers_finished, 500);
        assert!(m.swap_bytes > 0, "epoch mode must charge swap I/O");
        assert_eq!(m.steps_on_presample, 0);
        assert!(m.fine_mode_at_step.is_none());
    }

    #[test]
    fn presample_knob_reduces_io() {
        // An out-of-core regime: the graph (~128 KiB) far exceeds the
        // budget (24 KiB), so the block cache cannot mask reloads and the
        // pre-sample pool is what saves I/O.
        let mk = |opts: EngineOptions| {
            let csr = generators::rmat(12, 8, generators::RmatParams::default(), 11);
            let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
            let graph = Arc::new(OnDiskGraph::store(&csr, device, 4096).unwrap());
            let app = Arc::new(Basic::new(2000, 10, csr.num_vertices()));
            NosWalkerEngine::new(app, graph, opts, MemoryBudget::new(24 << 10))
        };
        let m_no = mk(EngineOptions::with_shrink_block()).run(3).unwrap();
        let m_ps = mk(EngineOptions::full()).run(3).unwrap();
        assert!(m_ps.steps_on_presample > 0);
        assert!(
            m_ps.edge_bytes_loaded < m_no.edge_bytes_loaded,
            "pre-sampling should reduce edge I/O: {} vs {}",
            m_ps.edge_bytes_loaded,
            m_no.edge_bytes_loaded
        );
    }

    #[test]
    fn fine_mode_engages_for_sparse_walkers() {
        let mut opts = EngineOptions::full();
        opts.walker_pool_size = 64;
        let csr = generators::rmat(15, 16, generators::RmatParams::default(), 5);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 64 << 10).unwrap());
        let app = Arc::new(Basic::new(50, 10, csr.num_vertices()));
        let budget = MemoryBudget::new(512 << 10);
        let engine = NosWalkerEngine::new(Arc::clone(&app), graph, opts, budget);
        let m = engine.run(9).unwrap();
        assert_eq!(m.walkers_finished, 50);
        // α·|Wa|·4KiB = 4·50·4096 ≈ 0.8 MB < S_G = 512k edges · 4 B = 2 MB:
        // fine mode should engage immediately.
        assert!(m.fine_mode_at_step.is_some());
        assert!(m.fine_loads > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let (_, e1) = small_setup(EngineOptions::default(), 64 << 10);
        let (_, e2) = small_setup(EngineOptions::default(), 64 << 10);
        let m1 = e1.run(42).unwrap();
        let m2 = e2.run(42).unwrap();
        assert_eq!(m1.steps, m2.steps);
        assert_eq!(m1.sim_ns, m2.sim_ns);
        assert_eq!(m1.edge_bytes_loaded, m2.edge_bytes_loaded);
    }

    #[test]
    fn budget_too_small_for_block_fails() {
        let (_, engine) = small_setup(EngineOptions::default(), 1024);
        assert!(matches!(engine.run(1), Err(EngineError::Budget(_))));
    }

    #[test]
    fn zero_walkers_is_a_noop() {
        let csr = generators::uniform_degree(32, 4, 2);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 1024).unwrap());
        let app = Arc::new(Basic::new(0, 10, 32));
        let engine = NosWalkerEngine::new(
            app,
            graph,
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        );
        let m = engine.run(0).unwrap();
        assert_eq!(m.steps, 0);
        assert_eq!(m.walkers_finished, 0);
    }

    #[test]
    fn errors_render_for_humans() {
        let budget = MemoryBudget::new(10);
        let e: EngineError = budget.try_reserve(100).unwrap_err().into();
        let msg = e.to_string();
        assert!(msg.contains("engine:"), "{msg}");
        assert!(msg.contains("memory budget exceeded"), "{msg}");
        let le: EngineError = crate::disk_graph::LoadError::Device(
            noswalker_storage::DeviceError::Io("disk on fire".into()),
        )
        .into();
        assert!(le.to_string().contains("disk on fire"));
    }

    #[test]
    fn load_error_budget_converts_to_engine_budget() {
        let budget = MemoryBudget::new(10);
        let le = crate::disk_graph::LoadError::Budget(budget.try_reserve(100).unwrap_err());
        assert!(matches!(EngineError::from(le), EngineError::Budget(_)));
    }

    #[test]
    fn walkers_on_dead_end_vertices_terminate() {
        use noswalker_graph::CsrBuilder;
        // Vertex 1 is a sink.
        let csr = CsrBuilder::new(2).edge(0, 1).build();
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 1024).unwrap());
        let app = Arc::new(Basic::new(10, 5, 2));
        let engine = NosWalkerEngine::new(
            app,
            graph,
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        );
        let m = engine.run(3).unwrap();
        assert_eq!(m.walkers_finished, 10);
        // Walkers starting at 0 take one step to 1 then die; walkers
        // starting at 1 die immediately.
        assert_eq!(m.steps, 5);
    }
}
