//! The pre-sampled edge buffers — the center of the decoupled architecture
//! (paper §3.3.2, Fig. 8).
//!
//! One buffer covers one coarse block's worth of consecutive vertices. It is
//! a compact CSR-like structure: an `idx` prefix array gives each vertex's
//! slot range in a flat `edges` array, and a per-vertex `cnt` tracks both
//! consumption *and* stalled visits — so `cnt` doubles as the popularity
//! estimate that drives proportional reallocation at the next refill.
//!
//! Low-degree vertices (§3.3.4) get their *raw edges* retained instead of
//! samples: the slots never deplete, since the full edge set can be sampled
//! from forever.
//!
//! Two consumption modes share the same storage layout:
//!
//! * [`PreSampleBuffer`] — single-owner, `&mut` consumption (the
//!   sequential engine's path);
//! * [`PublishedBuffer`] — an immutable *generation* whose per-vertex
//!   cursors are atomics, so any number of worker threads can claim slots
//!   with a single `fetch_add` and no lock (the parallel runner's path;
//!   see DESIGN.md §11 for the publish/claim protocol).

use noswalker_graph::layout::VertexEdges;
use noswalker_graph::{AliasTable, VertexId};
use noswalker_storage::Reservation;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// What a vertex's pre-sample slots currently offer.
#[derive(Debug, Clone, Copy)]
pub enum Peek<'a> {
    /// A reserved pre-sampled destination, ready to consume.
    Sampled(VertexId),
    /// The vertex's raw retained edges (low-degree retention): sample from
    /// this view, it never depletes.
    Raw(VertexEdges<'a>),
    /// No usable slots: the walker stalls here.
    Empty,
}

/// Per-vertex slot quota plan for one buffer build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuotaPlan {
    /// Slots per vertex (local index within the block).
    pub quotas: Vec<u32>,
    /// Whether each vertex's slots hold raw edges rather than samples.
    pub raw: Vec<bool>,
    /// Hub-retained vertices: raw retention granted *above* the alias
    /// degree threshold, where the buffer additionally builds a per-vertex
    /// alias table on weighted graphs so sampling stays O(1). Always a
    /// subset of `raw`.
    pub alias: Vec<bool>,
    /// Total slots planned.
    pub total_slots: u64,
}

/// Computes the slot allocation for a buffer rebuild.
///
/// `visit_weights[i]` is the carried `cnt` of local vertex `i` from the
/// previous buffer generation (0 on first build). Vertices with degree 0
/// get nothing; degree ≤ `low_degree_threshold` get raw retention (quota =
/// degree); the rest split `capacity_slots` proportionally to their visit
/// weight (uniformly if no vertex has been visited yet), clamped to
/// `cap_per_vertex`.
///
/// Hub retention: vertices with degree ≥ `alias_degree_threshold` — plus
/// *self-funding* vertices whose visit weight matches or exceeds their
/// degree, for whom retention is no more memory than the sampled slots
/// their traffic would claim — are admitted hottest-first into raw
/// retention too, as long as their whole edge list fits within three
/// quarters of the post-raw slot budget. A retained hub never depletes —
/// the dominant source of per-vertex slot exhaustion on skewed graphs —
/// and on weighted graphs the build step attaches an O(1) alias table
/// (ThunderRW-style), so retention costs no sampling speed.
pub fn plan_quotas(
    degrees: &[u64],
    visit_weights: &[u32],
    capacity_slots: u64,
    low_degree_threshold: u32,
    alias_degree_threshold: u32,
    cap_per_vertex: u32,
) -> QuotaPlan {
    assert_eq!(degrees.len(), visit_weights.len());
    let n = degrees.len();
    let mut quotas = vec![0u32; n];
    let mut raw = vec![false; n];
    let mut alias = vec![false; n];
    let mut raw_slots = 0u64;
    for i in 0..n {
        if degrees[i] > 0 && degrees[i] <= low_degree_threshold as u64 {
            raw[i] = true;
            quotas[i] = degrees[i] as u32;
            raw_slots += degrees[i];
        }
    }
    let mut budget = capacity_slots.saturating_sub(raw_slots);
    // `u32::MAX` is the documented "hub retention off" sentinel: it must
    // disable the self-funding admission too, not just the degree test.
    let mut hubs: Vec<usize> = (0..n)
        .filter(|&i| {
            !raw[i]
                && alias_degree_threshold != u32::MAX
                && degrees[i] > low_degree_threshold as u64
                && (degrees[i] >= alias_degree_threshold as u64
                    // Self-funding: retention costs `degree` slots once and
                    // serves unboundedly; a vertex already claiming at
                    // least that many slots per generation is cheaper
                    // retained than sampled, whatever its degree.
                    || visit_weights[i] as u64 >= degrees[i])
        })
        .collect();
    if !hubs.is_empty() && budget > 0 {
        // Hottest-first admission (degree as the cold-start proxy, local
        // index as the deterministic tie-break), bounded to three quarters
        // of the remaining budget so hub retention cannot fully starve the
        // sampled vertices it shares the buffer with.
        hubs.sort_by_key(|&i| {
            (
                std::cmp::Reverse(visit_weights[i]),
                std::cmp::Reverse(degrees[i]),
                i,
            )
        });
        let mut alias_budget = budget - budget / 4;
        for &i in &hubs {
            if degrees[i] <= alias_budget && degrees[i] <= u32::MAX as u64 {
                alias[i] = true;
                raw[i] = true;
                quotas[i] = degrees[i] as u32;
                alias_budget -= degrees[i];
                budget -= degrees[i];
            }
        }
    }
    let eligible: Vec<usize> = (0..n)
        .filter(|&i| !raw[i] && degrees[i] > low_degree_threshold as u64)
        .collect();
    if !eligible.is_empty() && budget > 0 {
        let sum_w: u64 = eligible.iter().map(|&i| visit_weights[i] as u64).sum();
        if sum_w == 0 {
            // First fill, no visit history yet: weight by degree — the
            // stationary visit probability of a random walk concentrates on
            // high-degree vertices, so they are the best prediction of the
            // future hot region (§3.1: "the distribution of reserved
            // samples can represent our prediction of ... future hot
            // regions").
            let sum_d: u64 = eligible.iter().map(|&i| degrees[i]).sum();
            for &i in &eligible {
                let share = (budget * degrees[i] / sum_d.max(1))
                    .max(1)
                    .min(cap_per_vertex as u64);
                quotas[i] = share as u32;
            }
        } else {
            for &i in &eligible {
                let w = visit_weights[i] as u64;
                if w == 0 {
                    continue;
                }
                let share = (budget * w)
                    .checked_div(sum_w)
                    .unwrap_or(0)
                    .max(1)
                    .min(cap_per_vertex as u64);
                quotas[i] = share as u32;
            }
        }
    }
    let total_slots = quotas.iter().map(|&q| q as u64).sum();
    QuotaPlan {
        quotas,
        raw,
        alias,
        total_slots,
    }
}

/// Per-block demand tally since the last publish, feeding the refill
/// watermark and the demand-weighted budget split.
///
/// Both fields are commutative Relaxed counters folded at refill time (the
/// publish mutex is the barrier), exactly like the claim cursors above.
#[derive(Debug, Default)]
pub struct BlockDemand {
    claims: AtomicU64,
    stalls: AtomicU64,
}

impl BlockDemand {
    /// Records `n` sampled-slot claims against this block.
    pub fn note_claims(&self, n: u64) {
        self.claims.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` stalled visits against this block (dry pool or missing
    /// buffer) — stalls weigh into demand just like served claims, so a
    /// starved block's pressure is visible even when it serves nothing.
    pub fn note_stalls(&self, n: u64) {
        self.stalls.fetch_add(n, Ordering::Relaxed);
    }

    /// Slots' worth of demand seen since the last [`BlockDemand::reset`].
    pub fn pressure(&self) -> u64 {
        self.claims.load(Ordering::Relaxed) + self.stalls.load(Ordering::Relaxed)
    }

    /// Zeroes the tally (called when a fresh generation is published) and
    /// returns the pressure it had accumulated.
    pub fn reset(&self) -> u64 {
        self.claims.swap(0, Ordering::Relaxed) + self.stalls.swap(0, Ordering::Relaxed)
    }
}

/// A pre-sampled edge buffer for one block of consecutive vertices.
#[derive(Debug)]
pub struct PreSampleBuffer {
    vertex_start: VertexId,
    /// Prefix of slot positions: vertex `i`'s slots are
    /// `edges[idx[i] .. idx[i + 1]]`.
    idx: Vec<u32>,
    /// Consumed-or-stalled counter per vertex (the paper's `cnt`).
    cnt: Vec<u32>,
    raw: Vec<bool>,
    edges: Vec<VertexId>,
    /// Parallel raw-edge weights (only populated for raw vertices of
    /// weighted graphs).
    weights: Option<Vec<f32>>,
    /// Per-hub alias tables (local vertex index → slot-parallel prob/alias
    /// arrays), built once per generation for weighted alias-retained
    /// vertices so their sampling is O(1).
    alias: BTreeMap<u32, (Vec<f32>, Vec<u32>)>,
    /// Budget reservation covering this buffer, if the owner charges one.
    reservation: Option<Reservation>,
}

impl PreSampleBuffer {
    /// Builds a buffer from a quota plan, filling slots through callbacks:
    ///
    /// * `sample` draws one pre-sampled destination for a vertex (called
    ///   `quota` times per non-raw vertex);
    /// * `raw_edges` appends the raw targets (and weights, when `weighted`)
    ///   of a low-degree vertex.
    ///
    /// Returns the buffer plus the number of sample draws performed (the
    /// engine charges compute per draw).
    pub fn build(
        vertex_start: VertexId,
        plan: &QuotaPlan,
        weighted: bool,
        mut sample: impl FnMut(VertexId) -> VertexId,
        mut raw_edges: impl FnMut(VertexId, &mut Vec<VertexId>, Option<&mut Vec<f32>>),
    ) -> (Self, u64) {
        let n = plan.quotas.len();
        let mut idx = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(plan.total_slots as usize);
        let mut weights = weighted.then(Vec::new);
        let mut alias = BTreeMap::new();
        let mut draws = 0u64;
        idx.push(0u32);
        for i in 0..n {
            let v = vertex_start + i as VertexId;
            if plan.raw[i] {
                let before = edges.len();
                raw_edges(v, &mut edges, weights.as_mut());
                debug_assert_eq!(edges.len() - before, plan.quotas[i] as usize);
                if let Some(w) = &mut weights {
                    w.resize(edges.len(), 1.0);
                    if plan.alias[i] {
                        // Build the hub's alias structure once per
                        // generation; sampling then costs one table lookup
                        // per hop instead of an O(degree) weight scan.
                        let slice = &w[before..edges.len()];
                        if !slice.is_empty() && slice.iter().any(|&x| x > 0.0) {
                            let (prob, idx_of) = AliasTable::new(slice).into_parts();
                            alias.insert(i as u32, (prob, idx_of));
                        }
                    }
                }
            } else {
                for _ in 0..plan.quotas[i] {
                    edges.push(sample(v));
                    draws += 1;
                }
                if let Some(w) = &mut weights {
                    w.resize(edges.len(), 1.0);
                }
            }
            idx.push(edges.len() as u32);
        }
        (
            PreSampleBuffer {
                vertex_start,
                idx,
                cnt: vec![0; n],
                raw: plan.raw.clone(),
                edges,
                weights,
                alias,
                reservation: None,
            },
            draws,
        )
    }

    /// Attaches the budget reservation covering this buffer.
    pub fn set_reservation(&mut self, r: Reservation) {
        self.reservation = Some(r);
    }

    /// First vertex covered.
    pub fn vertex_start(&self) -> VertexId {
        self.vertex_start
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.cnt.len()
    }

    /// Actual memory footprint in bytes (slots + metadata).
    ///
    /// A *sampled* slot is 4 B regardless of the graph's edge format —
    /// that size reduction is the whole point of pre-sampling on weighted
    /// graphs (§4.4: "the pre-sampled edges stored in memory are notably
    /// smaller than the entire graph with edge properties"). Raw-retained
    /// slots of weighted graphs pay 4 B extra for their weight, and
    /// alias-retained hub slots pay 8 B more for the alias table's
    /// prob/alias pair.
    pub fn memory_bytes(&self) -> u64 {
        let sampled = self.edges.len() as u64 * 4;
        let raw_weights = if self.weights.is_some() {
            (0..self.cnt.len())
                .filter(|&i| self.raw[i])
                .map(|i| (self.idx[i + 1] - self.idx[i]) as u64 * 4)
                .sum()
        } else {
            0
        };
        let alias_bytes: u64 = self
            .alias
            .values()
            .map(|(p, a)| (p.len() + a.len()) as u64 * 4)
            .sum();
        let meta = (self.idx.len() + self.cnt.len()) as u64 * 4 + self.raw.len() as u64;
        sampled + raw_weights + alias_bytes + meta
    }

    /// Estimated memory for a planned buffer (before building).
    pub fn planned_bytes(plan: &QuotaPlan, weighted: bool) -> u64 {
        let raw_slots: u64 = (0..plan.quotas.len())
            .filter(|&i| plan.raw[i])
            .map(|i| plan.quotas[i] as u64)
            .sum();
        let alias_slots: u64 = (0..plan.quotas.len())
            .filter(|&i| plan.alias[i])
            .map(|i| plan.quotas[i] as u64)
            .sum();
        let extra = if weighted {
            raw_slots * 4 + alias_slots * 8
        } else {
            0
        };
        plan.total_slots * 4 + extra + (plan.quotas.len() as u64) * 9 + 4
    }

    fn local(&self, v: VertexId) -> usize {
        debug_assert!(
            v >= self.vertex_start && ((v - self.vertex_start) as usize) < self.cnt.len(),
            "vertex {v} outside buffer"
        );
        (v - self.vertex_start) as usize
    }

    /// What's available for vertex `v` right now.
    pub fn peek(&self, v: VertexId) -> Peek<'_> {
        let i = self.local(v);
        let (s, e) = (self.idx[i] as usize, self.idx[i + 1] as usize);
        if self.raw[i] {
            if s == e {
                return Peek::Empty;
            }
            return Peek::Raw(VertexEdges::Mem {
                targets: &self.edges[s..e],
                weights: self.weights.as_ref().map(|w| &w[s..e]),
                alias: self
                    .alias
                    .get(&(i as u32))
                    .map(|(p, a)| (p.as_slice(), a.as_slice())),
            });
        }
        let used = self.cnt[i] as usize;
        if s + used < e {
            Peek::Sampled(self.edges[s + used])
        } else {
            Peek::Empty
        }
    }

    /// Consumes one slot (after a successful move): bumps `cnt`, which for
    /// sampled vertices pops the slot and for raw vertices just records the
    /// visit.
    pub fn consume(&mut self, v: VertexId) {
        let i = self.local(v);
        self.cnt[i] = self.cnt[i].saturating_add(1);
    }

    /// Records a stalled visit at `v` (pre-samples exhausted): bumps `cnt`
    /// so the next refill allocates this vertex more slots (§3.3.2).
    pub fn record_stall(&mut self, v: VertexId) {
        self.consume(v);
    }

    /// The carried visit counters, fed to [`plan_quotas`] at refill time.
    pub fn visit_weights(&self) -> &[u32] {
        &self.cnt
    }

    /// Total sampled slot capacity (raw slots excluded).
    pub fn sampled_capacity(&self) -> u64 {
        (0..self.cnt.len())
            .filter(|&i| !self.raw[i])
            .map(|i| (self.idx[i + 1] - self.idx[i]) as u64)
            .sum()
    }

    /// Remaining unconsumed sampled slots (raw slots excluded — they never
    /// deplete).
    pub fn remaining_sampled(&self) -> u64 {
        (0..self.cnt.len())
            .filter(|&i| !self.raw[i])
            .map(|i| {
                let quota = self.idx[i + 1] - self.idx[i];
                quota.saturating_sub(self.cnt[i]) as u64
            })
            .sum()
    }

    /// Converts this buffer into an immutable published generation for the
    /// lock-free pool, carrying `cnt` over as the atomic claim cursors.
    pub fn into_published(self) -> PublishedBuffer {
        PublishedBuffer {
            vertex_start: self.vertex_start,
            idx: self.idx,
            cursors: self.cnt.into_iter().map(AtomicU32::new).collect(),
            raw: self.raw,
            edges: self.edges,
            weights: self.weights,
            alias: self.alias,
            _reservation: self.reservation,
        }
    }
}

/// What a lock-free [`PublishedBuffer::claim`] produced.
///
/// The mirror of [`Peek`], except that a successful `Sampled` claim has
/// *already* taken exclusive ownership of the slot — there is no separate
/// consume step to race on.
#[derive(Debug)]
pub enum Claim<'a> {
    /// A pre-sampled destination this caller now exclusively owns.
    Sampled(VertexId),
    /// The vertex's raw retained edges: sample freely, they never deplete.
    Raw(VertexEdges<'a>),
    /// No usable slots: the walker stalls here (the visit was still
    /// recorded, feeding the next refill's quota plan).
    Stalled,
}

/// What a batched [`PublishedBuffer::claim_batch`] produced.
#[derive(Debug)]
pub enum BatchClaim<'a> {
    /// `1..=n` contiguous pre-sampled destinations this caller now
    /// exclusively owns. Unspent entries must be accounted by the caller
    /// (consumed later or reported as `claims_burned`).
    Sampled(&'a [VertexId]),
    /// The vertex's raw retained edges: sample freely, they never deplete.
    Raw(VertexEdges<'a>),
    /// No usable slots: the whole batch stalls (recorded as one visit).
    Stalled,
}

/// An immutable, concurrently-consumable generation of a block's
/// pre-sample buffer.
///
/// The slot arrays (`idx`/`edges`/`weights`/`raw`) are frozen at build
/// time; the only mutable state is one `AtomicU32` cursor per vertex,
/// which serves three roles at once:
///
/// 1. **slot claim** — `fetch_add(1, Relaxed)` returns a unique previous
///    value per caller (atomic RMW totality), so each sampled slot index
///    `< quota` is handed to exactly one thread, with no lock;
/// 2. **stall recording** — a cursor past the quota means the visit found
///    nothing; the tick itself is the stall record (the paper's `cnt`
///    doubling as popularity, §3.3.2), per-vertex and contention-sharded;
/// 3. **refill weights** — [`PublishedBuffer::visit_weights_snapshot`]
///    reads the cursors back as the next [`plan_quotas`] input.
///
/// `Relaxed` ordering suffices throughout: slot exclusivity needs only the
/// RMW's atomicity, and the arrays a claimed index dereferences are frozen
/// before the `Arc<PublishedBuffer>` is published through the pool slot's
/// mutex, whose release/acquire pair provides the happens-before edge.
#[derive(Debug)]
pub struct PublishedBuffer {
    vertex_start: VertexId,
    idx: Vec<u32>,
    /// Claim cursor per vertex — the atomic reincarnation of `cnt`.
    cursors: Vec<AtomicU32>,
    raw: Vec<bool>,
    edges: Vec<VertexId>,
    weights: Option<Vec<f32>>,
    /// Frozen per-hub alias tables (see [`PreSampleBuffer`]).
    alias: BTreeMap<u32, (Vec<f32>, Vec<u32>)>,
    /// RAII hold on the budget bytes; released when the last `Arc` to this
    /// generation drops. Never read, only owned.
    _reservation: Option<Reservation>,
}

impl PublishedBuffer {
    /// First vertex covered.
    pub fn vertex_start(&self) -> VertexId {
        self.vertex_start
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.cursors.len()
    }

    fn local(&self, v: VertexId) -> usize {
        debug_assert!(
            v >= self.vertex_start && ((v - self.vertex_start) as usize) < self.cursors.len(),
            "vertex {v} outside buffer"
        );
        (v - self.vertex_start) as usize
    }

    /// Claims one slot for vertex `v` — the entire lock-free step path.
    ///
    /// One `fetch_add` per visit, success or stall: a sampled cursor value
    /// below the quota owns that slot, anything else *is* the recorded
    /// stall; raw vertices only tick the visit counter and never deplete.
    /// (Cursor wrap-around would need 2³² visits to a single vertex within
    /// one buffer generation — unreachable between refills.)
    pub fn claim(&self, v: VertexId) -> Claim<'_> {
        let i = self.local(v);
        let (s, e) = (self.idx[i] as usize, self.idx[i + 1] as usize);
        let prev = self.cursors[i].fetch_add(1, Ordering::Relaxed) as usize;
        if self.raw[i] {
            if s == e {
                return Claim::Stalled;
            }
            return Claim::Raw(self.raw_view(i, s, e));
        }
        if s + prev < e {
            Claim::Sampled(self.edges[s + prev])
        } else {
            Claim::Stalled
        }
    }

    fn raw_view(&self, i: usize, s: usize, e: usize) -> VertexEdges<'_> {
        VertexEdges::Mem {
            targets: &self.edges[s..e],
            weights: self.weights.as_ref().map(|w| &w[s..e]),
            alias: self
                .alias
                .get(&(i as u32))
                .map(|(p, a)| (p.as_slice(), a.as_slice())),
        }
    }

    /// Claims up to `n` slots for vertex `v` in one atomic RMW — the
    /// batched variant of [`PublishedBuffer::claim`] that amortizes the
    /// `fetch_add` across several hops at a hot vertex.
    ///
    /// The cursor still means "visits": a batch that served `k` slots nets
    /// the cursor `+k`, and a fully-stalled batch nets `+1` (one stall
    /// tick), by subtracting the overshoot right back. The transient
    /// overshoot between the add and the sub can only make concurrent
    /// claimers see *fewer* remaining slots, never hand a slot out twice —
    /// the cursor never drops below the next-unserved index.
    pub fn claim_batch(&self, v: VertexId, n: u32) -> BatchClaim<'_> {
        let i = self.local(v);
        let (s, e) = (self.idx[i] as usize, self.idx[i + 1] as usize);
        if self.raw[i] {
            self.cursors[i].fetch_add(1, Ordering::Relaxed);
            if s == e {
                return BatchClaim::Stalled;
            }
            return BatchClaim::Raw(self.raw_view(i, s, e));
        }
        let n = n.max(1);
        let prev = self.cursors[i].fetch_add(n, Ordering::Relaxed) as usize;
        let quota = e - s;
        if prev >= quota {
            self.cursors[i].fetch_sub(n - 1, Ordering::Relaxed);
            return BatchClaim::Stalled;
        }
        let k = (quota - prev).min(n as usize);
        if k < n as usize {
            self.cursors[i].fetch_sub(n - k as u32, Ordering::Relaxed);
        }
        BatchClaim::Sampled(&self.edges[s + prev..s + prev + k])
    }

    /// Snapshot of the visit counters, fed to [`plan_quotas`] at refill
    /// time (concurrent claims may still be ticking; any torn-across-
    /// vertices view is fine — the weights are a popularity heuristic).
    pub fn visit_weights_snapshot(&self) -> Vec<u32> {
        self.cursors
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total sampled slot capacity (raw slots excluded).
    pub fn sampled_capacity(&self) -> u64 {
        (0..self.cursors.len())
            .filter(|&i| !self.raw[i])
            .map(|i| (self.idx[i + 1] - self.idx[i]) as u64)
            .sum()
    }

    /// Remaining unclaimed sampled slots (raw slots excluded; a cursor
    /// driven past its quota by stall ticks counts as zero remaining).
    pub fn remaining_sampled(&self) -> u64 {
        (0..self.cursors.len())
            .filter(|&i| !self.raw[i])
            .map(|i| {
                let quota = self.idx[i + 1] - self.idx[i];
                quota.saturating_sub(self.cursors[i].load(Ordering::Relaxed)) as u64
            })
            .sum()
    }

    /// Actual memory footprint in bytes (same layout as
    /// [`PreSampleBuffer::memory_bytes`]; the cursors are `cnt`-sized).
    pub fn memory_bytes(&self) -> u64 {
        let sampled = self.edges.len() as u64 * 4;
        let raw_weights = if self.weights.is_some() {
            (0..self.cursors.len())
                .filter(|&i| self.raw[i])
                .map(|i| (self.idx[i + 1] - self.idx[i]) as u64 * 4)
                .sum()
        } else {
            0
        };
        let alias_bytes: u64 = self
            .alias
            .values()
            .map(|(p, a)| (p.len() + a.len()) as u64 * 4)
            .sum();
        let meta = (self.idx.len() + self.cursors.len()) as u64 * 4 + self.raw.len() as u64;
        sampled + raw_weights + alias_bytes + meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::walk::{alias_sample, WalkRng};
    use rand::SeedableRng;

    fn simple_plan() -> QuotaPlan {
        // 4 vertices: deg 0, deg 2 (raw), deg 10, deg 20
        plan_quotas(&[0, 2, 10, 20], &[0, 0, 0, 0], 12, 2, u32::MAX, 64)
    }

    #[test]
    fn plan_respects_degree_classes() {
        let p = simple_plan();
        assert_eq!(p.quotas[0], 0);
        assert!(p.raw[1]);
        assert_eq!(p.quotas[1], 2);
        assert!(!p.raw[2] && !p.raw[3]);
        // First fill: the (12 - 2) = 10 budget splits by degree (10 vs 20).
        assert_eq!(p.quotas[2], 3);
        assert_eq!(p.quotas[3], 6);
    }

    #[test]
    fn plan_weights_proportionally_after_visits() {
        let p = plan_quotas(&[10, 10], &[30, 10], 40, 0, u32::MAX, 64);
        assert_eq!(p.quotas[0], 30);
        assert_eq!(p.quotas[1], 10);
    }

    #[test]
    fn plan_unvisited_vertices_get_nothing_once_weights_exist() {
        let p = plan_quotas(&[10, 10, 10], &[8, 0, 2], 100, 0, u32::MAX, 64);
        assert!(p.quotas[0] > p.quotas[2]);
        assert_eq!(p.quotas[1], 0);
    }

    #[test]
    fn plan_caps_per_vertex() {
        let p = plan_quotas(&[100], &[50], 1000, 0, u32::MAX, 16);
        assert_eq!(p.quotas[0], 16);
    }

    #[test]
    fn plan_visited_vertex_gets_at_least_one_slot() {
        // Vertex 1 has tiny weight; proportional share rounds to 0 but it
        // must still receive one slot.
        let p = plan_quotas(&[10, 10], &[1000, 1], 10, 0, u32::MAX, 64);
        assert!(p.quotas[1] >= 1);
    }

    fn build_simple() -> PreSampleBuffer {
        let plan = simple_plan();
        let mut next = 100u32;
        let (buf, draws) = PreSampleBuffer::build(
            0,
            &plan,
            false,
            |_v| {
                next += 1;
                next
            },
            |_v, edges, _w| {
                edges.push(7);
                edges.push(8);
            },
        );
        assert_eq!(draws, 9);
        buf
    }

    #[test]
    fn consume_pops_in_order_then_empties() {
        let mut buf = build_simple();
        // Vertex 2 has 3 sampled slots: 101..=103.
        for expect in 101..=103u32 {
            match buf.peek(2) {
                Peek::Sampled(d) => assert_eq!(d, expect),
                other => panic!("expected sampled, got {other:?}"),
            }
            buf.consume(2);
        }
        assert!(matches!(buf.peek(2), Peek::Empty));
        buf.record_stall(2);
        assert_eq!(buf.visit_weights()[2], 4);
    }

    #[test]
    fn raw_vertex_never_depletes() {
        let mut buf = build_simple();
        for _ in 0..10 {
            match buf.peek(1) {
                Peek::Raw(view) => {
                    assert_eq!(view.degree(), 2);
                    assert_eq!(view.target(0), 7);
                }
                other => panic!("expected raw, got {other:?}"),
            }
            buf.consume(1);
        }
        assert_eq!(buf.visit_weights()[1], 10);
    }

    #[test]
    fn zero_degree_vertex_is_empty() {
        let buf = build_simple();
        assert!(matches!(buf.peek(0), Peek::Empty));
    }

    #[test]
    fn remaining_sampled_counts_only_samples() {
        let mut buf = build_simple();
        assert_eq!(buf.remaining_sampled(), 9);
        assert_eq!(buf.sampled_capacity(), 9);
        buf.consume(2);
        buf.consume(1); // raw consume: no effect on remaining
        assert_eq!(buf.remaining_sampled(), 8);
        assert_eq!(buf.sampled_capacity(), 9);
    }

    #[test]
    fn memory_bytes_counts_slots_and_meta() {
        let buf = build_simple();
        // 11 slots * 4 + (5 + 4) * 4 + 4 raw flags
        assert_eq!(buf.memory_bytes(), 44 + 36 + 4);
        let plan = simple_plan();
        assert!(PreSampleBuffer::planned_bytes(&plan, false) >= buf.memory_bytes());
    }

    #[test]
    fn published_claim_pops_in_order_then_stalls() {
        let buf = build_simple().into_published();
        // Vertex 2 has 3 sampled slots: 101..=103, claimed exactly once.
        for expect in 101..=103u32 {
            match buf.claim(2) {
                Claim::Sampled(d) => assert_eq!(d, expect),
                other => panic!("expected sampled, got {other:?}"),
            }
        }
        assert!(matches!(buf.claim(2), Claim::Stalled));
        // Both the claims and the stall ticked the visit counter.
        assert_eq!(buf.visit_weights_snapshot()[2], 4);
    }

    #[test]
    fn published_raw_vertex_never_depletes() {
        let buf = build_simple().into_published();
        for _ in 0..10 {
            match buf.claim(1) {
                Claim::Raw(view) => {
                    assert_eq!(view.degree(), 2);
                    assert_eq!(view.target(0), 7);
                }
                other => panic!("expected raw, got {other:?}"),
            }
        }
        assert_eq!(buf.visit_weights_snapshot()[1], 10);
        // Raw claims leave the sampled accounting untouched.
        assert_eq!(buf.remaining_sampled(), 9);
    }

    #[test]
    fn published_zero_degree_vertex_stalls() {
        let buf = build_simple().into_published();
        assert!(matches!(buf.claim(0), Claim::Stalled));
    }

    #[test]
    fn into_published_carries_consumption_state() {
        let mut buf = build_simple();
        buf.consume(2); // slot 101 gone
        buf.record_stall(3);
        let mem = buf.memory_bytes();
        let published = buf.into_published();
        assert_eq!(published.memory_bytes(), mem);
        assert_eq!(published.sampled_capacity(), 9);
        // One slot consumed on vertex 2 plus one stall tick on vertex 3:
        // both advance the carried counters, same as `PreSampleBuffer`.
        assert_eq!(published.remaining_sampled(), 7);
        match published.claim(2) {
            Claim::Sampled(d) => assert_eq!(d, 102),
            other => panic!("expected sampled, got {other:?}"),
        }
        assert_eq!(published.visit_weights_snapshot()[3], 1);
        assert_eq!(published.vertex_start(), 0);
        assert_eq!(published.num_vertices(), 4);
    }

    #[test]
    fn weighted_raw_edges_keep_weights() {
        let plan = plan_quotas(&[2], &[0], 10, 2, u32::MAX, 8);
        let (buf, _) = PreSampleBuffer::build(
            0,
            &plan,
            true,
            |_v| 0,
            |_v, edges, weights| {
                edges.push(5);
                edges.push(6);
                let w = weights.expect("weighted build passes weight vec");
                w.push(2.0);
                w.push(3.0);
            },
        );
        match buf.peek(0) {
            Peek::Raw(view) => {
                assert_eq!(view.weight(0), Some(2.0));
                assert_eq!(view.weight(1), Some(3.0));
            }
            other => panic!("expected raw, got {other:?}"),
        }
    }

    #[test]
    fn plan_admits_hubs_hottest_first_greedy_with_skip() {
        // Three hubs (deg 40, 30, 10) over threshold 10, capacity 80:
        // alias budget = 60. Hottest-first by degree admits 40 (20 left),
        // skips 30 (does not fit), then still admits 10 — greedy with
        // skip, not first-fit-then-stop.
        let p = plan_quotas(&[40, 30, 10, 5], &[0, 0, 0, 0], 80, 2, 10, 8);
        assert!(p.alias[0] && p.raw[0]);
        assert_eq!(p.quotas[0], 40);
        assert!(!p.alias[1] && !p.raw[1]);
        assert!(p.alias[2] && p.raw[2]);
        assert_eq!(p.quotas[2], 10);
        // The rejected hub and the mid-degree vertex fall back to capped
        // sampled quotas from the remaining budget.
        assert!(p.quotas[1] >= 1 && p.quotas[1] <= 8);
        assert!(!p.alias[3]);
        assert!(p.total_slots <= 80);
    }

    #[test]
    fn plan_admits_self_funding_hot_vertices_below_threshold() {
        // Degree-8 vertices far below the degree threshold (1000):
        // vertex 0's visit weight (8) covers its retention cost, so it is
        // admitted raw and never depletes; vertex 1's traffic (2) does not
        // pay for retention and stays on capped sampled slots.
        let p = plan_quotas(&[8, 8], &[8, 2], 100, 2, 1000, 8);
        assert!(p.raw[0] && p.alias[0]);
        assert_eq!(p.quotas[0], 8);
        assert!(!p.raw[1] && !p.alias[1]);
        assert!(p.quotas[1] >= 1 && p.quotas[1] <= 8);
    }

    #[test]
    fn plan_alias_threshold_disabled_matches_old_behavior() {
        let with = plan_quotas(&[0, 2, 10, 20], &[0; 4], 12, 2, u32::MAX, 64);
        assert!(with.alias.iter().all(|&a| !a));
        assert_eq!(with, simple_plan());
    }

    #[test]
    fn plan_alias_admission_prefers_visited_hubs() {
        // Same degree, alias budget 30 fits only one hub — vertex 1 has
        // visit history, so it is admitted first.
        let p = plan_quotas(&[30, 30], &[0, 5], 40, 0, 10, 8);
        assert!(!p.alias[0]);
        assert!(p.alias[1]);
    }

    #[test]
    fn batch_claim_hands_each_slot_once_and_nets_visit_ticks() {
        let buf = build_simple().into_published();
        // Vertex 3 has 6 sampled slots (104..=109); batches of 4.
        let BatchClaim::Sampled(first) = buf.claim_batch(3, 4) else {
            panic!("expected sampled batch");
        };
        assert_eq!(first, &[104, 105, 106, 107]);
        // Second batch is truncated to the 2 remaining slots, and the
        // cursor nets back down to served-count.
        let BatchClaim::Sampled(rest) = buf.claim_batch(3, 4) else {
            panic!("expected sampled batch");
        };
        assert_eq!(rest, &[108, 109]);
        assert_eq!(buf.remaining_sampled(), 3); // vertex 2's slots remain
        assert_eq!(buf.visit_weights_snapshot()[3], 6);
        // Depleted: one stall tick, not n.
        assert!(matches!(buf.claim_batch(3, 4), BatchClaim::Stalled));
        assert_eq!(buf.visit_weights_snapshot()[3], 7);
    }

    #[test]
    fn batch_claim_raw_vertex_ticks_once_per_visit() {
        let buf = build_simple().into_published();
        for _ in 0..3 {
            match buf.claim_batch(1, 4) {
                BatchClaim::Raw(view) => assert_eq!(view.degree(), 2),
                other => panic!("expected raw, got {other:?}"),
            }
        }
        assert_eq!(buf.visit_weights_snapshot()[1], 3);
        assert!(matches!(buf.claim_batch(0, 4), BatchClaim::Stalled));
    }

    #[test]
    fn block_demand_accumulates_and_resets() {
        let d = BlockDemand::default();
        assert_eq!(d.pressure(), 0);
        d.note_claims(5);
        d.note_stalls(3);
        assert_eq!(d.pressure(), 8);
        assert_eq!(d.reset(), 8);
        assert_eq!(d.pressure(), 0);
    }

    /// Chi-square goodness-of-fit: alias-table sampling on a retained hub
    /// must reproduce the exact edge-weight distribution (seeded,
    /// deterministic).
    #[test]
    fn alias_hub_sampling_matches_edge_weights_chi_square() {
        let weights_in = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let plan = plan_quotas(&[8], &[0], 64, 0, 4, 32);
        assert!(plan.alias[0] && plan.raw[0]);
        let (buf, draws) = PreSampleBuffer::build(
            0,
            &plan,
            true,
            |_v| 0,
            |_v, edges, weights| {
                for t in 0..8u32 {
                    edges.push(100 + t);
                }
                let w = weights.expect("weighted build passes weight vec");
                w.extend_from_slice(&weights_in);
            },
        );
        assert_eq!(draws, 0, "retained hub costs no sample draws");
        let published = buf.into_published();
        let Claim::Raw(view) = published.claim(0) else {
            panic!("expected raw hub view");
        };
        assert!(view.alias_slot(0).is_some(), "alias seam must be filled");
        const N: u64 = 80_000;
        let mut rng = WalkRng::seed_from_u64(42);
        let mut counts = [0u64; 8];
        for _ in 0..N {
            let d = alias_sample(&view, &mut rng);
            counts[(d - 100) as usize] += 1;
        }
        let total_w: f64 = weights_in.iter().map(|&w| w as f64).sum();
        let mut chi = 0.0;
        for (t, &c) in counts.iter().enumerate() {
            let expected = N as f64 * weights_in[t] as f64 / total_w;
            chi += (c as f64 - expected).powi(2) / expected;
        }
        // 7 degrees of freedom, p = 0.001 critical value.
        assert!(chi < 24.32, "chi-square statistic too large: {chi}");
    }

    #[test]
    fn alias_memory_accounting_covers_tables() {
        let plan = plan_quotas(&[8], &[0], 64, 0, 4, 32);
        let (buf, _) = PreSampleBuffer::build(
            0,
            &plan,
            true,
            |_v| 0,
            |_v, edges, weights| {
                for t in 0..8u32 {
                    edges.push(t);
                }
                let w = weights.expect("weighted build passes weight vec");
                w.extend_from_slice(&[1.0; 8]);
            },
        );
        // 8 slots*4 + 8 raw weights*4 + 8 alias pairs*8 + meta.
        let mem = buf.memory_bytes();
        assert_eq!(mem, 32 + 32 + 64 + (2 + 1) * 4 + 1);
        assert!(PreSampleBuffer::planned_bytes(&plan, true) >= mem);
        assert_eq!(buf.into_published().memory_bytes(), mem);
    }
}
