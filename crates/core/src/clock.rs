//! The deterministic pipeline clock shared by all engines.
//!
//! Engines interleave compute (walker steps, sampling) with device I/O. The
//! clock models a single I/O pipeline: operations are serviced in issue
//! order, each taking the service time the device reported; compute advances
//! `now` directly. An engine that overlaps I/O with compute (NosWalker's
//! background loader, §3.1) issues a load and keeps computing until it
//! *needs* the data — [`PipelineClock::stall_until`] accounts any wait. An
//! engine with synchronous buffered I/O (GraphChi-derived baselines, whose
//! disk utilization the paper measures at 20–30 %) stalls immediately after
//! every issue.

/// Simulated-time bookkeeping for one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineClock {
    now_ns: u64,
    io_free_ns: u64,
    stall_ns: u64,
    compute_ns: u64,
    io_busy_ns: u64,
}

impl PipelineClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.now_ns
    }

    /// Total time spent stalled waiting for I/O.
    pub fn stall_ns(&self) -> u64 {
        self.stall_ns
    }

    /// Total compute time charged.
    pub fn compute_ns(&self) -> u64 {
        self.compute_ns
    }

    /// Total device service time issued.
    pub fn io_busy_ns(&self) -> u64 {
        self.io_busy_ns
    }

    /// Fraction of elapsed time the device was busy (I/O utilization, the
    /// quantity behind the paper's Fig. 4 discussion). 0 if no time passed.
    pub fn io_utilization(&self) -> f64 {
        if self.now_ns == 0 {
            0.0
        } else {
            self.io_busy_ns as f64 / self.now_ns as f64
        }
    }

    /// Charges `ns` of compute, advancing `now`.
    pub fn advance_compute(&mut self, ns: u64) {
        self.now_ns += ns;
        self.compute_ns += ns;
    }

    /// Issues an asynchronous I/O of `service_ns`; returns its completion
    /// time. The operation queues behind any in-flight I/O.
    pub fn issue_io(&mut self, service_ns: u64) -> u64 {
        let start = self.io_free_ns.max(self.now_ns);
        self.io_free_ns = start + service_ns;
        self.io_busy_ns += service_ns;
        self.io_free_ns
    }

    /// Blocks until `t`: advances `now` and accounts the gap as stall time.
    /// No-op if `t` has already passed.
    pub fn stall_until(&mut self, t: u64) {
        if t > self.now_ns {
            self.stall_ns += t - self.now_ns;
            self.now_ns = t;
        }
    }

    /// Issues an I/O and immediately stalls until it completes (synchronous
    /// buffered I/O — the GraphChi model). Returns the completion time.
    pub fn sync_io(&mut self, service_ns: u64) -> u64 {
        let done = self.issue_io(service_ns);
        self.stall_until(done);
        done
    }
}

/// Host wall-clock measurement for run epilogues (`RunMetrics::wall_ns`)
/// and the real-thread runner's trace timestamps.
///
/// This is the single sanctioned gateway to `std::time::Instant` in
/// engine code: the `nosw-lint` L3 rule forbids `Instant::now` everywhere
/// except this module and the bench/CLI crates, so simulated results can
/// never silently depend on host time.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    started: std::time::Instant,
}

impl WallTimer {
    /// Starts the timer.
    pub fn start() -> Self {
        WallTimer {
            started: std::time::Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`WallTimer::start`].
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}

/// A deterministic model of *service* time for the online serving layer.
///
/// The serving engine multiplexes queries over simulated rounds; between
/// rounds it advances this clock by the round's modeled duration
/// (`RunMetrics::sim_ns`) and while idle it jumps to the next query
/// arrival. Every latency, deadline, and retry-after figure in
/// `noswalker-serve` is derived from this clock, never from the host —
/// which is what makes `noswalker-bench -- serve` replayable bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelClock {
    now_ns: u64,
}

impl ModelClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        ModelClock::default()
    }

    /// Current modeled nanoseconds since the clock started.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances the clock by `ns` (e.g. one serving round's `sim_ns`).
    pub fn advance(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }

    /// Jumps forward to absolute time `t_ns`; earlier times are ignored
    /// (the clock is monotone).
    pub fn advance_to(&mut self, t_ns: u64) {
        self.now_ns = self.now_ns.max(t_ns);
    }
}

/// The clock a round-based serving driver runs on — the seam that lets
/// the same per-round state machine (`TickCore` in `noswalker-serve`)
/// execute in *lockstep* mode (deterministic [`ModelClock`], bit-identical
/// replays) or *realtime* mode (a wall clock confined to the realtime
/// driver module).
///
/// The contract mirrors how the lockstep loops already use `ModelClock`:
/// the driver reads [`now_ns`](TickClock::now_ns) at the top of each tick,
/// charges the round's deterministic modeled duration with
/// [`advance_round`](TickClock::advance_round) after the kernels run, and
/// calls [`advance_idle`](TickClock::advance_idle) when nothing is
/// runnable before a known future arrival. A wall clock ignores both
/// advances — real time passes on its own — and signals via
/// `advance_idle`'s return value that the driver must actually wait.
pub trait TickClock {
    /// Current time in nanoseconds on this clock's base (modeled ns for
    /// deterministic clocks, host ns since start for wall clocks).
    fn now_ns(&mut self) -> u64;

    /// Charges one completed round's deterministic modeled duration.
    /// Deterministic clocks advance by exactly `advance_ns`; wall clocks
    /// ignore it (the round's real duration already elapsed).
    fn advance_round(&mut self, advance_ns: u64);

    /// Nothing is runnable before absolute time `t_ns`. Deterministic
    /// clocks jump forward (at least one tick past `now`, matching the
    /// lockstep loops' idle jump) and return `true`; wall clocks return
    /// `false` — the driver owns the real waiting.
    fn advance_idle(&mut self, t_ns: u64) -> bool;
}

impl TickClock for ModelClock {
    fn now_ns(&mut self) -> u64 {
        ModelClock::now_ns(self)
    }

    fn advance_round(&mut self, advance_ns: u64) {
        self.advance(advance_ns);
    }

    fn advance_idle(&mut self, t_ns: u64) -> bool {
        let target = t_ns.max(ModelClock::now_ns(self) + 1);
        self.advance_to(target);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_clock_is_monotone() {
        let mut c = ModelClock::new();
        c.advance(50);
        c.advance_to(40); // never goes backwards
        assert_eq!(c.now_ns(), 50);
        c.advance_to(120);
        assert_eq!(c.now_ns(), 120);
    }

    #[test]
    fn model_clock_drives_the_tick_clock_seam() {
        let mut c = ModelClock::new();
        let t: &mut dyn TickClock = &mut c;
        assert_eq!(t.now_ns(), 0);
        t.advance_round(500);
        assert_eq!(t.now_ns(), 500);
        // Idle with a future arrival jumps exactly to it.
        assert!(t.advance_idle(2_000));
        assert_eq!(t.now_ns(), 2_000);
        // Idle with a stale arrival still makes progress (the lockstep
        // loops' `t.max(now + 1)` jump, so an idle loop can never spin).
        assert!(t.advance_idle(1_000));
        assert_eq!(t.now_ns(), 2_001);
    }

    #[test]
    fn wall_timer_is_monotonic() {
        let t = WallTimer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn compute_advances_now() {
        let mut c = PipelineClock::new();
        c.advance_compute(100);
        assert_eq!(c.now(), 100);
        assert_eq!(c.compute_ns(), 100);
        assert_eq!(c.stall_ns(), 0);
    }

    #[test]
    fn overlapped_io_hides_behind_compute() {
        let mut c = PipelineClock::new();
        let done = c.issue_io(500);
        assert_eq!(done, 500);
        c.advance_compute(800); // compute covers the whole I/O
        c.stall_until(done);
        assert_eq!(c.stall_ns(), 0);
        assert_eq!(c.now(), 800);
    }

    #[test]
    fn stall_accounts_waiting() {
        let mut c = PipelineClock::new();
        let done = c.issue_io(500);
        c.advance_compute(100);
        c.stall_until(done);
        assert_eq!(c.now(), 500);
        assert_eq!(c.stall_ns(), 400);
    }

    #[test]
    fn io_queues_behind_inflight_io() {
        let mut c = PipelineClock::new();
        let first = c.issue_io(300);
        let second = c.issue_io(200);
        assert_eq!(first, 300);
        assert_eq!(second, 500);
        assert_eq!(c.io_busy_ns(), 500);
    }

    #[test]
    fn sync_io_always_stalls() {
        let mut c = PipelineClock::new();
        c.sync_io(250);
        assert_eq!(c.now(), 250);
        assert_eq!(c.stall_ns(), 250);
        c.advance_compute(50);
        c.sync_io(100);
        assert_eq!(c.now(), 400);
    }

    #[test]
    fn utilization_is_busy_over_elapsed() {
        let mut c = PipelineClock::new();
        c.sync_io(100);
        c.advance_compute(100);
        assert!((c.io_utilization() - 0.5).abs() < 1e-9);
    }
}
