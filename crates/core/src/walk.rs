//! The walker-oriented programming model (paper §3.2 and Appendix A.3).
//!
//! An application implements [`Walk`] (and [`SecondOrderWalk`] for
//! higher-order tasks). The same implementation runs unchanged on
//! NosWalker and on every baseline engine, which is what makes the paper's
//! system comparisons apples-to-apples.

use noswalker_graph::layout::VertexEdges;
use noswalker_graph::VertexId;
use rand::rngs::SmallRng;
use rand::Rng;

/// The RNG handed to application callbacks.
///
/// A concrete type (rather than a generic) keeps [`Walk`] object-safe and
/// every run deterministic under a fixed seed.
pub type WalkRng = SmallRng;

/// A first-order random walk application: the paper's four-function API
/// (Algorithm 2).
///
/// | paper | here |
/// |---|---|
/// | `GenerateWalker(n)` | [`Walk::generate`] |
/// | `Sample(v)` | [`Walk::sample`] |
/// | `Active(w)` | [`Walk::is_active`] (`true` while the walker should keep walking) |
/// | `Action(w, next)` | [`Walk::action`] |
///
/// Engines additionally need to read a walker's current vertex
/// ([`Walk::location`]) to schedule blocks, and call [`Walk::on_terminate`]
/// once per finished walker so applications can harvest results (visit
/// counts, full paths, …).
pub trait Walk: Send + Sync {
    /// Per-walker state. Keep it small: the engines account
    /// `size_of::<Walker>()` bytes of memory budget per live walker.
    type Walker: Clone + Send + std::fmt::Debug;

    /// Total number of walkers the task will issue.
    fn total_walkers(&self) -> u64;

    /// Creates the `n`-th walker (`n ∈ [0, total_walkers)`).
    fn generate(&self, n: u64, rng: &mut WalkRng) -> Self::Walker;

    /// The vertex the walker currently occupies.
    fn location(&self, w: &Self::Walker) -> VertexId;

    /// `true` while the walker has more steps to take. The engines check
    /// this before every move and retire the walker when it turns `false`.
    fn is_active(&self, w: &Self::Walker) -> bool;

    /// Samples one destination from the out-edges of a vertex. This is the
    /// application's core distribution logic (uniform, weighted, …).
    ///
    /// Engines call this both to move a walker directly on a loaded block
    /// and to pre-fill the pre-sampled edge buffers, which is sound because
    /// first-order sampling depends only on the vertex's own edge data
    /// (paper Property (a)).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `v` has no edges; engines never call
    /// `sample` on an empty vertex (such walkers are retired instead).
    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId;

    /// Samples one destination *for a specific walker*. Engines call this
    /// on every movement path where the walker is at hand (resident-block
    /// steps and raw retained-edge steps); pre-fill draws, which have no
    /// walker, still go through [`Walk::sample`].
    ///
    /// The default delegates to [`Walk::sample`], so plain applications
    /// ignore it. Applications that need *engine-independent* movement —
    /// the serving layer's cross-backend replay parity — override it to
    /// draw from walker-private randomness instead of the engine's RNG,
    /// making each walker's trajectory a pure function of its own state.
    ///
    /// # Panics
    ///
    /// As for [`Walk::sample`]: engines never call this on an empty
    /// vertex.
    fn sample_for(&self, w: &mut Self::Walker, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        let _ = w;
        self.sample(v, rng)
    }

    /// Consumes a sampled destination: updates the walker (location, step
    /// counter, application bookkeeping). Returns `true` if the sample was
    /// consumed (the engine then pops it from the pre-sample buffer);
    /// second-order apps return `true` after merely *recording* the
    /// destination as a candidate (Algorithm 4).
    fn action(&self, w: &mut Self::Walker, next: VertexId, rng: &mut WalkRng) -> bool;

    /// Called exactly once when a walker terminates (either `is_active`
    /// turned false or it reached a vertex with no out-edges).
    fn on_terminate(&self, w: &Self::Walker) {
        let _ = w;
    }

    /// Whether a terminating walker ended by *cancellation* — its query
    /// was withdrawn (e.g. a serving deadline fired) before the walk
    /// completed — rather than by finishing naturally. Engines consult
    /// this at every retirement site to attribute the walker to
    /// `walkers_cancelled` instead of `walkers_finished`, keeping the
    /// walker-completion audit law balanced. Offline apps never cancel;
    /// the default is `false`.
    fn is_cancelled(&self, w: &Self::Walker) -> bool {
        let _ = w;
        false
    }

    /// Bytes of memory charged per live walker.
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self::Walker>().max(1)
    }
}

/// A second-order random walk application (paper Appendix A): the next step
/// depends on the previous vertex as well as the current one, handled with
/// rejection sampling.
///
/// The engine flow (Algorithm 3):
/// 1. [`Walk::action`] stores a *candidate* destination (a uniform
///    pre-sample) plus a uniform acceptance coordinate inside the walker.
/// 2. When the candidate's out-edges are next in memory, the engine calls
///    [`SecondOrderWalk::rejection`], which computes the true edge weight
///    and either commits the move or clears the candidate.
pub trait SecondOrderWalk: Walk {
    /// The walker's pending candidate destination, if any.
    fn candidate(&self, w: &Self::Walker) -> Option<VertexId>;

    /// Accept/reject the pending candidate given the candidate vertex's own
    /// out-edges. On accept, commits the move (updates `prev`, `location`,
    /// step counter) and clears the candidate; on reject, just clears the
    /// candidate.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the walker has no pending candidate.
    fn rejection(&self, w: &mut Self::Walker, candidate_edges: &VertexEdges<'_>, rng: &mut WalkRng);
}

/// Samples a uniformly random out-edge destination — the `Sample` body of
/// every unweighted application.
///
/// # Panics
///
/// Panics if `v` has no edges.
///
/// # Example
///
/// ```
/// use noswalker_core::{uniform_sample, WalkRng};
/// use noswalker_graph::layout::VertexEdges;
/// use rand::SeedableRng;
///
/// let targets = [3u32, 9, 27];
/// let v = VertexEdges::Mem { targets: &targets, weights: None, alias: None };
/// let mut rng = WalkRng::seed_from_u64(1);
/// assert!(targets.contains(&uniform_sample(&v, &mut rng)));
/// ```
pub fn uniform_sample(v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
    let d = v.degree();
    assert!(d > 0, "cannot sample from a vertex with no out-edges");
    v.target(rng.gen_range(0..d))
}

/// Samples a destination using the vertex's alias table (O(1) weighted
/// sampling) — the `Sample` body of weighted applications on
/// [`noswalker_graph::EdgeFormat::WeightedAlias`] data.
///
/// # Panics
///
/// Panics if `v` has no edges or carries no alias slots.
pub fn alias_sample(v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
    let d = v.degree();
    assert!(d > 0, "cannot sample from a vertex with no out-edges");
    let slot = rng.gen_range(0..d);
    let (prob, alias) = v
        .alias_slot(slot)
        // LINT-ALLOW(L5): documented panic — this sampler's contract requires
        // alias-table edge data.
        .expect("alias_sample requires alias-table edge data");
    let u: f32 = rng.gen();
    let idx = if u < prob { slot as u32 } else { alias };
    v.target(idx as usize)
}

/// Samples a destination proportional to raw edge weights in O(degree) —
/// used where weights are present but alias tables are not.
///
/// # Panics
///
/// Panics if `v` has no edges or carries no weights.
pub fn weighted_sample(v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
    let d = v.degree();
    assert!(d > 0, "cannot sample from a vertex with no out-edges");
    let total: f64 = (0..d)
        // LINT-ALLOW(L5): documented panic — this sampler's contract
        // requires weighted edge data.
        .map(|i| v.weight(i).expect("weighted_sample requires weights") as f64)
        .sum();
    let mut r = rng.gen::<f64>() * total;
    for i in 0..d {
        // LINT-ALLOW(L5): weights were checked present just above.
        r -= v.weight(i).expect("weights checked above") as f64;
        if r <= 0.0 {
            return v.target(i);
        }
    }
    v.target(d - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> WalkRng {
        WalkRng::seed_from_u64(99)
    }

    #[test]
    fn uniform_sample_covers_all_targets() {
        let targets = [1u32, 2, 3, 4];
        let v = VertexEdges::Mem {
            targets: &targets,
            weights: None,
            alias: None,
        };
        let mut rng = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(uniform_sample(&v, &mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "no out-edges")]
    fn uniform_sample_rejects_empty() {
        let v = VertexEdges::Mem {
            targets: &[],
            weights: None,
            alias: None,
        };
        let _ = uniform_sample(&v, &mut rng());
    }

    #[test]
    fn weighted_sample_respects_weights() {
        let targets = [10u32, 20];
        let weights = [1.0f32, 9.0];
        let v = VertexEdges::Mem {
            targets: &targets,
            weights: Some(&weights),
            alias: None,
        };
        let mut rng = rng();
        let heavy = (0..5000)
            .filter(|_| weighted_sample(&v, &mut rng) == 20)
            .count();
        let frac = heavy as f64 / 5000.0;
        assert!((frac - 0.9).abs() < 0.03, "heavy frac = {frac}");
    }

    #[test]
    fn alias_sample_matches_weighted_distribution() {
        use noswalker_graph::CsrBuilder;
        let g = CsrBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .build()
            .with_weights(vec![1.0, 2.0, 7.0])
            .build_alias_tables();
        let v = VertexEdges::from_csr(&g, 0);
        let mut rng = rng();
        let mut counts = [0u32; 4];
        for _ in 0..20_000 {
            counts[alias_sample(&v, &mut rng) as usize] += 1;
        }
        let f3 = counts[3] as f64 / 20_000.0;
        assert!((f3 - 0.7).abs() < 0.02, "f3 = {f3}");
        let f1 = counts[1] as f64 / 20_000.0;
        assert!((f1 - 0.1).abs() < 0.02, "f1 = {f1}");
    }
}
