//! The `StepKernel` seam: one interface over "run this set of walkers
//! over this graph under these options and return [`RunMetrics`]",
//! implemented by both execution strategies the crate ships —
//! [`NosWalkerEngine`] (sequential, fully modeled I/O pipeline) and
//! [`ParallelRunner`] (real threads over the lock-free published-buffer
//! pool).
//!
//! Callers that schedule *units* of walk work — the serving layer's
//! rounds today, sharding later — program against [`StepKernel`] and pick
//! a [`Backend`] per unit instead of hard-wiring one engine. The seam
//! deliberately returns a [`RoundOutcome`] rather than raw metrics: each
//! kernel also reports a **deterministic** modeled duration
//! (`advance_ns`) for the unit, because the two engines time work
//! differently. The sequential engine's `sim_ns` is already a pure
//! function of the seed; the parallel runner's `sim_ns` depends on host
//! thread interleaving (refill arrival order, stall patterns), so its
//! kernel charges a compute-only model — `steps × (step + sample cost)`
//! — which is identical across hosts and runs whenever the step count is
//! (see DESIGN.md §13). Both engines and both kernels now price compute
//! with the same per-thread `step_cost`/`sample_cost`, so cross-engine
//! `sim_ns` figures are directly comparable (the throughput bench's
//! ratcheted 1-worker ratio leans on this). The remaining counters in
//! `metrics` are honest per-run observations; under the parallel kernel
//! the I/O-shaped ones (loads, stalls, `sim_ns`) may vary with
//! scheduling. At one worker the parallel pipeline is FIFO-deterministic,
//! so even its `sim_ns` is stable run to run.

use crate::engine::{EngineError, NosWalkerEngine};
use crate::options::EngineOptions;
use crate::parallel::ParallelRunner;
use crate::{OnDiskGraph, RunMetrics, Walk};
use noswalker_storage::MemoryBudget;
use std::sync::Arc;

/// Which step kernel executes a unit of walk work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The sequential [`NosWalkerEngine`] — every counter deterministic.
    #[default]
    Seq,
    /// The lock-free [`ParallelRunner`].
    Par,
    /// Pick per unit: work that needs fully-deterministic timing (e.g.
    /// deadline-constrained queries) runs sequentially, the rest runs on
    /// the parallel kernel.
    Auto,
}

impl Backend {
    /// Parses `"seq"` / `"par"` / `"auto"`.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "seq" => Some(Backend::Seq),
            "par" => Some(Backend::Par),
            "auto" => Some(Backend::Auto),
            _ => None,
        }
    }

    /// The canonical spelling [`Backend::parse`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Seq => "seq",
            Backend::Par => "par",
            Backend::Auto => "auto",
        }
    }

    /// Whether a unit of work with (`has_deadline`) runs on the parallel
    /// kernel under this backend — the per-query routing rule every
    /// serving driver shares. [`Backend::Auto`] keeps deadline-constrained
    /// work on the sequential kernel, whose cancellation timing is
    /// deterministic.
    pub fn routes_to_par(self, has_deadline: bool) -> bool {
        match self {
            Backend::Seq => false,
            Backend::Par => true,
            Backend::Auto => !has_deadline,
        }
    }
}

/// What one [`StepKernel::run_round`] invocation produced.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The unit's run metrics (see the module docs for which fields are
    /// deterministic under which kernel).
    pub metrics: RunMetrics,
    /// Deterministic modeled duration of the unit — what the caller
    /// should charge its [`crate::ModelClock`]. A pure function of the
    /// walk outcome (never of host timing), so replays advance time
    /// identically on every backend that moves the walkers identically.
    pub advance_ns: u64,
}

/// An execution strategy for one unit of walk work over a fixed graph,
/// options and memory budget.
pub trait StepKernel<A: Walk + 'static>: Send + Sync {
    /// The kernel's [`Backend`]-style name (for reports).
    fn name(&self) -> &'static str;

    /// Runs `app`'s full walker set to completion under `seed`.
    ///
    /// # Errors
    ///
    /// [`EngineError`] as for the underlying engine (budget too small,
    /// device failure).
    fn run_round(&self, app: Arc<A>, seed: u64) -> Result<RoundOutcome, EngineError>;
}

/// [`StepKernel`] over the sequential [`NosWalkerEngine`].
#[derive(Debug)]
pub struct SequentialKernel {
    graph: Arc<OnDiskGraph>,
    opts: EngineOptions,
    budget: Arc<MemoryBudget>,
}

impl SequentialKernel {
    /// Creates a sequential kernel over a stored graph.
    pub fn new(graph: Arc<OnDiskGraph>, opts: EngineOptions, budget: Arc<MemoryBudget>) -> Self {
        SequentialKernel {
            graph,
            opts,
            budget,
        }
    }
}

impl<A: Walk + 'static> StepKernel<A> for SequentialKernel {
    fn name(&self) -> &'static str {
        "seq"
    }

    fn run_round(&self, app: Arc<A>, seed: u64) -> Result<RoundOutcome, EngineError> {
        let metrics = NosWalkerEngine::new(
            app,
            Arc::clone(&self.graph),
            self.opts.clone(),
            Arc::clone(&self.budget),
        )
        .run(seed)?;
        Ok(RoundOutcome {
            advance_ns: metrics.sim_ns,
            metrics,
        })
    }
}

/// [`StepKernel`] over the lock-free [`ParallelRunner`].
#[derive(Debug)]
pub struct ParallelKernel {
    graph: Arc<OnDiskGraph>,
    opts: EngineOptions,
    budget: Arc<MemoryBudget>,
    workers: usize,
}

impl ParallelKernel {
    /// Creates a parallel kernel with `workers` walker threads (clamped
    /// to at least one).
    pub fn new(
        graph: Arc<OnDiskGraph>,
        opts: EngineOptions,
        budget: Arc<MemoryBudget>,
        workers: usize,
    ) -> Self {
        ParallelKernel {
            graph,
            opts,
            budget,
            workers: workers.max(1),
        }
    }
}

impl<A: Walk + 'static> StepKernel<A> for ParallelKernel {
    fn name(&self) -> &'static str {
        "par"
    }

    fn run_round(&self, app: Arc<A>, seed: u64) -> Result<RoundOutcome, EngineError> {
        let metrics = ParallelRunner::new(
            app,
            Arc::clone(&self.graph),
            self.opts.clone(),
            Arc::clone(&self.budget),
        )
        .run(seed, self.workers)?;
        // Compute-only time model: the runner's own sim_ns folds in
        // thread-interleaving-dependent stall time, which would make a
        // replayed clock host-dependent. Steps are a pure function of the
        // walk whenever movement is (walker-private sampling), so this
        // charge is too.
        let per_step = self.opts.step_cost() + self.opts.sample_cost();
        Ok(RoundOutcome {
            advance_ns: metrics.steps.saturating_mul(per_step),
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps_prelude::*;
    use noswalker_graph::generators;
    use noswalker_storage::{SimSsd, SsdProfile};

    #[derive(Debug)]
    struct Fixed {
        walkers: u64,
        length: u32,
        nv: u32,
    }

    #[derive(Debug, Clone)]
    struct W {
        at: u32,
        step: u32,
    }

    impl Walk for Fixed {
        type Walker = W;
        fn total_walkers(&self) -> u64 {
            self.walkers
        }
        fn generate(&self, n: u64, _rng: &mut WalkRng) -> W {
            W {
                at: (n % self.nv as u64) as u32,
                step: 0,
            }
        }
        fn location(&self, w: &W) -> u32 {
            w.at
        }
        fn is_active(&self, w: &W) -> bool {
            w.step < self.length
        }
        fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> u32 {
            uniform_sample(v, rng)
        }
        fn action(&self, w: &mut W, next: u32, _rng: &mut WalkRng) -> bool {
            w.at = next;
            w.step += 1;
            true
        }
    }

    fn setup() -> (Arc<OnDiskGraph>, Arc<MemoryBudget>) {
        let csr = generators::uniform_degree(64, 4, 11);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).expect("store"));
        (graph, MemoryBudget::new(64 << 10))
    }

    #[test]
    fn backend_specs_round_trip() {
        for b in [Backend::Seq, Backend::Par, Backend::Auto] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("threads"), None);
        assert_eq!(Backend::default(), Backend::Seq);
    }

    #[test]
    fn auto_routes_deadline_work_to_the_sequential_kernel() {
        assert!(!Backend::Seq.routes_to_par(false));
        assert!(!Backend::Seq.routes_to_par(true));
        assert!(Backend::Par.routes_to_par(false));
        assert!(Backend::Par.routes_to_par(true));
        assert!(Backend::Auto.routes_to_par(false));
        assert!(!Backend::Auto.routes_to_par(true));
    }

    #[test]
    fn both_kernels_run_the_same_walk_to_completion() {
        let (graph, budget) = setup();
        let opts = EngineOptions::default();
        let mk = || {
            Arc::new(Fixed {
                walkers: 200,
                length: 5,
                nv: 64,
            })
        };
        let seq = SequentialKernel::new(Arc::clone(&graph), opts.clone(), Arc::clone(&budget));
        let par = ParallelKernel::new(graph, opts, budget, 2);
        let a = seq.run_round(mk(), 7).expect("seq");
        let b = par.run_round(mk(), 7).expect("par");
        assert_eq!(StepKernel::<Fixed>::name(&seq), "seq");
        assert_eq!(StepKernel::<Fixed>::name(&par), "par");
        // Uniform degree-4 graph: no dead ends, every walker takes every
        // step on either kernel.
        assert_eq!(a.metrics.steps, 1000);
        assert_eq!(b.metrics.steps, 1000);
        assert_eq!(a.metrics.walkers_finished, 200);
        assert_eq!(b.metrics.walkers_finished, 200);
        assert!(a.advance_ns > 0);
        assert!(b.advance_ns > 0);
        // The sequential kernel charges its fully-modeled pipeline time.
        assert_eq!(a.advance_ns, a.metrics.sim_ns);
    }

    #[test]
    fn parallel_advance_is_a_pure_function_of_steps() {
        let (graph, budget) = setup();
        let opts = EngineOptions::default();
        let per_step = opts.step_cost() + opts.sample_cost();
        let par = ParallelKernel::new(graph, opts, budget, 3);
        let app = Arc::new(Fixed {
            walkers: 100,
            length: 4,
            nv: 64,
        });
        let out = par.run_round(app, 3).expect("par");
        assert_eq!(out.advance_ns, out.metrics.steps * per_step);
    }
}
