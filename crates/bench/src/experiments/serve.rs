//! Online serving under load: a deterministic closed-loop load generator
//! sweeping offered QPS against the `noswalker-serve` engine, once per
//! step-kernel backend.
//!
//! For each backend the sweep first calibrates by serving one query alone
//! (its modeled service time `S` is the capacity yardstick — the two
//! backends charge the model clock differently, so each gets its own
//! yardstick), then offers query streams at 0.5×, 1×, 4× and 16× the
//! resulting capacity. The serving engine batches concurrent queries into
//! shared rounds, so moderate oversubscription is absorbed; the 16× point
//! is past what batching can hide, and with the admission queue bounded
//! it must *shed* (reject with retry-after) rather than queue without
//! bound, while continuing to serve — the acceptance check in
//! `BENCH_serve.json` asserts exactly that (shed > 0 and achieved
//! QPS > 0 at the top point) for every backend. Everything runs on the
//! serving layer's `ModelClock`, so repeated runs are bit-identical.

use crate::datasets::{self, Scale};
use crate::report::Report;
use crate::runner::env;
use noswalker_core::{QuerySpec, StaticQuerySource};
use noswalker_serve::{AdmissionOptions, Backend, ServeEngine, ServeOptions, ServeReport};

const DATASET: &str = "k30";
const WALK_LENGTH: u32 = 10;
const SEED: u64 = 31;
const QUERIES_PER_POINT: u64 = 24;
const BACKENDS: &[Backend] = &[Backend::Seq, Backend::Par];

/// The query-class mix offered round-robin.
const MIX: &[&str] = &["ppr:7", "basic", "deepwalk:0", "rwr:7:0.15"];

struct Point {
    offered_qps: f64,
    report: ServeReport,
}

impl Point {
    fn p(&self, q: f64) -> u64 {
        let mut all = noswalker_core::LatencyHistogram::new();
        for h in self.report.histograms.values() {
            all.merge(h);
        }
        all.quantile(q)
    }

    fn served(&self) -> u64 {
        self.report.completed_count()
    }

    fn miss_rate(&self) -> f64 {
        self.report.deadline_miss_count() as f64 / self.served().max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            "        {{\"offered_qps\": {:.1}, \"achieved_qps\": {:.1}, \"served\": {}, \
             \"shed\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"deadline_miss_rate\": {:.3}, \
             \"degraded\": {}, \"rounds\": {}, \"metrics\": {}}}",
            self.offered_qps,
            self.report.achieved_qps(),
            self.served(),
            self.report.shed_count(),
            self.p(0.50),
            self.p(0.99),
            self.miss_rate(),
            self.report.degraded_count(),
            self.report.rounds,
            self.report.metrics.to_json(8),
        )
    }
}

/// One backend's calibration + sweep results.
struct BackendSweep {
    backend: Backend,
    service_ns: u64,
    deadline_ns: u64,
    points: Vec<Point>,
}

impl BackendSweep {
    fn top(&self) -> &Point {
        self.points.last().expect("sweep has points")
    }

    fn pass(&self) -> bool {
        self.top().report.shed_count() > 0 && self.top().served() > 0
    }

    fn json(&self) -> String {
        let rows: Vec<String> = self.points.iter().map(Point::json).collect();
        format!(
            "    {{\"backend\": \"{}\", \"calibrated_service_ns\": {}, \
             \"capacity_qps\": {:.1}, \"deadline_ns\": {}, \"points\": [\n{}\n      ], \
             \"top_shed\": {}, \"top_served\": {}, \"pass\": {}}}",
            self.backend.name(),
            self.service_ns,
            1e9 / self.service_ns as f64,
            self.deadline_ns,
            rows.join(",\n"),
            self.top().report.shed_count(),
            self.top().served(),
            self.pass(),
        )
    }
}

fn stream(interarrival_ns: u64, walkers: u64, deadline_ns: u64) -> StaticQuerySource {
    let specs: Vec<QuerySpec> = (0..QUERIES_PER_POINT)
        .map(|i| {
            let arrival_ns = i * interarrival_ns;
            QuerySpec {
                id: i + 1,
                class: MIX[(i % MIX.len() as u64) as usize].to_string(),
                walkers,
                walk_length: WALK_LENGTH,
                deadline_ns: Some(arrival_ns + deadline_ns),
                arrival_ns,
            }
        })
        .collect();
    StaticQuerySource::new(specs)
}

fn sweep_backend(
    backend: Backend,
    d: &datasets::Dataset,
    budget: u64,
    walkers: u64,
) -> Option<BackendSweep> {
    let serve_opts = |retry_after_ns: u64| ServeOptions {
        seed: SEED,
        backend,
        admission: AdmissionOptions {
            max_pending: 4,
            retry_after_ns,
            ..AdmissionOptions::default()
        },
        ..ServeOptions::default()
    };

    // Calibrate: one query served alone gives this backend's service time.
    let e = env(d, budget);
    let engine = ServeEngine::new(e.graph, e.budget, serve_opts(1_000));
    let mut solo = StaticQuerySource::new(vec![QuerySpec {
        id: 1,
        class: MIX[0].to_string(),
        walkers,
        walk_length: WALK_LENGTH,
        deadline_ns: None,
        arrival_ns: 0,
    }]);
    let service_ns = match engine.run(&mut solo, None) {
        Ok(r) => r.end_ns.max(1),
        Err(err) => {
            eprintln!("serve: {} calibration failed: {err}", backend.name());
            return None;
        }
    };

    // Offered-QPS sweep: under-, at-, and over-subscribed (4× and 16×).
    let sweep: &[(&str, u64)] = &[
        ("0.5x", service_ns * 2),
        ("1x", service_ns),
        ("4x", (service_ns / 4).max(1)),
        ("16x", (service_ns / 16).max(1)),
    ];
    // Three service times of headroom: loose enough that an unloaded
    // backend always makes it, tight enough that queueing at the
    // oversubscribed points shows up as recorded deadline misses.
    let deadline_ns = service_ns * 3;
    let mut points = Vec::new();
    for &(label, interarrival_ns) in sweep {
        let e = env(d, budget);
        let engine = ServeEngine::new(e.graph, e.budget, serve_opts(service_ns / 2));
        let mut src = stream(interarrival_ns, walkers, deadline_ns);
        match engine.run(&mut src, None) {
            Ok(report) => points.push(Point {
                offered_qps: 1e9 / interarrival_ns as f64,
                report,
            }),
            Err(err) => {
                eprintln!("serve: {} {label} point failed: {err}", backend.name());
                return None;
            }
        }
    }
    Some(BackendSweep {
        backend,
        service_ns,
        deadline_ns,
        points,
    })
}

/// Runs the serving sweep over every backend and writes
/// `BENCH_serve.json`.
pub fn run(scale: Scale) {
    let d = datasets::get(DATASET, scale);
    let budget = datasets::default_budget(scale);
    let walkers = scale.walkers(2_000);

    let mut sweeps = Vec::new();
    for &backend in BACKENDS {
        match sweep_backend(backend, &d, budget, walkers) {
            Some(s) => sweeps.push(s),
            None => return,
        }
    }

    let mut r = Report::new(
        "serve",
        "Online serving: offered QPS sweep per backend (modeled time, 16x oversubscribed)",
    );
    r.header([
        "Backend",
        "Offered q/s",
        "Achieved q/s",
        "Served",
        "Shed",
        "p50 us",
        "p99 us",
        "Miss rate",
        "Degraded",
        "Rounds",
    ]);
    for s in &sweeps {
        for p in &s.points {
            r.row([
                s.backend.name().to_string(),
                format!("{:.1}", p.offered_qps),
                format!("{:.1}", p.report.achieved_qps()),
                p.served().to_string(),
                p.report.shed_count().to_string(),
                format!("{:.1}", p.p(0.50) as f64 / 1e3),
                format!("{:.1}", p.p(0.99) as f64 / 1e3),
                format!("{:.3}", p.miss_rate()),
                p.report.degraded_count().to_string(),
                p.report.rounds.to_string(),
            ]);
        }
    }
    r.finish();

    let pass = sweeps.iter().all(BackendSweep::pass);
    let rows: Vec<String> = sweeps.iter().map(BackendSweep::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"dataset\": \"{}\",\n  \"scale\": \"{}\",\n  \
         \"queries_per_point\": {},\n  \"walkers_per_query\": {},\n  \"walk_length\": {},\n  \
         \"backends\": [\n{}\n  ],\n  \
         \"acceptance\": {{\"criterion\": \"every backend's oversubscribed point sheds \
         (shed > 0) while still serving (served > 0)\", \"pass\": {}}}\n}}\n",
        DATASET,
        match scale {
            Scale::Default => "default",
            Scale::Tiny => "tiny",
        },
        QUERIES_PER_POINT,
        walkers,
        WALK_LENGTH,
        rows.join(",\n"),
        pass,
    );
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => {
            for s in &sweeps {
                println!(
                    "(BENCH_serve.json: backend {} top point shed {} of {} offered)",
                    s.backend.name(),
                    s.top().report.shed_count(),
                    QUERIES_PER_POINT
                );
            }
        }
        Err(err) => eprintln!("warning: cannot write BENCH_serve.json: {err}"),
    }
    if !pass {
        for s in sweeps.iter().filter(|s| !s.pass()) {
            eprintln!(
                "serve: ACCEPTANCE FAILED — backend {} top point shed {} served {}",
                s.backend.name(),
                s.top().report.shed_count(),
                s.top().served()
            );
        }
    }
}
