//! Online serving under load: a deterministic closed-loop load generator
//! sweeping offered QPS against the `noswalker-serve` engine, once per
//! step-kernel backend.
//!
//! For each backend the sweep first calibrates by serving one query alone
//! (its modeled service time `S` is the capacity yardstick — the two
//! backends charge the model clock differently, so each gets its own
//! yardstick), then offers query streams at 0.5×, 1×, 4× and 16× the
//! resulting capacity. The serving engine batches concurrent queries into
//! shared rounds, so moderate oversubscription is absorbed; the 16× point
//! is past what batching can hide, and with the admission queue bounded
//! it must *shed* (reject with retry-after) rather than queue without
//! bound, while continuing to serve — the acceptance check in
//! `BENCH_serve.json` asserts exactly that (shed > 0 and achieved
//! QPS > 0 at the top point) for every backend. Everything runs on the
//! serving layer's `ModelClock`, so repeated runs are bit-identical.

use crate::datasets::{self, Scale};
use crate::report::Report;
use crate::runner::env;
use noswalker_core::{QuerySpec, StaticQuerySource, WallTimer};
use noswalker_serve::{AdmissionOptions, Backend, ServeEngine, ServeOptions, ServeReport};
use noswalker_shard::ShardPlane;
use noswalker_storage::{per_shard_devices, SsdProfile};

const DATASET: &str = "k30";
const WALK_LENGTH: u32 = 10;
const SEED: u64 = 31;
const QUERIES_PER_POINT: u64 = 24;
const BACKENDS: &[Backend] = &[Backend::Seq, Backend::Par];

/// Shard counts for the sharded serve-plane sweep.
const SHARD_COUNTS: &[usize] = &[1, 2, 4];

/// The query-class mix offered round-robin.
const MIX: &[&str] = &["ppr:7", "basic", "deepwalk:0", "rwr:7:0.15"];

struct Point {
    offered_qps: f64,
    report: ServeReport,
}

impl Point {
    fn p(&self, q: f64) -> u64 {
        let mut all = noswalker_core::LatencyHistogram::new();
        for h in self.report.histograms.values() {
            all.merge(h);
        }
        all.quantile(q)
    }

    fn served(&self) -> u64 {
        self.report.completed_count()
    }

    fn miss_rate(&self) -> f64 {
        self.report.deadline_miss_count() as f64 / self.served().max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            "        {{\"offered_qps\": {:.1}, \"achieved_qps\": {:.1}, \"served\": {}, \
             \"shed\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"deadline_miss_rate\": {:.3}, \
             \"degraded\": {}, \"rounds\": {}, \"metrics\": {}}}",
            self.offered_qps,
            self.report.achieved_qps(),
            self.served(),
            self.report.shed_count(),
            self.p(0.50),
            self.p(0.99),
            self.miss_rate(),
            self.report.degraded_count(),
            self.report.rounds,
            self.report.metrics.to_json(8),
        )
    }
}

/// One backend's calibration + sweep results.
struct BackendSweep {
    backend: Backend,
    service_ns: u64,
    deadline_ns: u64,
    points: Vec<Point>,
}

impl BackendSweep {
    fn top(&self) -> &Point {
        self.points.last().expect("sweep has points")
    }

    fn pass(&self) -> bool {
        self.top().report.shed_count() > 0 && self.top().served() > 0
    }

    fn json(&self) -> String {
        let rows: Vec<String> = self.points.iter().map(Point::json).collect();
        format!(
            "    {{\"backend\": \"{}\", \"calibrated_service_ns\": {}, \
             \"capacity_qps\": {:.1}, \"deadline_ns\": {}, \"points\": [\n{}\n      ], \
             \"top_shed\": {}, \"top_served\": {}, \"pass\": {}}}",
            self.backend.name(),
            self.service_ns,
            1e9 / self.service_ns as f64,
            self.deadline_ns,
            rows.join(",\n"),
            self.top().report.shed_count(),
            self.top().served(),
            self.pass(),
        )
    }
}

fn stream(interarrival_ns: u64, walkers: u64, deadline_ns: u64) -> StaticQuerySource {
    let specs: Vec<QuerySpec> = (0..QUERIES_PER_POINT)
        .map(|i| {
            let arrival_ns = i * interarrival_ns;
            QuerySpec {
                id: i + 1,
                class: MIX[(i % MIX.len() as u64) as usize].to_string(),
                walkers,
                walk_length: WALK_LENGTH,
                deadline_ns: Some(arrival_ns + deadline_ns),
                arrival_ns,
            }
        })
        .collect();
    StaticQuerySource::new(specs)
}

/// The sharded sweep's query class for query `i`: the same four-way mix,
/// but with start vertices spread across the vertex space so queries
/// route to every shard and walkers actually cross partition boundaries.
fn spread_class(i: u64, nv: u32) -> String {
    let nv = nv.max(1) as u64;
    let v = i.wrapping_mul(nv / QUERIES_PER_POINT.max(1)) % nv;
    match i % 4 {
        0 => format!("ppr:{v}"),
        1 => "basic".to_string(),
        2 => format!("deepwalk:{v}"),
        _ => format!("rwr:{v}:0.15"),
    }
}

fn spread_stream(
    interarrival_ns: u64,
    walkers: u64,
    deadline_ns: u64,
    nv: u32,
) -> StaticQuerySource {
    let specs: Vec<QuerySpec> = (0..QUERIES_PER_POINT)
        .map(|i| {
            let arrival_ns = i * interarrival_ns;
            QuerySpec {
                id: i + 1,
                class: spread_class(i, nv),
                walkers,
                walk_length: WALK_LENGTH,
                deadline_ns: Some(arrival_ns + deadline_ns),
                arrival_ns,
            }
        })
        .collect();
    StaticQuerySource::new(specs)
}

/// One point of the sharded sweep: the merged report plus handoff totals.
struct ShardPoint {
    point: Point,
    emigrated: u64,
    immigrated: u64,
}

/// One shard count's offered-QPS sweep on the sharded serve plane.
struct ShardSweep {
    shards: usize,
    points: Vec<ShardPoint>,
}

impl ShardSweep {
    fn top(&self) -> &ShardPoint {
        self.points.last().expect("sweep has points")
    }

    fn json(&self) -> String {
        let rows: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let base = p.point.json();
                let tail = format!(
                    ", \"walkers_emigrated\": {}, \"walkers_immigrated\": {}}}",
                    p.emigrated, p.immigrated
                );
                // Splice the handoff totals into the point object: drop
                // only its outermost closing brace (a blanket trim would
                // also eat the nested metrics object's).
                let cut = base.rfind('}').map_or(base.len(), |i| i);
                format!("{}{}", &base[..cut], tail)
            })
            .collect();
        format!(
            "    {{\"shards\": {}, \"points\": [\n{}\n      ], \
             \"top_achieved_qps\": {:.1}, \"top_served\": {}}}",
            self.shards,
            rows.join(",\n"),
            self.top().point.report.achieved_qps(),
            self.top().point.served(),
        )
    }
}

/// Sweeps offered QPS on an N-shard serve plane, reusing the calibrated
/// single-shard service time so every shard count faces the identical
/// offered load.
fn sweep_shards(
    shards: usize,
    d: &datasets::Dataset,
    budget: u64,
    walkers: u64,
    service_ns: u64,
) -> Option<ShardSweep> {
    let nv = d.csr.num_vertices() as u32;
    let block_bytes = datasets::default_block_bytes(d);
    let deadline_ns = service_ns * 3;
    let sweep: &[(&str, u64)] = &[
        ("0.5x", service_ns * 2),
        ("1x", service_ns),
        ("4x", (service_ns / 4).max(1)),
        ("16x", (service_ns / 16).max(1)),
    ];
    let opts = ServeOptions {
        seed: SEED,
        backend: Backend::Seq,
        admission: AdmissionOptions {
            max_pending: 4,
            retry_after_ns: service_ns / 2,
            ..AdmissionOptions::default()
        },
        ..ServeOptions::default()
    };
    let mut points = Vec::new();
    for &(label, interarrival_ns) in sweep {
        let devices = per_shard_devices(shards, 1, SsdProfile::nvme_p4618(), 64 << 10);
        let plane = match ShardPlane::build(&d.csr, devices, budget, block_bytes, opts.clone()) {
            Ok(p) => p,
            Err(err) => {
                eprintln!("serve: {shards}-shard plane build failed: {err}");
                return None;
            }
        };
        let mut src = spread_stream(interarrival_ns, walkers, deadline_ns, nv);
        // The plane runs on modeled time and reports wall_ns = 0; stamp
        // real elapsed time here, at the measurement boundary, so the
        // per-point JSON separates simulated cost from bench runtime.
        let wall = WallTimer::start();
        match plane.run(&mut src, None) {
            Ok(mut r) => {
                r.report.metrics.finalize_wall(&wall);
                points.push(ShardPoint {
                    point: Point {
                        offered_qps: 1e9 / interarrival_ns as f64,
                        report: r.report,
                    },
                    emigrated: r.walkers_emigrated,
                    immigrated: r.walkers_immigrated,
                });
            }
            Err(err) => {
                eprintln!("serve: {shards}-shard {label} point failed: {err}");
                return None;
            }
        }
    }
    Some(ShardSweep { shards, points })
}

fn sweep_backend(
    backend: Backend,
    d: &datasets::Dataset,
    budget: u64,
    walkers: u64,
) -> Option<BackendSweep> {
    let serve_opts = |retry_after_ns: u64| ServeOptions {
        seed: SEED,
        backend,
        admission: AdmissionOptions {
            max_pending: 4,
            retry_after_ns,
            ..AdmissionOptions::default()
        },
        ..ServeOptions::default()
    };

    // Calibrate: one query served alone gives this backend's service time.
    let e = env(d, budget);
    let engine = ServeEngine::new(e.graph, e.budget, serve_opts(1_000));
    let mut solo = StaticQuerySource::new(vec![QuerySpec {
        id: 1,
        class: MIX[0].to_string(),
        walkers,
        walk_length: WALK_LENGTH,
        deadline_ns: None,
        arrival_ns: 0,
    }]);
    let service_ns = match engine.run(&mut solo, None) {
        Ok(r) => r.end_ns.max(1),
        Err(err) => {
            eprintln!("serve: {} calibration failed: {err}", backend.name());
            return None;
        }
    };

    // Offered-QPS sweep: under-, at-, and over-subscribed (4× and 16×).
    let sweep: &[(&str, u64)] = &[
        ("0.5x", service_ns * 2),
        ("1x", service_ns),
        ("4x", (service_ns / 4).max(1)),
        ("16x", (service_ns / 16).max(1)),
    ];
    // Three service times of headroom: loose enough that an unloaded
    // backend always makes it, tight enough that queueing at the
    // oversubscribed points shows up as recorded deadline misses.
    let deadline_ns = service_ns * 3;
    let mut points = Vec::new();
    for &(label, interarrival_ns) in sweep {
        let e = env(d, budget);
        let engine = ServeEngine::new(e.graph, e.budget, serve_opts(service_ns / 2));
        let mut src = stream(interarrival_ns, walkers, deadline_ns);
        // Lockstep serving runs entirely on modeled time, so the engine
        // reports wall_ns = 0; stamp real elapsed time at the bench
        // boundary (the sanctioned WallTimer gateway for measurement).
        let wall = WallTimer::start();
        match engine.run(&mut src, None) {
            Ok(mut report) => {
                report.metrics.finalize_wall(&wall);
                points.push(Point {
                    offered_qps: 1e9 / interarrival_ns as f64,
                    report,
                });
            }
            Err(err) => {
                eprintln!("serve: {} {label} point failed: {err}", backend.name());
                return None;
            }
        }
    }
    Some(BackendSweep {
        backend,
        service_ns,
        deadline_ns,
        points,
    })
}

/// Runs the serving sweep over every backend plus the shard-count sweep
/// on the sharded serve plane, writes `BENCH_serve.json`, and returns the
/// acceptance verdict (backend shed gates and the shard-scaling gate).
pub fn run(scale: Scale) -> bool {
    let d = datasets::get(DATASET, scale);
    let budget = datasets::default_budget(scale);
    let walkers = scale.walkers(2_000);

    let mut sweeps = Vec::new();
    for &backend in BACKENDS {
        match sweep_backend(backend, &d, budget, walkers) {
            Some(s) => sweeps.push(s),
            None => return false,
        }
    }

    // Shard sweep, calibrated on the sequential backend so every shard
    // count faces the identical offered load.
    let seq_service_ns = sweeps
        .iter()
        .find(|s| s.backend == Backend::Seq)
        .map_or(1, |s| s.service_ns);
    let mut shard_sweeps = Vec::new();
    for &shards in SHARD_COUNTS {
        match sweep_shards(shards, &d, budget, walkers, seq_service_ns) {
            Some(s) => shard_sweeps.push(s),
            None => return false,
        }
    }

    let mut r = Report::new(
        "serve",
        "Online serving: offered QPS sweep per backend (modeled time, 16x oversubscribed)",
    );
    r.header([
        "Backend",
        "Offered q/s",
        "Achieved q/s",
        "Served",
        "Shed",
        "p50 us",
        "p99 us",
        "Miss rate",
        "Degraded",
        "Rounds",
    ]);
    for s in &sweeps {
        for p in &s.points {
            r.row([
                s.backend.name().to_string(),
                format!("{:.1}", p.offered_qps),
                format!("{:.1}", p.report.achieved_qps()),
                p.served().to_string(),
                p.report.shed_count().to_string(),
                format!("{:.1}", p.p(0.50) as f64 / 1e3),
                format!("{:.1}", p.p(0.99) as f64 / 1e3),
                format!("{:.3}", p.miss_rate()),
                p.report.degraded_count().to_string(),
                p.report.rounds.to_string(),
            ]);
        }
    }
    for s in &shard_sweeps {
        for p in &s.points {
            r.row([
                format!("{} shards", s.shards),
                format!("{:.1}", p.point.offered_qps),
                format!("{:.1}", p.point.report.achieved_qps()),
                p.point.served().to_string(),
                p.point.report.shed_count().to_string(),
                format!("{:.1}", p.point.p(0.50) as f64 / 1e3),
                format!("{:.1}", p.point.p(0.99) as f64 / 1e3),
                format!("{:.3}", p.point.miss_rate()),
                p.point.report.degraded_count().to_string(),
                p.point.report.rounds.to_string(),
            ]);
        }
    }
    r.finish();

    // Shard-scaling gate: at the 16× overload point, the 4-shard plane
    // must serve strictly more queries per modeled second than 1 shard.
    let top_qps = |n: usize| {
        shard_sweeps
            .iter()
            .find(|s| s.shards == n)
            .map_or(0.0, |s| s.top().point.report.achieved_qps())
    };
    let shard_pass = top_qps(4) > top_qps(1);
    let pass = sweeps.iter().all(BackendSweep::pass) && shard_pass;
    let rows: Vec<String> = sweeps.iter().map(BackendSweep::json).collect();
    let shard_rows: Vec<String> = shard_sweeps.iter().map(ShardSweep::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"dataset\": \"{}\",\n  \"scale\": \"{}\",\n  \
         \"queries_per_point\": {},\n  \"walkers_per_query\": {},\n  \"walk_length\": {},\n  \
         \"backends\": [\n{}\n  ],\n  \
         \"shard_sweep\": [\n{}\n  ],\n  \
         \"shard_acceptance\": {{\"criterion\": \"4-shard achieved QPS strictly above 1-shard \
         at the 16x overload point\", \"one_shard_qps\": {:.1}, \"four_shard_qps\": {:.1}, \
         \"pass\": {}}},\n  \
         \"acceptance\": {{\"criterion\": \"every backend's oversubscribed point sheds \
         (shed > 0) while still serving (served > 0), and the 4-shard plane out-serves \
         1 shard at overload\", \"pass\": {}}}\n}}\n",
        DATASET,
        match scale {
            Scale::Default => "default",
            Scale::Tiny => "tiny",
        },
        QUERIES_PER_POINT,
        walkers,
        WALK_LENGTH,
        rows.join(",\n"),
        shard_rows.join(",\n"),
        top_qps(1),
        top_qps(4),
        shard_pass,
        pass,
    );
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => {
            for s in &sweeps {
                println!(
                    "(BENCH_serve.json: backend {} top point shed {} of {} offered)",
                    s.backend.name(),
                    s.top().report.shed_count(),
                    QUERIES_PER_POINT
                );
            }
            for s in &shard_sweeps {
                println!(
                    "(BENCH_serve.json: {} shards top point {:.1} q/s, {} handoffs)",
                    s.shards,
                    s.top().point.report.achieved_qps(),
                    s.top().emigrated,
                );
            }
        }
        Err(err) => eprintln!("warning: cannot write BENCH_serve.json: {err}"),
    }
    if !pass {
        for s in sweeps.iter().filter(|s| !s.pass()) {
            eprintln!(
                "serve: ACCEPTANCE FAILED — backend {} top point shed {} served {}",
                s.backend.name(),
                s.top().report.shed_count(),
                s.top().served()
            );
        }
        if !shard_pass {
            eprintln!(
                "serve: ACCEPTANCE FAILED — 4-shard top point {:.1} q/s does not beat 1-shard {:.1} q/s",
                top_qps(4),
                top_qps(1)
            );
        }
    }
    pass
}
