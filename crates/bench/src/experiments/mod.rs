//! One module per paper table/figure. Each exposes `run(scale)`, prints a
//! table shaped like the figure's series and writes `results/<id>.tsv`.

pub mod ablations;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig2;
pub mod fig4;
pub mod fig9;
pub mod serve;
pub mod table1;
pub mod throughput;

use crate::datasets::Scale;

/// All experiment ids in paper order.
pub const ALL: &[&str] = &[
    "table1",
    "fig2",
    "fig4",
    "fig9",
    "fig10",
    "fig11",
    "fig12a",
    "fig12bc",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "ablation-alloc",
    "ablation-lowdeg",
    "ablation-ssds",
    "ablation-g25",
    "throughput",
    "serve",
];

/// Dispatches an experiment by id. Returns `None` for unknown ids,
/// otherwise whether the experiment's acceptance gates passed
/// (experiments without a gate always pass, so the CLI's exit code only
/// ratchets on gated benches).
pub fn dispatch(id: &str, scale: Scale) -> Option<bool> {
    // Gated experiments report their acceptance verdict.
    match id {
        "throughput" => return Some(throughput::run(scale)),
        "serve" => return Some(serve::run(scale)),
        "all" => {
            let mut ok = true;
            for id in ALL {
                ok &= dispatch(id, scale).unwrap_or(true);
            }
            return Some(ok);
        }
        _ => {}
    }
    match id {
        "table1" => table1::run(scale),
        "fig2" => fig2::run(scale),
        "fig4" => fig4::run(scale),
        "fig9" => fig9::run(scale),
        "fig10" => fig10::run(scale),
        "fig11" => fig11::run(scale),
        "fig12a" => fig12::run_12a(scale),
        "fig12bc" => fig12::run_12bc(scale),
        "fig13" => fig13::run(scale),
        "fig14" => fig14::run(scale),
        "fig15" => fig15::run(scale),
        "fig16" => fig16::run(scale),
        "fig17" => fig17::run(scale),
        "ablation-alloc" => ablations::run_alloc(scale),
        "ablation-lowdeg" => ablations::run_lowdeg(scale),
        "ablation-ssds" => ablations::run_ssds(scale),
        "ablation-g25" => ablations::run_g25(scale),
        _ => return None,
    }
    Some(true)
}
