//! Fig. 12: (a) NosWalker's speedup over GraphWalker under different
//! memory budgets and walker counts on k30; (b)/(c) both systems on a
//! RAID-0 of SATA SSDs (high bandwidth, low IOPS).
//!
//! Shapes to reproduce: (a) the speedup jumps between the 10 % and 20 %
//! budgets (little room for pre-sample buffers at 10 %) and grows with the
//! walker count when memory allows; (b)/(c) the low-IOPS array costs
//! NosWalker some of its fine-grained advantage but it stays an order of
//! magnitude ahead.

use crate::datasets::{self, Scale};
use crate::report::{speedup, Report};
use crate::runner::{env_with_device, run_system, run_system_in, SystemKind};
use noswalker_apps::BasicRw;
use noswalker_core::EngineOptions;
use noswalker_storage::{Raid0, SsdProfile};
use std::sync::Arc;

/// Runs Fig. 12(a): budget sweep.
pub fn run_12a(scale: Scale) {
    let d = datasets::get("k30", scale);
    let mut r = Report::new(
        "fig12a",
        "Fig 12a: NosWalker speedup over GraphWalker vs memory budget (k30)",
    );
    r.header([
        "Budget%",
        "Walkers",
        "GraphWalker(s)",
        "NosWalker(s)",
        "Speedup",
    ]);
    // Paper: 0.5B/1B/2B/4B walkers; scaled by 10^4.
    let walker_points: Vec<u64> = [50_000u64, 100_000, 200_000, 400_000]
        .iter()
        .map(|&w| scale.walkers(w).max(100))
        .collect();
    for pct in [10u64, 20, 30, 40, 50] {
        let budget = d.edge_bytes() * pct / 100;
        for &w in &walker_points {
            let mut secs = [f64::NAN; 2];
            for (i, sys) in [SystemKind::GraphWalker, SystemKind::NosWalker]
                .iter()
                .enumerate()
            {
                let app = Arc::new(BasicRw::new(w, 10, d.csr.num_vertices()));
                if let Ok(m) = run_system(*sys, app, &d, budget, EngineOptions::default(), 31) {
                    secs[i] = m.sim_secs();
                }
            }
            r.row([
                pct.to_string(),
                w.to_string(),
                format!("{:.3}", secs[0]),
                format!("{:.3}", secs[1]),
                speedup(secs[0], secs[1]),
            ]);
        }
    }
    r.finish();
}

/// One member of the paper's 7-disk S4610 array: the aggregate reaches
/// ~3.4 GiB/s sequential but only ~150 k IOPS.
fn s4610_member() -> SsdProfile {
    SsdProfile {
        bandwidth_bytes_per_sec: (3.4 * 1024.0 * 1024.0 * 1024.0) as u64 / 7,
        iops: 150_000 / 7,
    }
}

/// Runs Fig. 12(b)/(c): RAID-0 walker-count and walk-length sweeps.
pub fn run_12bc(scale: Scale) {
    let d = datasets::get("k30", scale);
    let budget = datasets::default_budget(scale);
    let mut r = Report::new(
        "fig12bc",
        "Fig 12b/c: GraphWalker vs NosWalker on RAID-0 (7x S4610)",
    );
    r.header(["Sweep", "X", "GraphWalker(s)", "NosWalker(s)", "Speedup"]);

    let cell = |sweep: &str, x: String, walkers: u64, len: u32, r: &mut Report| {
        let mut secs = [f64::NAN; 2];
        for (i, sys) in [SystemKind::GraphWalker, SystemKind::NosWalker]
            .iter()
            .enumerate()
        {
            let raid = Arc::new(Raid0::new(7, s4610_member(), 256 << 10));
            let e = env_with_device(&d, budget, raid);
            let app = Arc::new(BasicRw::new(walkers, len, d.csr.num_vertices()));
            if let Ok(m) = run_system_in(*sys, app, &e, EngineOptions::default(), 33) {
                secs[i] = m.sim_secs();
            }
        }
        r.row([
            sweep.to_string(),
            x,
            format!("{:.3}", secs[0]),
            format!("{:.3}", secs[1]),
            speedup(secs[0], secs[1]),
        ]);
    };

    // (b): walker sweep at length 10 (paper: 10^3 … 10^9).
    for &w in &crate::experiments::fig10::walker_points(scale) {
        cell("walkers", w.to_string(), w, 10, &mut r);
    }
    // (c): length sweep at 10^4 walkers (paper: 2^4 … 2^8 at 10^6).
    let lens: &[u32] = match scale {
        Scale::Default => &[16, 64, 256],
        Scale::Tiny => &[16],
    };
    for &len in lens {
        cell(
            "length",
            len.to_string(),
            scale.walkers(10_000),
            len,
            &mut r,
        );
    }
    r.finish();
}
