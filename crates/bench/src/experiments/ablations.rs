//! Extra ablations beyond the paper's Fig. 14, for the design choices
//! DESIGN.md calls out.

use crate::datasets::{self, Scale};
use crate::report::Report;
use crate::runner::{run_system, SystemKind};
use noswalker_apps::{BasicRw, Ppr};
use noswalker_core::EngineOptions;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// `cnt`-proportional pre-sample allocation (§3.3.2) vs uniform: the
/// proportional policy should reduce stalls and I/O on skewed access
/// patterns like PPR.
pub fn run_alloc(scale: Scale) {
    let d = datasets::get("k30", scale);
    let budget = datasets::default_budget(scale);
    let mut r = Report::new(
        "ablation_alloc",
        "Ablation: cnt-proportional vs uniform pre-sample allocation (PPR on k30)",
    );
    r.header(["Policy", "SimSecs", "IO(MiB)", "PresampleSteps"]);
    let mut rng = SmallRng::seed_from_u64(0xAB1);
    let n = d.csr.num_vertices();
    let sources: Vec<u32> = (0..50).map(|_| rng.gen_range(0..n as u32)).collect();
    for (label, uniform) in [("cnt-proportional", false), ("uniform", true)] {
        let opts = EngineOptions {
            uniform_presample_alloc: uniform,
            ..EngineOptions::default()
        };
        let app = Arc::new(Ppr::new(sources.clone(), scale.walkers(200).max(1), 10, n));
        match run_system(SystemKind::NosWalker, app, &d, budget, opts, 91) {
            Ok(m) => {
                r.row([
                    label.to_string(),
                    format!("{:.3}", m.sim_secs()),
                    format!("{:.1}", m.total_io_bytes() as f64 / (1 << 20) as f64),
                    m.steps_on_presample.to_string(),
                ]);
            }
            Err(e) => {
                r.row([label.to_string(), "-".into(), "-".into(), e]);
            }
        }
    }
    r.finish();
}

/// The paper's extra G2.5 evaluation (§4.4): on a road-graph-density
/// dataset (avg degree ≈ 2.5) pre-sampling buys only a small I/O cut and
/// the three optimizations together land near ~2× over the base.
pub fn run_g25(scale: Scale) {
    let d = datasets::get("g25", scale);
    let budget = datasets::default_budget(scale);
    let mut r = Report::new(
        "ablation_g25",
        "Paper §4.4 extra: optimization ladder on G2.5 (avg degree ~2.5)",
    );
    r.header(["Config", "SimSecs", "NormTime", "IO(MiB)", "NormIO"]);
    let mut base: Option<(u64, u64)> = None;
    for (label, opts) in crate::experiments::fig14::ladder() {
        let app = Arc::new(BasicRw::new(
            scale.walkers(100_000),
            10,
            d.csr.num_vertices(),
        ));
        match run_system(SystemKind::NosWalker, app, &d, budget, opts, 97) {
            Ok(m) => {
                let (bt, bio) = *base.get_or_insert((m.sim_ns.max(1), m.total_io_bytes().max(1)));
                r.row([
                    label.to_string(),
                    format!("{:.3}", m.sim_secs()),
                    format!("{:.2}", m.sim_ns as f64 / bt as f64),
                    format!("{:.1}", m.total_io_bytes() as f64 / (1 << 20) as f64),
                    format!("{:.2}", m.total_io_bytes() as f64 / bio as f64),
                ]);
            }
            Err(e) => {
                r.row([label.to_string(), "-".into(), "-".into(), "-".into(), e]);
            }
        }
    }
    r.finish();
}

/// Number-of-SSDs sweep (the paper lists "the number of SSDs" among its
/// studied settings, §1): a RAID-0 of N members with fixed per-member
/// performance. Aggregate bandwidth scales with N; the IOPS floor per
/// operation does not, so NosWalker's coarse phase speeds up while the
/// fine-grained tail does not.
pub fn run_ssds(scale: Scale) {
    use crate::runner::{env_with_device, run_system_in};
    use noswalker_storage::{Raid0, SsdProfile};

    let d = datasets::get("k30", scale);
    let budget = datasets::default_budget(scale);
    let member = SsdProfile {
        bandwidth_bytes_per_sec: 500 << 20, // one SATA-class SSD
        iops: 21_000,
    };
    let mut r = Report::new(
        "ablation_ssds",
        "Ablation: number of SSDs in RAID-0 (Basic-RW on k30, NW vs GW)",
    );
    r.header(["SSDs", "GraphWalker(s)", "NosWalker(s)", "Speedup"]);
    for n in [1usize, 2, 4, 7] {
        let mut secs = [f64::NAN; 2];
        for (i, sys) in [SystemKind::GraphWalker, SystemKind::NosWalker]
            .iter()
            .enumerate()
        {
            let raid = Arc::new(Raid0::new(n, member, 256 << 10));
            let e = env_with_device(&d, budget, raid);
            let app = Arc::new(BasicRw::new(
                scale.walkers(100_000),
                10,
                d.csr.num_vertices(),
            ));
            if let Ok(m) = run_system_in(*sys, app, &e, EngineOptions::default(), 95) {
                secs[i] = m.sim_secs();
            }
        }
        r.row([
            n.to_string(),
            format!("{:.3}", secs[0]),
            format!("{:.3}", secs[1]),
            crate::report::speedup(secs[0], secs[1]),
        ]);
    }
    r.finish();
}

/// Low-degree raw-edge retention threshold sweep (§3.3.4) on the flat
/// α2.7 graph, which is dominated by low-degree vertices.
pub fn run_lowdeg(scale: Scale) {
    let d = datasets::get("a27", scale);
    let budget = datasets::default_budget(scale);
    let mut r = Report::new(
        "ablation_lowdeg",
        "Ablation: low-degree retention threshold (Basic-RW on α2.7)",
    );
    r.header([
        "Threshold",
        "SimSecs",
        "IO(MiB)",
        "RawSteps",
        "PresampleSteps",
    ]);
    for thresh in [0u32, 1, 2, 4, 8] {
        let opts = EngineOptions {
            low_degree_threshold: thresh,
            ..EngineOptions::default()
        };
        let app = Arc::new(BasicRw::new(
            scale.walkers(100_000),
            10,
            d.csr.num_vertices(),
        ));
        match run_system(SystemKind::NosWalker, app, &d, budget, opts, 93) {
            Ok(m) => {
                r.row([
                    thresh.to_string(),
                    format!("{:.3}", m.sim_secs()),
                    format!("{:.1}", m.total_io_bytes() as f64 / (1 << 20) as f64),
                    m.steps_on_raw.to_string(),
                    m.steps_on_presample.to_string(),
                ]);
            }
            Err(e) => {
                r.row([thresh.to_string(), "-".into(), "-".into(), "-".into(), e]);
            }
        }
    }
    r.finish();
}
