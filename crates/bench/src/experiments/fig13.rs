//! Fig. 13: sensitivity to graph structure — GraphWalker vs NosWalker on
//! the power-law k30 and the two flat graphs (g12, α2.7), across Basic-RW,
//! RWD, GC, PPR and SR.
//!
//! Shape to reproduce: NosWalker's speedup shrinks on the flat graphs
//! (pre-sampling buys less when the average degree is low) but stays
//! clearly above 1 (the long-tail/shrink-block win survives).

use crate::datasets::{self, Dataset, Scale};
use crate::report::{speedup, Report};
use crate::runner::{run_system, Outcome, SystemKind};
use noswalker_apps::{BasicRw, GraphletConcentration, Ppr, RandomWalkDomination, SimRank};
use noswalker_core::EngineOptions;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn run_app(app: &str, sys: SystemKind, d: &Dataset, budget: u64, scale: Scale) -> Outcome {
    let n = d.csr.num_vertices();
    let opts = EngineOptions::default();
    let mut rng = SmallRng::seed_from_u64(0xF13);
    match app {
        // Paper: 1 B walkers × length 10 → scaled 10^5.
        "Basic-RW" => run_system(
            sys,
            Arc::new(BasicRw::new(scale.walkers(100_000), 10, n)),
            d,
            budget,
            opts,
            41,
        ),
        "RWD" => run_system(
            sys,
            Arc::new(RandomWalkDomination::new(n, 6)),
            d,
            budget,
            opts,
            43,
        ),
        "GC" => run_system(
            sys,
            Arc::new(GraphletConcentration::paper_scale(n)),
            d,
            budget,
            opts,
            45,
        ),
        "PPR" => {
            let sources: Vec<u32> = (0..50).map(|_| rng.gen_range(0..n as u32)).collect();
            run_system(
                sys,
                Arc::new(Ppr::new(sources, scale.walkers(200).max(1), 10, n)),
                d,
                budget,
                opts,
                47,
            )
        }
        "SR" => {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            run_system(
                sys,
                Arc::new(SimRank::new(a, b, scale.walkers(1000).max(1), 11)),
                d,
                budget,
                opts,
                49,
            )
        }
        other => panic!("unknown app {other}"),
    }
}

/// Runs the Fig. 13 matrix.
pub fn run(scale: Scale) {
    let budget = datasets::default_budget(scale);
    let mut r = Report::new("fig13", "Fig 13: sensitivity to graph structure (GW vs NW)");
    r.header([
        "App",
        "Dataset",
        "GraphWalker(s)",
        "NosWalker(s)",
        "Speedup",
    ]);
    for app in ["Basic-RW", "RWD", "GC", "PPR", "SR"] {
        for name in ["k30", "g12", "a27"] {
            let d = datasets::get(name, scale);
            let mut secs = [f64::NAN; 2];
            for (i, sys) in [SystemKind::GraphWalker, SystemKind::NosWalker]
                .iter()
                .enumerate()
            {
                if let Ok(m) = run_app(app, *sys, &d, budget, scale) {
                    secs[i] = m.sim_secs();
                }
            }
            r.row([
                app.to_string(),
                name.to_string(),
                format!("{:.3}", secs[0]),
                format!("{:.3}", secs[1]),
                speedup(secs[0], secs[1]),
            ]);
        }
    }
    r.finish();
}
