//! Fig. 2: (a) average edges read per step and (b) average step rate, for
//! DrunkardMob / GraphWalker / NosWalker on a Kron30-class workload.
//!
//! Paper values: 32 / 23 / 6.4 edges per step; 0.5 / 5.6 / 84.7 M steps/s.
//! The shape to reproduce: DM > GW ≫ NW on edges/step, the reverse (by
//! orders of magnitude) on step rate.

use crate::datasets::{self, Scale};
use crate::report::Report;
use crate::runner::{run_system, SystemKind};
use noswalker_apps::BasicRw;
use noswalker_core::EngineOptions;
use std::sync::Arc;

/// Runs the Fig. 2 measurement.
pub fn run(scale: Scale) {
    let d = datasets::get("k30", scale);
    let budget = datasets::default_budget(scale);
    let walkers = scale.walkers(100_000);
    let mut r = Report::new(
        "fig2",
        "Fig 2: avg edges read per step (a) and step rate (b), Basic-RW on k30",
    );
    r.header([
        "System",
        "EdgesPerStep",
        "MSteps/s",
        "SimSecs",
        "TotalIO(MiB)",
    ]);
    for sys in [
        SystemKind::DrunkardMob,
        SystemKind::GraphWalker,
        SystemKind::NosWalker,
    ] {
        let app = Arc::new(BasicRw::new(walkers, 10, d.csr.num_vertices()));
        match run_system(sys, app, &d, budget, EngineOptions::default(), 42) {
            Ok(m) => {
                r.row([
                    sys.label().to_string(),
                    format!("{:.1}", m.edges_per_step()),
                    format!("{:.2}", m.steps_per_sec() / 1e6),
                    format!("{:.3}", m.sim_secs()),
                    format!("{:.1}", m.total_io_bytes() as f64 / (1 << 20) as f64),
                ]);
            }
            Err(e) => {
                r.row([
                    sys.label().to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    e,
                ]);
            }
        }
    }
    r.finish();
}
