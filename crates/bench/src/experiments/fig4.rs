//! Fig. 4: GraphWalker's long tail — the number of unterminated walkers
//! (line) and the per-I/O accessed-data proportion (dots) over the I/O
//! sequence, on Kron30/Kron31-class graphs.
//!
//! Shape to reproduce: the walker count collapses early while the I/O
//! sequence drags on with ever-lower accessed fractions — "the last 30 %
//! of the time executes the last 3 % of the walkers" (§4.4).

use crate::datasets::{self, Scale};
use crate::report::Report;
use noswalker_apps::BasicRw;
use noswalker_baselines::GraphWalker;
use noswalker_core::EngineOptions;
use std::sync::Arc;

/// Runs the Fig. 4 trace on `k30` and `k31`.
pub fn run(scale: Scale) {
    let budget = datasets::default_budget(scale);
    let mut r = Report::new(
        "fig4",
        "Fig 4: GraphWalker long tail (unterminated walkers + accessed fraction per I/O)",
    );
    r.header(["Dataset", "IO#", "Unterminated", "AccessedFraction"]);
    for name in ["k30", "k31"] {
        let d = datasets::get(name, scale);
        let e = crate::runner::env(&d, budget);
        let app = Arc::new(BasicRw::new(
            scale.walkers(200_000),
            10,
            d.csr.num_vertices(),
        ));
        let gw = GraphWalker::new(
            app,
            Arc::clone(&e.graph),
            EngineOptions::default(),
            e.budget,
        );
        let traced = gw.run_traced(4).expect("GraphWalker run");
        // Sample at most ~40 points per dataset, keeping first and last.
        let n = traced.trace.len();
        let stride = (n / 40).max(1);
        for (i, p) in traced.trace.iter().enumerate() {
            if i % stride == 0 || i + 1 == n {
                r.row([
                    name.to_string(),
                    p.io_number.to_string(),
                    p.unterminated.to_string(),
                    format!("{:.3}", p.accessed_fraction),
                ]);
            }
        }
    }
    r.finish();
}
