//! Fig. 9: the four real-world applications (PPR, SimRank, RWD, Graphlet
//! Concentration) on the five main datasets × {DrunkardMob, GraphWalker,
//! NosWalker}.
//!
//! Shape to reproduce (paper §4.2): NosWalker 3.6–7.9× over GraphWalker on
//! the small graphs (tw, yh) and 6–64× on the large ones (k30, k31, cw);
//! DrunkardMob cannot process the largest graphs.

use crate::datasets::{self, Dataset, Scale};
use crate::report::{speedup, Report};
use crate::runner::{run_system, Outcome, SystemKind};
use noswalker_apps::{GraphletConcentration, Ppr, RandomWalkDomination, SimRank};
use noswalker_core::EngineOptions;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const SYSTEMS: [SystemKind; 3] = [
    SystemKind::DrunkardMob,
    SystemKind::GraphWalker,
    SystemKind::NosWalker,
];

/// Runs one (app, dataset, system) cell; apps are rebuilt per cell because
/// they accumulate results internally.
fn run_app(app_name: &str, sys: SystemKind, d: &Dataset, budget: u64, scale: Scale) -> Outcome {
    let n = d.csr.num_vertices();
    let opts = EngineOptions::default();
    let mut rng = SmallRng::seed_from_u64(0xF19);
    match app_name {
        // Paper: 2000 walks × length 10 from each of 1000 sources.
        // Scaled: 200 walks from each of 50 sources.
        "PPR" => {
            let sources: Vec<u32> = (0..50).map(|_| rng.gen_range(0..n as u32)).collect();
            let walks = scale.walkers(200).max(1);
            run_system(
                sys,
                Arc::new(Ppr::new(sources, walks, 10, n)),
                d,
                budget,
                opts,
                9,
            )
        }
        // Paper: 2000 walk pairs × length 11 for each of 1000 query pairs.
        // Scaled: 200 pairs for each of 5 query pairs; times summed.
        "SR" => {
            let mut total = noswalker_core::RunMetrics::default();
            for q in 0..5 {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                let app = Arc::new(SimRank::new(a, b, scale.walkers(200).max(1), 11));
                match run_system(sys, app, d, budget, opts.clone(), 100 + q) {
                    Ok(m) => total.merge(&m),
                    Err(e) => return Err(e),
                }
            }
            Ok(total)
        }
        // Paper: one length-6 walker per vertex.
        "RWD" => run_system(
            sys,
            Arc::new(RandomWalkDomination::new(n, 6)),
            d,
            budget,
            opts,
            11,
        ),
        // Paper: |V|/100 walkers of length 3.
        "GC" => run_system(
            sys,
            Arc::new(GraphletConcentration::paper_scale(n)),
            d,
            budget,
            opts,
            13,
        ),
        other => panic!("unknown app {other}"),
    }
}

/// Runs the Fig. 9 matrix.
pub fn run(scale: Scale) {
    let budget = datasets::default_budget(scale);
    let mut r = Report::new(
        "fig9",
        "Fig 9: real-world applications, time cost in simulated seconds",
    );
    r.header([
        "App",
        "Dataset",
        "DrunkardMob",
        "GraphWalker",
        "NosWalker",
        "NW/GW speedup",
    ]);
    for app_name in ["PPR", "SR", "RWD", "GC"] {
        for d in datasets::main_five(scale) {
            let mut cells = Vec::new();
            let mut secs = [f64::NAN; 3];
            for (i, sys) in SYSTEMS.iter().enumerate() {
                let out = run_app(app_name, *sys, &d, budget, scale);
                match &out {
                    Ok(m) => secs[i] = m.sim_secs(),
                    Err(_) => secs[i] = f64::NAN,
                }
                cells.push(crate::runner::secs(&out));
            }
            let sp = if secs[1].is_nan() || secs[2].is_nan() {
                "-".to_string()
            } else {
                speedup(secs[1], secs[2])
            };
            r.row([
                app_name.to_string(),
                d.name.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
                sp,
            ]);
        }
    }
    r.finish();
}
