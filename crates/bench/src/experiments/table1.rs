//! Table 1: statistics of the (scaled) datasets.

use crate::datasets::{self, Scale};
use crate::report::Report;
use noswalker_graph::stats::DegreeStats;

/// Prints the scaled Table 1.
pub fn run(scale: Scale) {
    let mut r = Report::new("table1", "Table 1: Statistics of Datasets (scaled)");
    r.header([
        "Dataset",
        "Stands for",
        "|V|",
        "|E|",
        "CSR Size",
        "AvgDeg",
        "MaxDeg",
        "Gini",
    ]);
    for d in datasets::all(scale) {
        let s = DegreeStats::of(&d.csr);
        r.row([
            d.name.to_string(),
            d.paper_name.to_string(),
            human(s.num_vertices as u64),
            human(s.num_edges),
            bytes(d.csr.csr_bytes()),
            format!("{:.1}", s.avg_degree),
            s.max_degree.to_string(),
            format!("{:.2}", s.gini),
        ]);
    }
    r.finish();
}

/// Human-readable count (K/M suffixes).
pub fn human(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Human-readable byte size.
pub fn bytes(n: u64) -> String {
    if n >= 1 << 20 {
        format!("{:.1}MiB", n as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1}KiB", n as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_counts() {
        assert_eq!(human(999), "999");
        assert_eq!(human(66_000), "66K");
        assert_eq!(human(12_600_000), "12.6M");
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(bytes(512), "0.5KiB");
        assert_eq!(bytes(3 << 20), "3.0MiB");
    }
}
