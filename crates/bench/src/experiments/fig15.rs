//! Fig. 15: second-order random walk (Node2Vec generation) — GraSorw vs
//! NosWalker on tw/yh/k30/k31, converted to undirected graphs.
//!
//! Paper settings: 10 walkers per vertex, p = 2, q = 0.5, length 10.
//! Shape to reproduce: ~3× on the in-memory-sized tw, 10–49× on the
//! out-of-core graphs.

use crate::datasets::{self, Scale};
use crate::report::{speedup, Report};
use crate::runner::{run_grasorw, run_noswalker_2nd};
use noswalker_apps::Node2Vec;
use noswalker_core::EngineOptions;
use std::sync::Arc;

/// Runs the Fig. 15 comparison.
pub fn run(scale: Scale) {
    let budget = datasets::default_budget(scale);
    let mut r = Report::new("fig15", "Fig 15: Node2Vec — GraSorw vs NosWalker");
    r.header([
        "Dataset",
        "Walkers",
        "GraSorw(s)",
        "NosWalker(s)",
        "Speedup",
    ]);
    for name in ["tw", "yh", "k30", "k31"] {
        let d = datasets::get_undirected(name, scale);
        let n = d.csr.num_vertices();
        // Paper: 10 walks/vertex; scaled down for the larger graphs to
        // keep the harness fast while preserving walkers ≫ pool.
        let per_vertex: u32 = match scale {
            Scale::Default => {
                if n <= (1 << 15) {
                    10
                } else {
                    2
                }
            }
            Scale::Tiny => 2,
        };
        let mk = || Arc::new(Node2Vec::new(n, per_vertex, 10, 2.0, 0.5));
        let gs = run_grasorw(mk(), &d, budget, EngineOptions::default(), 61);
        let nw = run_noswalker_2nd(mk(), &d, budget, EngineOptions::default(), 61);
        let (gss, nws) = (
            gs.as_ref().map(|m| m.sim_secs()).unwrap_or(f64::NAN),
            nw.as_ref().map(|m| m.sim_secs()).unwrap_or(f64::NAN),
        );
        r.row([
            name.to_string(),
            ((n as u64) * per_vertex as u64).to_string(),
            crate::runner::secs(&gs),
            crate::runner::secs(&nw),
            speedup(gss, nws),
        ]);
    }
    r.finish();
}
