//! Fig. 11: basic random walk time vs. walk length (walkers fixed), five
//! datasets × three systems.
//!
//! Shape to reproduce: all systems scale ~linearly in length on the large
//! graphs, with NosWalker 30–95× below GraphWalker throughout; on graphs
//! smaller than memory NosWalker still wins through walker management.

use crate::datasets::{self, Scale};
use crate::report::Report;
use crate::runner::{run_system, SystemKind};
use noswalker_apps::BasicRw;
use noswalker_core::EngineOptions;
use std::sync::Arc;

/// Walk lengths, the paper's 2^2…2^9.
pub const LENGTHS: [u32; 8] = [4, 8, 16, 32, 64, 128, 256, 512];

/// Runs the Fig. 11 sweep.
pub fn run(scale: Scale) {
    let budget = datasets::default_budget(scale);
    // Paper fixes 10^6 walkers; scaled to 10^4.
    let walkers = scale.walkers(10_000);
    let lengths: &[u32] = match scale {
        Scale::Default => &LENGTHS,
        Scale::Tiny => &LENGTHS[..3],
    };
    let mut r = Report::new("fig11", "Fig 11: time vs walk length (10^4 walkers)");
    r.header([
        "Dataset",
        "Length",
        "DrunkardMob",
        "GraphWalker",
        "NosWalker",
    ]);
    for d in datasets::main_five(scale) {
        for &len in lengths {
            let mut cells = Vec::new();
            for sys in [
                SystemKind::DrunkardMob,
                SystemKind::GraphWalker,
                SystemKind::NosWalker,
            ] {
                let app = Arc::new(BasicRw::new(walkers, len, d.csr.num_vertices()));
                let out = run_system(sys, app, &d, budget, EngineOptions::default(), 23);
                cells.push(crate::runner::secs(&out));
            }
            r.row([
                d.name.to_string(),
                len.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
    }
    r.finish();
}
