//! Fig. 16: Graphene vs NosWalker on k30, walker-count sweep at length 10.
//!
//! Shape to reproduce: up to ~80× — Graphene's on-demand I/O helps, but
//! its disk-order scan cannot follow walker hotness.

use crate::datasets::{self, Scale};
use crate::report::{speedup, Report};
use crate::runner::{run_system, SystemKind};
use noswalker_apps::BasicRw;
use noswalker_core::EngineOptions;
use std::sync::Arc;

/// Runs the Fig. 16 sweep.
pub fn run(scale: Scale) {
    let d = datasets::get("k30", scale);
    let budget = datasets::default_budget(scale);
    let mut r = Report::new("fig16", "Fig 16: Graphene vs NosWalker (k30, length 10)");
    r.header(["Walkers", "Graphene(s)", "NosWalker(s)", "Speedup"]);
    for &w in &crate::experiments::fig10::walker_points(scale) {
        let mut secs = [f64::NAN; 2];
        let mut cells = Vec::new();
        for (i, sys) in [SystemKind::Graphene, SystemKind::NosWalker]
            .iter()
            .enumerate()
        {
            let app = Arc::new(BasicRw::new(w, 10, d.csr.num_vertices()));
            let out = run_system(*sys, app, &d, budget, EngineOptions::default(), 71);
            if let Ok(m) = &out {
                secs[i] = m.sim_secs();
            }
            cells.push(crate::runner::secs(&out));
        }
        r.row([
            w.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            speedup(secs[0], secs[1]),
        ]);
    }
    r.finish();
}
