//! Fig. 14: effectiveness of the three optimizations, added one by one to
//! the base implementation — normalized time (bars) and normalized total
//! I/O (lines) per workload.
//!
//! Shape to reproduce (paper §4.4): walker management pays off most with
//! many walkers (4B10); shrink-block pays off most with few walkers (GC,
//! PPR, SR); pre-sampling gives the final large cut everywhere, biggest on
//! the weighted graph (K30W) and smaller on the flat graphs (G12, α2.7).

use crate::datasets::{self, Dataset, Scale};
use crate::report::Report;
use crate::runner::{run_system, Outcome, SystemKind};
use noswalker_apps::{
    BasicRw, GraphletConcentration, Ppr, RandomWalkDomination, SimRank, WeightedRw,
};
use noswalker_core::{EngineOptions, RunMetrics};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The four cumulative configurations of Fig. 14.
pub fn ladder() -> [(&'static str, EngineOptions); 4] {
    [
        ("Base", EngineOptions::base()),
        ("+WalkerMgmt", EngineOptions::with_walker_management()),
        ("+ShrinkBlock", EngineOptions::with_shrink_block()),
        ("+PreSample", EngineOptions::full()),
    ]
}

fn workload(name: &str, d: &Dataset, scale: Scale, opts: EngineOptions, budget: u64) -> Outcome {
    let n = d.csr.num_vertices();
    let mut rng = SmallRng::seed_from_u64(0xF14);
    let app_seed = 51;
    match name {
        "1B10" | "G12" | "a2.7" => run_system(
            SystemKind::NosWalker,
            Arc::new(BasicRw::new(scale.walkers(100_000), 10, n)),
            d,
            budget,
            opts,
            app_seed,
        ),
        "1B80" => run_system(
            SystemKind::NosWalker,
            Arc::new(BasicRw::new(scale.walkers(100_000), 80, n)),
            d,
            budget,
            opts,
            app_seed,
        ),
        "4B10" => run_system(
            SystemKind::NosWalker,
            Arc::new(BasicRw::new(scale.walkers(400_000), 10, n)),
            d,
            budget,
            opts,
            app_seed,
        ),
        "K30W" => run_system(
            SystemKind::NosWalker,
            Arc::new(WeightedRw::new(scale.walkers(100_000), 80, n)),
            d,
            budget,
            opts,
            app_seed,
        ),
        "RWD" => run_system(
            SystemKind::NosWalker,
            Arc::new(RandomWalkDomination::new(n, 6)),
            d,
            budget,
            opts,
            app_seed,
        ),
        "GC" => run_system(
            SystemKind::NosWalker,
            Arc::new(GraphletConcentration::paper_scale(n)),
            d,
            budget,
            opts,
            app_seed,
        ),
        "PPR" => {
            let sources: Vec<u32> = (0..50).map(|_| rng.gen_range(0..n as u32)).collect();
            run_system(
                SystemKind::NosWalker,
                Arc::new(Ppr::new(sources, scale.walkers(200).max(1), 10, n)),
                d,
                budget,
                opts,
                app_seed,
            )
        }
        "SR" => {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            run_system(
                SystemKind::NosWalker,
                Arc::new(SimRank::new(a, b, scale.walkers(1000).max(1), 11)),
                d,
                budget,
                opts,
                app_seed,
            )
        }
        other => panic!("unknown workload {other}"),
    }
}

/// The Fig. 14 workload list: `(label, dataset)`.
pub fn workloads() -> Vec<(&'static str, &'static str)> {
    vec![
        ("1B10", "k30"),
        ("1B80", "k30"),
        ("4B10", "k30"),
        ("K30W", "k30w"),
        ("RWD", "k30"),
        ("GC", "k30"),
        ("PPR", "k30"),
        ("SR", "k30"),
        ("G12", "g12"),
        ("a2.7", "a27"),
    ]
}

/// Runs the Fig. 14 breakdown.
pub fn run(scale: Scale) {
    let budget = datasets::default_budget(scale);
    let mut r = Report::new(
        "fig14",
        "Fig 14: optimization breakdown (normalized time / normalized I/O vs Base)",
    );
    r.header([
        "Workload", "Config", "SimSecs", "NormTime", "IO(MiB)", "NormIO",
    ]);
    for (wl, ds) in workloads() {
        let d = datasets::get(ds, scale);
        let mut base: Option<RunMetrics> = None;
        for (label, opts) in ladder() {
            match workload(wl, &d, scale, opts, budget) {
                Ok(m) => {
                    let (nt, nio) = match &base {
                        Some(b) => (
                            m.sim_ns as f64 / b.sim_ns.max(1) as f64,
                            m.total_io_bytes() as f64 / b.total_io_bytes().max(1) as f64,
                        ),
                        None => (1.0, 1.0),
                    };
                    if base.is_none() {
                        base = Some(m.clone());
                    }
                    r.row([
                        wl.to_string(),
                        label.to_string(),
                        format!("{:.3}", m.sim_secs()),
                        format!("{nt:.2}"),
                        format!("{:.1}", m.total_io_bytes() as f64 / (1 << 20) as f64),
                        format!("{nio:.2}"),
                    ]);
                }
                Err(e) => {
                    r.row([
                        wl.to_string(),
                        label.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        e,
                    ]);
                }
            }
        }
    }
    r.finish();
}
