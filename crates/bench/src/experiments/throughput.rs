//! Throughput trajectory: the sequential NosWalker engine vs the decoupled
//! [`ParallelRunner`] at 1/2/4/8 workers, same app, same dataset, fresh
//! simulated NVMe device per cell.
//!
//! Besides the aligned table / `results/throughput.tsv`, this experiment
//! writes `BENCH_throughput.json` into the working directory: a
//! machine-checkable record of modeled steps/s per configuration plus an
//! acceptance verdict (4-worker modeled throughput must be at least 2× the
//! 1-worker figure — the lock-free batched kernel's scaling floor).

use crate::datasets::{self, Scale};
use crate::report::Report;
use crate::runner::{env, run_system_in, SystemKind};
use noswalker_apps::BasicRw;
use noswalker_core::parallel::ParallelRunner;
use noswalker_core::{EngineOptions, RunMetrics};
use std::sync::Arc;

const DATASET: &str = "k30";
const WALK_LENGTH: u32 = 10;
const SEED: u64 = 29;

/// One measured configuration, ready for both the table and the JSON.
struct Cell {
    config: &'static str,
    workers: usize,
    m: RunMetrics,
}

impl Cell {
    /// Modeled steps per simulated second.
    fn steps_per_sec(&self) -> f64 {
        self.m.steps as f64 / self.m.sim_secs().max(1e-12)
    }

    /// Host steps per wall second (informational on a shared host).
    fn wall_steps_per_sec(&self) -> f64 {
        self.m.steps as f64 / (self.m.wall_ns.max(1) as f64 / 1e9)
    }

    fn json(&self, base_steps_per_sec: f64) -> String {
        let sp = if base_steps_per_sec > 0.0 {
            self.steps_per_sec() / base_steps_per_sec
        } else {
            0.0
        };
        // Only derived figures are spelled out here; the raw counters come
        // from the shared RunMetrics snapshot writer, so new counters show
        // up in the artifact without touching this file.
        format!(
            "    {{\"config\": \"{}\", \"workers\": {}, \"steps_per_sec\": {:.1}, \
             \"wall_steps_per_sec\": {:.1}, \"speedup_vs_1w\": {:.3}, \"metrics\": {}}}",
            self.config,
            self.workers,
            self.steps_per_sec(),
            self.wall_steps_per_sec(),
            sp,
            self.m.to_json(4),
        )
    }
}

/// Runs the throughput trajectory and writes `BENCH_throughput.json`.
pub fn run(scale: Scale) {
    let d = datasets::get(DATASET, scale);
    let budget = datasets::default_budget(scale);
    let walkers = scale.walkers(100_000);
    let n = d.csr.num_vertices();
    let opts = EngineOptions::default();

    let mut cells = Vec::new();

    // Sequential engine: the deterministic one-walker-at-a-time baseline.
    let e = env(&d, budget);
    let app = Arc::new(BasicRw::new(walkers, WALK_LENGTH, n));
    let out = run_system_in(SystemKind::NosWalker, app, &e, opts.clone(), SEED);
    match out {
        Ok(m) => cells.push(Cell {
            config: "sequential",
            workers: 0,
            m,
        }),
        Err(err) => {
            eprintln!("throughput: sequential cell failed: {err}");
            return;
        }
    }

    // The decoupled runner across the worker trajectory.
    for workers in [1usize, 2, 4, 8] {
        let e = env(&d, budget);
        let app = Arc::new(BasicRw::new(walkers, WALK_LENGTH, n));
        let out = ParallelRunner::new(
            app,
            Arc::clone(&e.graph),
            opts.clone(),
            Arc::clone(&e.budget),
        )
        .run(SEED, workers);
        match out {
            Ok(m) => cells.push(Cell {
                config: "parallel",
                workers,
                m,
            }),
            Err(err) => {
                eprintln!("throughput: {workers}-worker cell failed: {err}");
                return;
            }
        }
    }

    let base = cells
        .iter()
        .find(|c| c.config == "parallel" && c.workers == 1)
        .map(|c| c.steps_per_sec())
        .unwrap_or(0.0);

    let mut r = Report::new(
        "throughput",
        "Throughput: sequential engine vs ParallelRunner (modeled steps/s)",
    );
    r.header([
        "Config",
        "Workers",
        "Steps",
        "Sim secs",
        "Msteps/s",
        "Speedup vs 1w",
        "Pool stalls",
        "Prefetch hit/wasted",
    ]);
    for c in &cells {
        r.row([
            c.config.to_string(),
            if c.workers == 0 {
                "-".to_string()
            } else {
                c.workers.to_string()
            },
            c.m.steps.to_string(),
            format!("{:.4}", c.m.sim_secs()),
            format!("{:.2}", c.steps_per_sec() / 1e6),
            if base > 0.0 && c.config == "parallel" {
                format!("{:.2}x", c.steps_per_sec() / base)
            } else {
                "-".to_string()
            },
            c.m.pool_stalls.to_string(),
            format!("{}/{}", c.m.prefetch_hits, c.m.prefetch_wasted),
        ]);
    }
    r.finish();

    let four = cells
        .iter()
        .find(|c| c.config == "parallel" && c.workers == 4)
        .map(|c| c.steps_per_sec())
        .unwrap_or(0.0);
    let four_speedup = if base > 0.0 { four / base } else { 0.0 };
    let pass = four_speedup >= 2.0;
    // Report-only cross-kernel figure (no gate): how the 4-worker parallel
    // kernel's modeled steps/s compares to the fully-modeled sequential
    // engine — the serving layer's `--backend` choice in one number.
    let seq = cells
        .iter()
        .find(|c| c.config == "sequential")
        .map(|c| c.steps_per_sec())
        .unwrap_or(0.0);
    let par_vs_seq = if seq > 0.0 { four / seq } else { 0.0 };

    let rows: Vec<String> = cells.iter().map(|c| c.json(base)).collect();
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"dataset\": \"{}\",\n  \"scale\": \"{}\",\n  \
         \"walkers\": {},\n  \"walk_length\": {},\n  \"configs\": [\n{}\n  ],\n  \
         \"parallel_vs_sequential_steps_per_sec\": {:.3},\n  \
         \"acceptance\": {{\"criterion\": \"4-worker modeled steps/s >= 2x 1-worker\", \
         \"four_worker_speedup\": {:.3}, \"pass\": {}}}\n}}\n",
        DATASET,
        match scale {
            Scale::Default => "default",
            Scale::Tiny => "tiny",
        },
        walkers,
        WALK_LENGTH,
        rows.join(",\n"),
        par_vs_seq,
        four_speedup,
        pass,
    );
    match std::fs::write("BENCH_throughput.json", &json) {
        Ok(()) => println!("(wrote BENCH_throughput.json, 4w speedup {four_speedup:.2}x)"),
        Err(err) => eprintln!("warning: cannot write BENCH_throughput.json: {err}"),
    }
    if !pass {
        eprintln!("throughput: ACCEPTANCE FAILED — 4-worker speedup {four_speedup:.2}x < 2.0x");
    }
}
