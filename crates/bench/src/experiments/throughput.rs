//! Throughput trajectory: the sequential NosWalker engine vs the decoupled
//! [`ParallelRunner`] at 1/2/4/8 workers, same app, same dataset, fresh
//! simulated NVMe device per cell.
//!
//! Besides the aligned table / `results/throughput.tsv`, this experiment
//! writes `BENCH_throughput.json` into the working directory: a
//! machine-checkable record of modeled steps/s per configuration plus a
//! *ratcheted* acceptance verdict. Two ratchets gate the run (and the CI
//! bench-smoke job fails on regression), both taken from the *1-worker*
//! parallel cell: its FIFO pipeline keeps run-to-run variance to a few
//! percent (only the coordinator's wall-clock watermark polling moves),
//! unlike the multi-worker cells whose interleaving the OS scheduler
//! decides outright:
//!
//! * 1-worker modeled throughput ≥ [`ratio_floor`] × the sequential
//!   engine's — the decoupled pipeline's overhead ceiling. The workload
//!   is modeled-I/O-bound on both engines, so this ratio tracks bytes
//!   moved (coarse reloads), the quantity the refill policy optimizes.
//! * 1-worker `pool_stalls / steps` ≤ [`stall_ceiling`] — claims that
//!   found a *live* pre-sample generation already depleted, i.e. the
//!   quota planner's actionable miss rate. (Visits with no published
//!   generation at all are counted separately as `pool_deferrals` and
//!   stay report-only: they measure residency latency, not planning.)
//!
//! The multi-worker speedup column is report-only: with I/O fully
//! overlapped and the device the modeled bottleneck, extra workers move
//! the same bytes and the speedup sits near 1.0 by construction.
//!
//! `wall_steps_per_sec_ratio` is report-only: wall time measures the host,
//! not the architecture, but the trend (does adding workers help or hurt
//! real throughput?) is worth recording next to the modeled figures.

use crate::datasets::{self, Scale};
use crate::report::Report;
use crate::runner::{env, run_system_in, SystemKind};
use noswalker_apps::BasicRw;
use noswalker_core::parallel::ParallelRunner;
use noswalker_core::{EngineOptions, RunMetrics};
use std::sync::Arc;

const DATASET: &str = "k30";
const WALK_LENGTH: u32 = 10;
const SEED: u64 = 29;

/// The ratcheted floor for 1-worker parallel vs sequential modeled
/// throughput. Raise it when the kernel improves; never lower it without
/// a recorded regression analysis.
fn ratio_floor(scale: Scale) -> f64 {
    match scale {
        // Committed k30 run measured 0.83 (see BENCH_throughput.json);
        // repeated runs span 0.77–0.85 because the coordinator polls the
        // watermark on wall time, so refill timing shifts a few coarse
        // reloads between runs. Floored below the observed band.
        Scale::Default => 0.70,
        // The tiny CI smoke is fully deterministic (one residency pass,
        // no watermark races): measured exactly 0.708 every run.
        Scale::Tiny => 0.65,
    }
}

/// The ratcheted ceiling on 1-worker `pool_stalls / steps`: claims that
/// found a live pre-sample generation already dry, per executed step.
/// Lower it when the refill policy improves; never raise it without a
/// recorded regression analysis.
fn stall_ceiling(scale: Scale) -> f64 {
    match scale {
        // Committed k30 run measured 0.25 stalls/step after the
        // demand-weighted low-watermark refill work (repeated runs span
        // 0.245–0.282); ceiling sits above the observed band.
        Scale::Default => 0.32,
        // Deterministic on tiny: measured exactly 0.305 every run.
        Scale::Tiny => 0.35,
    }
}

/// One measured configuration, ready for both the table and the JSON.
struct Cell {
    config: &'static str,
    workers: usize,
    m: RunMetrics,
}

impl Cell {
    /// Modeled steps per simulated second.
    fn steps_per_sec(&self) -> f64 {
        self.m.steps as f64 / self.m.sim_secs().max(1e-12)
    }

    /// Host steps per wall second (informational on a shared host).
    fn wall_steps_per_sec(&self) -> f64 {
        self.m.steps as f64 / (self.m.wall_ns.max(1) as f64 / 1e9)
    }

    /// Report-only: pool visits that found no published generation at
    /// all, per executed step. Measures residency latency (how often
    /// walkers outrun the warm-up/refill pipeline), not quota planning —
    /// that actionable miss rate is `pool_stalls / steps`, the ratchet.
    fn deferrals_per_step(&self) -> f64 {
        self.m.pool_deferrals as f64 / self.m.steps.max(1) as f64
    }

    fn json(&self, base_steps_per_sec: f64, seq_wall_steps_per_sec: f64) -> String {
        let sp = if base_steps_per_sec > 0.0 {
            self.steps_per_sec() / base_steps_per_sec
        } else {
            0.0
        };
        // Report-only: this cell's host throughput against the sequential
        // cell's, on the same host in the same process — a fair trend even
        // though the absolute numbers measure the machine.
        let wall_ratio = if seq_wall_steps_per_sec > 0.0 {
            self.wall_steps_per_sec() / seq_wall_steps_per_sec
        } else {
            0.0
        };
        // Only derived figures are spelled out here; the raw counters come
        // from the shared RunMetrics snapshot writer, so new counters show
        // up in the artifact without touching this file.
        format!(
            "    {{\"config\": \"{}\", \"workers\": {}, \"steps_per_sec\": {:.1}, \
             \"wall_steps_per_sec\": {:.1}, \"wall_steps_per_sec_ratio\": {:.3}, \
             \"speedup_vs_1w\": {:.3}, \"pool_deferrals_per_step\": {:.3}, \
             \"metrics\": {}}}",
            self.config,
            self.workers,
            self.steps_per_sec(),
            self.wall_steps_per_sec(),
            wall_ratio,
            sp,
            self.deferrals_per_step(),
            self.m.to_json(4),
        )
    }
}

/// Runs the throughput trajectory and writes `BENCH_throughput.json`.
/// Returns whether the ratcheted acceptance passed.
pub fn run(scale: Scale) -> bool {
    let d = datasets::get(DATASET, scale);
    let budget = datasets::default_budget(scale);
    let walkers = scale.walkers(100_000);
    let n = d.csr.num_vertices();
    let opts = EngineOptions::default();

    let mut cells = Vec::new();

    // Sequential engine: the deterministic one-walker-at-a-time baseline.
    let e = env(&d, budget);
    let app = Arc::new(BasicRw::new(walkers, WALK_LENGTH, n));
    let out = run_system_in(SystemKind::NosWalker, app, &e, opts.clone(), SEED);
    match out {
        Ok(m) => cells.push(Cell {
            config: "sequential",
            workers: 0,
            m,
        }),
        Err(err) => {
            eprintln!("throughput: sequential cell failed: {err}");
            return false;
        }
    }

    // The decoupled runner across the worker trajectory.
    for workers in [1usize, 2, 4, 8] {
        let e = env(&d, budget);
        let app = Arc::new(BasicRw::new(walkers, WALK_LENGTH, n));
        let out = ParallelRunner::new(
            app,
            Arc::clone(&e.graph),
            opts.clone(),
            Arc::clone(&e.budget),
        )
        .run(SEED, workers);
        match out {
            Ok(m) => cells.push(Cell {
                config: "parallel",
                workers,
                m,
            }),
            Err(err) => {
                eprintln!("throughput: {workers}-worker cell failed: {err}");
                return false;
            }
        }
    }

    let base = cells
        .iter()
        .find(|c| c.config == "parallel" && c.workers == 1)
        .map(|c| c.steps_per_sec())
        .unwrap_or(0.0);

    let mut r = Report::new(
        "throughput",
        "Throughput: sequential engine vs ParallelRunner (modeled steps/s)",
    );
    r.header([
        "Config",
        "Workers",
        "Steps",
        "Sim secs",
        "Msteps/s",
        "Speedup vs 1w",
        "Pool stalls",
        "Deferrals/step",
        "Prefetch hit/wasted",
    ]);
    for c in &cells {
        r.row([
            c.config.to_string(),
            if c.workers == 0 {
                "-".to_string()
            } else {
                c.workers.to_string()
            },
            c.m.steps.to_string(),
            format!("{:.4}", c.m.sim_secs()),
            format!("{:.2}", c.steps_per_sec() / 1e6),
            if base > 0.0 && c.config == "parallel" {
                format!("{:.2}x", c.steps_per_sec() / base)
            } else {
                "-".to_string()
            },
            c.m.pool_stalls.to_string(),
            format!("{:.3}", c.deferrals_per_step()),
            format!("{}/{}", c.m.prefetch_hits, c.m.prefetch_wasted),
        ]);
    }
    r.finish();

    let four = cells
        .iter()
        .find(|c| c.config == "parallel" && c.workers == 4)
        .map(|c| c.steps_per_sec())
        .unwrap_or(0.0);
    // Report-only: the modeled workload is I/O-bound, so extra workers
    // move the same bytes and the speedup sits near 1.0 by construction.
    let four_speedup = if base > 0.0 { four / base } else { 0.0 };
    let seq_cell = cells.iter().find(|c| c.config == "sequential");
    let seq = seq_cell.map(|c| c.steps_per_sec()).unwrap_or(0.0);
    let seq_wall = seq_cell.map(|c| c.wall_steps_per_sec()).unwrap_or(0.0);
    // The ratcheted cross-kernel gate: the *1-worker* parallel kernel's
    // modeled steps/s against the fully-modeled sequential engine, plus
    // its pool-stall rate. The 1-worker FIFO pipeline keeps both within
    // a few percent run to run; multi-worker cells stay report-only.
    let par_vs_seq = if seq > 0.0 { base / seq } else { 0.0 };
    let one_worker = cells
        .iter()
        .find(|c| c.config == "parallel" && c.workers == 1);
    let stall_rate = one_worker
        .map(|c| c.m.pool_stalls as f64 / (c.m.steps.max(1) as f64))
        .unwrap_or(f64::INFINITY);
    let floor = ratio_floor(scale);
    let ceiling = stall_ceiling(scale);
    let pass = par_vs_seq >= floor && stall_rate <= ceiling;

    let rows: Vec<String> = cells.iter().map(|c| c.json(base, seq_wall)).collect();
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"dataset\": \"{}\",\n  \"scale\": \"{}\",\n  \
         \"walkers\": {},\n  \"walk_length\": {},\n  \"configs\": [\n{}\n  ],\n  \
         \"parallel_vs_sequential_steps_per_sec\": {:.3},\n  \
         \"four_worker_speedup\": {:.3},\n  \
         \"acceptance\": {{\"criterion\": \"1-worker modeled steps/s >= ratio_floor x \
         sequential AND 1-worker pool_stalls/steps <= stall_ceiling\", \
         \"one_worker_vs_sequential\": {:.3}, \"ratio_floor\": {:.2}, \
         \"one_worker_stall_rate\": {:.3}, \"stall_ceiling\": {:.2}, \"pass\": {}}}\n}}\n",
        DATASET,
        match scale {
            Scale::Default => "default",
            Scale::Tiny => "tiny",
        },
        walkers,
        WALK_LENGTH,
        rows.join(",\n"),
        par_vs_seq,
        four_speedup,
        par_vs_seq,
        floor,
        stall_rate,
        ceiling,
        pass,
    );
    match std::fs::write("BENCH_throughput.json", &json) {
        Ok(()) => println!(
            "(wrote BENCH_throughput.json, 1w/seq {par_vs_seq:.3}, \
             1w stall rate {stall_rate:.3}, 4w speedup {four_speedup:.2}x report-only)"
        ),
        Err(err) => eprintln!("warning: cannot write BENCH_throughput.json: {err}"),
    }
    if par_vs_seq < floor {
        eprintln!(
            "throughput: ACCEPTANCE FAILED — 1-worker/sequential ratio {par_vs_seq:.3} \
             under the ratchet floor {floor:.2}"
        );
    }
    if stall_rate > ceiling {
        eprintln!(
            "throughput: ACCEPTANCE FAILED — 1-worker stall rate {stall_rate:.3} \
             over the ratchet ceiling {ceiling:.2}"
        );
    }
    pass
}
