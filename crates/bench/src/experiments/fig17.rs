//! Fig. 17: NosWalker vs an in-memory engine (ThunderRW-like, on k30) and
//! a distributed 4-node cluster (KnightKing-like, on tw/yh), separating
//! *walk time* from *total time* (including graph loading).
//!
//! Shape to reproduce: the in-memory engine walks faster (~1.5×) but its
//! total time loses to NosWalker (~75 % of its time is loading);
//! KnightKing's compute is comparable while its total time is ~5× worse.

use crate::datasets::{self, Scale};
use crate::report::Report;
use crate::runner::{run_distributed, run_in_memory, run_system, SystemKind};
use noswalker_apps::BasicRw;
use noswalker_core::EngineOptions;
use std::sync::Arc;

/// Runs the Fig. 17 comparison.
pub fn run(scale: Scale) {
    let budget = datasets::default_budget(scale);
    let mut r = Report::new(
        "fig17",
        "Fig 17: NosWalker vs ThunderRW (k30) and KnightKing (tw, yh): walk vs total time",
    );
    r.header(["Comparison", "System", "Walk(s)", "Total(s)"]);

    // (a) ThunderRW on k30: paper issues 1B walkers × length 10.
    {
        let d = datasets::get("k30", scale);
        let n = d.csr.num_vertices();
        // Chosen so steps : edges matches the paper's 10B steps on 32B
        // edges (≈ 0.3 steps per edge), the regime where loading dominates
        // the in-memory engine's end-to-end time.
        let walkers = scale.walkers(100_000);
        let thunder = run_in_memory(
            Arc::new(BasicRw::new(walkers, 10, n)),
            &d,
            EngineOptions::default(),
            81,
        );
        r.row([
            "k30".to_string(),
            "ThunderRW".to_string(),
            format!("{:.3}", (thunder.sim_ns - thunder.stall_ns) as f64 / 1e9),
            format!("{:.3}", thunder.sim_secs()),
        ]);
        let nw = run_system(
            SystemKind::NosWalker,
            Arc::new(BasicRw::new(walkers, 10, n)),
            &d,
            budget,
            EngineOptions::default(),
            81,
        )
        .expect("NosWalker run");
        r.row([
            "k30".to_string(),
            "NosWalker".to_string(),
            format!("{:.3}", nw.sim_secs()),
            format!("{:.3}", nw.sim_secs()),
        ]);
    }

    // (b) KnightKing on tw (10^8 → scaled 10^5) and yh (10^9 → 10^6);
    // the paper notes 8 nodes bring its compute level with NosWalker's.
    for (name, walkers) in [("tw", 100_000u64), ("yh", 1_000_000u64)] {
        let d = datasets::get(name, scale);
        let n = d.csr.num_vertices();
        let w = scale.walkers(walkers);
        for nodes in [4u32, 8] {
            let kk = run_distributed(
                Arc::new(BasicRw::new(w, 10, n)),
                &d,
                EngineOptions::default(),
                nodes,
                83,
            );
            r.row([
                name.to_string(),
                format!("KnightKing({nodes}n)"),
                format!("{:.3}", (kk.sim_ns - kk.stall_ns) as f64 / 1e9),
                format!("{:.3}", kk.sim_secs()),
            ]);
        }
        let nw = run_system(
            SystemKind::NosWalker,
            Arc::new(BasicRw::new(w, 10, n)),
            &d,
            budget,
            EngineOptions::default(),
            83,
        )
        .expect("NosWalker run");
        r.row([
            name.to_string(),
            "NosWalker".to_string(),
            format!("{:.3}", nw.sim_secs()),
            format!("{:.3}", nw.sim_secs()),
        ]);
    }
    r.finish();
}
