//! Fig. 10: basic random walk time vs. number of walkers (length fixed at
//! 10) on the five main datasets × three systems.
//!
//! Shape to reproduce: DrunkardMob/GraphWalker are flat until the walker
//! count dominates (they reload most of the graph regardless), so
//! NosWalker's speedup grows toward two orders of magnitude as walkers
//! decrease; DrunkardMob disappears at large counts / large graphs (OOM).

use crate::datasets::{self, Scale};
use crate::report::Report;
use crate::runner::{run_system, SystemKind};
use noswalker_apps::BasicRw;
use noswalker_core::EngineOptions;
use std::sync::Arc;

/// Walker counts, scaled from the paper's 10^3…10^10 sweep.
pub fn walker_points(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Default => vec![1_000, 10_000, 100_000, 1_000_000],
        Scale::Tiny => vec![100, 1_000],
    }
}

/// Runs the Fig. 10 sweep.
pub fn run(scale: Scale) {
    let budget = datasets::default_budget(scale);
    let mut r = Report::new("fig10", "Fig 10: time vs number of walkers (length 10)");
    r.header([
        "Dataset",
        "Walkers",
        "DrunkardMob",
        "GraphWalker",
        "NosWalker",
    ]);
    for d in datasets::main_five(scale) {
        for &w in &walker_points(scale) {
            let mut cells = Vec::new();
            for sys in [
                SystemKind::DrunkardMob,
                SystemKind::GraphWalker,
                SystemKind::NosWalker,
            ] {
                let app = Arc::new(BasicRw::new(w, 10, d.csr.num_vertices()));
                let out = run_system(sys, app, &d, budget, EngineOptions::default(), 21);
                cells.push(crate::runner::secs(&out));
            }
            r.row([
                d.name.to_string(),
                w.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
    }
    r.finish();
}
