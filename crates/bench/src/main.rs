//! CLI entry point for the benchmark harness.

#![forbid(unsafe_code)]

use noswalker_bench::datasets::Scale;
use noswalker_bench::experiments;
use std::process::ExitCode;

fn usage() {
    eprintln!("usage: noswalker-bench <experiment> [--scale default|tiny] [--quick]");
    eprintln!("experiments: {} all", experiments::ALL.join(" "));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut ids = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let Some(v) = it.next().and_then(|v| Scale::parse(v)) else {
                    usage();
                    return ExitCode::FAILURE;
                };
                scale = v;
            }
            // CI smoke runs: shorthand for `--scale tiny`.
            "--quick" => scale = Scale::Tiny,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let mut all_pass = true;
    for id in &ids {
        let start = std::time::Instant::now();
        match experiments::dispatch(id, scale) {
            None => {
                eprintln!("unknown experiment: {id}");
                usage();
                return ExitCode::FAILURE;
            }
            // Keep running the remaining experiments so one regression
            // does not hide another; the exit code ratchets at the end.
            Some(pass) => all_pass &= pass,
        }
        eprintln!("[{id} took {:.1}s wall]", start.elapsed().as_secs_f64());
    }
    if all_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
