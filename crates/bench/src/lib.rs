//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§4 and §5) on the scaled datasets.
//!
//! Run an experiment with the CLI binary:
//!
//! ```text
//! cargo run --release -p noswalker-bench -- fig9
//! cargo run --release -p noswalker-bench -- all --scale tiny
//! ```
//!
//! Each experiment prints a table matching the figure's series and writes
//! the rows as TSV under `results/`. See `EXPERIMENTS.md` at the workspace
//! root for paper-vs-measured summaries.

#![forbid(unsafe_code)]

pub mod datasets;
pub mod experiments;
pub mod report;
pub mod runner;

pub use datasets::{Dataset, Scale};
pub use report::Report;
pub use runner::{Outcome, SystemKind};
