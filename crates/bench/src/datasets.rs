//! Scaled stand-ins for the paper's datasets (Table 1).
//!
//! Everything is generated deterministically. Scaling preserves the
//! *ratios* that drive the paper's phenomena: power-law vs flat degree
//! distributions, the graph-size : memory-budget ratio (the default
//! budget is ~12 % of the largest graph, like the paper's 64 GiB vs
//! CrawlWeb), and per-dataset average degrees close to the originals
//! (TW ≈ 24, YH ≈ 5, K30/K31 = 32, CW ≈ 36, G12 = 12).

use noswalker_graph::generators::{self, RmatParams};
use noswalker_graph::Csr;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Dataset scale: `Default` for benchmark runs, `Tiny` for smoke tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Full scaled benchmark size (tens of MiB of edge data).
    Default,
    /// Very small graphs for CI/smoke runs.
    Tiny,
}

impl Scale {
    /// Parses `"default"` / `"tiny"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "default" => Some(Scale::Default),
            "tiny" => Some(Scale::Tiny),
            _ => None,
        }
    }

    /// Scales a walker count: tiny runs divide by 100.
    pub fn walkers(self, n: u64) -> u64 {
        match self {
            Scale::Default => n,
            Scale::Tiny => (n / 100).max(10),
        }
    }
}

/// A named dataset: the in-memory CSR plus identity.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short name (`tw`, `yh`, `k30`, `k31`, `cw`, `k30w`, `g12`, `a27`).
    pub name: &'static str,
    /// Which paper dataset this stands in for.
    pub paper_name: &'static str,
    /// The graph.
    pub csr: Arc<Csr>,
}

impl Dataset {
    /// Edge-region bytes in the dataset's on-disk format.
    pub fn edge_bytes(&self) -> u64 {
        self.csr.edge_region_bytes()
    }
}

fn build(name: &str, scale: Scale) -> Dataset {
    // (scale_exp_default, scale_exp_tiny)
    let e = |d: u32, t: u32| match scale {
        Scale::Default => d,
        Scale::Tiny => t,
    };
    let (paper_name, csr): (&'static str, Csr) = match name {
        // Twitter: 61.6M v / 1.5B e, avg degree ~24.
        "tw" => (
            "Twitter (TW)",
            generators::rmat(e(14, 9), 24, RmatParams::default(), 101),
        ),
        // YahooWeb: 1.4B v / 6.6B e, avg degree ~4.7 (vertex-heavy).
        "yh" => (
            "YahooWeb (YH)",
            generators::rmat(e(16, 10), 5, RmatParams::default(), 102),
        ),
        // Kron30: 1B v / 32B e, avg degree 32, strongly power-law.
        "k30" => (
            "Kron30 (K30)",
            generators::rmat(e(16, 10), 32, RmatParams::default(), 103),
        ),
        // Kron31: 2B v / 64B e.
        "k31" => (
            "Kron31 (K31)",
            generators::rmat(e(17, 11), 32, RmatParams::default(), 104),
        ),
        // CrawlWeb: 3.5B v / 128B e, avg degree ~36 — the largest graph.
        "cw" => (
            "CrawlWeb (CW)",
            generators::rmat(e(17, 11), 36, RmatParams::default(), 105),
        ),
        // Weighted Kron30 with pre-built alias tables (12 B/edge on disk).
        "k30w" => (
            "Weighted Kron30 (K30W)",
            generators::with_random_weights(
                generators::rmat(e(16, 10), 32, RmatParams::default(), 103),
                1030,
            ),
        ),
        // G12: uniform graph, every vertex exactly 12 edges.
        "g12" => ("G12", generators::uniform_degree(1 << e(17, 11), 12, 106)),
        // α2.7: configuration-model power law, much flatter than RMAT.
        "a27" => (
            "α2.7",
            generators::configuration_model(1 << e(17, 11), 2.7, 4, 256, 107),
        ),
        // G2.5: near-road-graph density, avg degree ≈ 2.5 (paper §4.4's
        // extra low-degree evaluation).
        "g25" => (
            "G2.5",
            // Large vertex count so the ~2.5-degree edge region still
            // exceeds the memory budget (the paper's G2.5 is out-of-core).
            generators::configuration_model(1 << e(20, 13), 1.5, 1, 8, 108),
        ),
        other => panic!("unknown dataset {other}"),
    };
    Dataset {
        name: leak(name),
        paper_name,
        csr: Arc::new(csr),
    }
}

fn leak(s: &str) -> &'static str {
    match s {
        "tw" => "tw",
        "yh" => "yh",
        "k30" => "k30",
        "k31" => "k31",
        "cw" => "cw",
        "k30w" => "k30w",
        "g12" => "g12",
        "a27" => "a27",
        "g25" => "g25",
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

type Cache = Mutex<HashMap<(String, Scale, bool), Dataset>>;

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Fetches (building and memoizing) a dataset by name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn get(name: &str, scale: Scale) -> Dataset {
    let key = (name.to_string(), scale, false);
    if let Some(d) = cache().lock().expect("cache lock").get(&key) {
        return d.clone();
    }
    let d = build(name, scale);
    cache().lock().expect("cache lock").insert(key, d.clone());
    d
}

/// Fetches the undirected (symmetrized) version of a dataset, as Node2Vec
/// requires (§4.5).
pub fn get_undirected(name: &str, scale: Scale) -> Dataset {
    let key = (name.to_string(), scale, true);
    if let Some(d) = cache().lock().expect("cache lock").get(&key) {
        return d.clone();
    }
    let base = get(name, scale);
    let d = Dataset {
        name: base.name,
        paper_name: base.paper_name,
        csr: Arc::new(base.csr.to_undirected()),
    };
    cache().lock().expect("cache lock").insert(key, d.clone());
    d
}

/// The five main evaluation datasets (Figs. 9–11).
pub fn main_five(scale: Scale) -> Vec<Dataset> {
    ["tw", "yh", "k30", "k31", "cw"]
        .iter()
        .map(|n| get(n, scale))
        .collect()
}

/// All eight datasets (Table 1).
pub fn all(scale: Scale) -> Vec<Dataset> {
    ["tw", "yh", "k30", "k31", "cw", "k30w", "g12", "a27"]
        .iter()
        .map(|n| get(n, scale))
        .collect()
}

/// The default memory budget: ~12 % of the largest unweighted graph's edge
/// region, mirroring the paper's 64 GiB against CrawlWeb's 540 GiB.
pub fn default_budget(scale: Scale) -> u64 {
    let cw = get("cw", scale);
    // Floor keeps Tiny smoke runs feasible (two block buffers + pools).
    ((cw.edge_bytes() as f64 * 0.12) as u64).max(96 << 10)
}

/// The default coarse block size: the dataset's edge region split into
/// ~32 blocks (GraphWalker's evaluation partitions into 33, §2.3).
pub fn default_block_bytes(d: &Dataset) -> u64 {
    // ~32 blocks for an unweighted graph; weighted formats get
    // proportionally more, smaller blocks so two block buffers do not
    // crowd the pre-sample pool out of the budget.
    (d.csr.num_edges() * 4 / 32).max(4096)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_graph::stats::DegreeStats;

    #[test]
    fn tiny_datasets_build_quickly_and_are_cached() {
        let a = get("tw", Scale::Tiny);
        let b = get("tw", Scale::Tiny);
        assert!(Arc::ptr_eq(&a.csr, &b.csr), "memoized");
        assert_eq!(a.csr.num_vertices(), 1 << 9);
    }

    #[test]
    fn k30_is_more_skewed_than_g12() {
        let k = get("k30", Scale::Tiny);
        let g = get("g12", Scale::Tiny);
        assert!(DegreeStats::of(&k.csr).gini > DegreeStats::of(&g.csr).gini);
    }

    #[test]
    fn budget_is_a_small_fraction_of_cw() {
        let b = default_budget(Scale::Tiny);
        assert!(b >= 96 << 10);
    }

    #[test]
    fn k30w_has_alias_tables() {
        let d = get("k30w", Scale::Tiny);
        assert!(d.csr.has_alias_tables());
        assert_eq!(d.csr.edge_format().record_bytes(), 12);
    }

    #[test]
    fn walker_scaling() {
        assert_eq!(Scale::Default.walkers(100_000), 100_000);
        assert_eq!(Scale::Tiny.walkers(100_000), 1_000);
        assert_eq!(Scale::Tiny.walkers(100), 10); // floor
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn g25_has_road_graph_density() {
        let d = get("g25", Scale::Tiny);
        let s = DegreeStats::of(&d.csr);
        assert!((1.8..3.2).contains(&s.avg_degree), "{}", s.avg_degree);
    }

    #[test]
    fn undirected_is_symmetric() {
        let d = get_undirected("tw", Scale::Tiny);
        for (u, v) in d.csr.iter_edges().take(200) {
            assert!(d.csr.has_edge(v, u));
        }
    }
}
