//! Table printing + TSV output for the experiment harness.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple column-aligned report that also lands in `results/<name>.tsv`.
#[derive(Debug)]
pub struct Report {
    name: String,
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates a report for experiment `name` with a human `title`.
    pub fn new(name: &str, title: &str) -> Self {
        Report {
            name: name.to_string(),
            title: title.to_string(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column header.
    pub fn header<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cols: I) -> &mut Self {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cols: I) -> &mut Self {
        self.rows.push(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table as a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(c.len());
                } else {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table and writes `results/<name>.tsv`. I/O errors on the
    /// TSV are reported to stderr, not fatal.
    pub fn finish(&self) {
        println!("{}", self.render());
        let dir = PathBuf::from("results");
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{}.tsv", self.name));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&path)?;
            if !self.header.is_empty() {
                writeln!(f, "{}", self.header.join("\t"))?;
            }
            for row in &self.rows {
                writeln!(f, "{}", row.join("\t"))?;
            }
            Ok(())
        };
        match write() {
            Ok(()) => println!("(wrote {})\n", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// Formats a ratio as `12.3x`.
pub fn speedup(base_secs: f64, fast_secs: f64) -> String {
    if fast_secs <= 0.0 {
        "-".into()
    } else {
        format!("{:.1}x", base_secs / fast_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("t", "Test");
        r.header(["a", "longer"]);
        r.row(["xxxxx", "1"]);
        let s = r.render();
        assert!(s.contains("== Test =="));
        assert!(s.contains("xxxxx  1"));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn speedup_formats() {
        assert_eq!(speedup(10.0, 2.0), "5.0x");
        assert_eq!(speedup(10.0, 0.0), "-");
    }
}
