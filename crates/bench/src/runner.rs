//! Shared machinery for running (system × app × dataset) cells.

use crate::datasets::{default_block_bytes, Dataset};
use noswalker_baselines::{DistributedSim, DrunkardMob, GraSorw, GraphWalker, Graphene, InMemory};
use noswalker_core::audit::MemorySink;
use noswalker_core::{
    EngineOptions, NosWalkerEngine, OnDiskGraph, RunMetrics, SecondOrderWalk, Walk,
};
use noswalker_storage::{Device, MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

/// The systems the harness can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// DrunkardMob baseline.
    DrunkardMob,
    /// GraphWalker baseline.
    GraphWalker,
    /// NosWalker (full optimizations unless overridden).
    NosWalker,
    /// Graphene baseline.
    Graphene,
}

impl SystemKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::DrunkardMob => "DrunkardMob",
            SystemKind::GraphWalker => "GraphWalker",
            SystemKind::NosWalker => "NosWalker",
            SystemKind::Graphene => "Graphene",
        }
    }
}

/// A run result: metrics, or the reason the system could not run the cell
/// (the paper leaves such bars out, e.g. DrunkardMob on K31/CW).
pub type Outcome = Result<RunMetrics, String>;

/// Seconds (simulated) or `-` for a failed cell.
pub fn secs(o: &Outcome) -> String {
    match o {
        Ok(m) => format!("{:.3}", m.sim_secs()),
        Err(_) => "-".to_string(),
    }
}

/// An environment for one run: a fresh simulated device holding the
/// dataset plus a fresh budget.
#[derive(Debug)]
pub struct Env {
    /// The on-device graph.
    pub graph: Arc<OnDiskGraph>,
    /// The run's memory budget.
    pub budget: Arc<MemoryBudget>,
}

/// Builds a fresh environment for `dataset` on an NVMe-profile device.
pub fn env(dataset: &Dataset, budget_bytes: u64) -> Env {
    env_on(dataset, budget_bytes, SsdProfile::nvme_p4618())
}

/// Builds a fresh environment on a device with the given profile.
pub fn env_on(dataset: &Dataset, budget_bytes: u64, profile: SsdProfile) -> Env {
    let device: Arc<dyn Device> = Arc::new(SimSsd::new(profile));
    env_with_device(dataset, budget_bytes, device)
}

/// Builds a fresh environment on an arbitrary device.
pub fn env_with_device(dataset: &Dataset, budget_bytes: u64, device: Arc<dyn Device>) -> Env {
    let graph = Arc::new(
        OnDiskGraph::store(&dataset.csr, device, default_block_bytes(dataset))
            .expect("storing the graph on a fresh device cannot fail"),
    );
    Env {
        graph,
        budget: MemoryBudget::new(budget_bytes),
    }
}

/// Runs `app` on `system` in a fresh `env`. DrunkardMob is additionally
/// charged a GraphChi-style per-vertex value array, which is what makes it
/// unable to process the largest graphs in the paper.
pub fn run_system<A: Walk + 'static>(
    system: SystemKind,
    app: Arc<A>,
    dataset: &Dataset,
    budget_bytes: u64,
    opts: EngineOptions,
    seed: u64,
) -> Outcome {
    let e = env(dataset, budget_bytes);
    run_system_in(system, app, &e, opts, seed)
}

/// As [`run_system`] but in a caller-provided environment.
pub fn run_system_in<A: Walk + 'static>(
    system: SystemKind,
    app: Arc<A>,
    e: &Env,
    opts: EngineOptions,
    seed: u64,
) -> Outcome {
    let res = match system {
        SystemKind::DrunkardMob => {
            // GraphChi vertex value array: 16 B per vertex held in memory.
            let vertex_values = e.budget.try_reserve(e.graph.num_vertices() as u64 * 16);
            match vertex_values {
                Ok(_hold) => {
                    DrunkardMob::new(app, Arc::clone(&e.graph), opts, Arc::clone(&e.budget))
                        .run(seed)
                }
                Err(err) => return Err(format!("OOM: {err}")),
            }
        }
        SystemKind::GraphWalker => {
            GraphWalker::new(app, Arc::clone(&e.graph), opts, Arc::clone(&e.budget)).run(seed)
        }
        SystemKind::NosWalker => {
            NosWalkerEngine::new(app, Arc::clone(&e.graph), opts, Arc::clone(&e.budget)).run(seed)
        }
        SystemKind::Graphene => {
            Graphene::new(app, Arc::clone(&e.graph), opts, Arc::clone(&e.budget)).run(seed)
        }
    };
    res.map_err(|err| format!("{err}"))
}

/// As [`run_system_in`], but recording a structured trace of the run.
/// Returns the outcome together with the recorded events, ready for
/// [`stall_table`] or `MemorySink::to_json`/`to_tsv` export.
pub fn run_system_traced<A: Walk + 'static>(
    system: SystemKind,
    app: Arc<A>,
    e: &Env,
    opts: EngineOptions,
    seed: u64,
) -> (Outcome, MemorySink) {
    let mut sink = MemorySink::new();
    let res = match system {
        SystemKind::DrunkardMob => {
            let vertex_values = e.budget.try_reserve(e.graph.num_vertices() as u64 * 16);
            match vertex_values {
                Ok(_hold) => {
                    DrunkardMob::new(app, Arc::clone(&e.graph), opts, Arc::clone(&e.budget))
                        .run_with_sink(seed, Some(&mut sink))
                        .map_err(|err| format!("{err}"))
                }
                Err(err) => Err(format!("OOM: {err}")),
            }
        }
        SystemKind::GraphWalker => {
            GraphWalker::new(app, Arc::clone(&e.graph), opts, Arc::clone(&e.budget))
                .run_with_sink(seed, Some(&mut sink))
                .map_err(|err| format!("{err}"))
        }
        SystemKind::NosWalker => {
            NosWalkerEngine::new(app, Arc::clone(&e.graph), opts, Arc::clone(&e.budget))
                .run_with_sink(seed, Some(&mut sink))
                .map_err(|err| format!("{err}"))
        }
        SystemKind::Graphene => {
            Graphene::new(app, Arc::clone(&e.graph), opts, Arc::clone(&e.budget))
                .run_with_sink(seed, Some(&mut sink))
                .map_err(|err| format!("{err}"))
        }
    };
    (res, sink)
}

/// Formats the stall attribution of a recorded trace as TSV rows
/// (`block<TAB>stall_ns<TAB>share`), worst offender first — the "which
/// block was the pipeline waiting on" breakdown for bench reports.
pub fn stall_table(sink: &MemorySink) -> String {
    let total = sink.total_stall_ns();
    let mut out = String::from("block\tstall_ns\tshare\n");
    for (block, ns) in sink.stall_by_block() {
        let who = match block {
            Some(b) => b.to_string(),
            None => "-".to_string(),
        };
        let share = if total > 0 {
            ns as f64 / total as f64
        } else {
            0.0
        };
        out.push_str(&format!("{who}\t{ns}\t{share:.3}\n"));
    }
    out
}

/// Runs a second-order app on NosWalker.
pub fn run_noswalker_2nd<A: SecondOrderWalk + 'static>(
    app: Arc<A>,
    dataset: &Dataset,
    budget_bytes: u64,
    opts: EngineOptions,
    seed: u64,
) -> Outcome {
    let e = env(dataset, budget_bytes);
    NosWalkerEngine::new(app, Arc::clone(&e.graph), opts, Arc::clone(&e.budget))
        .run_second_order(seed)
        .map_err(|err| format!("{err}"))
}

/// Runs a second-order app on GraSorw.
pub fn run_grasorw<A: SecondOrderWalk + 'static>(
    app: Arc<A>,
    dataset: &Dataset,
    budget_bytes: u64,
    opts: EngineOptions,
    seed: u64,
) -> Outcome {
    let e = env(dataset, budget_bytes);
    GraSorw::new(app, Arc::clone(&e.graph), opts, Arc::clone(&e.budget))
        .run(seed)
        .map_err(|err| format!("{err}"))
}

/// Runs the in-memory (ThunderRW-like) engine.
pub fn run_in_memory<A: Walk + 'static>(
    app: Arc<A>,
    dataset: &Dataset,
    opts: EngineOptions,
    seed: u64,
) -> RunMetrics {
    InMemory::new(
        app,
        Arc::clone(&dataset.csr),
        opts,
        SsdProfile::nvme_p4618(),
    )
    .run(seed)
}

/// Runs the simulated distributed (KnightKing-like) engine.
pub fn run_distributed<A: Walk + 'static>(
    app: Arc<A>,
    dataset: &Dataset,
    opts: EngineOptions,
    nodes: u32,
    seed: u64,
) -> RunMetrics {
    DistributedSim::new(
        app,
        Arc::clone(&dataset.csr),
        opts,
        nodes,
        SsdProfile::nvme_p4618(),
        noswalker_baselines::NetworkProfile::ten_gbe(),
    )
    .run(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{self, Scale};
    use noswalker_apps::BasicRw;

    #[test]
    fn secs_formats_outcomes() {
        let ok: Outcome = Ok(noswalker_core::RunMetrics {
            sim_ns: 1_234_000_000,
            ..Default::default()
        });
        assert_eq!(secs(&ok), "1.234");
        let err: Outcome = Err("OOM".into());
        assert_eq!(secs(&err), "-");
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(SystemKind::NosWalker.label(), "NosWalker");
        assert_eq!(SystemKind::DrunkardMob.label(), "DrunkardMob");
        assert_eq!(SystemKind::GraphWalker.label(), "GraphWalker");
        assert_eq!(SystemKind::Graphene.label(), "Graphene");
    }

    #[test]
    fn all_three_systems_run_a_tiny_cell() {
        let d = datasets::get("k30", Scale::Tiny);
        let budget = datasets::default_budget(Scale::Tiny);
        for sys in [
            SystemKind::DrunkardMob,
            SystemKind::GraphWalker,
            SystemKind::NosWalker,
            SystemKind::Graphene,
        ] {
            let app = Arc::new(BasicRw::new(100, 5, d.csr.num_vertices()));
            let out = run_system(sys, app, &d, budget, EngineOptions::default(), 7);
            let m = out.unwrap_or_else(|e| panic!("{} failed: {e}", sys.label()));
            assert_eq!(m.walkers_finished, 100, "{}", sys.label());
        }
    }

    #[test]
    fn traced_run_attributes_stalls_to_blocks() {
        let d = datasets::get("k30", Scale::Tiny);
        let budget = datasets::default_budget(Scale::Tiny);
        let e = env(&d, budget);
        let app = Arc::new(BasicRw::new(100, 5, d.csr.num_vertices()));
        let (out, sink) = run_system_traced(
            SystemKind::DrunkardMob,
            app,
            &e,
            EngineOptions::default(),
            7,
        );
        let m = out.unwrap();
        assert_eq!(m.walkers_finished, 100);
        assert!(!sink.events.is_empty(), "trace recorded");
        assert!(sink.total_stall_ns() > 0, "synchronous baseline stalls");
        let table = stall_table(&sink);
        assert!(table.starts_with("block\tstall_ns\tshare\n"), "{table}");
        assert!(table.lines().count() > 1, "{table}");
    }

    #[test]
    fn drunkardmob_reports_oom_on_huge_walker_counts() {
        let d = datasets::get("k30", Scale::Tiny);
        let budget = datasets::default_budget(Scale::Tiny);
        let app = Arc::new(BasicRw::new(50_000_000, 5, d.csr.num_vertices()));
        let out = run_system(
            SystemKind::DrunkardMob,
            app,
            &d,
            budget,
            EngineOptions::default(),
            7,
        );
        assert!(out.is_err());
    }
}
