//! Criterion micro-benchmarks of the hot kernels behind the paper's
//! numbers: alias sampling, pre-sample buffer fill/consume, block loading,
//! rejection sampling, and end-to-end engine step throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use noswalker_apps::{BasicRw, Node2Vec};
use noswalker_core::presample::{plan_quotas, PreSampleBuffer};
use noswalker_core::{
    walk::alias_sample, EngineOptions, NosWalkerEngine, OnDiskGraph, Walk, WalkRng,
};
use noswalker_graph::layout::VertexEdges;
use noswalker_graph::{generators, AliasTable};
use noswalker_storage::{MemoryBudget, SimSsd, SsdProfile};
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn bench_alias_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias");
    let mut rng = WalkRng::seed_from_u64(1);
    for &n in &[8usize, 64, 1024] {
        let weights: Vec<f32> = (0..n).map(|_| rng.gen_range(0.1f32..2.0)).collect();
        group.bench_with_input(BenchmarkId::new("build", n), &weights, |b, w| {
            b.iter(|| AliasTable::new(w));
        });
        let table = AliasTable::new(&weights);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("pick", n), &table, |b, t| {
            let mut rng = WalkRng::seed_from_u64(2);
            b.iter(|| {
                let slot = rng.gen_range(0..t.len());
                t.pick(slot, rng.gen())
            });
        });
    }
    group.finish();
}

fn bench_alias_sample_views(c: &mut Criterion) {
    let csr = generators::with_random_weights(
        generators::rmat(12, 16, generators::RmatParams::default(), 3),
        3,
    );
    let mut rng = WalkRng::seed_from_u64(4);
    c.bench_function("sample/alias_from_csr_view", |b| {
        b.iter(|| {
            let v = rng.gen_range(0..csr.num_vertices() as u32);
            if csr.degree(v) == 0 {
                return 0u32;
            }
            let view = VertexEdges::from_csr(&csr, v);
            alias_sample(&view, &mut rng)
        });
    });
}

fn bench_presample_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("presample");
    let nv = 2048usize;
    let degrees: Vec<u64> = (0..nv).map(|i| 8 + (i as u64 % 64)).collect();
    let weights = vec![1u32; nv];
    group.bench_function("plan_quotas_2048v", |b| {
        b.iter(|| plan_quotas(&degrees, &weights, 65_536, 4, u32::MAX, 64));
    });
    let plan = plan_quotas(&degrees, &weights, 65_536, 4, u32::MAX, 64);
    group.throughput(Throughput::Elements(plan.total_slots));
    group.bench_function("build_and_drain", |b| {
        b.iter(|| {
            let mut x = 0u32;
            let (mut buf, _) = PreSampleBuffer::build(
                0,
                &plan,
                false,
                |_v| {
                    x = x.wrapping_add(2654435761);
                    x % nv as u32
                },
                |_v, edges, _w| {
                    edges.push(1);
                    edges.push(2);
                },
            );
            for v in 0..nv as u32 {
                while let noswalker_core::presample::Peek::Sampled(_) = buf.peek(v) {
                    buf.consume(v);
                }
            }
            buf
        });
    });
    group.finish();
}

fn bench_block_load(c: &mut Criterion) {
    let csr = generators::rmat(14, 16, generators::RmatParams::default(), 5);
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = OnDiskGraph::store(&csr, device, 64 << 10).unwrap();
    let budget = MemoryBudget::unlimited();
    let mut group = c.benchmark_group("load");
    group.throughput(Throughput::Bytes(64 << 10));
    group.bench_function("coarse_64k_block", |b| {
        b.iter(|| graph.load_block(0, &budget).unwrap());
    });
    // Pick vertices that actually live in block 0 (RMAT hubs can make the
    // first block a single huge vertex).
    let info = *graph.partition().block(0);
    let verts: Vec<u32> = (info.vertex_start..info.vertex_end).take(30).collect();
    group.bench_function("fine_30_vertices", |b| {
        b.iter(|| graph.load_fine(0, &verts, &budget).unwrap());
    });
    group.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let csr = generators::rmat(13, 16, generators::RmatParams::default(), 7);
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(&csr, device, 32 << 10).unwrap());
    let n = csr.num_vertices();
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    let walkers = 5_000u64;
    group.throughput(Throughput::Elements(walkers * 10));
    group.bench_function("noswalker_5k_walkers_len10", |b| {
        b.iter(|| {
            let app = Arc::new(BasicRw::new(walkers, 10, n));
            let budget = MemoryBudget::new(1 << 20);
            NosWalkerEngine::new(app, Arc::clone(&graph), EngineOptions::default(), budget)
                .run(11)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_rejection(c: &mut Criterion) {
    let csr = generators::rmat(10, 8, generators::RmatParams::default(), 9).to_undirected();
    let app = Node2Vec::new(csr.num_vertices(), 1, 10, 2.0, 0.5);
    let mut rng = WalkRng::seed_from_u64(13);
    c.bench_function("node2vec/rejection_test", |b| {
        b.iter(|| {
            let mut w = app.generate(0, &mut rng);
            let _ = app.action(&mut w, 1, &mut rng);
            let view = VertexEdges::from_csr(&csr, 1);
            use noswalker_core::SecondOrderWalk;
            app.rejection(&mut w, &view, &mut rng);
            w
        });
    });
}

fn bench_baseline_engines(c: &mut Criterion) {
    use noswalker_baselines::{DrunkardMob, GraphWalker};
    let csr = generators::rmat(12, 12, generators::RmatParams::default(), 15);
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(&csr, device, 16 << 10).unwrap());
    let n = csr.num_vertices();
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("graphwalker_2k_walkers_len8", |b| {
        b.iter(|| {
            let app = Arc::new(BasicRw::new(2_000, 8, n));
            GraphWalker::new(
                app,
                Arc::clone(&graph),
                EngineOptions::default(),
                MemoryBudget::new(256 << 10),
            )
            .run(3)
            .unwrap()
        });
    });
    group.bench_function("drunkardmob_2k_walkers_len8", |b| {
        b.iter(|| {
            let app = Arc::new(BasicRw::new(2_000, 8, n));
            DrunkardMob::new(
                app,
                Arc::clone(&graph),
                EngineOptions::default(),
                MemoryBudget::new(256 << 10),
            )
            .run(3)
            .unwrap()
        });
    });
    group.finish();
}

fn bench_second_order_engine(c: &mut Criterion) {
    let csr = generators::rmat(11, 8, generators::RmatParams::default(), 19).to_undirected();
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(&csr, device, 8 << 10).unwrap());
    let n = csr.num_vertices();
    let mut group = c.benchmark_group("second_order");
    group.sample_size(10);
    group.bench_function("node2vec_1_walk_per_vertex_len8", |b| {
        b.iter(|| {
            let app = Arc::new(Node2Vec::new(n, 1, 8, 2.0, 0.5));
            NosWalkerEngine::new(
                app,
                Arc::clone(&graph),
                EngineOptions::default(),
                MemoryBudget::new(256 << 10),
            )
            .run_second_order(7)
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alias_table,
    bench_alias_sample_views,
    bench_presample_buffer,
    bench_block_load,
    bench_engine_throughput,
    bench_rejection,
    bench_baseline_engines,
    bench_second_order_engine
);
criterion_main!(benches);
