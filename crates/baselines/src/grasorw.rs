//! GraSorw (Li et al., VLDB '22): the state-of-the-art disk-based system
//! for *second-order* random walks, compared against in the paper's §4.5.
//!
//! Policy reproduction: GraSorw's key idea is **triangular bi-block
//! scheduling** — a second-order step needs both the current vertex's block
//! (to sample a candidate) and the candidate's block (to evaluate the
//! transition weight), so it iterates over *pairs* of blocks, loading two
//! blocks per epoch and bucketing walkers by their `(location block,
//! candidate block)` pair. Bucket-based walker management stores the
//! buckets on disk, charged here as swap I/O, and I/O is synchronous and
//! buffered like its GraphWalker-based walk engine.

use noswalker_core::audit::{RunAudit, Trace, TraceEvent, TraceSink};
use noswalker_core::{
    BlockCache, EngineError, EngineOptions, OnDiskGraph, PipelineClock, RunMetrics,
    SecondOrderWalk, WalkRng, WallTimer,
};
use noswalker_graph::partition::BlockId;
use noswalker_storage::MemoryBudget;
use rand::SeedableRng;
use std::sync::Arc;

/// The GraSorw baseline engine (second order only).
#[derive(Debug)]
pub struct GraSorw<A: SecondOrderWalk> {
    app: Arc<A>,
    graph: Arc<OnDiskGraph>,
    opts: EngineOptions,
    budget: Arc<MemoryBudget>,
}

impl<A: SecondOrderWalk> GraSorw<A> {
    /// Creates the engine.
    pub fn new(
        app: Arc<A>,
        graph: Arc<OnDiskGraph>,
        opts: EngineOptions,
        budget: Arc<MemoryBudget>,
    ) -> Self {
        GraSorw {
            app,
            graph,
            opts,
            budget,
        }
    }

    /// Runs the second-order task to completion.
    ///
    /// # Errors
    ///
    /// [`EngineError::Budget`] if two block buffers cannot fit;
    /// [`EngineError::Load`] on device failure.
    pub fn run(&self, seed: u64) -> Result<RunMetrics, EngineError> {
        self.run_with_sink(seed, None)
    }

    /// Like [`GraSorw::run`], recording structured [`TraceEvent`]s into
    /// `sink` when one is supplied. In debug builds the metrics are
    /// checked against the engine conservation laws.
    ///
    /// # Errors
    ///
    /// As for [`GraSorw::run`].
    pub fn run_with_sink<'a>(
        &'a self,
        seed: u64,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> Result<RunMetrics, EngineError> {
        let audit = RunAudit::begin(self.app.total_walkers(), &self.budget);
        let metrics = self.run_inner(seed, Trace::from_option(sink))?;
        if cfg!(debug_assertions) {
            audit.verify(&metrics, &self.budget).assert_clean();
        }
        Ok(metrics)
    }

    fn run_inner(&self, seed: u64, mut trace: Trace<'_>) -> Result<RunMetrics, EngineError> {
        let wall = WallTimer::start();
        let mut clock = PipelineClock::new();
        let mut metrics = RunMetrics::default();
        let mut rng = WalkRng::seed_from_u64(seed);
        let penalty = |ns: u64| (ns as f64 * self.opts.buffered_io_penalty) as u64;
        let nb = self.graph.num_blocks();

        let mut slab: Vec<Option<A::Walker>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        // Pair buckets: key = loc_block * nb + partner_block, where the
        // partner is the candidate's block (or the location's own block
        // while no candidate is pending).
        let mut pairs: Vec<Vec<usize>> = vec![Vec::new(); nb * nb];
        let mut live = 0u64;

        let pair_key = |run: &Self, w: &A::Walker| -> usize {
            let i = run.graph.block_of(run.app.location(w)) as usize;
            let j = match run.app.candidate(w) {
                Some(c) => run.graph.block_of(c) as usize,
                None => i,
            };
            i * nb + j
        };

        for n in 0..self.app.total_walkers() {
            let w = self.app.generate(n, &mut rng);
            if !self.app.is_active(&w) {
                self.app.on_terminate(&w);
                metrics.record_walker_finished();
                continue;
            }
            let k = pair_key(self, &w);
            let idx = if let Some(i) = free.pop() {
                slab[i] = Some(w);
                i
            } else {
                slab.push(Some(w));
                slab.len() - 1
            };
            pairs[k].push(idx);
            live += 1;
        }

        let buffer_walkers = (self.opts.walker_pool_size as u64)
            .min(self.app.total_walkers().max(1))
            .min((self.budget.limit() / 8 / self.app.state_bytes().max(1) as u64).max(64));
        let _buffer = self
            .budget
            .try_reserve(buffer_walkers * self.app.state_bytes() as u64)?;
        let swap_base = self.graph.edge_region_bytes();
        let mut cache = BlockCache::new(nb);

        while live > 0 {
            // Hottest pair.
            let Some(k) = (0..pairs.len())
                .filter(|&k| !pairs[k].is_empty())
                .max_by_key(|&k| pairs[k].len())
            else {
                break;
            };
            let (bi, bj) = ((k / nb) as BlockId, (k % nb) as BlockId);
            // Load the pair (one load if diagonal).
            let pair_at = clock.now();
            let (block_i, ns_i, hit_i) = cache.load(&self.graph, bi, &self.budget)?;
            clock.sync_io(penalty(ns_i));
            if !hit_i {
                metrics.record_coarse_load(block_i.info().byte_len());
            }
            let bi_bytes = block_i.info().byte_len();
            trace.emit(|| TraceEvent::CoarseLoad {
                block: bi,
                bytes: if hit_i { 0 } else { bi_bytes },
                cache_hit: hit_i,
                at_ns: pair_at,
            });
            let block_j = if bi != bj {
                let at = clock.now();
                let (b, ns, hit) = cache.load(&self.graph, bj, &self.budget)?;
                clock.sync_io(penalty(ns));
                if !hit {
                    metrics.record_coarse_load(b.info().byte_len());
                }
                let bytes = b.info().byte_len();
                trace.emit(|| TraceEvent::CoarseLoad {
                    block: bj,
                    bytes: if hit { 0 } else { bytes },
                    cache_hit: hit,
                    at_ns: at,
                });
                Some(b)
            } else {
                None
            };
            let lookup = |v| {
                block_i.vertex_edges(&self.graph, v).or_else(|| {
                    block_j
                        .as_ref()
                        .and_then(|b| b.vertex_edges(&self.graph, v))
                })
            };

            // Bucket-based walker management: the pair's bucket is read
            // from and written back to disk.
            let bucket = std::mem::take(&mut pairs[k]);
            let swap_bytes = 2 * bucket.len() as u64 * self.opts.swap_record_bytes;
            if swap_bytes > 0 {
                let mut buf = vec![0u8; swap_bytes.min(16 << 20) as usize];
                let mut left = swap_bytes;
                while left > 0 {
                    let n = left.min(16 << 20) as usize;
                    let dev = self.graph.device();
                    let wns = dev.write(swap_base, &buf[..n]).map_err(|e| {
                        EngineError::Load(noswalker_core::disk_graph::LoadError::Device(e))
                    })?;
                    let rns = dev.read(swap_base, &mut buf[..n]).map_err(|e| {
                        EngineError::Load(noswalker_core::disk_graph::LoadError::Device(e))
                    })?;
                    clock.sync_io(penalty(wns + rns));
                    left -= n as u64;
                }
                metrics.record_swap(swap_bytes, 0);
                let at = clock.now();
                trace.emit(|| TraceEvent::Swap {
                    bytes: swap_bytes,
                    at_ns: at,
                });
            }
            // Synchronous buffered I/O: the pair's load+swap service time
            // is a stall, attributed to the first block of the pair.
            let stall_until = clock.now();
            if stall_until > pair_at {
                trace.emit(|| TraceEvent::Stall {
                    waiting_for: Some(bi),
                    from_ns: pair_at,
                    until_ns: stall_until,
                });
            }

            for i in bucket {
                loop {
                    let Some(w) = slab[i].as_ref() else { break };
                    if !self.app.is_active(w) {
                        let w = slab[i].take().expect("live");
                        self.app.on_terminate(&w);
                        free.push(i);
                        live -= 1;
                        metrics.record_walker_finished();
                        break;
                    }
                    if let Some(c) = self.app.candidate(w) {
                        let Some(cedges) = lookup(c) else { break };
                        let before = self.app.location(w);
                        let wm = slab[i].as_mut().expect("live");
                        self.app.rejection(wm, &cedges, &mut rng);
                        clock.advance_compute(self.opts.step_cost());
                        let w = slab[i].as_ref().expect("live");
                        metrics.record_second_order(self.app.location(w) != before);
                        continue;
                    }
                    let loc = self.app.location(w);
                    if self.graph.degree(loc) == 0 {
                        let w = slab[i].take().expect("live");
                        self.app.on_terminate(&w);
                        free.push(i);
                        live -= 1;
                        metrics.record_walker_finished();
                        break;
                    }
                    let Some(view) = lookup(loc) else { break };
                    let dst = self.app.sample(&view, &mut rng);
                    clock.advance_compute(self.opts.sample_cost());
                    let wm = slab[i].as_mut().expect("live");
                    self.app.action(wm, dst, &mut rng);
                }
                if let Some(w) = &slab[i] {
                    let k2 = pair_key(self, w);
                    pairs[k2].push(i);
                }
            }
        }

        let (steps, walkers_finished, end_at) =
            (metrics.steps, metrics.walkers_finished, clock.now());
        trace.emit(|| TraceEvent::RunEnd {
            steps,
            walkers_finished,
            at_ns: end_at,
        });
        metrics.finalize_clock(&clock);
        metrics.finalize_wall(&wall);
        metrics.set_peak_memory(self.budget.peak());
        metrics.derive_edges_loaded(self.graph.format().record_bytes() as u64);
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_core::apps_prelude::*;
    use noswalker_core::Walk;
    use noswalker_graph::generators;
    use noswalker_storage::{SimSsd, SsdProfile};
    use rand::Rng;

    /// A minimal Node2Vec-style second-order walk for testing.
    #[derive(Debug)]
    struct N2v {
        walkers: u64,
        length: u32,
        n: u32,
        p: f32,
        q: f32,
    }
    #[derive(Debug, Clone)]
    struct W {
        prev: Option<u32>,
        at: u32,
        cand: Option<u32>,
        h: f32,
        step: u32,
    }
    impl Walk for N2v {
        type Walker = W;
        fn total_walkers(&self) -> u64 {
            self.walkers
        }
        fn generate(&self, i: u64, _r: &mut WalkRng) -> W {
            W {
                prev: None,
                at: (i % self.n as u64) as u32,
                cand: None,
                h: 0.0,
                step: 0,
            }
        }
        fn location(&self, w: &W) -> u32 {
            w.at
        }
        fn is_active(&self, w: &W) -> bool {
            w.step < self.length
        }
        fn sample(&self, v: &VertexEdges<'_>, r: &mut WalkRng) -> u32 {
            uniform_sample(v, r)
        }
        fn action(&self, w: &mut W, next: u32, r: &mut WalkRng) -> bool {
            if w.cand.is_some() {
                return false;
            }
            w.cand = Some(next);
            let hi = (1.0 / self.p).max(1.0).max(1.0 / self.q);
            w.h = r.gen_range(0.0..hi);
            true
        }
    }
    impl SecondOrderWalk for N2v {
        fn candidate(&self, w: &W) -> Option<u32> {
            w.cand
        }
        fn rejection(&self, w: &mut W, cedges: &VertexEdges<'_>, _r: &mut WalkRng) {
            let c = w.cand.take().expect("pending candidate");
            let weight = match w.prev {
                None => 1.0, // first hop is uniform
                Some(p) if p == c => 1.0 / self.p,
                Some(p) if cedges.contains_target(p) => 1.0,
                Some(_) => 1.0 / self.q,
            };
            if w.h <= weight {
                w.prev = Some(w.at);
                w.at = c;
                w.step += 1;
            }
        }
    }

    fn engine(walkers: u64) -> GraSorw<N2v> {
        let csr = generators::rmat(9, 8, generators::RmatParams::default(), 31).to_undirected();
        let n = csr.num_vertices() as u32;
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        GraSorw::new(
            Arc::new(N2v {
                walkers,
                length: 5,
                n,
                p: 2.0,
                q: 0.5,
            }),
            graph,
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        )
    }

    #[test]
    fn completes_second_order_walks() {
        let m = engine(100).run(1).unwrap();
        assert_eq!(m.walkers_finished, 100);
        assert!(m.steps > 0);
        assert!(m.accepts > 0);
        assert_eq!(m.steps, m.accepts);
    }

    #[test]
    fn bi_block_loads_pairs() {
        let m = engine(100).run(2).unwrap();
        assert!(m.coarse_loads >= 2, "pair scheduling loads two blocks");
    }

    #[test]
    fn deterministic() {
        let mut a = engine(50).run(7).unwrap();
        let mut b = engine(50).run(7).unwrap();
        a.wall_ns = 0;
        b.wall_ns = 0;
        assert_eq!(a, b);
    }
}
