//! Graphene (Liu & Huang, FAST '17): fine-grained on-demand I/O inside a
//! graph-oriented framework.
//!
//! Faithful policy reproduction (paper §5.1, Fig. 16): Graphene issues
//! precise 4 KiB-granularity I/O for exactly the data the current walkers
//! need and skips blocks without walkers — but it still **iterates through
//! the graph in the order the data is stored on disk**, not by walker
//! hotness, and moves each walker only while its data happens to be loaded.
//! That disk-order scan is what keeps its I/O utilization low for random
//! walks.

use crate::common::WalkerSet;
use noswalker_core::audit::{RunAudit, Trace, TraceEvent, TraceSink};
use noswalker_core::{
    EngineError, EngineOptions, OnDiskGraph, PipelineClock, RunMetrics, StepSource, Walk, WalkRng,
    WallTimer,
};
use noswalker_graph::partition::BlockId;
use noswalker_storage::MemoryBudget;
use rand::SeedableRng;
use std::sync::Arc;

/// The Graphene baseline engine.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use noswalker_baselines::Graphene;
/// use noswalker_core::{EngineOptions, OnDiskGraph};
/// use noswalker_apps::BasicRw;
/// use noswalker_graph::generators;
/// use noswalker_storage::{MemoryBudget, SimSsd, SsdProfile};
///
/// let csr = generators::uniform_degree(4096, 8, 1);
/// let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
/// let graph = Arc::new(OnDiskGraph::store(&csr, device, 8192)?);
/// let app = Arc::new(BasicRw::new(20, 5, 4096));
/// let m = Graphene::new(app, graph, EngineOptions::default(), MemoryBudget::new(1 << 20)).run(1)?;
/// assert_eq!(m.coarse_loads, 0); // Graphene is all fine-grained I/O
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Graphene<A: Walk> {
    app: Arc<A>,
    graph: Arc<OnDiskGraph>,
    opts: EngineOptions,
    budget: Arc<MemoryBudget>,
}

impl<A: Walk> Graphene<A> {
    /// Creates the engine.
    pub fn new(
        app: Arc<A>,
        graph: Arc<OnDiskGraph>,
        opts: EngineOptions,
        budget: Arc<MemoryBudget>,
    ) -> Self {
        Graphene {
            app,
            graph,
            opts,
            budget,
        }
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// [`EngineError::Budget`] / [`EngineError::Load`] as usual.
    pub fn run(&self, seed: u64) -> Result<RunMetrics, EngineError> {
        self.run_with_sink(seed, None)
    }

    /// Like [`Graphene::run`], recording structured [`TraceEvent`]s into
    /// `sink` when one is supplied. In debug builds the metrics are
    /// checked against the engine conservation laws.
    ///
    /// # Errors
    ///
    /// As for [`Graphene::run`].
    pub fn run_with_sink<'a>(
        &'a self,
        seed: u64,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> Result<RunMetrics, EngineError> {
        let audit = RunAudit::begin(self.app.total_walkers(), &self.budget);
        let metrics = self.run_inner(seed, Trace::from_option(sink))?;
        if cfg!(debug_assertions) {
            audit.verify(&metrics, &self.budget).assert_clean();
        }
        Ok(metrics)
    }

    fn run_inner(&self, seed: u64, mut trace: Trace<'_>) -> Result<RunMetrics, EngineError> {
        let wall = WallTimer::start();
        let mut clock = PipelineClock::new();
        let mut metrics = RunMetrics::default();
        let mut rng = WalkRng::seed_from_u64(seed);
        let penalty = |ns: u64| (ns as f64 * self.opts.buffered_io_penalty) as u64;

        let state_bytes = self.app.total_walkers() * self.app.state_bytes() as u64;
        let _states = self
            .budget
            .try_reserve(state_bytes.min(self.budget.limit() / 4))?;

        let mut set: WalkerSet<A> = WalkerSet::new(self.graph.num_blocks());
        set.generate_all(&self.app, &self.graph, &mut rng);

        let num_blocks = self.graph.num_blocks() as BlockId;
        let mut b: BlockId = 0;
        while !set.all_done() {
            // Disk-order scan, skipping walker-free blocks.
            if set.buckets[b as usize].is_empty() {
                b = (b + 1) % num_blocks;
                continue;
            }
            // On-demand I/O: only the pages covering current walkers.
            let wanted = set.locations_in(&self.app, b);
            let load_at = clock.now();
            let (load, ns) = self.graph.load_fine(b, &wanted, &self.budget)?;
            clock.sync_io(penalty(ns));
            metrics.record_fine_load(load.num_runs() as u64, load.loaded_bytes());
            let stall_until = clock.now();
            let (vertices, runs, bytes) = (
                wanted.len() as u64,
                load.num_runs() as u64,
                load.loaded_bytes(),
            );
            trace.emit(|| TraceEvent::FineLoad {
                block: b,
                vertices,
                runs,
                bytes,
                at_ns: load_at,
            });
            // Synchronous I/O: the whole service time is a stall.
            if stall_until > load_at {
                trace.emit(|| TraceEvent::Stall {
                    waiting_for: Some(b),
                    from_ns: load_at,
                    until_ns: stall_until,
                });
            }

            let bucket = std::mem::take(&mut set.buckets[b as usize]);
            for i in bucket {
                loop {
                    let Some(w) = set.get(i) else { break };
                    if !self.app.is_active(w) {
                        set.retire(&self.app, i);
                        break;
                    }
                    let loc = self.app.location(w);
                    if self.graph.degree(loc) == 0 {
                        set.retire(&self.app, i);
                        break;
                    }
                    let Some(view) = load.vertex_edges(&self.graph, loc) else {
                        set.rebucket(&self.app, &self.graph, i);
                        break;
                    };
                    let dst = self.app.sample(&view, &mut rng);
                    clock.advance_compute(self.opts.sample_cost());
                    let w = set.get_mut(i).expect("live");
                    self.app.action(w, dst, &mut rng);
                    clock.advance_compute(self.opts.step_cost());
                    metrics.record_step(StepSource::Block);
                }
            }
            b = (b + 1) % num_blocks;
        }

        metrics.set_walkers_finished(set.finished());
        let (steps, walkers_finished, end_at) =
            (metrics.steps, metrics.walkers_finished, clock.now());
        trace.emit(|| TraceEvent::RunEnd {
            steps,
            walkers_finished,
            at_ns: end_at,
        });
        metrics.finalize_clock(&clock);
        metrics.finalize_wall(&wall);
        metrics.set_peak_memory(self.budget.peak());
        metrics.derive_edges_loaded(self.graph.format().record_bytes() as u64);
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_core::apps_prelude::*;
    use noswalker_graph::generators;
    use noswalker_storage::{SimSsd, SsdProfile};

    #[derive(Debug)]
    struct Basic {
        walkers: u64,
        length: u32,
        n: u32,
    }
    #[derive(Debug, Clone)]
    struct W {
        at: u32,
        step: u32,
    }
    impl Walk for Basic {
        type Walker = W;
        fn total_walkers(&self) -> u64 {
            self.walkers
        }
        fn generate(&self, i: u64, _r: &mut WalkRng) -> W {
            W {
                at: (i % self.n as u64) as u32,
                step: 0,
            }
        }
        fn location(&self, w: &W) -> u32 {
            w.at
        }
        fn is_active(&self, w: &W) -> bool {
            w.step < self.length
        }
        fn sample(&self, v: &VertexEdges<'_>, r: &mut WalkRng) -> u32 {
            uniform_sample(v, r)
        }
        fn action(&self, w: &mut W, next: u32, _r: &mut WalkRng) -> bool {
            w.at = next;
            w.step += 1;
            true
        }
    }

    fn engine(walkers: u64) -> Graphene<Basic> {
        let csr = generators::rmat(11, 8, generators::RmatParams::default(), 23);
        let n = csr.num_vertices() as u32;
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 4096).unwrap());
        Graphene::new(
            Arc::new(Basic {
                walkers,
                length: 6,
                n,
            }),
            graph,
            EngineOptions::default(),
            MemoryBudget::new(4 << 20),
        )
    }

    #[test]
    fn completes_with_fine_io_only() {
        let m = engine(200).run(3).unwrap();
        assert_eq!(m.walkers_finished, 200);
        assert!(m.fine_loads > 0);
        assert_eq!(m.coarse_loads, 0);
    }

    #[test]
    fn sparse_walkers_load_less_than_full_graph_sweeps() {
        let few = engine(10).run(3).unwrap();
        let many = engine(2000).run(3).unwrap();
        assert!(few.edge_bytes_loaded < many.edge_bytes_loaded);
    }

    #[test]
    fn deterministic() {
        let mut a = engine(64).run(8).unwrap();
        let mut b = engine(64).run(8).unwrap();
        a.wall_ns = 0;
        b.wall_ns = 0;
        assert_eq!(a, b);
    }
}
