//! Shared walker bookkeeping for the baseline engines.

use noswalker_core::OnDiskGraph;
use noswalker_core::{Walk, WalkRng};
use noswalker_graph::partition::BlockId;
use noswalker_graph::VertexId;

/// A slab of live walkers bucketed by the block of their current location,
/// shared by the block-centric baselines.
#[derive(Debug)]
pub struct WalkerSet<A: Walk> {
    slab: Vec<Option<A::Walker>>,
    free: Vec<usize>,
    /// Walker indices per block.
    pub buckets: Vec<Vec<usize>>,
    live: u64,
    finished: u64,
}

impl<A: Walk> WalkerSet<A> {
    /// An empty set sized for `num_blocks` buckets.
    pub fn new(num_blocks: usize) -> Self {
        WalkerSet {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: vec![Vec::new(); num_blocks],
            live: 0,
            finished: 0,
        }
    }

    /// Live walker count.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Finished walker count.
    pub fn finished(&self) -> u64 {
        self.finished
    }

    /// True once every generated walker has finished.
    pub fn all_done(&self) -> bool {
        self.live == 0
    }

    /// Access a live walker.
    pub fn get(&self, i: usize) -> Option<&A::Walker> {
        self.slab[i].as_ref()
    }

    /// Mutable access to a live walker.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut A::Walker> {
        self.slab[i].as_mut()
    }

    /// Generates all `app.total_walkers()` walkers (the DrunkardMob /
    /// GraphWalker model: vertex data created upfront, §2.4.2). Inactive
    /// newborns finish immediately.
    pub fn generate_all(&mut self, app: &A, graph: &OnDiskGraph, rng: &mut WalkRng) {
        for n in 0..app.total_walkers() {
            let w = app.generate(n, rng);
            if !app.is_active(&w) {
                app.on_terminate(&w);
                self.finished += 1;
                continue;
            }
            self.insert(app, graph, w);
        }
    }

    /// Inserts one walker, bucketing by its location block.
    pub fn insert(&mut self, app: &A, graph: &OnDiskGraph, w: A::Walker) -> usize {
        let b = graph.block_of(app.location(&w)) as usize;
        let idx = if let Some(i) = self.free.pop() {
            self.slab[i] = Some(w);
            i
        } else {
            self.slab.push(Some(w));
            self.slab.len() - 1
        };
        self.buckets[b].push(idx);
        self.live += 1;
        idx
    }

    /// Retires walker `i` (must already be out of every bucket).
    pub fn retire(&mut self, app: &A, i: usize) {
        let w = self.slab[i].take().expect("retiring a live walker");
        app.on_terminate(&w);
        self.free.push(i);
        self.live -= 1;
        self.finished += 1;
    }

    /// Puts a still-live walker back into the bucket of its location block.
    pub fn rebucket(&mut self, app: &A, graph: &OnDiskGraph, i: usize) {
        if let Some(w) = &self.slab[i] {
            let b = graph.block_of(app.location(w)) as usize;
            self.buckets[b].push(i);
        }
    }

    /// The block with the most bucketed walkers.
    pub fn hottest_block(&self) -> Option<BlockId> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .max_by_key(|(_, b)| b.len())
            .map(|(i, _)| i as BlockId)
    }

    /// Current locations of the walkers bucketed at block `b`, deduplicated
    /// and sorted.
    pub fn locations_in(&self, app: &A, b: BlockId) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = self.buckets[b as usize]
            .iter()
            .filter_map(|&i| self.slab[i].as_ref())
            .map(|w| app.location(w))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_core::apps_prelude::*;
    use noswalker_core::OnDiskGraph;
    use noswalker_graph::generators;
    use noswalker_storage::MemDevice;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[derive(Debug)]
    struct Hop(u64);
    #[derive(Debug, Clone)]
    struct W(u32, u32);
    impl Walk for Hop {
        type Walker = W;
        fn total_walkers(&self) -> u64 {
            self.0
        }
        fn generate(&self, n: u64, _r: &mut WalkRng) -> W {
            W((n % 16) as u32, 0)
        }
        fn location(&self, w: &W) -> u32 {
            w.0
        }
        fn is_active(&self, w: &W) -> bool {
            w.1 < 3
        }
        fn sample(&self, v: &VertexEdges<'_>, r: &mut WalkRng) -> u32 {
            uniform_sample(v, r)
        }
        fn action(&self, w: &mut W, next: u32, _r: &mut WalkRng) -> bool {
            w.0 = next;
            w.1 += 1;
            true
        }
    }

    fn setup() -> (Hop, OnDiskGraph) {
        let csr = generators::uniform_degree(16, 4, 1);
        let g = OnDiskGraph::store(&csr, Arc::new(MemDevice::new()), 64).unwrap();
        (Hop(20), g)
    }

    #[test]
    fn generate_all_buckets_everyone() {
        let (app, g) = setup();
        let mut set: WalkerSet<Hop> = WalkerSet::new(g.num_blocks());
        let mut rng = WalkRng::seed_from_u64(1);
        set.generate_all(&app, &g, &mut rng);
        assert_eq!(set.live(), 20);
        let total: usize = set.buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 20);
        assert!(set.hottest_block().is_some());
    }

    #[test]
    fn retire_and_done() {
        let (app, g) = setup();
        let mut set: WalkerSet<Hop> = WalkerSet::new(g.num_blocks());
        let mut rng = WalkRng::seed_from_u64(1);
        set.generate_all(&app, &g, &mut rng);
        let all: Vec<usize> = set.buckets.iter_mut().flat_map(std::mem::take).collect();
        for i in all {
            set.retire(&app, i);
        }
        assert!(set.all_done());
        assert_eq!(set.finished(), 20);
        assert_eq!(set.hottest_block(), None);
    }

    #[test]
    fn locations_are_deduped() {
        let (app, g) = setup();
        let mut set: WalkerSet<Hop> = WalkerSet::new(g.num_blocks());
        let mut rng = WalkRng::seed_from_u64(1);
        set.generate_all(&app, &g, &mut rng);
        let b = set.hottest_block().unwrap();
        let locs = set.locations_in(&app, b);
        assert!(!locs.is_empty());
        assert!(locs.windows(2).all(|w| w[0] < w[1]));
    }
}
