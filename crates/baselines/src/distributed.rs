//! A simulated distributed random walk cluster in the spirit of
//! KnightKing (SOSP '19), for the paper's Fig. 17 comparison.
//!
//! The graph is range-partitioned across `nodes` machines, each holding its
//! partition in memory. Every walker hop that crosses a partition boundary
//! ships the walker state over the interconnect; the paper's cluster is 4
//! nodes on 10 Gb/s Ethernet. Compute parallelizes across nodes; loading
//! does too (each node reads its own slice from its own SSD).

use noswalker_core::audit::{RunAudit, Trace, TraceEvent, TraceSink};
use noswalker_core::{EngineOptions, RunMetrics, StepSource, Walk, WalkRng, WallTimer};
use noswalker_graph::layout::VertexEdges;
use noswalker_graph::{Csr, VertexId};
use noswalker_storage::SsdProfile;
use rand::SeedableRng;
use std::sync::Arc;

/// Interconnect cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkProfile {
    /// Per-node link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Fixed per-message software overhead in nanoseconds (batched
    /// messaging amortizes the wire latency; this is the CPU cost).
    pub per_message_ns: u64,
}

impl NetworkProfile {
    /// 10 Gb/s Ethernet, the paper's cluster interconnect.
    pub fn ten_gbe() -> Self {
        NetworkProfile {
            bandwidth_bytes_per_sec: 10_000_000_000 / 8,
            per_message_ns: 150,
        }
    }
}

impl Default for NetworkProfile {
    fn default() -> Self {
        Self::ten_gbe()
    }
}

/// The simulated distributed engine.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use noswalker_baselines::{DistributedSim, NetworkProfile};
/// use noswalker_core::EngineOptions;
/// use noswalker_apps::BasicRw;
/// use noswalker_graph::generators;
/// use noswalker_storage::SsdProfile;
///
/// let csr = Arc::new(generators::uniform_degree(256, 4, 1));
/// let app = Arc::new(BasicRw::new(50, 5, 256));
/// let m = DistributedSim::new(
///     app, csr, EngineOptions::default(), 4,
///     SsdProfile::nvme_p4618(), NetworkProfile::ten_gbe(),
/// ).run(1);
/// assert_eq!(m.walkers_finished, 50);
/// assert!(m.swap_bytes > 0); // cross-partition walker messages
/// ```
#[derive(Debug)]
pub struct DistributedSim<A: Walk> {
    app: Arc<A>,
    csr: Arc<Csr>,
    opts: EngineOptions,
    nodes: u32,
    storage: SsdProfile,
    network: NetworkProfile,
}

impl<A: Walk> DistributedSim<A> {
    /// Creates a `nodes`-machine cluster simulation.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(
        app: Arc<A>,
        csr: Arc<Csr>,
        opts: EngineOptions,
        nodes: u32,
        storage: SsdProfile,
        network: NetworkProfile,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        DistributedSim {
            app,
            csr,
            opts,
            nodes,
            storage,
            network,
        }
    }

    fn node_of(&self, v: VertexId) -> u32 {
        let per = (self.csr.num_vertices() as u64).div_ceil(self.nodes as u64);
        (v as u64 / per.max(1)) as u32
    }

    /// Runs to completion. `stall_ns` in the result is the parallel graph
    /// load; `sim_ns` additionally includes parallel compute and network
    /// time, so *walk time* = `sim_ns - stall_ns`.
    pub fn run(&self, seed: u64) -> RunMetrics {
        self.run_with_sink(seed, None)
    }

    /// Like [`DistributedSim::run`], recording structured [`TraceEvent`]s
    /// into `sink` when one is supplied. In debug builds the metrics are
    /// checked against the engine conservation laws (there is no memory
    /// budget here, so the budget-floor law is vacuous).
    pub fn run_with_sink<'a>(
        &'a self,
        seed: u64,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> RunMetrics {
        let audit = RunAudit::with_floor(self.app.total_walkers(), 0);
        let metrics = self.run_inner(seed, Trace::from_option(sink));
        if cfg!(debug_assertions) {
            audit.verify_metrics(&metrics).assert_clean();
        }
        metrics
    }

    fn run_inner(&self, seed: u64, mut trace: Trace<'_>) -> RunMetrics {
        let wall = WallTimer::start();
        let mut metrics = RunMetrics::default();
        let mut rng = WalkRng::seed_from_u64(seed);

        // Parallel load: each node streams its partition slice.
        let slice = self.csr.csr_bytes() / self.nodes as u64;
        let load_ns = self.storage.service_ns(slice.max(1));
        // Each node's parallel ingest of its own slice counts as one load.
        metrics.record_coarse_loads(self.nodes as u64, self.csr.csr_bytes());
        let total_bytes = self.csr.csr_bytes();
        trace.emit(|| TraceEvent::CoarseLoad {
            block: 0,
            bytes: total_bytes,
            cache_hit: false,
            at_ns: 0,
        });
        trace.emit(|| TraceEvent::Stall {
            waiting_for: None,
            from_ns: 0,
            until_ns: load_ns,
        });

        let mut cross_messages = 0u64;
        let mut compute_ns_serial = 0u64;
        for n in 0..self.app.total_walkers() {
            let mut w = self.app.generate(n, &mut rng);
            loop {
                if !self.app.is_active(&w) {
                    break;
                }
                let loc = self.app.location(&w);
                if self.csr.degree(loc) == 0 {
                    break;
                }
                let view = VertexEdges::from_csr(&self.csr, loc);
                let dst = self.app.sample(&view, &mut rng);
                if self.node_of(loc) != self.node_of(dst) {
                    cross_messages += 1;
                }
                self.app.action(&mut w, dst, &mut rng);
                compute_ns_serial += self.opts.step_ns + self.opts.sample_ns;
                metrics.record_step(StepSource::Block);
            }
            self.app.on_terminate(&w);
            metrics.record_walker_finished();
        }

        // Compute parallelizes over nodes × threads; network traffic is
        // spread over the per-node links.
        let parallel = (self.nodes as u64) * self.opts.threads.max(1);
        let compute_ns = compute_ns_serial / parallel.max(1);
        let msg_bytes = cross_messages * self.app.state_bytes() as u64;
        let wire_ns = msg_bytes * 1_000_000_000
            / (self.network.bandwidth_bytes_per_sec.max(1) * self.nodes as u64);
        let overhead_ns = cross_messages * self.network.per_message_ns / self.nodes as u64;
        let network_ns = wire_ns + overhead_ns;
        metrics.record_swap(msg_bytes, 0); // repurposed: bytes over the wire
        metrics.set_sim_times(load_ns + compute_ns + network_ns, load_ns, load_ns);
        metrics.set_edges_loaded(self.csr.num_edges());
        if msg_bytes > 0 {
            let end_at = metrics.sim_ns;
            trace.emit(|| TraceEvent::Swap {
                bytes: msg_bytes,
                at_ns: end_at,
            });
        }
        let (steps, walkers_finished, end_at) =
            (metrics.steps, metrics.walkers_finished, metrics.sim_ns);
        trace.emit(|| TraceEvent::RunEnd {
            steps,
            walkers_finished,
            at_ns: end_at,
        });
        metrics.finalize_wall(&wall);
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_core::apps_prelude::*;
    use noswalker_graph::generators;

    #[derive(Debug)]
    struct Basic {
        walkers: u64,
        length: u32,
        n: u32,
    }
    #[derive(Debug, Clone)]
    struct W {
        at: u32,
        step: u32,
    }
    impl Walk for Basic {
        type Walker = W;
        fn total_walkers(&self) -> u64 {
            self.walkers
        }
        fn generate(&self, i: u64, _r: &mut WalkRng) -> W {
            W {
                at: (i % self.n as u64) as u32,
                step: 0,
            }
        }
        fn location(&self, w: &W) -> u32 {
            w.at
        }
        fn is_active(&self, w: &W) -> bool {
            w.step < self.length
        }
        fn sample(&self, v: &VertexEdges<'_>, r: &mut WalkRng) -> u32 {
            uniform_sample(v, r)
        }
        fn action(&self, w: &mut W, next: u32, _r: &mut WalkRng) -> bool {
            w.at = next;
            w.step += 1;
            true
        }
    }

    fn cluster(nodes: u32) -> DistributedSim<Basic> {
        let csr = Arc::new(generators::uniform_degree(1024, 8, 4));
        DistributedSim::new(
            Arc::new(Basic {
                walkers: 200,
                length: 8,
                n: 1024,
            }),
            csr,
            EngineOptions::default(),
            nodes,
            SsdProfile::nvme_p4618(),
            NetworkProfile::ten_gbe(),
        )
    }

    #[test]
    fn completes_and_charges_network() {
        let m = cluster(4).run(1);
        assert_eq!(m.walkers_finished, 200);
        assert_eq!(m.steps, 1600);
        // Uniform random destinations on 4 partitions: ~75 % of hops cross.
        assert!(m.swap_bytes > 0, "cross-partition traffic expected");
    }

    #[test]
    fn more_nodes_load_faster() {
        let m4 = cluster(4).run(2);
        let m8 = cluster(8).run(2);
        assert!(m8.stall_ns < m4.stall_ns);
    }

    #[test]
    fn single_node_has_no_network_traffic() {
        let m = cluster(1).run(3);
        assert_eq!(m.swap_bytes, 0);
    }
}
