//! DrunkardMob (Kyrola, RecSys '13): the first out-of-core random walk
//! system, built on GraphChi.
//!
//! Faithful policy reproduction (paper §2.2, Fig. 3b):
//!
//! * all walker states are created upfront and **pinned in memory**
//!   (it fails — as in the paper — when they do not fit the budget);
//! * blocks are streamed **round-robin in disk order** with synchronous
//!   buffered I/O (no compute/I/O overlap);
//! * each epoch moves every walker residing in the loaded block **exactly
//!   one step** (synchronized iterations).

use crate::common::WalkerSet;
use noswalker_core::audit::{RunAudit, Trace, TraceEvent, TraceSink};
use noswalker_core::{
    BlockCache, EngineError, EngineOptions, OnDiskGraph, PipelineClock, RunMetrics, StepSource,
    Walk, WalkRng, WallTimer,
};
use noswalker_graph::partition::BlockId;
use noswalker_storage::MemoryBudget;
use rand::SeedableRng;
use std::sync::Arc;

/// The DrunkardMob baseline engine.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use noswalker_baselines::DrunkardMob;
/// use noswalker_core::{EngineOptions, OnDiskGraph};
/// use noswalker_apps::BasicRw;
/// use noswalker_graph::generators;
/// use noswalker_storage::{MemoryBudget, SimSsd, SsdProfile};
///
/// let csr = generators::uniform_degree(128, 4, 1);
/// let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
/// let graph = Arc::new(OnDiskGraph::store(&csr, device, 512)?);
/// let app = Arc::new(BasicRw::new(50, 5, 128));
/// let dm = DrunkardMob::new(app, graph, EngineOptions::default(), MemoryBudget::new(1 << 20));
/// assert_eq!(dm.run(1)?.walkers_finished, 50);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DrunkardMob<A: Walk> {
    app: Arc<A>,
    graph: Arc<OnDiskGraph>,
    opts: EngineOptions,
    budget: Arc<MemoryBudget>,
}

impl<A: Walk> DrunkardMob<A> {
    /// Creates the engine. Only the compute-cost fields of `opts` are used;
    /// DrunkardMob has no optimization knobs.
    pub fn new(
        app: Arc<A>,
        graph: Arc<OnDiskGraph>,
        opts: EngineOptions,
        budget: Arc<MemoryBudget>,
    ) -> Self {
        DrunkardMob {
            app,
            graph,
            opts,
            budget,
        }
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// [`EngineError::Budget`] when the walker states do not fit in memory
    /// — the condition under which the paper reports "DrunkardMob cannot
    /// process" a workload; [`EngineError::Load`] on device failure.
    pub fn run(&self, seed: u64) -> Result<RunMetrics, EngineError> {
        self.run_with_sink(seed, None)
    }

    /// Like [`DrunkardMob::run`], recording structured
    /// [`TraceEvent`]s into `sink` when one is supplied. In debug builds
    /// the metrics are checked against the engine conservation laws.
    ///
    /// # Errors
    ///
    /// As for [`DrunkardMob::run`].
    pub fn run_with_sink<'a>(
        &'a self,
        seed: u64,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> Result<RunMetrics, EngineError> {
        let audit = RunAudit::begin(self.app.total_walkers(), &self.budget);
        let metrics = self.run_inner(seed, Trace::from_option(sink))?;
        if cfg!(debug_assertions) {
            audit.verify(&metrics, &self.budget).assert_clean();
        }
        Ok(metrics)
    }

    fn run_inner(&self, seed: u64, mut trace: Trace<'_>) -> Result<RunMetrics, EngineError> {
        let wall = WallTimer::start();
        let mut clock = PipelineClock::new();
        let mut metrics = RunMetrics::default();
        let mut rng = WalkRng::seed_from_u64(seed);
        // GraphChi-heritage buffered I/O runs at 20-30 % of the device's
        // bandwidth (paper §4.4); de-rate accordingly.
        let penalty = |ns: u64| (ns as f64 * self.opts.buffered_io_penalty) as u64;

        // All walker states live in memory for the whole run.
        let state_bytes = self.app.total_walkers() * self.app.state_bytes() as u64;
        let _states = self.budget.try_reserve(state_bytes)?;

        let mut set: WalkerSet<A> = WalkerSet::new(self.graph.num_blocks());
        set.generate_all(&self.app, &self.graph, &mut rng);
        metrics.set_walkers_finished(set.finished());
        // Page-cache stand-in: the cgroups budget covers the OS page cache,
        // so re-reads of cached blocks are free (§4.1).
        let mut cache = BlockCache::new(self.graph.num_blocks());

        let num_blocks = self.graph.num_blocks() as BlockId;
        let mut b: BlockId = 0;
        while !set.all_done() {
            // Round-robin streaming: load the next block in disk order even
            // if it is cold (GraphChi's iteration model).
            let info = *self.graph.partition().block(b);
            if info.byte_len() > 0 && !set.buckets[b as usize].is_empty() {
                let load_at = clock.now();
                let (block, ns, hit) = cache.load(&self.graph, b, &self.budget)?;
                clock.sync_io(penalty(ns)); // buffered I/O: no overlap
                if !hit {
                    metrics.record_coarse_load(info.byte_len());
                }
                trace.emit(|| TraceEvent::CoarseLoad {
                    block: b,
                    bytes: if hit { 0 } else { info.byte_len() },
                    cache_hit: hit,
                    at_ns: load_at,
                });
                // GraphChi's parallel sliding windows write every processed
                // shard back to disk (edge values are mutable in its model),
                // a cost DrunkardMob inherits. The write goes to a scratch
                // region past the edge data: same cost, graph untouched.
                let wb = vec![0u8; info.byte_len() as usize];
                let scratch = self.graph.edge_region_bytes() + info.byte_start;
                let wns = self.graph.device().write(scratch, &wb).map_err(|e| {
                    EngineError::Load(noswalker_core::disk_graph::LoadError::Device(e))
                })?;
                clock.sync_io(penalty(wns));
                metrics.record_swap(info.byte_len(), 1);
                let stall_until = clock.now();
                trace.emit(|| TraceEvent::Swap {
                    bytes: info.byte_len(),
                    at_ns: stall_until,
                });
                // Synchronous buffered I/O: the whole service time is a
                // stall, attributed to the block being streamed.
                if stall_until > load_at {
                    trace.emit(|| TraceEvent::Stall {
                        waiting_for: Some(b),
                        from_ns: load_at,
                        until_ns: stall_until,
                    });
                }

                let bucket = std::mem::take(&mut set.buckets[b as usize]);
                for i in bucket {
                    let Some(w) = set.get(i) else { continue };
                    if !self.app.is_active(w) {
                        set.retire(&self.app, i);
                        continue;
                    }
                    let loc = self.app.location(w);
                    if self.graph.degree(loc) == 0 {
                        set.retire(&self.app, i);
                        continue;
                    }
                    let view = block
                        .vertex_edges(&self.graph, loc)
                        .expect("bucketed walker is in block");
                    let dst = self.app.sample(&view, &mut rng);
                    clock.advance_compute(self.opts.sample_cost());
                    let w = set.get_mut(i).expect("live");
                    self.app.action(w, dst, &mut rng);
                    clock.advance_compute(self.opts.step_cost());
                    metrics.record_step(StepSource::Block);
                    let w = set.get(i).expect("live");
                    if !self.app.is_active(w) {
                        set.retire(&self.app, i);
                    } else {
                        set.rebucket(&self.app, &self.graph, i);
                    }
                }
            }
            b = (b + 1) % num_blocks;
        }

        metrics.set_walkers_finished(set.finished());
        let (steps, walkers_finished, end_at) =
            (metrics.steps, metrics.walkers_finished, clock.now());
        trace.emit(|| TraceEvent::RunEnd {
            steps,
            walkers_finished,
            at_ns: end_at,
        });
        metrics.finalize_clock(&clock);
        metrics.finalize_wall(&wall);
        metrics.set_peak_memory(self.budget.peak());
        metrics.derive_edges_loaded(self.graph.format().record_bytes() as u64);
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_core::apps_prelude::*;
    use noswalker_graph::generators;
    use noswalker_storage::{SimSsd, SsdProfile};

    #[derive(Debug)]
    struct Basic {
        walkers: u64,
        length: u32,
        n: u32,
    }
    #[derive(Debug, Clone)]
    struct W {
        at: u32,
        step: u32,
    }
    impl Walk for Basic {
        type Walker = W;
        fn total_walkers(&self) -> u64 {
            self.walkers
        }
        fn generate(&self, i: u64, _r: &mut WalkRng) -> W {
            W {
                at: (i % self.n as u64) as u32,
                step: 0,
            }
        }
        fn location(&self, w: &W) -> u32 {
            w.at
        }
        fn is_active(&self, w: &W) -> bool {
            w.step < self.length
        }
        fn sample(&self, v: &VertexEdges<'_>, r: &mut WalkRng) -> u32 {
            uniform_sample(v, r)
        }
        fn action(&self, w: &mut W, next: u32, _r: &mut WalkRng) -> bool {
            w.at = next;
            w.step += 1;
            true
        }
    }

    fn engine(walkers: u64, budget: u64) -> DrunkardMob<Basic> {
        let csr = generators::uniform_degree(256, 8, 3);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 1024).unwrap());
        DrunkardMob::new(
            Arc::new(Basic {
                walkers,
                length: 5,
                n: 256,
            }),
            graph,
            EngineOptions::default(),
            MemoryBudget::new(budget),
        )
    }

    #[test]
    fn completes_all_walkers() {
        let m = engine(100, 1 << 20).run(1).unwrap();
        assert_eq!(m.walkers_finished, 100);
        assert_eq!(m.steps, 500); // uniform graph: no dead ends
        assert!(m.coarse_loads >= 5, "round-robin reloads blocks");
    }

    #[test]
    fn fails_when_walker_states_exceed_memory() {
        // 1M walkers * 8B state > 64 KiB budget.
        let e = engine(1_000_000, 64 << 10);
        assert!(matches!(e.run(1), Err(EngineError::Budget(_))));
    }

    #[test]
    fn synchronous_io_shows_up_as_stall() {
        let m = engine(100, 1 << 20).run(2).unwrap();
        assert!(m.stall_ns > 0);
        assert_eq!(m.stall_ns, m.io_busy_ns); // fully unoverlapped
    }

    #[test]
    fn deterministic() {
        let mut a = engine(50, 1 << 20).run(9).unwrap();
        let mut b = engine(50, 1 << 20).run(9).unwrap();
        a.wall_ns = 0;
        b.wall_ns = 0;
        assert_eq!(a, b);
    }
}
