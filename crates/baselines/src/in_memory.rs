//! An in-memory random walk engine in the spirit of ThunderRW (VLDB '21).
//!
//! Holds the whole CSR in memory and just walks. Used for the paper's
//! Fig. 17 comparison, which separates **walk time** (pure computation,
//! where in-memory systems win) from **total time** (including the initial
//! graph load, where NosWalker's pipelining wins — the paper measures ~75 %
//! of ThunderRW's time as graph loading).

use noswalker_core::audit::{RunAudit, Trace, TraceEvent, TraceSink};
use noswalker_core::{EngineOptions, RunMetrics, StepSource, Walk, WalkRng, WallTimer};
use noswalker_graph::layout::VertexEdges;
use noswalker_graph::Csr;
use noswalker_storage::SsdProfile;
use rand::SeedableRng;
use std::sync::Arc;

/// The in-memory baseline engine.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use noswalker_baselines::InMemory;
/// use noswalker_core::EngineOptions;
/// use noswalker_apps::BasicRw;
/// use noswalker_graph::generators;
/// use noswalker_storage::SsdProfile;
///
/// let csr = Arc::new(generators::uniform_degree(128, 4, 1));
/// let app = Arc::new(BasicRw::new(50, 5, 128));
/// let m = InMemory::new(app, csr, EngineOptions::default(), SsdProfile::nvme_p4618()).run(1);
/// assert_eq!(m.steps, 250);
/// assert!(m.stall_ns > 0); // the graph-ingest time
/// ```
#[derive(Debug)]
pub struct InMemory<A: Walk> {
    app: Arc<A>,
    csr: Arc<Csr>,
    opts: EngineOptions,
    /// Device profile used to charge the one-time sequential graph load.
    profile: SsdProfile,
    /// Multiplier on the raw read time for parsing + CSR construction.
    /// The paper measures ~75 % of ThunderRW's end-to-end time as graph
    /// loading, well above the raw read time of the bytes — ingest is
    /// parse-bound.
    ingest_factor: f64,
}

impl<A: Walk> InMemory<A> {
    /// Creates the engine over an in-memory CSR; `profile` prices the
    /// initial load from storage.
    pub fn new(app: Arc<A>, csr: Arc<Csr>, opts: EngineOptions, profile: SsdProfile) -> Self {
        InMemory {
            app,
            csr,
            opts,
            profile,
            ingest_factor: 2.5,
        }
    }

    /// Overrides the ingest (parse + build) multiplier on load time.
    pub fn with_ingest_factor(mut self, f: f64) -> Self {
        self.ingest_factor = f;
        self
    }

    /// Runs to completion. In the returned metrics, `stall_ns` is exactly
    /// the initial graph load (so *walk time* = `sim_ns - stall_ns`).
    pub fn run(&self, seed: u64) -> RunMetrics {
        self.run_with_sink(seed, None)
    }

    /// Like [`InMemory::run`], recording structured [`TraceEvent`]s into
    /// `sink` when one is supplied. In debug builds the metrics are
    /// checked against the engine conservation laws (there is no memory
    /// budget here, so the budget-floor law is vacuous).
    pub fn run_with_sink<'a>(
        &'a self,
        seed: u64,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> RunMetrics {
        let audit = RunAudit::with_floor(self.app.total_walkers(), 0);
        let metrics = self.run_inner(seed, Trace::from_option(sink));
        if cfg!(debug_assertions) {
            audit.verify_metrics(&metrics).assert_clean();
        }
        metrics
    }

    fn run_inner(&self, seed: u64, mut trace: Trace<'_>) -> RunMetrics {
        let wall = WallTimer::start();
        let mut metrics = RunMetrics::default();
        let mut rng = WalkRng::seed_from_u64(seed);

        // One sequential scan of the CSR from storage, plus parse/build.
        let load_bytes = self.csr.csr_bytes();
        let load_ns = (self.profile.service_ns(load_bytes) as f64 * self.ingest_factor) as u64;
        metrics.record_coarse_load(load_bytes); // the one sequential ingest scan
        trace.emit(|| TraceEvent::CoarseLoad {
            block: 0,
            bytes: load_bytes,
            cache_hit: false,
            at_ns: 0,
        });
        trace.emit(|| TraceEvent::Stall {
            waiting_for: Some(0),
            from_ns: 0,
            until_ns: load_ns,
        });

        let mut compute_ns = 0u64;
        let total = self.app.total_walkers();
        for n in 0..total {
            let mut w = self.app.generate(n, &mut rng);
            loop {
                if !self.app.is_active(&w) {
                    break;
                }
                let loc = w_loc(&*self.app, &w);
                if self.csr.degree(loc) == 0 {
                    break;
                }
                let view = VertexEdges::from_csr(&self.csr, loc);
                let dst = self.app.sample(&view, &mut rng);
                self.app.action(&mut w, dst, &mut rng);
                compute_ns += self.opts.step_cost() + self.opts.sample_cost();
                metrics.record_step(StepSource::Block);
            }
            self.app.on_terminate(&w);
            metrics.record_walker_finished();
        }

        metrics.set_sim_times(load_ns + compute_ns, load_ns, load_ns);
        metrics.set_edges_loaded(self.csr.num_edges());
        let (steps, walkers_finished, end_at) =
            (metrics.steps, metrics.walkers_finished, metrics.sim_ns);
        trace.emit(|| TraceEvent::RunEnd {
            steps,
            walkers_finished,
            at_ns: end_at,
        });
        metrics.finalize_wall(&wall);
        metrics
    }
}

fn w_loc<A: Walk>(app: &A, w: &A::Walker) -> u32 {
    app.location(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_core::apps_prelude::*;
    use noswalker_graph::generators;

    #[derive(Debug)]
    struct Basic {
        walkers: u64,
        length: u32,
        n: u32,
    }
    #[derive(Debug, Clone)]
    struct W {
        at: u32,
        step: u32,
    }
    impl Walk for Basic {
        type Walker = W;
        fn total_walkers(&self) -> u64 {
            self.walkers
        }
        fn generate(&self, i: u64, _r: &mut WalkRng) -> W {
            W {
                at: (i % self.n as u64) as u32,
                step: 0,
            }
        }
        fn location(&self, w: &W) -> u32 {
            w.at
        }
        fn is_active(&self, w: &W) -> bool {
            w.step < self.length
        }
        fn sample(&self, v: &VertexEdges<'_>, r: &mut WalkRng) -> u32 {
            uniform_sample(v, r)
        }
        fn action(&self, w: &mut W, next: u32, _r: &mut WalkRng) -> bool {
            w.at = next;
            w.step += 1;
            true
        }
    }

    #[test]
    fn walk_time_excludes_load_time() {
        let csr = Arc::new(generators::uniform_degree(512, 8, 2));
        let app = Arc::new(Basic {
            walkers: 100,
            length: 10,
            n: 512,
        });
        let e = InMemory::new(app, csr, EngineOptions::default(), SsdProfile::nvme_p4618());
        let m = e.run(1);
        assert_eq!(m.walkers_finished, 100);
        assert_eq!(m.steps, 1000);
        assert!(m.stall_ns > 0, "load time charged");
        assert!(m.sim_ns > m.stall_ns, "walk time on top of load time");
    }

    #[test]
    fn deterministic() {
        let csr = Arc::new(generators::uniform_degree(128, 4, 9));
        let app = Arc::new(Basic {
            walkers: 40,
            length: 5,
            n: 128,
        });
        let e = InMemory::new(app, csr, EngineOptions::default(), SsdProfile::nvme_p4618());
        let mut a = e.run(3);
        let mut b = e.run(3);
        a.wall_ns = 0;
        b.wall_ns = 0;
        assert_eq!(a, b);
    }
}
