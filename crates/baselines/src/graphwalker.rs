//! GraphWalker (Wang et al., ATC '20): the state-of-the-art out-of-core
//! random walk system the paper primarily compares against.
//!
//! Faithful policy reproduction (paper §2.3, Fig. 3c):
//!
//! * **state-aware I/O**: the block with the most walkers is loaded first;
//! * **asynchronous walker updating / re-entry** (from CLIP): each walker
//!   moves as many steps as possible while it stays inside the loaded
//!   block;
//! * walker states live in a **fixed-length walker buffer** and are swapped
//!   to disk when the buffer overflows — the paper measures this swap at up
//!   to 60 % of GraphWalker's total disk I/O (§2.4.2);
//! * synchronous buffered I/O (GraphChi heritage; the paper measures its
//!   disk utilization at 20–30 %).
//!
//! The optional [`TracePoint`] trace reproduces the paper's Fig. 4: per
//! I/O, the number of unterminated walkers and the fraction of the loaded
//! block actually accessed (in 4 KiB page granularity).

use crate::common::WalkerSet;
use noswalker_core::audit::{RunAudit, Trace, TraceEvent, TraceSink};
use noswalker_core::{
    BlockCache, EngineError, EngineOptions, OnDiskGraph, PipelineClock, RunMetrics, StepSource,
    Walk, WalkRng, WallTimer,
};
use noswalker_graph::partition::FINE_PAGE_BYTES;
use noswalker_graph::VertexId;
use noswalker_storage::MemoryBudget;
use rand::SeedableRng;
use std::sync::Arc;

/// One Fig. 4 sample: the state of the system at one block I/O.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Sequence number of the I/O.
    pub io_number: u64,
    /// Unterminated walkers at the time of the I/O.
    pub unterminated: u64,
    /// Fraction (0–1) of the loaded block's 4 KiB pages actually touched
    /// while moving walkers.
    pub accessed_fraction: f64,
}

/// The GraphWalker baseline engine.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use noswalker_baselines::GraphWalker;
/// use noswalker_core::{EngineOptions, OnDiskGraph};
/// use noswalker_apps::BasicRw;
/// use noswalker_graph::generators;
/// use noswalker_storage::{MemoryBudget, SimSsd, SsdProfile};
///
/// let csr = generators::uniform_degree(128, 4, 1);
/// let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
/// let graph = Arc::new(OnDiskGraph::store(&csr, device, 512)?);
/// let app = Arc::new(BasicRw::new(50, 5, 128));
/// let gw = GraphWalker::new(app, graph, EngineOptions::default(), MemoryBudget::new(1 << 20));
/// let traced = gw.run_traced(1)?; // metrics + the Fig. 4 trace
/// assert_eq!(traced.metrics.walkers_finished, 50);
/// assert!(!traced.trace.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct GraphWalker<A: Walk> {
    app: Arc<A>,
    graph: Arc<OnDiskGraph>,
    opts: EngineOptions,
    budget: Arc<MemoryBudget>,
}

/// Result of a GraphWalker run with its Fig. 4 trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedRun {
    /// The usual run metrics.
    pub metrics: RunMetrics,
    /// One point per coarse block I/O.
    pub trace: Vec<TracePoint>,
}

impl<A: Walk> GraphWalker<A> {
    /// Creates the engine. `opts.walker_pool_size` sizes the in-memory
    /// walker buffer; `opts.swap_record_bytes` sizes swap records.
    pub fn new(
        app: Arc<A>,
        graph: Arc<OnDiskGraph>,
        opts: EngineOptions,
        budget: Arc<MemoryBudget>,
    ) -> Self {
        GraphWalker {
            app,
            graph,
            opts,
            budget,
        }
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// [`EngineError::Budget`] if a block buffer cannot fit;
    /// [`EngineError::Load`] on device failure.
    pub fn run(&self, seed: u64) -> Result<RunMetrics, EngineError> {
        self.run_with_sink(seed, None)
    }

    /// Like [`GraphWalker::run`], recording structured [`TraceEvent`]s
    /// into `sink` when one is supplied (distinct from the Fig. 4
    /// [`TracePoint`] trace of [`GraphWalker::run_traced`]). In debug
    /// builds the metrics are checked against the engine conservation
    /// laws.
    ///
    /// # Errors
    ///
    /// As for [`GraphWalker::run`].
    pub fn run_with_sink<'a>(
        &'a self,
        seed: u64,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> Result<RunMetrics, EngineError> {
        let audit = RunAudit::begin(self.app.total_walkers(), &self.budget);
        let metrics = self
            .run_traced_inner(seed, Trace::from_option(sink))?
            .metrics;
        if cfg!(debug_assertions) {
            audit.verify(&metrics, &self.budget).assert_clean();
        }
        Ok(metrics)
    }

    /// Runs to completion, additionally recording the Fig. 4 trace.
    ///
    /// # Errors
    ///
    /// As for [`GraphWalker::run`].
    pub fn run_traced(&self, seed: u64) -> Result<TracedRun, EngineError> {
        let audit = RunAudit::begin(self.app.total_walkers(), &self.budget);
        let traced = self.run_traced_inner(seed, Trace::off())?;
        if cfg!(debug_assertions) {
            audit.verify(&traced.metrics, &self.budget).assert_clean();
        }
        Ok(traced)
    }

    fn run_traced_inner(&self, seed: u64, mut tr: Trace<'_>) -> Result<TracedRun, EngineError> {
        let wall = WallTimer::start();
        let mut clock = PipelineClock::new();
        let mut metrics = RunMetrics::default();
        let mut trace = Vec::new();
        let mut rng = WalkRng::seed_from_u64(seed);
        // GraphChi-heritage buffered I/O runs at 20-30 % of the device's
        // bandwidth (paper §4.4); de-rate accordingly.
        let penalty = |ns: u64| (ns as f64 * self.opts.buffered_io_penalty) as u64;

        // Fixed-length in-memory walker buffer; the rest is swapped. The
        // buffer may take at most an eighth of the budget.
        let buffer_walkers = (self.opts.walker_pool_size as u64)
            .min(self.app.total_walkers().max(1))
            .min((self.budget.limit() / 8 / self.app.state_bytes().max(1) as u64).max(64));
        let _buffer = self
            .budget
            .try_reserve(buffer_walkers * self.app.state_bytes() as u64)?;

        let mut set: WalkerSet<A> = WalkerSet::new(self.graph.num_blocks());
        set.generate_all(&self.app, &self.graph, &mut rng);
        let swap_base = self.graph.edge_region_bytes();
        // Page-cache stand-in (the cgroups budget covers the page cache).
        let mut cache = BlockCache::new(self.graph.num_blocks());
        let mut epoch = 0u64;

        while !set.all_done() {
            epoch += 1;
            let Some(b) = set.hottest_block() else { break };
            let info = *self.graph.partition().block(b);
            let load_at = clock.now();
            let (block, ns, hit) = cache.load(&self.graph, b, &self.budget)?;
            clock.sync_io(penalty(ns)); // buffered I/O: no overlap
            if !hit {
                metrics.record_coarse_load(info.byte_len());
            }
            tr.emit(|| TraceEvent::CoarseLoad {
                block: b,
                bytes: if hit { 0 } else { info.byte_len() },
                cache_hit: hit,
                at_ns: load_at,
            });

            // Swap in this block's walker states beyond the buffer, and
            // write back the previously resident ones (real device I/O on a
            // swap region so cost model and stats agree).
            let in_block = set.buckets[b as usize].len() as u64;
            let swapped = in_block.saturating_sub(buffer_walkers / 2);
            let swap_bytes = 2 * swapped * self.opts.swap_record_bytes;
            if swap_bytes > 0 {
                let mut buf = vec![0u8; swap_bytes.min(16 << 20) as usize];
                let mut left = swap_bytes;
                while left > 0 {
                    let n = left.min(16 << 20) as usize;
                    let wns = self
                        .graph
                        .device()
                        .write(swap_base, &buf[..n])
                        .map_err(|e| {
                            EngineError::Load(noswalker_core::disk_graph::LoadError::Device(e))
                        })?;
                    let rns = self
                        .graph
                        .device()
                        .read(swap_base, &mut buf[..n])
                        .map_err(|e| {
                            EngineError::Load(noswalker_core::disk_graph::LoadError::Device(e))
                        })?;
                    clock.sync_io(penalty(wns + rns));
                    left -= n as u64;
                }
                metrics.record_swap(swap_bytes, 0);
                let at = clock.now();
                tr.emit(|| TraceEvent::Swap {
                    bytes: swap_bytes,
                    at_ns: at,
                });
            }
            // Synchronous buffered I/O: the whole load+swap service time
            // is a stall, attributed to the block being processed.
            let stall_until = clock.now();
            if stall_until > load_at {
                tr.emit(|| TraceEvent::Stall {
                    waiting_for: Some(b),
                    from_ns: load_at,
                    until_ns: stall_until,
                });
            }

            // Re-entry: move each walker as far as it stays in the block,
            // tracking which 4 KiB pages get touched.
            let num_pages = info.num_fine_pages().max(1);
            let mut touched = vec![false; num_pages as usize];
            let mut mark = |r: std::ops::Range<u64>| {
                if r.is_empty() {
                    return;
                }
                let first = (r.start - info.byte_start) / FINE_PAGE_BYTES;
                let last = (r.end - 1 - info.byte_start) / FINE_PAGE_BYTES;
                for p in first..=last {
                    touched[p as usize] = true;
                }
            };

            let bucket = std::mem::take(&mut set.buckets[b as usize]);
            for i in bucket {
                loop {
                    let Some(w) = set.get(i) else { break };
                    if !self.app.is_active(w) {
                        set.retire(&self.app, i);
                        break;
                    }
                    let loc: VertexId = self.app.location(w);
                    if self.graph.degree(loc) == 0 {
                        set.retire(&self.app, i);
                        break;
                    }
                    let Some(view) = block.vertex_edges(&self.graph, loc) else {
                        set.rebucket(&self.app, &self.graph, i);
                        break;
                    };
                    mark(self.graph.vertex_byte_range(loc));
                    let dst = self.app.sample(&view, &mut rng);
                    clock.advance_compute(self.opts.sample_cost());
                    let w = set.get_mut(i).expect("live");
                    self.app.action(w, dst, &mut rng);
                    clock.advance_compute(self.opts.step_cost());
                    metrics.record_step(StepSource::Block);
                }
            }
            let accessed = touched.iter().filter(|&&t| t).count() as f64;
            trace.push(TracePoint {
                io_number: epoch,
                unterminated: set.live(),
                accessed_fraction: accessed / num_pages as f64,
            });
        }

        metrics.set_walkers_finished(set.finished());
        let (steps, walkers_finished, end_at) =
            (metrics.steps, metrics.walkers_finished, clock.now());
        tr.emit(|| TraceEvent::RunEnd {
            steps,
            walkers_finished,
            at_ns: end_at,
        });
        metrics.finalize_clock(&clock);
        metrics.finalize_wall(&wall);
        metrics.set_peak_memory(self.budget.peak());
        metrics.derive_edges_loaded(self.graph.format().record_bytes() as u64);
        Ok(TracedRun { metrics, trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_core::apps_prelude::*;
    use noswalker_graph::generators;
    use noswalker_storage::{SimSsd, SsdProfile};

    #[derive(Debug)]
    struct Basic {
        walkers: u64,
        length: u32,
        n: u32,
    }
    #[derive(Debug, Clone)]
    struct W {
        at: u32,
        step: u32,
    }
    impl Walk for Basic {
        type Walker = W;
        fn total_walkers(&self) -> u64 {
            self.walkers
        }
        fn generate(&self, i: u64, _r: &mut WalkRng) -> W {
            W {
                at: (i % self.n as u64) as u32,
                step: 0,
            }
        }
        fn location(&self, w: &W) -> u32 {
            w.at
        }
        fn is_active(&self, w: &W) -> bool {
            w.step < self.length
        }
        fn sample(&self, v: &VertexEdges<'_>, r: &mut WalkRng) -> u32 {
            uniform_sample(v, r)
        }
        fn action(&self, w: &mut W, next: u32, _r: &mut WalkRng) -> bool {
            w.at = next;
            w.step += 1;
            true
        }
    }

    fn engine(walkers: u64) -> GraphWalker<Basic> {
        let csr = generators::rmat(10, 8, generators::RmatParams::default(), 17);
        let n = csr.num_vertices() as u32;
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).unwrap());
        GraphWalker::new(
            Arc::new(Basic {
                walkers,
                length: 8,
                n,
            }),
            graph,
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        )
    }

    #[test]
    fn completes_and_reenters() {
        let m = engine(300).run(4).unwrap();
        assert_eq!(m.walkers_finished, 300);
        assert!(m.steps > 0);
        // Re-entry means fewer loads than DrunkardMob would need: the
        // average steps per load should clearly exceed one per walker-epoch.
        assert!(m.steps as f64 / m.coarse_loads as f64 > 1.0);
    }

    #[test]
    fn trace_has_one_point_per_io_and_declines() {
        let t = engine(300).run_traced(4).unwrap();
        // One trace point per epoch; cache hits make epochs ≥ real loads.
        assert!(t.trace.len() as u64 >= t.metrics.coarse_loads);
        let first = t.trace.first().unwrap();
        let last = t.trace.last().unwrap();
        assert!(first.unterminated >= last.unterminated);
        for p in &t.trace {
            assert!((0.0..=1.0).contains(&p.accessed_fraction));
        }
    }

    #[test]
    fn swap_io_is_charged_for_large_walker_counts() {
        let m = engine(100_000).run(5).unwrap();
        assert!(m.swap_bytes > 0);
        assert_eq!(m.walkers_finished, 100_000);
    }

    #[test]
    fn deterministic() {
        let mut a = engine(200).run(6).unwrap();
        let mut b = engine(200).run(6).unwrap();
        a.wall_ns = 0;
        b.wall_ns = 0;
        assert_eq!(a, b);
    }
}
