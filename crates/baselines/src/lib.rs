//! Baseline random walk systems the paper compares NosWalker against.
//!
//! All baselines run the same [`noswalker_core::Walk`] applications over
//! the same [`noswalker_core::OnDiskGraph`] + simulated devices, so every
//! difference in the measured numbers comes from the *scheduling policy and
//! walker management* — exactly the variables the paper studies.
//!
//! | module | paper system | policy |
//! |---|---|---|
//! | [`drunkardmob`] | DrunkardMob (RecSys '13) | synchronous round-robin block streaming, one step per walker per epoch, all walker states pinned in memory |
//! | [`graphwalker`] | GraphWalker (ATC '20) | state-aware hottest-block-first loading, walk-as-far-as-possible re-entry, fixed walker buffer with disk swapping, synchronous buffered I/O |
//! | [`graphene`] | Graphene (FAST '17) | disk-order scan with on-demand 4 KiB page I/O, skipping walker-free blocks |
//! | [`grasorw`] | GraSorw (VLDB '22) | second-order bi-block scheduling over (location, candidate) block pairs |
//! | [`in_memory`] | ThunderRW (VLDB '21) | whole graph resident; separates load time from walk time |
//! | [`distributed`] | KnightKing (SOSP '19) | partitioned in-memory cluster with per-hop network messages |

#![forbid(unsafe_code)]
// Walker-movement loops re-borrow the walker set mutably inside the body,
// so clippy's `while let` suggestion does not compile there.
#![allow(clippy::while_let_loop)]

pub mod common;
pub mod distributed;
pub mod drunkardmob;
pub mod graphene;
pub mod graphwalker;
pub mod grasorw;
pub mod in_memory;

pub use distributed::{DistributedSim, NetworkProfile};
pub use drunkardmob::DrunkardMob;
pub use graphene::Graphene;
pub use graphwalker::{GraphWalker, TracePoint};
pub use grasorw::GraSorw;
pub use in_memory::InMemory;
