//! Deterministic query-to-shard routing.

use noswalker_graph::VertexId;
use std::ops::Range;

/// Maps vertices (and therefore queries, via their first walker's start
/// vertex) to the shard owning them.
///
/// The router is a plain sorted-range lookup over the contiguous ranges
/// produced by `Partition::shard_ranges` — no hashing, no iteration-order
/// dependence, so the serving digest path stays deterministic (lint rule
/// L9).
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// `ends[s]` = one past the last vertex shard `s` owns. Ranges are
    /// contiguous and non-decreasing; empty shards repeat the previous
    /// end.
    ends: Vec<VertexId>,
}

impl ShardRouter {
    /// Builds a router from the shard placement ranges (contiguous,
    /// covering the vertex space in order).
    ///
    /// # Panics
    ///
    /// Panics if `ranges` is empty.
    pub fn new(ranges: &[Range<VertexId>]) -> Self {
        assert!(!ranges.is_empty(), "need at least one shard range");
        ShardRouter {
            ends: ranges.iter().map(|r| r.end).collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.ends.len()
    }

    /// The shard owning vertex `v`. Out-of-range vertices clamp to the
    /// last shard (they cannot occur for walkers on a stored graph).
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.ends
            .partition_point(|&e| e <= v)
            .min(self.ends.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_range_lookup() {
        let r = ShardRouter::new(&[0..4, 4..10, 10..16]);
        assert_eq!(r.num_shards(), 3);
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(3), 0);
        assert_eq!(r.shard_of(4), 1);
        assert_eq!(r.shard_of(9), 1);
        assert_eq!(r.shard_of(10), 2);
        assert_eq!(r.shard_of(15), 2);
        // Out of range clamps to the last shard.
        assert_eq!(r.shard_of(99), 2);
    }

    #[test]
    fn empty_ranges_never_own_a_vertex() {
        let r = ShardRouter::new(&[0..0, 0..0, 0..2, 2..3, 3..3]);
        assert_eq!(r.shard_of(0), 2);
        assert_eq!(r.shard_of(1), 2);
        assert_eq!(r.shard_of(2), 3);
    }
}
