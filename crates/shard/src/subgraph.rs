//! Per-shard sub-CSR construction.

use noswalker_graph::{Csr, CsrBuilder, VertexId};
use std::ops::Range;

/// Builds shard `owned`'s sub-CSR: the **full** vertex-id space of `csr`
/// (so vertex ids, RWR teleport anchors, and `v % |V|` start-vertex
/// arithmetic stay globally meaningful), but with edges only for the
/// owned contiguous range. Weights and alias tables are carried over for
/// the owned edges, preserving the source's edge format.
///
/// Foreign vertices have degree zero on this shard; the serving round app
/// never samples them — a walker parked at one is inactive here and is
/// handed off to the owning shard instead.
pub fn shard_subgraph(csr: &Csr, owned: Range<VertexId>) -> Csr {
    let mut b = CsrBuilder::new(csr.num_vertices());
    let mut weights = Vec::new();
    for v in owned {
        for &t in csr.neighbors(v) {
            b.push_edge(v, t);
        }
        if let Some(ws) = csr.edge_weights(v) {
            weights.extend_from_slice(ws);
        }
    }
    let mut sub = b.build();
    if csr.is_weighted() {
        sub = sub.with_weights(weights);
    }
    if csr.has_alias_tables() {
        sub = sub.build_alias_tables();
    }
    sub
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: u32) -> Csr {
        let mut b = CsrBuilder::new(n as usize);
        for v in 0..n {
            b.push_edge(v, (v + 1) % n);
        }
        b.build()
    }

    #[test]
    fn keeps_full_vertex_space_with_owned_edges_only() {
        let g = chain(16);
        let sub = shard_subgraph(&g, 4..8);
        assert_eq!(sub.num_vertices(), 16);
        assert_eq!(sub.num_edges(), 4);
        for v in 0..16u32 {
            if (4..8).contains(&v) {
                assert_eq!(sub.neighbors(v), g.neighbors(v), "owned vertex {v}");
            } else {
                assert_eq!(sub.degree(v), 0, "foreign vertex {v}");
            }
        }
    }

    #[test]
    fn full_range_reproduces_the_source_graph() {
        let g = chain(12);
        let sub = shard_subgraph(&g, 0..12);
        assert_eq!(sub.num_vertices(), g.num_vertices());
        assert_eq!(sub.num_edges(), g.num_edges());
        assert_eq!(sub.offsets(), g.offsets());
        assert_eq!(sub.targets(), g.targets());
        assert_eq!(sub.edge_format(), g.edge_format());
    }

    #[test]
    fn weights_and_alias_tables_carry_over() {
        let mut b = CsrBuilder::new(4);
        for v in 0..4u32 {
            b.push_edge(v, (v + 1) % 4);
            b.push_edge(v, (v + 2) % 4);
        }
        let g = b
            .build()
            .with_weights(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .build_alias_tables();
        let sub = shard_subgraph(&g, 2..4);
        assert!(sub.is_weighted());
        assert!(sub.has_alias_tables());
        assert_eq!(sub.edge_format(), g.edge_format());
        assert_eq!(sub.edge_weights(2), g.edge_weights(2));
        assert_eq!(sub.edge_weights(3), g.edge_weights(3));
        assert_eq!(sub.edge_weights(0), Some(&[][..]));
    }
}
