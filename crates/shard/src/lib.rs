//! Sharded serve plane: partition-aware multi-shard serving with
//! cross-shard walker handoff.
//!
//! The paper's decoupling (walkers are a few words of mobile state, never
//! swapped to disk) makes horizontal scaling almost free: a shard needs
//! only a *handoff channel*, not a distributed graph store. This crate
//! builds an N-shard serve plane on top of the single-shard
//! [`noswalker_serve::ServeEngine`] machinery:
//!
//! ```text
//!   arrivals ─▶ router ─▶ shard 0: device ▸ sub-CSR ▸ kernel ▸ pool ┐
//!               (start    shard 1: device ▸ sub-CSR ▸ kernel ▸ pool ┼▶ merged
//!                vertex)      …                                     │  report
//!                          shard N: device ▸ sub-CSR ▸ kernel ▸ pool ┘
//!                              ▲ per-destination handoff queues ▼
//! ```
//!
//! * **Placement** reuses the coarse-block partitioner:
//!   `Partition::shard_ranges` carves the vertex space into N contiguous,
//!   byte-balanced ranges. Each shard stores a sub-CSR that keeps the
//!   *full* vertex-id space (so vertex ids, degrees-at-owned-vertices and
//!   RWR teleport targets are globally meaningful) but holds edges only
//!   for its owned range, on its own simulated device.
//! * **Routing** is a deterministic range lookup ([`ShardRouter`]): a
//!   query is admitted on the shard owning its first walker's start
//!   vertex; no hash maps anywhere near the digest path (lint rule L9).
//! * **Handoff**: a walker that steps across a partition boundary goes
//!   inactive on its shard, retires through the engine's cancellation
//!   path (keeping each kernel round's walker-completion law balanced),
//!   and is parked in a per-destination queue. Next round the owning
//!   shard re-admits it with its full state — vertex, step count, private
//!   RNG stream — intact, so a walker's trajectory is identical whether
//!   or not it ever crossed a boundary. The plane enforces the exact
//!   conservation law `walkers_emigrated == walkers_immigrated +
//!   in_flight` ([`noswalker_core::audit_handoffs`]) after every round.
//! * **Clock**: each round advances the shared [`noswalker_core::ModelClock`]
//!   by the *maximum* of the shards' deterministic `advance_ns` charges —
//!   shards work in parallel in the model, which is why an overloaded
//!   plane serves more queries per modeled second with more shards.
//!
//! With one shard the plane degenerates to exactly the unsharded engine:
//! same admission decisions, same round carving, same walker streams —
//! the `N = 1` parity test asserts the reports are bit-identical.

#![forbid(unsafe_code)]

pub mod plane;
pub mod router;
pub mod subgraph;

pub use plane::{ShardPlane, ShardReport};
pub use router::ShardRouter;
pub use subgraph::shard_subgraph;
