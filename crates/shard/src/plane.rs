//! The sharded serving loop: N single-shard round engines under one
//! deterministic clock, stitched together by walker handoff.
//!
//! Each round the plane mirrors the six phases of
//! [`noswalker_serve::ServeEngine`] — drain arrivals (routed to their
//! home shard's admission controller), activate per-shard up to each
//! shard's walker-pool quota, expire at the boundary, carve fresh walker
//! chunks per shard in global EDF order, run every shard's round on its
//! own kernel, fold per-slot results back — plus the sharded extras:
//! walkers parked at foreign vertices drain into per-destination handoff
//! queues ([`TraceEvent::ShardHandoff`]) and re-enter on the owning shard
//! next round; a query whose deadline fires while walkers are in flight
//! *drains* (its handed-off walkers retire through pre-cancelled slots)
//! instead of finalizing early, keeping the query-conservation law exact.
//! The clock advances by the **maximum** of the shards' `advance_ns`
//! charges: shards are parallel in the model. With one shard every phase
//! degenerates to the unsharded engine's behavior bit-for-bit.

use crate::router::ShardRouter;
use crate::subgraph::shard_subgraph;
use noswalker_core::audit::{Trace, TraceEvent, TraceSink};
use noswalker_core::{
    audit_handoffs, audit_queries, Backend, LatencyHistogram, ModelClock, OnDiskGraph,
    ParallelKernel, QuerySource, QuerySpec, QueryStats, RunMetrics, SequentialKernel, StepKernel,
    StoreError,
};
use noswalker_graph::{Csr, Partition, VertexId};
use noswalker_serve::{
    query_stream_seed, Admission, AdmissionController, QueryClass, QueryOutcome, QueryTable,
    RoundApp, ServeError, ServeOptions, ServeReport, ServeWalker,
};
use noswalker_storage::{Device, MemoryBudget};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

/// Same deadline edge rule as the unsharded engine: a deadline landing
/// exactly on the clock has passed.
fn deadline_passed(deadline_ns: Option<u64>, now_ns: u64) -> bool {
    deadline_ns.is_some_and(|d| d <= now_ns)
}

/// Whether `spec` runs on the parallel kernel under `backend` — the same
/// per-query routing rule as the unsharded engine.
fn on_par(backend: Backend, spec: &QuerySpec) -> bool {
    match backend {
        Backend::Seq => false,
        Backend::Par => true,
        Backend::Auto => spec.deadline_ns.is_none(),
    }
}

/// One shard's immutable serving substrate: its sub-graph on its own
/// device, its share of the memory budget, and its owned vertex range.
struct ShardHome {
    graph: Arc<OnDiskGraph>,
    budget: Arc<MemoryBudget>,
    owned: Range<VertexId>,
}

/// A query in the plane's active set.
struct ActiveQuery {
    spec: QuerySpec,
    class: QueryClass,
    stats: QueryStats,
    digest: u64,
    deadline_missed: bool,
    /// The shard that admitted the query and issues its fresh walkers.
    home: u32,
    /// Deadline fired but walkers are still in flight across shards: no
    /// more fresh walkers are issued, handed-off walkers retire through
    /// pre-cancelled slots, and the query finalizes once every issued
    /// walker is accounted for.
    draining: bool,
}

impl ActiveQuery {
    /// Budget still issuable as fresh walkers (zero once draining — a
    /// missed query surrenders its remaining budget, like the unsharded
    /// engine's immediate finalize).
    fn fresh_unissued(&self) -> u64 {
        if self.draining {
            0
        } else {
            self.spec.walkers - self.stats.issued
        }
    }

    /// Issued walkers not yet terminated: parked in a handoff queue.
    fn in_flight(&self) -> u64 {
        self.stats.issued - self.stats.completed - self.stats.cancelled
    }
}

/// Per-(shard, kernel) round-carve state.
#[derive(Default)]
struct Group {
    entries: Vec<(QueryClass, u32, Option<u64>, u64)>,
    chunks: Vec<(u32, u64, u64)>,
    /// `(index into active, table slot, fresh walkers issued)`; immigrant
    /// -only slots charge zero fresh walkers.
    charged: Vec<(usize, u32, u64)>,
    resumed: Vec<ServeWalker>,
    /// Slots to pre-cancel before the round runs (draining queries).
    precancel: Vec<u32>,
    /// `query id → slot` for this group (linear scan; tiny and
    /// deterministic — no hash maps in the digest path, lint rule L9).
    slot_of_query: Vec<(u64, u32)>,
}

/// Mutable plane state threaded through the run's helpers.
struct PlaneState<'a> {
    clock: ModelClock,
    outcomes: Vec<QueryOutcome>,
    /// Per-shard completion-latency histograms (by query class), merged
    /// into the global report at run end.
    shard_histograms: Vec<BTreeMap<String, LatencyHistogram>>,
    trace: Trace<'a>,
}

impl PlaneState<'_> {
    /// Terminates an active query — identical bookkeeping to the
    /// unsharded engine, except the latency sample lands in the query's
    /// *home shard's* histogram.
    fn finalize(&mut self, q: ActiveQuery) {
        let now = self.clock.now_ns();
        let degraded = q.stats.cancelled > 0 || q.stats.issued < q.spec.walkers;
        if q.deadline_missed {
            let deadline_ns = q.spec.deadline_ns.unwrap_or(now);
            let query = q.spec.id;
            self.trace.emit(|| TraceEvent::QueryDeadlineMiss {
                query,
                deadline_ns,
                at_ns: now,
            });
        }
        let latency = now.saturating_sub(q.spec.arrival_ns);
        self.shard_histograms[q.home as usize]
            .entry(q.class.name().to_string())
            .or_default()
            .record(latency);
        let (query, issued, completed, cancelled) = (
            q.spec.id,
            q.stats.issued,
            q.stats.completed,
            q.stats.cancelled,
        );
        self.trace.emit(|| TraceEvent::QueryCompleted {
            query,
            issued,
            completed,
            cancelled,
            degraded,
            at_ns: now,
        });
        self.outcomes.push(QueryOutcome {
            id: q.spec.id,
            class: q.class.name().to_string(),
            stats: q.stats,
            latency_ns: Some(latency),
            degraded,
            deadline_missed: q.deadline_missed,
            shed: false,
            retry_after_ns: None,
            digest: q.digest,
        });
    }

    /// Records a shed outcome (admission rejection or backstop drain).
    fn shed(&mut self, q: QuerySpec, retry_after_ns: u64) {
        let now = self.clock.now_ns();
        let query = q.id;
        self.trace.emit(|| TraceEvent::QueryShed {
            query,
            retry_after_ns,
            at_ns: now,
        });
        self.outcomes.push(QueryOutcome {
            id: q.id,
            class: q.class.clone(),
            stats: QueryStats {
                id: q.id,
                budget: q.walkers,
                ..QueryStats::default()
            },
            latency_ns: None,
            degraded: false,
            deadline_missed: false,
            shed: true,
            retry_after_ns: Some(retry_after_ns),
            digest: 0,
        });
    }
}

/// Everything a sharded serving run produced: the merged [`ServeReport`]
/// plus the shard-plane extras.
#[derive(Debug)]
pub struct ShardReport {
    /// The merged report — outcomes, global histograms, merged metrics —
    /// directly comparable to an unsharded [`ServeReport`].
    pub report: ServeReport,
    /// Per-shard completion-latency histograms (what the global
    /// `report.histograms` were merged from).
    pub shard_histograms: Vec<BTreeMap<String, LatencyHistogram>>,
    /// Total cross-shard handoff hops (emigrations).
    pub walkers_emigrated: u64,
    /// Total handed-off walkers re-admitted (equals `walkers_emigrated`
    /// at run end — the conservation law with zero in flight).
    pub walkers_immigrated: u64,
}

/// The N-shard serve plane (see module docs).
pub struct ShardPlane {
    shards: Vec<ShardHome>,
    router: ShardRouter,
    opts: ServeOptions,
    nv: u32,
}

impl std::fmt::Debug for ShardPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPlane")
            .field("shards", &self.shards.len())
            .field("opts", &self.opts)
            .finish()
    }
}

impl ShardPlane {
    /// Builds an N-shard plane over `csr`: one shard per device, each
    /// owning a contiguous byte-balanced vertex range
    /// (`Partition::shard_ranges`), storing its sub-graph on its device
    /// with a block size scaled by its share of the edge region, and
    /// holding an equal share of `budget_bytes`. With one device this is
    /// exactly the unsharded configuration (`block_bytes`, full budget,
    /// whole graph).
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from writing a shard's sub-graph.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn build(
        csr: &Csr,
        devices: Vec<Arc<dyn Device>>,
        budget_bytes: u64,
        block_bytes: u64,
        opts: ServeOptions,
    ) -> Result<Self, StoreError> {
        assert!(!devices.is_empty(), "need at least one shard device");
        let n = devices.len();
        let ranges = Partition::shard_ranges(csr, csr.edge_format(), n as u32);
        let router = ShardRouter::new(&ranges);
        let total_edges = csr.num_edges().max(1);
        let per_budget = (budget_bytes / n as u64).max(1);
        let mut shards = Vec::with_capacity(n);
        for (range, device) in ranges.into_iter().zip(devices) {
            let sub = shard_subgraph(csr, range.clone());
            let shard_block =
                ((block_bytes as u128 * sub.num_edges() as u128) / total_edges as u128) as u64;
            let graph = Arc::new(OnDiskGraph::store(&sub, device, shard_block.max(1))?);
            shards.push(ShardHome {
                graph,
                budget: MemoryBudget::new(per_budget),
                owned: range,
            });
        }
        Ok(ShardPlane {
            shards,
            router,
            opts,
            nv: csr.num_vertices() as u32,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The serving options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// The vertex range shard `s` owns.
    pub fn owned_range(&self, s: usize) -> Range<VertexId> {
        self.shards[s].owned.clone()
    }

    /// The home shard of a query: the shard owning its first walker's
    /// start vertex. Unparseable class specs route to shard 0 (the error
    /// surfaces at activation, as in the unsharded engine).
    fn route(&self, q: &QuerySpec) -> usize {
        QueryClass::parse(&q.class)
            .map(|c| self.router.shard_of(c.start_vertex(0, self.nv)))
            .unwrap_or(0)
    }

    /// Serves every query `source` yields across all shards and returns
    /// the merged report. In debug builds the handoff conservation law
    /// ([`audit_handoffs`]) is asserted after every round and at run end,
    /// and the per-query conservation law ([`audit_queries`]) on the
    /// final report.
    ///
    /// # Errors
    ///
    /// [`ServeError::Engine`] when a shard's round fails;
    /// [`ServeError::BadQueryClass`] when an admitted query's class spec
    /// does not parse.
    #[allow(clippy::too_many_lines)] // One round-loop, mirrored phase by phase on ServeEngine::run.
    pub fn run(
        &self,
        source: &mut dyn QuerySource,
        sink: Option<&mut dyn TraceSink>,
    ) -> Result<ShardReport, ServeError> {
        let n = self.shards.len();
        let step_cost = self.opts.engine.step_cost();
        // All-raw pre-sample retention, as in the unsharded engine: keeps
        // walker movement independent of refill scheduling on any kernel.
        let mut round_opts = self.opts.engine.clone();
        round_opts.low_degree_threshold = u32::MAX;
        let mut quotas = Vec::with_capacity(n);
        let mut seq_kernels = Vec::with_capacity(n);
        let mut par_kernels = Vec::with_capacity(n);
        let mut admissions = Vec::with_capacity(n);
        for sh in &self.shards {
            quotas.push(self.opts.engine.walker_pool_quota(
                &sh.budget,
                std::mem::size_of::<ServeWalker>(),
                u64::MAX,
            ));
            seq_kernels.push(SequentialKernel::new(
                Arc::clone(&sh.graph),
                round_opts.clone(),
                Arc::clone(&sh.budget),
            ));
            par_kernels.push(ParallelKernel::new(
                Arc::clone(&sh.graph),
                round_opts.clone(),
                Arc::clone(&sh.budget),
                self.opts.par_workers,
            ));
            admissions.push(AdmissionController::new(self.opts.admission.clone()));
        }
        let mut active: Vec<ActiveQuery> = Vec::new();
        let mut st = PlaneState {
            clock: ModelClock::new(),
            outcomes: Vec::new(),
            shard_histograms: vec![BTreeMap::new(); n],
            trace: Trace::from_option(sink),
        };
        let mut metrics = RunMetrics::default();
        let mut rounds = 0u64;
        /// One parked walker: the owning query and its full mobile state.
        type Parked = (u64, ServeWalker);
        let mut inbox: Vec<Vec<Parked>> = vec![Vec::new(); n];
        let mut total_emigrated = 0u64;
        let mut total_immigrated = 0u64;

        loop {
            let now = st.clock.now_ns();

            // (1) Drain time-ready arrivals into their home shard's
            // admission controller.
            while let Some(q) = source.next_ready(now, u64::MAX) {
                let home = self.route(&q);
                match admissions[home].offer(q.clone()) {
                    Admission::Admitted => {
                        let (query, walkers, deadline_ns) = (q.id, q.walkers, q.deadline_ns);
                        st.trace.emit(|| TraceEvent::QueryAdmitted {
                            query,
                            walkers,
                            deadline_ns,
                            at_ns: now,
                        });
                    }
                    Admission::Shed { retry_after_ns } => st.shed(q, retry_after_ns),
                }
            }

            // (2) Activate per shard while that shard's walker quota has
            // room.
            for (s, adm) in admissions.iter_mut().enumerate() {
                let mut unissued: u64 = active
                    .iter()
                    .filter(|q| q.home as usize == s)
                    .map(ActiveQuery::fresh_unissued)
                    .sum();
                while unissued < quotas[s] {
                    let Some(q) = adm.next_ready(now, quotas[s] - unissued) else {
                        break;
                    };
                    let Some(class) = QueryClass::parse(&q.class) else {
                        return Err(ServeError::BadQueryClass {
                            id: q.id,
                            class: q.class,
                        });
                    };
                    unissued += q.walkers;
                    active.push(ActiveQuery {
                        stats: QueryStats {
                            id: q.id,
                            budget: q.walkers,
                            ..QueryStats::default()
                        },
                        class,
                        digest: 0,
                        deadline_missed: false,
                        home: s as u32,
                        draining: false,
                        spec: q,
                    });
                }
            }

            // (3) Boundary expiry. A query whose deadline passed starts
            // draining; it finalizes only once no walker is in flight
            // (immediately, when none are — the unsharded behavior).
            let mut i = 0;
            while i < active.len() {
                let q = &mut active[i];
                let expired = deadline_passed(q.spec.deadline_ns, now) && q.fresh_unissued() > 0;
                if expired {
                    q.deadline_missed = true;
                    q.draining = true;
                }
                if (expired || q.fresh_unissued() == 0) && q.in_flight() == 0 {
                    let q = active.remove(i);
                    st.finalize(q);
                } else {
                    i += 1;
                }
            }

            // Global EDF-then-FIFO priority; per-shard carving below
            // preserves this relative order.
            active.sort_by_key(|q| {
                (
                    q.spec.deadline_ns.unwrap_or(u64::MAX),
                    q.spec.arrival_ns,
                    q.spec.id,
                )
            });

            // (4) Carve fresh walker chunks per shard, EDF order first,
            // under each shard's per-round cap.
            let mut groups: Vec<[Group; 2]> = (0..n).map(|_| Default::default()).collect();
            let mut caps: Vec<u64> = quotas
                .iter()
                .map(|&q| q.max(1).min(self.opts.round_walkers.max(1)))
                .collect();
            for (idx, q) in active.iter().enumerate() {
                let s = q.home as usize;
                if caps[s] == 0 {
                    continue;
                }
                let count = q.fresh_unissued().min(caps[s]);
                if count == 0 {
                    continue;
                }
                caps[s] -= count;
                let g = &mut groups[s][usize::from(on_par(self.opts.backend, &q.spec))];
                let slot = g.entries.len() as u32;
                let allowance = q
                    .spec
                    .deadline_ns
                    .map(|d| d.saturating_sub(now) / step_cost.max(1));
                g.entries.push((
                    q.class,
                    q.spec.walk_length,
                    allowance,
                    query_stream_seed(self.opts.seed, q.spec.id),
                ));
                g.chunks.push((slot, q.stats.issued, count));
                g.charged.push((idx, slot, count));
                g.slot_of_query.push((q.spec.id, slot));
            }

            let idle = groups
                .iter()
                .all(|gs| gs.iter().all(|g| g.entries.is_empty()))
                && inbox.iter().all(|b| b.is_empty());
            if idle {
                // Nothing runnable anywhere: jump to the next arrival or
                // stop.
                debug_assert!(active.is_empty(), "active queries always have work");
                match source.next_pending_at(st.clock.now_ns()) {
                    Some(t) if !source.is_exhausted() => {
                        st.clock.advance_to(t.max(st.clock.now_ns() + 1));
                        continue;
                    }
                    _ => break,
                }
            }

            rounds += 1;
            if rounds > self.opts.max_rounds {
                // Backstop: purge the handoff queues (each parked walker
                // counts as re-admitted and immediately cancelled, so
                // both conservation laws stay exact), finalize every
                // in-flight query as a degraded partial, and drain every
                // shard's pending queue as shed.
                rounds -= 1;
                for b in &mut inbox {
                    for (qid, _w) in b.drain(..) {
                        total_immigrated += 1;
                        metrics.record_walkers_immigrated(1);
                        active
                            .iter_mut()
                            .find(|q| q.spec.id == qid)
                            .expect("parked walker's query stays active")
                            .stats
                            .cancelled += 1;
                    }
                }
                for q in active.drain(..) {
                    st.finalize(q);
                }
                for adm in &mut admissions {
                    let retry_after_ns = adm.retry_after();
                    while let Some(q) = adm.next_ready(now, u64::MAX) {
                        st.shed(q, retry_after_ns);
                    }
                }
                break;
            }

            // (4b) Re-admit handed-off walkers on their owning shard:
            // each resumes ahead of the fresh chunks with vertex, step
            // count, and private RNG stream intact. Draining queries get
            // pre-cancelled slots so their walkers retire on contact.
            for (s, b) in inbox.iter_mut().enumerate() {
                let arrivals = std::mem::take(b);
                if arrivals.is_empty() {
                    continue;
                }
                total_immigrated += arrivals.len() as u64;
                metrics.record_walkers_immigrated(arrivals.len() as u64);
                for (qid, mut w) in arrivals {
                    let idx = active
                        .iter()
                        .position(|q| q.spec.id == qid)
                        .expect("in-flight walker's query stays active");
                    let g =
                        &mut groups[s][usize::from(on_par(self.opts.backend, &active[idx].spec))];
                    let slot = match g.slot_of_query.iter().find(|&&(id, _)| id == qid) {
                        Some(&(_, slot)) => slot,
                        None => {
                            let q = &active[idx];
                            let slot = g.entries.len() as u32;
                            let allowance = q
                                .spec
                                .deadline_ns
                                .map(|d| d.saturating_sub(now) / step_cost.max(1));
                            g.entries.push((
                                q.class,
                                q.spec.walk_length,
                                allowance,
                                query_stream_seed(self.opts.seed, qid),
                            ));
                            g.charged.push((idx, slot, 0));
                            g.slot_of_query.push((qid, slot));
                            if q.draining {
                                g.precancel.push(slot);
                            }
                            slot
                        }
                    };
                    w.slot = slot;
                    g.resumed.push(w);
                }
            }

            // (5) Run every shard's round. The shared clock advances by
            // the slowest shard (shards are parallel in the model); the
            // admission controllers all observe the *plane-wide* stall
            // rate — the global backpressure view.
            let seed = self
                .opts
                .seed
                .wrapping_add(rounds.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut max_advance = 0u64;
            let mut round_stalls = 0u64;
            let mut round_steps = 0u64;
            type Ran = (
                usize,
                Arc<QueryTable>,
                Vec<(usize, u32, u64)>,
                Arc<RoundApp>,
            );
            let mut ran: Vec<Ran> = Vec::new();
            for (s, shard_groups) in groups.into_iter().enumerate() {
                let mut shard_advance = 0u64;
                for (par, g) in shard_groups.into_iter().enumerate() {
                    if g.entries.is_empty() {
                        continue;
                    }
                    let table = Arc::new(QueryTable::new(g.entries));
                    for &slot in &g.precancel {
                        table.cancel(slot);
                    }
                    let app = Arc::new(RoundApp::sharded(
                        Arc::clone(&table),
                        g.chunks,
                        self.nv,
                        self.shards[s].owned.clone(),
                        g.resumed,
                    ));
                    let out = if par == 1 {
                        par_kernels[s].run_round(Arc::clone(&app), seed)?
                    } else {
                        seq_kernels[s].run_round(Arc::clone(&app), seed)?
                    };
                    shard_advance += out.advance_ns;
                    round_stalls += out.metrics.presample_stalls + out.metrics.pool_stalls;
                    round_steps += out.metrics.steps;
                    metrics.merge(&out.metrics);
                    ran.push((s, table, g.charged, app));
                }
                max_advance = max_advance.max(shard_advance);
            }
            st.clock.advance(max_advance);
            for adm in &mut admissions {
                adm.observe_stall_rate(round_stalls, round_steps);
            }

            // (6a) Fold per-slot results back into each query.
            let after = st.clock.now_ns();
            let mut candidates: Vec<usize> = Vec::new();
            for (_s, table, charged, _app) in &ran {
                for &(idx, slot, count) in charged {
                    let q = &mut active[idx];
                    q.stats.issued += count;
                    q.stats.completed += table.completed_walkers(slot);
                    q.stats.cancelled += table.cancelled_walkers(slot);
                    q.digest = q.digest.wrapping_add(table.digest(slot));
                    let timed_out = table.is_cancelled(slot);
                    let missed = deadline_passed(q.spec.deadline_ns, after);
                    if timed_out || missed {
                        q.deadline_missed = true;
                        q.draining = true;
                    }
                    candidates.push(idx);
                }
            }

            // (6b) Drain emigrants into per-destination handoff queues,
            // on a deterministic key so parallel retirement order never
            // leaks into re-admission order.
            for (s, table, charged, app) in &ran {
                let mut slot_to_qidx = vec![usize::MAX; table.len()];
                for &(idx, slot, _) in charged {
                    slot_to_qidx[slot as usize] = idx;
                }
                let mut ems = app.take_emigrants();
                if ems.is_empty() {
                    continue;
                }
                ems.sort_by_key(|w| {
                    (
                        active[slot_to_qidx[w.slot as usize]].spec.id,
                        w.rng,
                        w.step,
                        w.at,
                    )
                });
                total_emigrated += ems.len() as u64;
                metrics.record_walkers_emigrated(ems.len() as u64);
                let mut per_dest = vec![0u64; n];
                for w in ems {
                    let qid = active[slot_to_qidx[w.slot as usize]].spec.id;
                    let dest = self.router.shard_of(w.at);
                    per_dest[dest] += 1;
                    inbox[dest].push((qid, w));
                }
                for (dest, &walkers) in per_dest.iter().enumerate() {
                    if walkers == 0 {
                        continue;
                    }
                    let (from_shard, to_shard) = (*s as u32, dest as u32);
                    st.trace.emit(|| TraceEvent::ShardHandoff {
                        from_shard,
                        to_shard,
                        walkers,
                        at_ns: after,
                    });
                }
            }
            if cfg!(debug_assertions) {
                let in_flight: u64 = inbox.iter().map(|b| b.len() as u64).sum();
                audit_handoffs(total_emigrated, total_immigrated, in_flight).assert_clean();
            }

            // (6c) Terminate finished queries: budget fully issued (or
            // surrendered by draining) and nothing in flight.
            let mut done: Vec<usize> = candidates
                .into_iter()
                .filter(|&idx| {
                    let q = &active[idx];
                    (q.draining || q.fresh_unissued() == 0) && q.in_flight() == 0
                })
                .collect();
            done.sort_unstable_by(|a, b| b.cmp(a));
            done.dedup();
            for idx in done {
                let q = active.remove(idx);
                st.finalize(q);
            }
        }

        // Modeled time only, as in the unsharded engine.
        metrics.set_wall_ns(0);
        if cfg!(debug_assertions) {
            // Run-end conservation: every emigrated walker was re-admitted.
            audit_handoffs(total_emigrated, total_immigrated, 0).assert_clean();
        }

        let PlaneState {
            clock,
            outcomes,
            shard_histograms,
            ..
        } = st;
        let mut histograms: BTreeMap<String, LatencyHistogram> = BTreeMap::new();
        for h in &shard_histograms {
            for (k, v) in h {
                histograms.entry(k.clone()).or_default().merge(v);
            }
        }
        let report = ServeReport {
            end_ns: clock.now_ns(),
            outcomes,
            histograms,
            metrics,
            rounds,
        };
        if cfg!(debug_assertions) {
            audit_queries(&report.query_stats()).assert_clean();
        }
        Ok(ShardReport {
            report,
            shard_histograms,
            walkers_emigrated: total_emigrated,
            walkers_immigrated: total_immigrated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_core::{MemorySink, StaticQuerySource};
    use noswalker_graph::generators;
    use noswalker_serve::ServeEngine;
    use noswalker_storage::{per_shard_devices, SimSsd, SsdProfile};

    const BLOCK: u64 = 2048;
    const BUDGET: u64 = 64 << 10;

    fn graph() -> Csr {
        generators::uniform_degree(64, 4, 11)
    }

    fn plane(shards: usize) -> ShardPlane {
        let csr = graph();
        let devices = per_shard_devices(shards, 1, SsdProfile::nvme_p4618(), 64 << 10);
        ShardPlane::build(&csr, devices, BUDGET, BLOCK, ServeOptions::default()).expect("build")
    }

    fn spec(id: u64, class: &str, walkers: u64, arrival_ns: u64) -> QuerySpec {
        QuerySpec {
            id,
            class: class.into(),
            walkers,
            walk_length: 5,
            deadline_ns: None,
            arrival_ns,
        }
    }

    /// A mix whose start vertices spread across the vertex space, so
    /// multi-shard runs actually hand walkers off.
    fn spread_mix() -> Vec<QuerySpec> {
        vec![
            spec(1, "ppr:3", 40, 0),
            spec(2, "basic", 30, 500),
            spec(3, "deepwalk:40", 20, 1_000),
            spec(4, "rwr:60:0.2", 25, 1_500),
            spec(5, "ppr:33", 15, 2_000),
        ]
    }

    #[test]
    fn one_shard_matches_the_unsharded_engine_bit_for_bit() {
        let csr = graph();
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, BLOCK).expect("store"));
        let budget = MemoryBudget::new(BUDGET);
        let engine = ServeEngine::new(graph, budget, ServeOptions::default());
        let mut src = StaticQuerySource::new(spread_mix());
        let reference = engine.run(&mut src, None).expect("serve");

        let p = plane(1);
        let mut src = StaticQuerySource::new(spread_mix());
        let sharded = p.run(&mut src, None).expect("serve");

        assert_eq!(sharded.report.outcomes, reference.outcomes);
        assert_eq!(sharded.report.end_ns, reference.end_ns);
        assert_eq!(sharded.report.rounds, reference.rounds);
        assert_eq!(sharded.report.histograms, reference.histograms);
        assert_eq!(sharded.report.metrics.steps, reference.metrics.steps);
        assert_eq!(sharded.walkers_emigrated, 0);
        assert_eq!(sharded.walkers_immigrated, 0);
    }

    #[test]
    fn multi_shard_serves_everything_and_conserves_handoffs() {
        let p = plane(4);
        let mut src = StaticQuerySource::new(spread_mix());
        let r = p.run(&mut src, None).expect("serve");
        assert_eq!(r.report.outcomes.len(), 5);
        assert_eq!(r.report.completed_count(), 5);
        for o in &r.report.outcomes {
            assert_eq!(o.stats.issued, o.stats.budget);
            assert_eq!(o.stats.completed + o.stats.cancelled, o.stats.issued);
            assert_ne!(o.digest, 0);
        }
        assert!(r.walkers_emigrated > 0, "spread mix must cross boundaries");
        assert_eq!(r.walkers_emigrated, r.walkers_immigrated);
        assert_eq!(r.report.metrics.walkers_emigrated, r.walkers_emigrated);
        assert_eq!(r.report.metrics.walkers_immigrated, r.walkers_immigrated);
        audit_handoffs(r.walkers_emigrated, r.walkers_immigrated, 0).assert_clean();
    }

    #[test]
    fn sharded_digests_match_the_unsharded_engine() {
        // Walker trajectories are shard-count invariant: handoff preserves
        // the walker's private stream, so per-query digests are identical
        // at any shard count.
        let csr = graph();
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let g = Arc::new(OnDiskGraph::store(&csr, device, BLOCK).expect("store"));
        let engine = ServeEngine::new(g, MemoryBudget::new(BUDGET), ServeOptions::default());
        let mut src = StaticQuerySource::new(spread_mix());
        let reference = engine.run(&mut src, None).expect("serve");
        for shards in [2usize, 3, 4] {
            let p = plane(shards);
            let mut src = StaticQuerySource::new(spread_mix());
            let r = p.run(&mut src, None).expect("serve");
            for o in &reference.outcomes {
                let s = r
                    .report
                    .outcomes
                    .iter()
                    .find(|x| x.id == o.id)
                    .expect("query");
                assert_eq!(s.digest, o.digest, "query {} at {shards} shards", o.id);
                assert_eq!(s.stats.completed, o.stats.completed);
            }
        }
    }

    #[test]
    fn sharded_runs_are_bit_identical() {
        let mk = || {
            let p = plane(3);
            let mut src = StaticQuerySource::new(spread_mix());
            p.run(&mut src, None).expect("serve")
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.report.outcomes, b.report.outcomes);
        assert_eq!(a.report.end_ns, b.report.end_ns);
        assert_eq!(a.walkers_emigrated, b.walkers_emigrated);
    }

    #[test]
    fn handoff_events_land_in_the_trace() {
        let p = plane(4);
        let mut src = StaticQuerySource::new(spread_mix());
        let mut sink = MemorySink::new();
        p.run(&mut src, Some(&mut sink)).expect("serve");
        let handoffs: u64 = sink
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ShardHandoff { walkers, .. } => Some(*walkers),
                _ => None,
            })
            .sum();
        assert!(handoffs > 0, "spread mix must emit handoff events");
    }

    #[test]
    fn draining_query_with_in_flight_walkers_conserves_walkers() {
        // A short deadline on a spread query forces the miss to land
        // while walkers are parked in handoff queues; the query must
        // drain (walkers cancelled on re-admission) rather than lose
        // them.
        let p = plane(4);
        let mut q = spec(1, "basic", 200, 0);
        q.deadline_ns = Some(50_000);
        let mut src = StaticQuerySource::new(vec![q, spec(2, "ppr:50", 30, 0)]);
        let r = p.run(&mut src, None).expect("serve");
        assert_eq!(r.report.outcomes.len(), 2);
        for o in &r.report.outcomes {
            assert_eq!(o.stats.completed + o.stats.cancelled, o.stats.issued);
        }
        assert_eq!(r.walkers_emigrated, r.walkers_immigrated);
    }
}
