//! The sharded serving plane: N single-shard lanes under one
//! deterministic clock, stitched together by walker handoff.
//!
//! The round state machine — drain arrivals (routed to their home
//! shard's admission controller), activate per-shard up to each shard's
//! walker-pool quota, expire at the boundary, carve fresh walker chunks
//! per shard in global EDF order, run every shard's round on its own
//! kernel, fold per-slot results back, and drain emigrants into
//! per-destination handoff queues ([`TraceEvent::ShardHandoff`]) — lives
//! in [`noswalker_serve::TickCore`], shared with the unsharded engine
//! and the realtime driver. [`ShardPlane`] is the N-lane *lockstep*
//! shell: it builds one [`LaneConfig`] per shard, injects a
//! [`LaneRouter`] backed by the range-lookup [`ShardRouter`], and drives
//! ticks with a [`ModelClock`]. A query whose deadline fires while
//! walkers are in flight *drains* (its handed-off walkers retire through
//! pre-cancelled slots) instead of finalizing early, keeping the
//! query-conservation law exact. The clock advances by the **maximum**
//! of the shards' `advance_ns` charges: shards are parallel in the
//! model. With one shard every phase degenerates to the unsharded
//! engine's behavior bit-for-bit.

use crate::router::ShardRouter;
use crate::subgraph::shard_subgraph;
use noswalker_core::audit::{Trace, TraceSink};
use noswalker_core::{
    LatencyHistogram, ModelClock, OnDiskGraph, QuerySource, QuerySpec, StoreError, TickClock,
};
use noswalker_graph::{Csr, Partition, VertexId};
use noswalker_serve::{
    LaneConfig, LaneRouter, QueryClass, ServeError, ServeOptions, ServeReport, Tick, TickCore,
};
use noswalker_storage::{Device, MemoryBudget};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

/// One shard's immutable serving substrate: its sub-graph on its own
/// device, its share of the memory budget, and its owned vertex range.
struct ShardHome {
    graph: Arc<OnDiskGraph>,
    budget: Arc<MemoryBudget>,
    owned: Range<VertexId>,
}

/// The plane's [`LaneRouter`]: a query's home shard owns its first
/// walker's start vertex; a walker's owner is looked up by vertex range.
/// Unparseable class specs route to shard 0 (the error surfaces at
/// activation, as in the unsharded engine).
#[derive(Debug, Clone)]
struct PlaneRouter {
    router: ShardRouter,
    nv: u32,
}

impl LaneRouter for PlaneRouter {
    fn home_of(&self, q: &QuerySpec) -> usize {
        QueryClass::parse(&q.class)
            .map(|c| self.router.shard_of(c.start_vertex(0, self.nv)))
            .unwrap_or(0)
    }

    fn lane_of(&self, v: VertexId) -> usize {
        self.router.shard_of(v)
    }
}

/// Everything a sharded serving run produced: the merged [`ServeReport`]
/// plus the shard-plane extras.
#[derive(Debug)]
pub struct ShardReport {
    /// The merged report — outcomes, global histograms, merged metrics —
    /// directly comparable to an unsharded [`ServeReport`].
    pub report: ServeReport,
    /// Per-shard completion-latency histograms (what the global
    /// `report.histograms` were merged from).
    pub shard_histograms: Vec<BTreeMap<String, LatencyHistogram>>,
    /// Total cross-shard handoff hops (emigrations).
    pub walkers_emigrated: u64,
    /// Total handed-off walkers re-admitted (equals `walkers_emigrated`
    /// at run end — the conservation law with zero in flight).
    pub walkers_immigrated: u64,
}

/// The N-shard serve plane (see module docs).
pub struct ShardPlane {
    shards: Vec<ShardHome>,
    router: ShardRouter,
    opts: ServeOptions,
    nv: u32,
}

impl std::fmt::Debug for ShardPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPlane")
            .field("shards", &self.shards.len())
            .field("opts", &self.opts)
            .finish()
    }
}

impl ShardPlane {
    /// Builds an N-shard plane over `csr`: one shard per device, each
    /// owning a contiguous byte-balanced vertex range
    /// (`Partition::shard_ranges`), storing its sub-graph on its device
    /// with a block size scaled by its share of the edge region, and
    /// holding an equal share of `budget_bytes`. With one device this is
    /// exactly the unsharded configuration (`block_bytes`, full budget,
    /// whole graph).
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from writing a shard's sub-graph.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn build(
        csr: &Csr,
        devices: Vec<Arc<dyn Device>>,
        budget_bytes: u64,
        block_bytes: u64,
        opts: ServeOptions,
    ) -> Result<Self, StoreError> {
        assert!(!devices.is_empty(), "need at least one shard device");
        let n = devices.len();
        let ranges = Partition::shard_ranges(csr, csr.edge_format(), n as u32);
        let router = ShardRouter::new(&ranges);
        let total_edges = csr.num_edges().max(1);
        let per_budget = (budget_bytes / n as u64).max(1);
        let mut shards = Vec::with_capacity(n);
        for (range, device) in ranges.into_iter().zip(devices) {
            let sub = shard_subgraph(csr, range.clone());
            let shard_block =
                ((block_bytes as u128 * sub.num_edges() as u128) / total_edges as u128) as u64;
            let graph = Arc::new(OnDiskGraph::store(&sub, device, shard_block.max(1))?);
            shards.push(ShardHome {
                graph,
                budget: MemoryBudget::new(per_budget),
                owned: range,
            });
        }
        Ok(ShardPlane {
            shards,
            router,
            opts,
            nv: csr.num_vertices() as u32,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The serving options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// The vertex range shard `s` owns.
    pub fn owned_range(&self, s: usize) -> Range<VertexId> {
        self.shards[s].owned.clone()
    }

    /// Serves every query `source` yields across all shards and returns
    /// the merged report. In debug builds the handoff conservation law
    /// ([`noswalker_core::audit_handoffs`]) is asserted after every round
    /// and at run end, and the per-query conservation law
    /// ([`noswalker_core::audit_queries`]) on the final report.
    ///
    /// # Errors
    ///
    /// [`ServeError::Engine`] when a shard's round fails;
    /// [`ServeError::BadQueryClass`] when an admitted query's class spec
    /// does not parse.
    pub fn run(
        &self,
        source: &mut dyn QuerySource,
        sink: Option<&mut dyn TraceSink>,
    ) -> Result<ShardReport, ServeError> {
        let lanes = self
            .shards
            .iter()
            .map(|sh| LaneConfig {
                graph: Arc::clone(&sh.graph),
                budget: Arc::clone(&sh.budget),
                owned: sh.owned.clone(),
            })
            .collect();
        let mut core = TickCore::new(
            lanes,
            Box::new(PlaneRouter {
                router: self.router.clone(),
                nv: self.nv,
            }),
            self.opts.clone(),
        );
        let mut clock = ModelClock::new();
        let mut trace = Trace::from_option(sink);
        loop {
            match core.tick(&mut clock, source, &mut trace)? {
                Tick::Ran => {}
                Tick::Exhausted => break,
                Tick::Idle { next_arrival_ns } => match next_arrival_ns {
                    // Nothing runnable anywhere: jump to the next arrival
                    // or stop.
                    Some(t) if !source.is_exhausted() => {
                        clock.advance_idle(t);
                    }
                    _ => break,
                },
            }
        }
        let end_ns = TickClock::now_ns(&mut clock);
        let t = core.finish(end_ns);
        Ok(ShardReport {
            report: t.report,
            shard_histograms: t.lane_histograms,
            walkers_emigrated: t.walkers_emigrated,
            walkers_immigrated: t.walkers_immigrated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_core::audit::TraceEvent;
    use noswalker_core::{audit_handoffs, MemorySink, StaticQuerySource};
    use noswalker_graph::generators;
    use noswalker_serve::ServeEngine;
    use noswalker_storage::{per_shard_devices, SimSsd, SsdProfile};

    const BLOCK: u64 = 2048;
    const BUDGET: u64 = 64 << 10;

    fn graph() -> Csr {
        generators::uniform_degree(64, 4, 11)
    }

    fn plane(shards: usize) -> ShardPlane {
        let csr = graph();
        let devices = per_shard_devices(shards, 1, SsdProfile::nvme_p4618(), 64 << 10);
        ShardPlane::build(&csr, devices, BUDGET, BLOCK, ServeOptions::default()).expect("build")
    }

    fn spec(id: u64, class: &str, walkers: u64, arrival_ns: u64) -> QuerySpec {
        QuerySpec {
            id,
            class: class.into(),
            walkers,
            walk_length: 5,
            deadline_ns: None,
            arrival_ns,
        }
    }

    /// A mix whose start vertices spread across the vertex space, so
    /// multi-shard runs actually hand walkers off.
    fn spread_mix() -> Vec<QuerySpec> {
        vec![
            spec(1, "ppr:3", 40, 0),
            spec(2, "basic", 30, 500),
            spec(3, "deepwalk:40", 20, 1_000),
            spec(4, "rwr:60:0.2", 25, 1_500),
            spec(5, "ppr:33", 15, 2_000),
        ]
    }

    #[test]
    fn one_shard_matches_the_unsharded_engine_bit_for_bit() {
        let csr = graph();
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, BLOCK).expect("store"));
        let budget = MemoryBudget::new(BUDGET);
        let engine = ServeEngine::new(graph, budget, ServeOptions::default());
        let mut src = StaticQuerySource::new(spread_mix());
        let reference = engine.run(&mut src, None).expect("serve");

        let p = plane(1);
        let mut src = StaticQuerySource::new(spread_mix());
        let sharded = p.run(&mut src, None).expect("serve");

        assert_eq!(sharded.report.outcomes, reference.outcomes);
        assert_eq!(sharded.report.end_ns, reference.end_ns);
        assert_eq!(sharded.report.rounds, reference.rounds);
        assert_eq!(sharded.report.histograms, reference.histograms);
        assert_eq!(sharded.report.metrics.steps, reference.metrics.steps);
        assert_eq!(sharded.walkers_emigrated, 0);
        assert_eq!(sharded.walkers_immigrated, 0);
    }

    #[test]
    fn multi_shard_serves_everything_and_conserves_handoffs() {
        let p = plane(4);
        let mut src = StaticQuerySource::new(spread_mix());
        let r = p.run(&mut src, None).expect("serve");
        assert_eq!(r.report.outcomes.len(), 5);
        assert_eq!(r.report.completed_count(), 5);
        for o in &r.report.outcomes {
            assert_eq!(o.stats.issued, o.stats.budget);
            assert_eq!(o.stats.completed + o.stats.cancelled, o.stats.issued);
            assert_ne!(o.digest, 0);
        }
        assert!(r.walkers_emigrated > 0, "spread mix must cross boundaries");
        assert_eq!(r.walkers_emigrated, r.walkers_immigrated);
        assert_eq!(r.report.metrics.walkers_emigrated, r.walkers_emigrated);
        assert_eq!(r.report.metrics.walkers_immigrated, r.walkers_immigrated);
        audit_handoffs(r.walkers_emigrated, r.walkers_immigrated, 0).assert_clean();
    }

    #[test]
    fn sharded_digests_match_the_unsharded_engine() {
        // Walker trajectories are shard-count invariant: handoff preserves
        // the walker's private stream, so per-query digests are identical
        // at any shard count.
        let csr = graph();
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let g = Arc::new(OnDiskGraph::store(&csr, device, BLOCK).expect("store"));
        let engine = ServeEngine::new(g, MemoryBudget::new(BUDGET), ServeOptions::default());
        let mut src = StaticQuerySource::new(spread_mix());
        let reference = engine.run(&mut src, None).expect("serve");
        for shards in [2usize, 3, 4] {
            let p = plane(shards);
            let mut src = StaticQuerySource::new(spread_mix());
            let r = p.run(&mut src, None).expect("serve");
            for o in &reference.outcomes {
                let s = r
                    .report
                    .outcomes
                    .iter()
                    .find(|x| x.id == o.id)
                    .expect("query");
                assert_eq!(s.digest, o.digest, "query {} at {shards} shards", o.id);
                assert_eq!(s.stats.completed, o.stats.completed);
            }
        }
    }

    #[test]
    fn sharded_runs_are_bit_identical() {
        let mk = || {
            let p = plane(3);
            let mut src = StaticQuerySource::new(spread_mix());
            p.run(&mut src, None).expect("serve")
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.report.outcomes, b.report.outcomes);
        assert_eq!(a.report.end_ns, b.report.end_ns);
        assert_eq!(a.walkers_emigrated, b.walkers_emigrated);
    }

    #[test]
    fn handoff_events_land_in_the_trace() {
        let p = plane(4);
        let mut src = StaticQuerySource::new(spread_mix());
        let mut sink = MemorySink::new();
        p.run(&mut src, Some(&mut sink)).expect("serve");
        let handoffs: u64 = sink
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ShardHandoff { walkers, .. } => Some(*walkers),
                _ => None,
            })
            .sum();
        assert!(handoffs > 0, "spread mix must emit handoff events");
    }

    #[test]
    fn draining_query_with_in_flight_walkers_conserves_walkers() {
        // A short deadline on a spread query forces the miss to land
        // while walkers are parked in handoff queues; the query must
        // drain (walkers cancelled on re-admission) rather than lose
        // them.
        let p = plane(4);
        let mut q = spec(1, "basic", 200, 0);
        q.deadline_ns = Some(50_000);
        let mut src = StaticQuerySource::new(vec![q, spec(2, "ppr:50", 30, 0)]);
        let r = p.run(&mut src, None).expect("serve");
        assert_eq!(r.report.outcomes.len(), 2);
        for o in &r.report.outcomes {
            assert_eq!(o.stats.completed + o.stats.cancelled, o.stats.issued);
        }
        assert_eq!(r.walkers_emigrated, r.walkers_immigrated);
    }
}
