//! Degree statistics used by the structure-sensitivity experiments (§4.3)
//! and by NosWalker's low-degree heuristics (§3.3.4).

use crate::csr::Csr;

/// Summary statistics over a graph's out-degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: u64,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: u64,
    /// Fraction of vertices with out-degree ≤ 4 (the paper's low-degree
    /// band, §3.3.4: "about 9 % of vertices with a degree of 1 in Kron30").
    pub low_degree_fraction: f64,
    /// Fraction of all edges owned by those low-degree vertices (paper:
    /// "these vertices have only about 0.3 % of the edges").
    pub low_degree_edge_fraction: f64,
    /// Gini coefficient of the degree distribution (0 = perfectly uniform,
    /// → 1 = extremely skewed); a scalar proxy for "power-law-ness".
    pub gini: f64,
}

impl DegreeStats {
    /// Computes statistics for `csr`.
    ///
    /// # Example
    ///
    /// ```
    /// use noswalker_graph::{generators, stats::DegreeStats};
    ///
    /// let g = generators::uniform_degree(1000, 12, 1);
    /// let s = DegreeStats::of(&g);
    /// assert_eq!(s.avg_degree, 12.0);
    /// assert!(s.gini < 0.01);
    /// ```
    pub fn of(csr: &Csr) -> Self {
        let n = csr.num_vertices();
        let m = csr.num_edges();
        let mut degrees: Vec<u64> = (0..n).map(|v| csr.degree(v as u32)).collect();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let low_n = degrees.iter().filter(|&&d| d > 0 && d <= 4).count();
        let low_e: u64 = degrees.iter().filter(|&&d| d > 0 && d <= 4).sum();
        degrees.sort_unstable();
        let gini = gini_sorted(&degrees);
        DegreeStats {
            num_vertices: n,
            num_edges: m,
            avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            max_degree,
            low_degree_fraction: if n == 0 { 0.0 } else { low_n as f64 / n as f64 },
            low_degree_edge_fraction: if m == 0 { 0.0 } else { low_e as f64 / m as f64 },
            gini,
        }
    }
}

/// Gini coefficient of a sorted non-negative sample.
fn gini_sorted(sorted: &[u64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let total: u128 = sorted.iter().map(|&d| d as u128).sum();
    if total == 0 {
        return 0.0;
    }
    let mut weighted: u128 = 0;
    for (i, &d) in sorted.iter().enumerate() {
        weighted += (i as u128 + 1) * d as u128;
    }
    let n = n as f64;
    (2.0 * weighted as f64 / (n * total as f64)) - (n + 1.0) / n
}

/// A degree histogram in powers of two, used to print Table-1-style dataset
/// characterizations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// `buckets[i]` counts vertices with degree in `[2^i, 2^(i+1))`;
    /// `buckets[0]` additionally counts degree-0 vertices in `zero`.
    pub buckets: Vec<u64>,
    /// Number of zero-degree vertices.
    pub zero: u64,
}

impl DegreeHistogram {
    /// Builds the histogram for `csr`.
    pub fn of(csr: &Csr) -> Self {
        let mut buckets = vec![0u64; 33];
        let mut zero = 0;
        for v in 0..csr.num_vertices() {
            let d = csr.degree(v as u32);
            if d == 0 {
                zero += 1;
            } else {
                buckets[(63 - d.leading_zeros()) as usize] += 1;
            }
        }
        while buckets.last() == Some(&0) && buckets.len() > 1 {
            buckets.pop();
        }
        DegreeHistogram { buckets, zero }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::CsrBuilder;

    #[test]
    fn uniform_graph_has_zero_gini() {
        let g = generators::uniform_degree(200, 8, 2);
        let s = DegreeStats::of(&g);
        assert!(s.gini.abs() < 1e-9);
        assert_eq!(s.max_degree, 8);
        assert_eq!(s.low_degree_fraction, 0.0);
    }

    #[test]
    fn skewed_graph_has_high_gini() {
        // One hub with 100 edges, 100 vertices with 1 edge.
        let mut b = CsrBuilder::new(101);
        for i in 1..=100u32 {
            b.push_edge(0, i);
            b.push_edge(i, 0);
        }
        let s = DegreeStats::of(&b.build());
        assert!(s.gini > 0.4, "gini = {}", s.gini);
        assert!(s.low_degree_fraction > 0.9);
        assert!(s.low_degree_edge_fraction < 0.6);
    }

    #[test]
    fn rmat_gini_exceeds_configuration_model() {
        let kron = generators::rmat(12, 16, generators::RmatParams::default(), 1);
        let flat = generators::configuration_model(1 << 12, 2.7, 4, 64, 1);
        assert!(DegreeStats::of(&kron).gini > DegreeStats::of(&flat).gini);
    }

    #[test]
    fn histogram_counts_everything() {
        let g = generators::rmat(10, 8, generators::RmatParams::default(), 3);
        let h = DegreeHistogram::of(&g);
        let total: u64 = h.buckets.iter().sum::<u64>() + h.zero;
        assert_eq!(total, g.num_vertices() as u64);
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::Csr::empty(0);
        let s = DegreeStats::of(&g);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.gini, 0.0);
    }
}
