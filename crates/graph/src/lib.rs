//! Graph substrate for the NosWalker reproduction.
//!
//! This crate provides everything the random walk engines need to know about
//! graphs, independent of any storage or scheduling concern:
//!
//! * [`Csr`] — an in-memory compressed-sparse-row adjacency structure with
//!   optional edge weights and optional per-vertex [alias tables](alias) for
//!   O(1) weighted sampling (the representation the paper uses for the
//!   weighted `K30W` dataset, §4.1).
//! * [`CsrBuilder`] — incremental construction from edge lists.
//! * [`generators`] — deterministic synthetic graph generators covering the
//!   paper's dataset families: RMAT/Kronecker power-law graphs (Kron30/31
//!   stand-ins), configuration-model power-law graphs (the `α2.7` dataset),
//!   uniform-degree graphs (the `G12` dataset) and Erdős–Rényi graphs.
//! * [`partition`] — splitting the on-disk edge region into coarse blocks
//!   aligned to vertex boundaries, plus 4 KiB fine-grained page math
//!   (paper §3.3.1).
//! * [`layout`] — the byte-level on-disk edge record formats
//!   ([`EdgeFormat`]) shared by all out-of-core engines.
//! * [`stats`] — degree distributions and skewness measures used by the
//!   sensitivity experiments (§4.3).
//!
//! # Example
//!
//! ```
//! use noswalker_graph::{generators, stats};
//!
//! let g = generators::rmat(10, 8, generators::RmatParams::default(), 42);
//! assert_eq!(g.num_vertices(), 1 << 10);
//! let s = stats::DegreeStats::of(&g);
//! assert!(s.max_degree >= s.avg_degree as u64);
//! ```

#![forbid(unsafe_code)]

pub mod alias;
pub mod builder;
pub mod csr;
pub mod generators;
pub mod io;
pub mod layout;
pub mod partition;
pub mod stats;

pub use alias::AliasTable;
pub use builder::CsrBuilder;
pub use csr::{Csr, NeighborIter};
pub use layout::{EdgeFormat, VertexEdges};
pub use partition::{BlockId, BlockInfo, Partition, FINE_PAGE_BYTES};

/// Identifier of a vertex.
///
/// The paper's graphs reach 3.5 B vertices; our scaled datasets stay well
/// within `u32`, which halves the memory cost of every edge record — the same
/// choice GraphWalker and KnightKing make.
pub type VertexId = u32;

/// Index into the (conceptually flat) edge array.
pub type EdgeIndex = u64;
