//! Coarse block partitioning of the on-disk edge region (paper §3.3.1).
//!
//! Out-of-core engines load the edge region in *coarse-grained blocks*: byte
//! ranges aligned to vertex boundaries so a loaded block always contains
//! complete out-edge sets. NosWalker's fine-grained mode further divides each
//! coarse block into 4 KiB pages ([`FINE_PAGE_BYTES`], one SSD page) and
//! loads only the pages covering stalled vertices, guided by a bitmap
//! (paper Fig. 7).

use crate::csr::Csr;
use crate::layout::EdgeFormat;
use crate::VertexId;

/// One SSD page: the smallest unit an I/O operation can read (paper §3.3.1).
pub const FINE_PAGE_BYTES: u64 = 4096;

/// Index of a coarse block.
pub type BlockId = u32;

/// A coarse block: a vertex range whose edge records occupy a contiguous
/// byte range of the on-disk edge region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockInfo {
    /// Block index.
    pub id: BlockId,
    /// First vertex in the block.
    pub vertex_start: VertexId,
    /// One past the last vertex in the block.
    pub vertex_end: VertexId,
    /// First byte of the block in the edge region.
    pub byte_start: u64,
    /// One past the last byte of the block in the edge region.
    pub byte_end: u64,
}

impl BlockInfo {
    /// Number of vertices in the block.
    pub fn num_vertices(&self) -> u32 {
        self.vertex_end - self.vertex_start
    }

    /// Size of the block in bytes.
    pub fn byte_len(&self) -> u64 {
        self.byte_end - self.byte_start
    }

    /// True if `v` belongs to this block.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        (self.vertex_start..self.vertex_end).contains(&v)
    }

    /// Number of 4 KiB fine pages covering this block (last page may be
    /// partial).
    pub fn num_fine_pages(&self) -> u64 {
        self.byte_len().div_ceil(FINE_PAGE_BYTES)
    }
}

/// A partition of a graph's edge region into coarse blocks.
///
/// # Example
///
/// ```
/// use noswalker_graph::{generators, EdgeFormat, Partition};
///
/// let g = generators::uniform_degree(1 << 12, 8, 1);
/// let p = Partition::by_block_bytes(&g, EdgeFormat::Unweighted, 16 * 1024);
/// assert!(p.num_blocks() > 1);
/// assert_eq!(p.block_of_vertex(0), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Partition {
    blocks: Vec<BlockInfo>,
    /// block id per vertex (dense; u32 per vertex).
    vertex_block: Vec<BlockId>,
    format: EdgeFormat,
}

impl Partition {
    /// Partitions so that each block's edge region is at most
    /// `target_block_bytes` (a block holding a single huge vertex may
    /// exceed it — complete out-edge sets are never split).
    ///
    /// # Panics
    ///
    /// Panics if `target_block_bytes` is zero.
    pub fn by_block_bytes(csr: &Csr, format: EdgeFormat, target_block_bytes: u64) -> Self {
        assert!(target_block_bytes > 0, "block size must be positive");
        let rec = format.record_bytes() as u64;
        let n = csr.num_vertices();
        let mut blocks = Vec::new();
        let mut vertex_block: Vec<BlockId> = vec![0; n];
        let mut v = 0usize;
        while v < n {
            let byte_start = csr.edge_start(v as VertexId) * rec;
            let mut end = v;
            loop {
                end += 1;
                if end >= n {
                    break;
                }
                let next_bytes = csr.edge_start(end as VertexId + 1) * rec - byte_start;
                // Always take at least one vertex; stop before exceeding the
                // target (unless the single vertex alone exceeds it).
                if next_bytes > target_block_bytes && end > v {
                    break;
                }
            }
            let byte_end = csr.edge_start(end as VertexId) * rec;
            let id = blocks.len() as BlockId;
            blocks.push(BlockInfo {
                id,
                vertex_start: v as VertexId,
                vertex_end: end as VertexId,
                byte_start,
                byte_end,
            });
            for b in &mut vertex_block[v..end] {
                *b = id;
            }
            v = end;
        }
        if blocks.is_empty() {
            // Zero-vertex graph: single empty block keeps callers simple.
            blocks.push(BlockInfo {
                id: 0,
                vertex_start: 0,
                vertex_end: 0,
                byte_start: 0,
                byte_end: 0,
            });
        }
        Partition {
            blocks,
            vertex_block,
            format,
        }
    }

    /// Partitions into (approximately) `num_blocks` equal-byte blocks, the
    /// way GraphWalker divides a graph into a fixed number of shards (the
    /// paper evaluates it with 33 blocks, §2.3).
    pub fn by_block_count(csr: &Csr, format: EdgeFormat, num_blocks: u32) -> Self {
        let total = csr.num_edges() * format.record_bytes() as u64;
        let per = (total / num_blocks.max(1) as u64).max(1);
        Self::by_block_bytes(csr, format, per)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Block descriptors.
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.blocks
    }

    /// Descriptor of block `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BlockInfo {
        &self.blocks[id as usize]
    }

    /// The block containing vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn block_of_vertex(&self, v: VertexId) -> BlockId {
        self.vertex_block[v as usize]
    }

    /// The edge record format this partition addresses.
    pub fn format(&self) -> EdgeFormat {
        self.format
    }

    /// Total bytes of the partitioned edge region.
    pub fn total_bytes(&self) -> u64 {
        self.blocks.last().map_or(0, |b| b.byte_end)
    }

    /// The byte range (relative to the edge region) holding `v`'s records,
    /// given the CSR index.
    pub fn vertex_byte_range(&self, csr: &Csr, v: VertexId) -> std::ops::Range<u64> {
        let rec = self.format.record_bytes() as u64;
        (csr.edge_start(v) * rec)..(csr.edge_start(v + 1) * rec)
    }

    /// Places a graph onto `shards` shards: contiguous vertex ranges,
    /// byte-balanced over the edge region the same way coarse blocks are
    /// carved (complete out-edge sets are never split). Always returns
    /// exactly `shards` ranges covering `0..num_vertices` in order; when
    /// the graph has at least `shards` vertices every range is non-empty.
    ///
    /// This is the placement the sharded serve plane uses: shard `s` owns
    /// vertices `ranges[s]`, and a deterministic router maps a vertex to
    /// its owner by binary search over the range starts.
    pub fn shard_ranges(
        csr: &Csr,
        format: EdgeFormat,
        shards: u32,
    ) -> Vec<std::ops::Range<VertexId>> {
        let shards = shards.max(1) as usize;
        let n = csr.num_vertices();
        let rec = format.record_bytes() as u64;
        let total = csr.num_edges() * rec;
        let mut ranges = Vec::with_capacity(shards);
        let mut v = 0usize;
        for s in 0..shards {
            let start = v;
            if s + 1 == shards {
                v = n;
            } else {
                // Cut at the ideal cumulative byte boundary for shard s.
                let target = total * (s as u64 + 1) / shards as u64;
                while v < n && csr.edge_start(v as VertexId + 1) * rec < target {
                    v += 1;
                }
                // Keep every shard non-empty when the vertex count allows:
                // take at least one vertex, but leave one per later shard.
                let remaining = shards - s - 1;
                let max_end = n.saturating_sub(remaining).max(start);
                let min_end = (start + 1).min(max_end);
                v = v.clamp(min_end, max_end);
            }
            ranges.push(start as VertexId..v as VertexId);
        }
        ranges
    }

    /// The fine-page index range (within block `b`) covering vertex `v`'s
    /// records: which 4 KiB pages must be loaded so `v` is fully readable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in block `b`.
    pub fn vertex_fine_pages(&self, csr: &Csr, b: BlockId, v: VertexId) -> std::ops::Range<u64> {
        let blk = self.block(b);
        assert!(blk.contains_vertex(v), "vertex {v} not in block {b}");
        let r = self.vertex_byte_range(csr, v);
        if r.is_empty() {
            return 0..0;
        }
        let first = (r.start - blk.byte_start) / FINE_PAGE_BYTES;
        let last = (r.end - 1 - blk.byte_start) / FINE_PAGE_BYTES;
        first..last + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    fn chain(n: u32) -> Csr {
        let mut b = CsrBuilder::new(n as usize);
        for v in 0..n {
            b.push_edge(v, (v + 1) % n);
        }
        b.build()
    }

    #[test]
    fn blocks_cover_all_vertices_contiguously() {
        let g = chain(100);
        let p = Partition::by_block_bytes(&g, EdgeFormat::Unweighted, 64);
        let mut v = 0;
        for b in p.blocks() {
            assert_eq!(b.vertex_start, v);
            v = b.vertex_end;
        }
        assert_eq!(v, 100);
        assert_eq!(p.total_bytes(), 400);
    }

    #[test]
    fn block_byte_ranges_are_contiguous() {
        let g = chain(64);
        let p = Partition::by_block_bytes(&g, EdgeFormat::Unweighted, 40);
        let mut end = 0;
        for b in p.blocks() {
            assert_eq!(b.byte_start, end);
            end = b.byte_end;
        }
        assert_eq!(end, g.num_edges() * 4);
    }

    #[test]
    fn vertex_block_lookup_consistent() {
        let g = chain(50);
        let p = Partition::by_block_bytes(&g, EdgeFormat::Unweighted, 32);
        for v in 0..50u32 {
            let b = p.block_of_vertex(v);
            assert!(p.block(b).contains_vertex(v));
        }
    }

    #[test]
    fn big_vertex_gets_own_oversized_block() {
        // Vertex 0 has 100 edges (400 bytes) > 64-byte target.
        let mut b = CsrBuilder::new(101);
        for i in 1..=100u32 {
            b.push_edge(0, i);
        }
        b.push_edge(1, 0);
        let g = b.build();
        let p = Partition::by_block_bytes(&g, EdgeFormat::Unweighted, 64);
        let blk0 = p.block(p.block_of_vertex(0));
        assert_eq!(blk0.vertex_start, 0);
        assert_eq!(blk0.vertex_end, 1);
        assert_eq!(blk0.byte_len(), 400);
    }

    #[test]
    fn by_block_count_yields_roughly_that_many() {
        let g = chain(1000);
        let p = Partition::by_block_count(&g, EdgeFormat::Unweighted, 10);
        assert!((8..=13).contains(&p.num_blocks()), "{}", p.num_blocks());
    }

    #[test]
    fn fine_pages_cover_vertex_bytes() {
        let g = chain(5000);
        let p = Partition::by_block_bytes(&g, EdgeFormat::Unweighted, 10_000);
        let v = 2500u32;
        let b = p.block_of_vertex(v);
        let pages = p.vertex_fine_pages(&g, b, v);
        let blk = p.block(b);
        let r = p.vertex_byte_range(&g, v);
        assert!(blk.byte_start + pages.start * FINE_PAGE_BYTES <= r.start);
        assert!(blk.byte_start + pages.end * FINE_PAGE_BYTES >= r.end);
    }

    #[test]
    fn zero_degree_vertex_has_empty_fine_pages() {
        let g = CsrBuilder::new(3).edge(0, 1).build();
        let p = Partition::by_block_bytes(&g, EdgeFormat::Unweighted, 4096);
        let b = p.block_of_vertex(2);
        assert_eq!(p.vertex_fine_pages(&g, b, 2), 0..0);
    }

    #[test]
    fn weighted_format_scales_bytes() {
        let g = chain(10);
        let p = Partition::by_block_bytes(&g, EdgeFormat::WeightedAlias, 1 << 20);
        assert_eq!(p.total_bytes(), 10 * 12);
    }

    #[test]
    fn shard_ranges_cover_vertices_contiguously() {
        let g = chain(100);
        for shards in [1u32, 2, 3, 4, 7, 16] {
            let ranges = Partition::shard_ranges(&g, EdgeFormat::Unweighted, shards);
            assert_eq!(ranges.len(), shards as usize);
            let mut v = 0;
            for r in &ranges {
                assert_eq!(r.start, v);
                assert!(!r.is_empty(), "shard range {r:?} empty for {shards} shards");
                v = r.end;
            }
            assert_eq!(v, 100);
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        let g = chain(64);
        let ranges = Partition::shard_ranges(&g, EdgeFormat::Unweighted, 1);
        assert_eq!(ranges, vec![0..64]);
    }

    #[test]
    fn shard_ranges_balance_skewed_bytes() {
        // Vertex 0 owns half the edges; the first shard should not swallow
        // everything and later shards must still be non-empty.
        let mut b = CsrBuilder::new(16);
        for i in 0..64 {
            b.push_edge(0, i % 16);
        }
        for v in 1..16 {
            b.push_edge(v, (v + 1) % 16);
        }
        let g = b.build();
        let ranges = Partition::shard_ranges(&g, EdgeFormat::Unweighted, 4);
        assert_eq!(ranges.len(), 4);
        let mut v = 0;
        for r in &ranges {
            assert_eq!(r.start, v);
            assert!(!r.is_empty());
            v = r.end;
        }
        assert_eq!(v, 16);
    }

    #[test]
    fn more_shards_than_vertices_yields_some_empty_ranges() {
        let g = chain(3);
        let ranges = Partition::shard_ranges(&g, EdgeFormat::Unweighted, 5);
        assert_eq!(ranges.len(), 5);
        assert_eq!(ranges.last().unwrap().end, 3);
        let mut v = 0;
        for r in &ranges {
            assert!(r.start <= r.end);
            assert!(r.start == v || r.is_empty());
            v = v.max(r.end);
        }
        let owned: u32 = ranges.iter().map(|r| r.end - r.start).sum();
        assert_eq!(owned, 3);
    }
}
