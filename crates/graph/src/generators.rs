//! Deterministic synthetic graph generators.
//!
//! These stand in for the paper's datasets (Table 1): the `kron*` family
//! (Graph500 Kronecker, strongly power-law), the real web/social graphs
//! (also power-law — we substitute RMAT at matched average degree), the
//! uniform `G12` graph and the flat power-law `α2.7` configuration-model
//! graph. All generators are fully determined by their `seed`.

use crate::builder::CsrBuilder;
use crate::csr::Csr;
use crate::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RMAT quadrant probabilities.
///
/// The default `(0.57, 0.19, 0.19, 0.05)` matches Graph500's Kronecker
/// generator, producing the highly skewed degree distribution of the
/// paper's Kron30/Kron31 datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability (`1 - a - b - c`).
    pub d: f64,
    /// Per-level probability noise, which smooths the degree staircase.
    pub noise: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            noise: 0.1,
        }
    }
}

/// Generates an RMAT (recursive-matrix / Kronecker-like) graph with
/// `2^scale` vertices and `avg_degree × 2^scale` directed edges.
///
/// # Panics
///
/// Panics if `scale` is 0 or greater than 31, or `avg_degree` is 0.
///
/// # Example
///
/// ```
/// use noswalker_graph::generators::{rmat, RmatParams};
///
/// let g = rmat(8, 4, RmatParams::default(), 1);
/// assert_eq!(g.num_vertices(), 256);
/// assert_eq!(g.num_edges(), 1024);
/// ```
pub fn rmat(scale: u32, avg_degree: u32, params: RmatParams, seed: u64) -> Csr {
    assert!((1..=31).contains(&scale), "scale must be in 1..=31");
    assert!(avg_degree > 0, "avg_degree must be positive");
    let n = 1usize << scale;
    let m = n as u64 * avg_degree as u64;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n);
    for _ in 0..m {
        let (src, dst) = rmat_edge(scale, &params, &mut rng);
        b.push_edge(src, dst);
    }
    b.build()
}

fn rmat_edge(scale: u32, p: &RmatParams, rng: &mut SmallRng) -> (VertexId, VertexId) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for _ in 0..scale {
        // Jitter quadrant probabilities per level (standard Graph500 trick).
        let mut jitter = |x: f64| x * (1.0 - p.noise / 2.0 + p.noise * rng.gen::<f64>());
        let (a, b, c, d) = (jitter(p.a), jitter(p.b), jitter(p.c), jitter(p.d));
        let sum = a + b + c + d;
        let r = rng.gen::<f64>() * sum;
        let (sbit, dbit) = if r < a {
            (0, 0)
        } else if r < a + b {
            (0, 1)
        } else if r < a + b + c {
            (1, 0)
        } else {
            (1, 1)
        };
        src = (src << 1) | sbit;
        dst = (dst << 1) | dbit;
    }
    (src, dst)
}

/// Generates a graph where every vertex has exactly `degree` out-edges to
/// uniformly random destinations — the paper's `G12` dataset shape (§4.1).
///
/// # Panics
///
/// Panics if `n` or `degree` is zero.
pub fn uniform_degree(n: usize, degree: u32, seed: u64) -> Csr {
    assert!(n > 0 && degree > 0, "n and degree must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n);
    for v in 0..n as VertexId {
        for _ in 0..degree {
            b.push_edge(v, rng.gen_range(0..n as VertexId));
        }
    }
    b.build()
}

/// Generates a configuration-model graph with a power-law degree
/// distribution `P(deg = k) ∝ k^(-alpha)` for `k ∈ [min_degree,
/// max_degree]` — the paper's `α2.7` dataset (§4.1) uses `alpha = 2.7`,
/// much flatter than natural graphs (α ≈ 2).
///
/// # Panics
///
/// Panics if `n == 0`, `alpha <= 1.0`, or `min_degree > max_degree` or
/// `min_degree == 0`.
pub fn configuration_model(
    n: usize,
    alpha: f64,
    min_degree: u32,
    max_degree: u32,
    seed: u64,
) -> Csr {
    assert!(n > 0, "n must be positive");
    assert!(alpha > 1.0, "alpha must exceed 1");
    assert!(
        min_degree >= 1 && min_degree <= max_degree,
        "need 1 <= min_degree <= max_degree"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    // Inverse-CDF sampling of the truncated discrete power law.
    let weights: Vec<f64> = (min_degree..=max_degree)
        .map(|k| (k as f64).powf(-alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut b = CsrBuilder::new(n);
    for v in 0..n as VertexId {
        let u: f64 = rng.gen();
        let idx = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
        let deg = min_degree + idx as u32;
        for _ in 0..deg {
            b.push_edge(v, rng.gen_range(0..n as VertexId));
        }
    }
    b.build()
}

/// Generates an Erdős–Rényi `G(n, m)` graph with `m` uniformly random
/// directed edges.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn erdos_renyi(n: usize, m: u64, seed: u64) -> Csr {
    assert!(n > 0, "n must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n);
    for _ in 0..m {
        b.push_edge(
            rng.gen_range(0..n as VertexId),
            rng.gen_range(0..n as VertexId),
        );
    }
    b.build()
}

/// Attaches uniformly random edge weights in `[0.5, 2.0)` and pre-builds
/// alias tables — how the paper constructs the weighted `K30W` dataset
/// ("randomly generate the weight property for each edge in K30", §4.1).
pub fn with_random_weights(csr: Csr, seed: u64) -> Csr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = csr.num_edges() as usize;
    let weights: Vec<f32> = (0..m).map(|_| rng.gen_range(0.5f32..2.0)).collect();
    csr.with_weights(weights).build_alias_tables()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(8, 4, RmatParams::default(), 9);
        let b = rmat(8, 4, RmatParams::default(), 9);
        assert_eq!(a, b);
        let c = rmat(8, 4, RmatParams::default(), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(12, 8, RmatParams::default(), 3);
        let s = DegreeStats::of(&g);
        // Power-law: max degree far above average.
        assert!(s.max_degree > 8 * s.avg_degree as u64);
    }

    #[test]
    fn uniform_degree_is_exact() {
        let g = uniform_degree(500, 12, 4);
        for v in 0..500u32 {
            assert_eq!(g.degree(v), 12);
        }
        assert_eq!(g.num_edges(), 6000);
    }

    #[test]
    fn configuration_model_respects_bounds() {
        let g = configuration_model(2000, 2.7, 1, 64, 5);
        for v in 0..2000u32 {
            assert!((1..=64).contains(&g.degree(v)));
        }
    }

    #[test]
    fn configuration_model_is_flatter_than_rmat() {
        let a27 = configuration_model(1 << 12, 2.7, 1, 256, 6);
        let kron = rmat(
            12,
            (a27.num_edges() / (1 << 12)) as u32 + 1,
            RmatParams::default(),
            6,
        );
        let sa = DegreeStats::of(&a27);
        let sk = DegreeStats::of(&kron);
        assert!(
            sa.max_degree as f64 / sa.avg_degree < sk.max_degree as f64 / sk.avg_degree,
            "a27 should be flatter: {sa:?} vs {sk:?}"
        );
    }

    #[test]
    fn erdos_renyi_edge_count() {
        let g = erdos_renyi(100, 1234, 7);
        assert_eq!(g.num_edges(), 1234);
    }

    #[test]
    fn random_weights_build_alias() {
        let g = with_random_weights(rmat(6, 4, RmatParams::default(), 8), 8);
        assert!(g.is_weighted());
        assert!(g.has_alias_tables());
        for w in g.weights().unwrap() {
            assert!((0.5..2.0).contains(w));
        }
    }
}
