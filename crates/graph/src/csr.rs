//! In-memory compressed sparse row (CSR) adjacency structure.

use crate::alias::AliasTable;
use crate::layout::EdgeFormat;
use crate::{EdgeIndex, VertexId};

/// An immutable directed graph in CSR form.
///
/// `offsets` has `num_vertices + 1` entries; the out-edges of vertex `v` are
/// `targets[offsets[v] .. offsets[v + 1]]`. Optional parallel arrays carry
/// per-edge weights and per-vertex alias tables (pre-built for O(1) weighted
/// sampling, as the paper's `K30W` dataset does, §4.1).
///
/// # Example
///
/// ```
/// use noswalker_graph::CsrBuilder;
///
/// let g = CsrBuilder::new(3).edge(0, 1).edge(0, 2).edge(1, 2).build();
/// assert_eq!(g.degree(0), 2);
/// assert_eq!(g.neighbors(1), &[2]);
/// assert_eq!(g.num_edges(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Csr {
    pub(crate) offsets: Vec<EdgeIndex>,
    pub(crate) targets: Vec<VertexId>,
    pub(crate) weights: Option<Vec<f32>>,
    pub(crate) alias: Option<AliasData>,
}

/// Flattened per-vertex alias tables (parallel to `targets`).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct AliasData {
    /// Probability of keeping slot `i`'s own target (vs. its alias).
    pub prob: Vec<f32>,
    /// Local (within-vertex) index of the alias target for slot `i`.
    pub alias: Vec<u32>,
}

impl Csr {
    /// Creates an empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Csr {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: None,
            alias: None,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Start index of `v`'s edges in the flat edge array.
    pub fn edge_start(&self, v: VertexId) -> EdgeIndex {
        self.offsets[v as usize]
    }

    /// The out-neighbors of `v` as a slice.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (s, e) = self.edge_range(v);
        &self.targets[s..e]
    }

    /// The edge weights of `v`, if the graph is weighted.
    pub fn edge_weights(&self, v: VertexId) -> Option<&[f32]> {
        let (s, e) = self.edge_range(v);
        self.weights.as_ref().map(|w| &w[s..e])
    }

    /// Alias-table slices `(prob, alias)` for `v`, if built.
    pub fn alias_slices(&self, v: VertexId) -> Option<(&[f32], &[u32])> {
        let (s, e) = self.edge_range(v);
        self.alias.as_ref().map(|a| (&a.prob[s..e], &a.alias[s..e]))
    }

    fn edge_range(&self, v: VertexId) -> (usize, usize) {
        (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        )
    }

    /// Whether per-edge weights are present.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Whether pre-built alias tables are present.
    pub fn has_alias_tables(&self) -> bool {
        self.alias.is_some()
    }

    /// The prefix-sum offset array (`num_vertices + 1` entries).
    pub fn offsets(&self) -> &[EdgeIndex] {
        &self.offsets
    }

    /// The flat target array.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// The flat weight array, if weighted.
    pub fn weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// The on-disk edge record format this graph serializes to.
    pub fn edge_format(&self) -> EdgeFormat {
        if self.alias.is_some() {
            EdgeFormat::WeightedAlias
        } else if self.weights.is_some() {
            EdgeFormat::Weighted
        } else {
            EdgeFormat::Unweighted
        }
    }

    /// Size in bytes of the serialized edge region (`num_edges × record`).
    pub fn edge_region_bytes(&self) -> u64 {
        self.num_edges() * self.edge_format().record_bytes() as u64
    }

    /// Approximate total CSR size in bytes (index + edge region), the
    /// "CSR Size" column of the paper's Table 1.
    pub fn csr_bytes(&self) -> u64 {
        (self.offsets.len() as u64) * 8 + self.edge_region_bytes()
    }

    /// Attaches per-edge weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != num_edges`.
    pub fn with_weights(mut self, weights: Vec<f32>) -> Self {
        assert_eq!(
            weights.len() as u64,
            self.num_edges(),
            "weights length must equal edge count"
        );
        self.weights = Some(weights);
        self
    }

    /// Builds per-vertex alias tables from the attached weights.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no weights.
    pub fn build_alias_tables(mut self) -> Self {
        // LINT-ALLOW(L5): documented panic — the builder API contract is
        // that weights are attached before alias construction.
        let weights = self.weights.as_ref().expect("alias tables need weights");
        let mut prob = vec![0.0f32; self.targets.len()];
        let mut alias = vec![0u32; self.targets.len()];
        for v in 0..self.num_vertices() {
            let s = self.offsets[v] as usize;
            let e = self.offsets[v + 1] as usize;
            if s == e {
                continue;
            }
            let table = AliasTable::new(&weights[s..e]);
            let (p, a) = table.into_parts();
            prob[s..e].copy_from_slice(&p);
            alias[s..e].copy_from_slice(&a);
        }
        self.alias = Some(AliasData { prob, alias });
        self
    }

    /// Iterates over all `(src, dst)` edges.
    pub fn iter_edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            csr: self,
            v: 0,
            i: 0,
        }
    }

    /// Iterates over the out-neighbors of `v`.
    pub fn neighbor_iter(&self, v: VertexId) -> NeighborIter<'_> {
        NeighborIter {
            inner: self.neighbors(v).iter(),
        }
    }

    /// Returns the symmetrized (undirected) version of this graph: for every
    /// edge `(u, v)` both `(u, v)` and `(v, u)` are present, deduplicated.
    ///
    /// Node2Vec (§4.5) requires undirected graphs; weights are dropped.
    pub fn to_undirected(&self) -> Csr {
        let mut edges = Vec::with_capacity(self.targets.len() * 2);
        for (u, v) in self.iter_edges() {
            edges.push((u, v));
            edges.push((v, u));
        }
        crate::builder::from_sorted_dedup(self.num_vertices(), edges)
    }

    /// True if the directed edge `(u, v)` exists (binary search; the
    /// neighbor lists are sorted by construction through [`crate::CsrBuilder`]).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

/// Iterator over all edges of a [`Csr`].
#[derive(Debug)]
pub struct EdgeIter<'a> {
    csr: &'a Csr,
    v: usize,
    i: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<(VertexId, VertexId)> {
        loop {
            if self.v >= self.csr.num_vertices() {
                return None;
            }
            if (self.i as u64) < self.csr.offsets[self.v + 1] - self.csr.offsets[self.v] {
                let dst = self.csr.neighbors(self.v as VertexId)[self.i];
                self.i += 1;
                return Some((self.v as VertexId, dst));
            }
            self.v += 1;
            self.i = 0;
        }
    }
}

/// Iterator over the out-neighbors of one vertex.
#[derive(Debug)]
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, VertexId>,
}

impl Iterator for NeighborIter<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        self.inner.next().copied()
    }
}

#[cfg(test)]
mod tests {
    use crate::CsrBuilder;

    #[test]
    fn empty_graph() {
        let g = super::Csr::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = CsrBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(2, 3)
            .edge(2, 0)
            .build();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbors(2), &[0, 3]); // sorted by builder
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn edge_iter_visits_all() {
        let g = CsrBuilder::new(3).edge(0, 1).edge(1, 2).edge(2, 0).build();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn weighted_graph_and_alias() {
        let g = CsrBuilder::new(2)
            .edge(0, 0)
            .edge(0, 1)
            .build()
            .with_weights(vec![1.0, 3.0])
            .build_alias_tables();
        assert!(g.is_weighted());
        assert!(g.has_alias_tables());
        let (prob, alias) = g.alias_slices(0).unwrap();
        assert_eq!(prob.len(), 2);
        assert_eq!(alias.len(), 2);
        assert_eq!(g.edge_format().record_bytes(), 12);
    }

    #[test]
    fn undirected_symmetrizes() {
        let g = CsrBuilder::new(3).edge(0, 1).edge(1, 2).build();
        let u = g.to_undirected();
        assert!(u.has_edge(1, 0));
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 1));
        assert!(!u.has_edge(0, 2));
        assert_eq!(u.num_edges(), 4);
    }

    #[test]
    fn csr_bytes_accounts_index_and_edges() {
        let g = CsrBuilder::new(2).edge(0, 1).build();
        // 3 offsets * 8 bytes + 1 edge * 4 bytes
        assert_eq!(g.csr_bytes(), 24 + 4);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = CsrBuilder::new(5).edge(0, 4).edge(0, 2).edge(0, 1).build();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 0));
    }
}
