//! Incremental CSR construction from edge lists.

use crate::csr::Csr;
use crate::VertexId;

/// Builds a [`Csr`] from an unordered edge list.
///
/// Edges are sorted by `(src, dst)`; neighbor lists therefore end up sorted,
/// which [`Csr::has_edge`] relies on. Self-loops and parallel edges are kept
/// (random walk semantics permit both; the paper's toy example in Fig. 3 has
/// a self-loop `v0 → v0`).
///
/// # Example
///
/// ```
/// use noswalker_graph::CsrBuilder;
///
/// let g = CsrBuilder::new(2).edge(1, 0).edge(0, 1).edge(0, 0).build();
/// assert_eq!(g.neighbors(0), &[0, 1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    dedup: bool,
}

impl CsrBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        CsrBuilder {
            num_vertices,
            edges: Vec::new(),
            dedup: false,
        }
    }

    /// Adds a directed edge. Returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn edge(mut self, src: VertexId, dst: VertexId) -> Self {
        self.push_edge(src, dst);
        self
    }

    /// Adds a directed edge through a mutable reference (for loops).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn push_edge(&mut self, src: VertexId, dst: VertexId) {
        assert!(
            (src as usize) < self.num_vertices && (dst as usize) < self.num_vertices,
            "edge ({src}, {dst}) out of range for {} vertices",
            self.num_vertices
        );
        self.edges.push((src, dst));
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: I) {
        for (s, d) in iter {
            self.push_edge(s, d);
        }
    }

    /// Removes duplicate `(src, dst)` pairs at build time.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR.
    pub fn build(self) -> Csr {
        let mut edges = self.edges;
        edges.sort_unstable();
        if self.dedup {
            edges.dedup();
        }
        from_sorted(self.num_vertices, edges)
    }
}

/// Builds a CSR from an already-sorted edge list (no dedup).
pub(crate) fn from_sorted(num_vertices: usize, edges: Vec<(VertexId, VertexId)>) -> Csr {
    let mut offsets = vec![0u64; num_vertices + 1];
    for &(s, _) in &edges {
        offsets[s as usize + 1] += 1;
    }
    for i in 0..num_vertices {
        offsets[i + 1] += offsets[i];
    }
    let targets = edges.into_iter().map(|(_, d)| d).collect();
    Csr {
        offsets,
        targets,
        weights: None,
        alias: None,
    }
}

/// Builds a CSR directly from validated parts (used by binary loading).
///
/// Callers must guarantee `offsets` is a monotone prefix-sum ending at
/// `targets.len()` and all targets are in range.
pub(crate) fn from_parts(offsets: Vec<u64>, targets: Vec<crate::VertexId>) -> Csr {
    debug_assert_eq!(offsets.last().copied().unwrap_or(0) as usize, targets.len());
    Csr {
        offsets,
        targets,
        weights: None,
        alias: None,
    }
}

/// Sorts, dedups and builds (used by [`Csr::to_undirected`]).
pub(crate) fn from_sorted_dedup(num_vertices: usize, mut edges: Vec<(VertexId, VertexId)>) -> Csr {
    edges.sort_unstable();
    edges.dedup();
    from_sorted(num_vertices, edges)
}

impl FromIterator<(VertexId, VertexId)> for CsrBuilder {
    /// Collects edges into a builder sized to the largest endpoint + 1.
    fn from_iter<I: IntoIterator<Item = (VertexId, VertexId)>>(iter: I) -> Self {
        let edges: Vec<_> = iter.into_iter().collect();
        let n = edges
            .iter()
            .map(|&(s, d)| s.max(d) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut b = CsrBuilder::new(n);
        b.edges = edges;
        b
    }
}

impl Extend<(VertexId, VertexId)> for CsrBuilder {
    fn extend<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: I) {
        self.extend_edges(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_neighbors() {
        let g = CsrBuilder::new(3).edge(0, 2).edge(0, 1).edge(2, 0).build();
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn keeps_parallel_edges_by_default() {
        let g = CsrBuilder::new(2).edge(0, 1).edge(0, 1).build();
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let g = CsrBuilder::new(2).edge(0, 1).edge(0, 1).dedup(true).build();
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = CsrBuilder::new(2).edge(0, 2);
    }

    #[test]
    fn from_iterator_sizes_to_max_vertex() {
        let b: CsrBuilder = vec![(0u32, 5u32), (3, 1)].into_iter().collect();
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn extend_adds_edges() {
        let mut b = CsrBuilder::new(4);
        b.extend(vec![(0u32, 1u32), (1, 2)]);
        assert_eq!(b.edge_count(), 2);
    }
}
