//! Reading and writing graphs: text edge lists and a binary CSR format.
//!
//! Real deployments ingest graphs from edge-list files (the format the
//! paper's datasets are distributed in) and keep a converted binary CSR on
//! disk. Both directions are provided here:
//!
//! * [`read_edge_list`] / [`write_edge_list`] — whitespace-separated
//!   `src dst [weight]` lines, `#`/`%` comments.
//! * [`save_csr`] / [`load_csr`] — a little-endian binary container with a
//!   magic header, suitable for memory-mapped or streamed loading.

use crate::builder::CsrBuilder;
use crate::csr::Csr;
use crate::VertexId;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from graph I/O.
#[derive(Debug)]
pub enum GraphIoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line or field in a text edge list.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A malformed binary container.
    Format(String),
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "graph I/O failed: {e}"),
            GraphIoError::Parse { line, message } => {
                write!(f, "edge list parse error at line {line}: {message}")
            }
            GraphIoError::Format(m) => write!(f, "bad binary graph container: {m}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Parses a text edge list: one `src dst [weight]` triple per line,
/// whitespace-separated; empty lines and lines starting with `#` or `%`
/// are skipped. The vertex count is `max endpoint + 1` (or 0 for an empty
/// input). If *any* edge carries a weight, missing weights default to 1.0.
///
/// Note that a `mut` reference to a reader also implements [`Read`], so
/// `read_edge_list(&mut file)` works when the file is reused afterwards.
///
/// # Errors
///
/// [`GraphIoError::Parse`] on malformed fields; [`GraphIoError::Io`] on
/// read failures.
///
/// # Example
///
/// ```
/// use noswalker_graph::io::read_edge_list;
///
/// let text = "# a comment\n0 1\n1 2 0.5\n2 0\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert!(g.is_weighted());
/// # Ok::<(), noswalker_graph::io::GraphIoError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<Csr, GraphIoError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut weights: Vec<f32> = Vec::new();
    let mut any_weight = false;
    let buf = BufReader::new(reader);
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let parse_v = |s: Option<&str>, what: &str| -> Result<VertexId, GraphIoError> {
            let s = s.ok_or_else(|| GraphIoError::Parse {
                line: i + 1,
                message: format!("missing {what}"),
            })?;
            s.parse().map_err(|_| GraphIoError::Parse {
                line: i + 1,
                message: format!("invalid {what} {s:?}"),
            })
        };
        let src = parse_v(fields.next(), "source vertex")?;
        let dst = parse_v(fields.next(), "destination vertex")?;
        let w = match fields.next() {
            Some(s) => {
                any_weight = true;
                s.parse::<f32>().map_err(|_| GraphIoError::Parse {
                    line: i + 1,
                    message: format!("invalid weight {s:?}"),
                })?
            }
            None => 1.0,
        };
        if let Some(extra) = fields.next() {
            return Err(GraphIoError::Parse {
                line: i + 1,
                message: format!("unexpected trailing field {extra:?}"),
            });
        }
        edges.push((src, dst));
        weights.push(w);
    }
    let n = edges
        .iter()
        .map(|&(s, d)| s.max(d) as usize + 1)
        .max()
        .unwrap_or(0);
    let mut b = CsrBuilder::new(n);
    if any_weight {
        // Sort edges and weights together so weights stay aligned.
        let mut zipped: Vec<((VertexId, VertexId), f32)> = edges.into_iter().zip(weights).collect();
        zipped.sort_by_key(|&(e, _)| e);
        for &(e, _) in &zipped {
            b.push_edge(e.0, e.1);
        }
        Ok(b.build()
            .with_weights(zipped.into_iter().map(|(_, w)| w).collect()))
    } else {
        b.extend_edges(edges);
        Ok(b.build())
    }
}

/// Writes a graph as a text edge list (weights included when present).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_edge_list<W: Write>(csr: &Csr, mut writer: W) -> Result<(), GraphIoError> {
    for v in 0..csr.num_vertices() as VertexId {
        let targets = csr.neighbors(v);
        let weights = csr.edge_weights(v);
        for (i, &t) in targets.iter().enumerate() {
            match weights {
                Some(w) => writeln!(writer, "{v} {t} {}", w[i])?,
                None => writeln!(writer, "{v} {t}")?,
            }
        }
    }
    Ok(())
}

const MAGIC: &[u8; 8] = b"NOSWCSR1";

/// Serializes a CSR (offsets, targets, optional weights) into a binary
/// container. Alias tables are not stored — they are cheap to rebuild
/// with [`Csr::build_alias_tables`].
///
/// # Errors
///
/// Propagates write failures.
pub fn save_csr<W: Write>(csr: &Csr, mut writer: W) -> Result<(), GraphIoError> {
    writer.write_all(MAGIC)?;
    let flags: u32 = u32::from(csr.is_weighted());
    writer.write_all(&flags.to_le_bytes())?;
    writer.write_all(&(csr.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&csr.num_edges().to_le_bytes())?;
    for &o in csr.offsets() {
        writer.write_all(&o.to_le_bytes())?;
    }
    for &t in csr.targets() {
        writer.write_all(&t.to_le_bytes())?;
    }
    if let Some(w) = csr.weights() {
        for &x in w {
            writer.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Loads a CSR previously written by [`save_csr`].
///
/// # Errors
///
/// [`GraphIoError::Format`] for bad magic/inconsistent counts,
/// [`GraphIoError::Io`] on truncated input.
pub fn load_csr<R: Read>(mut reader: R) -> Result<Csr, GraphIoError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphIoError::Format(format!(
            "bad magic {:?}",
            String::from_utf8_lossy(&magic)
        )));
    }
    let mut u32buf = [0u8; 4];
    let mut u64buf = [0u8; 8];
    reader.read_exact(&mut u32buf)?;
    let flags = u32::from_le_bytes(u32buf);
    if flags > 1 {
        return Err(GraphIoError::Format(format!("unknown flags {flags:#x}")));
    }
    reader.read_exact(&mut u64buf)?;
    let n = u64::from_le_bytes(u64buf) as usize;
    reader.read_exact(&mut u64buf)?;
    let m = u64::from_le_bytes(u64buf);
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        reader.read_exact(&mut u64buf)?;
        offsets.push(u64::from_le_bytes(u64buf));
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
        return Err(GraphIoError::Format(
            "offset array inconsistent with edge count".into(),
        ));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphIoError::Format("offsets not monotone".into()));
    }
    let mut targets = Vec::with_capacity(m as usize);
    for _ in 0..m {
        reader.read_exact(&mut u32buf)?;
        let t = u32::from_le_bytes(u32buf);
        if t as usize >= n.max(1) {
            return Err(GraphIoError::Format(format!(
                "target {t} out of range for {n} vertices"
            )));
        }
        targets.push(t);
    }
    let csr = crate::builder::from_parts(offsets, targets);
    if flags & 1 != 0 {
        let mut weights = Vec::with_capacity(m as usize);
        for _ in 0..m {
            reader.read_exact(&mut u32buf)?;
            weights.push(f32::from_le_bytes(u32buf));
        }
        Ok(csr.with_weights(weights))
    } else {
        Ok(csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn edge_list_roundtrip_unweighted() {
        let g = generators::rmat(8, 4, generators::RmatParams::default(), 5);
        let mut text = Vec::new();
        write_edge_list(&g, &mut text).unwrap();
        let g2 = read_edge_list(text.as_slice()).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        // Trailing isolated vertices are not representable in an edge
        // list; everything up to the last endpoint round-trips.
        for v in 0..g2.num_vertices() as u32 {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
        for v in g2.num_vertices()..g.num_vertices() {
            assert_eq!(g.degree(v as u32), 0);
        }
    }

    #[test]
    fn edge_list_roundtrip_weighted() {
        let g = generators::with_random_weights(
            generators::rmat(7, 4, generators::RmatParams::default(), 6),
            6,
        );
        let mut text = Vec::new();
        write_edge_list(&g, &mut text).unwrap();
        let g2 = read_edge_list(text.as_slice()).unwrap();
        assert!(g2.is_weighted());
        for v in 0..g2.num_vertices() as u32 {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
            // Weights survive (sorted identically since builder sorts by
            // (src, dst) and parallel edges keep file order).
            let a: Vec<f32> = g.edge_weights(v).unwrap().to_vec();
            let b: Vec<f32> = g2.edge_weights(v).unwrap().to_vec();
            let mut a2 = a.clone();
            let mut b2 = b.clone();
            a2.sort_by(f32::total_cmp);
            b2.sort_by(f32::total_cmp);
            assert_eq!(a2, b2);
        }
    }

    #[test]
    fn edge_list_skips_comments_and_blank_lines() {
        let g = read_edge_list("\n# c\n% c\n0 1\n\n1 0\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing destination"));
        let err = read_edge_list("0 1 2 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing"));
        let err = read_edge_list("0 1 notafloat\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid weight"));
    }

    #[test]
    fn empty_edge_list_is_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn binary_roundtrip_unweighted() {
        let g = generators::rmat(9, 6, generators::RmatParams::default(), 7);
        let mut bytes = Vec::new();
        save_csr(&g, &mut bytes).unwrap();
        let g2 = load_csr(bytes.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip_weighted() {
        let g = generators::with_random_weights(
            generators::rmat(8, 4, generators::RmatParams::default(), 8),
            8,
        );
        let mut bytes = Vec::new();
        save_csr(&g, &mut bytes).unwrap();
        let g2 = load_csr(bytes.as_slice()).unwrap();
        assert_eq!(g.offsets(), g2.offsets());
        assert_eq!(g.targets(), g2.targets());
        assert_eq!(g.weights(), g2.weights());
        // Alias tables are not stored but can be rebuilt.
        assert!(!g2.has_alias_tables());
        assert!(g2.build_alias_tables().has_alias_tables());
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = generators::rmat(6, 4, generators::RmatParams::default(), 9);
        let mut bytes = Vec::new();
        save_csr(&g, &mut bytes).unwrap();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            load_csr(bad.as_slice()),
            Err(GraphIoError::Format(_))
        ));
        // Truncation.
        assert!(load_csr(&bytes[..bytes.len() / 2]).is_err());
        // Out-of-range target.
        let header = 8 + 4 + 8 + 8 + (g.num_vertices() + 1) * 8;
        let mut bad = bytes.clone();
        bad[header..header + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            load_csr(bad.as_slice()),
            Err(GraphIoError::Format(_))
        ));
    }
}
