//! Alias tables for O(1) weighted sampling (Walker/Vose method).
//!
//! The paper's weighted dataset `K30W` ships a pre-generated alias table per
//! vertex instead of a plain adjacency list (§4.1), as do KnightKing,
//! ThunderRW and FlashMob. An alias table turns "sample an edge proportional
//! to weight" into two uniform draws.

/// A Vose alias table over `n` weighted slots.
///
/// # Example
///
/// ```
/// use noswalker_graph::AliasTable;
///
/// let t = AliasTable::new(&[1.0, 3.0]);
/// // Slot sampling: draw a slot uniformly, then keep it with `prob(slot)`
/// // or redirect to `alias(slot)`.
/// let kept = t.pick(0, 0.9); // prob(0) = 0.5 under these weights
/// assert_eq!(kept, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f32>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f32]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        let sum: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
                w as f64
            })
            .sum();
        assert!(sum > 0.0, "weights must not all be zero");

        // Scaled weights: average 1.0 per slot.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w as f64 * n as f64 / sum).collect();
        let mut prob = vec![1.0f32; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize] as f32;
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (numerical dust) keep prob = 1.0.
        AliasTable { prob, alias }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no slots (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Keep-probability of slot `i`.
    pub fn prob(&self, i: usize) -> f32 {
        self.prob[i]
    }

    /// Alias (redirect slot) of slot `i`.
    pub fn alias(&self, i: usize) -> u32 {
        self.alias[i]
    }

    /// Resolves a draw: given a uniformly chosen `slot` and a uniform
    /// `u ∈ [0, 1)`, returns the sampled slot index.
    pub fn pick(&self, slot: usize, u: f32) -> u32 {
        if u < self.prob[slot] {
            slot as u32
        } else {
            self.alias[slot]
        }
    }

    /// Consumes the table returning the raw `(prob, alias)` arrays, used to
    /// flatten per-vertex tables into CSR-parallel arrays.
    pub fn into_parts(self) -> (Vec<f32>, Vec<u32>) {
        (self.prob, self.alias)
    }
}

/// Resolves an alias draw from raw `(prob, alias)` slices, the form the
/// engines see after loading edge records from disk.
///
/// # Panics
///
/// Panics if `slot` is out of range.
pub fn pick_from_slices(prob: &[f32], alias: &[u32], slot: usize, u: f32) -> u32 {
    if u < prob[slot] {
        slot as u32
    } else {
        alias[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn empirical(weights: &[f32], draws: usize, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..draws {
            let slot = rng.gen_range(0..weights.len());
            let u: f32 = rng.gen();
            counts[t.pick(slot, u) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freq = empirical(&[1.0, 1.0, 1.0, 1.0], 40_000, 7);
        for f in freq {
            assert!((f - 0.25).abs() < 0.02, "freq {f} too far from 0.25");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let freq = empirical(&w, 100_000, 11);
        let total: f32 = w.iter().sum();
        for (f, &wi) in freq.iter().zip(&w) {
            let expect = (wi / total) as f64;
            assert!((f - expect).abs() < 0.02, "freq {f} vs expect {expect}");
        }
    }

    #[test]
    fn single_slot() {
        let t = AliasTable::new(&[5.0]);
        assert_eq!(t.pick(0, 0.999), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn zero_weight_slot_never_sampled() {
        let freq = empirical(&[0.0, 1.0], 20_000, 3);
        assert!(freq[0] < 1e-9);
        assert!((freq[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative() {
        let _ = AliasTable::new(&[1.0, -1.0]);
    }

    #[test]
    fn pick_from_slices_matches_table() {
        let t = AliasTable::new(&[1.0, 2.0, 3.0]);
        let (p, a) = t.clone().into_parts();
        for slot in 0..3 {
            for u in [0.0f32, 0.3, 0.6, 0.99] {
                assert_eq!(t.pick(slot, u), pick_from_slices(&p, &a, slot, u));
            }
        }
    }
}
