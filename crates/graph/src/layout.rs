//! On-disk edge record formats and decoded per-vertex edge views.
//!
//! All out-of-core engines in this reproduction store the graph as a CSR
//! whose *index* (the `offsets` prefix-sum) stays in memory — the paper
//! keeps the CSR index resident too (§3.3.1) — while the *edge region* lives
//! on the device as a flat array of fixed-size records:
//!
//! | format | record | contents |
//! |---|---|---|
//! | [`EdgeFormat::Unweighted`] | 4 B | `target: u32` |
//! | [`EdgeFormat::Weighted`] | 8 B | `target: u32, weight: f32` |
//! | [`EdgeFormat::WeightedAlias`] | 12 B | `target: u32, prob: f32, alias: u32` |
//!
//! 12 B/edge for the alias format matches the paper's `K30W` arithmetic
//! (32 B edges → 384 GiB).

use crate::csr::Csr;
use crate::VertexId;

/// Fixed-size on-disk edge record layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EdgeFormat {
    /// 4-byte records: destination vertex only.
    #[default]
    Unweighted,
    /// 8-byte records: destination + edge weight.
    Weighted,
    /// 12-byte records: destination + alias-table slot (prob, alias index).
    WeightedAlias,
}

impl EdgeFormat {
    /// Bytes per edge record.
    pub fn record_bytes(self) -> usize {
        match self {
            EdgeFormat::Unweighted => 4,
            EdgeFormat::Weighted => 8,
            EdgeFormat::WeightedAlias => 12,
        }
    }
}

/// Errors from serializing an edge region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutError {
    /// The requested format stores per-edge weights the CSR does not carry.
    MissingWeights,
    /// The requested format stores alias tables the CSR has not built.
    MissingAliasTables,
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::MissingWeights => {
                write!(f, "Weighted format requires a CSR with edge weights")
            }
            LayoutError::MissingAliasTables => {
                write!(f, "WeightedAlias format requires built alias tables")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// Serializes the edge region of `csr` in the given format.
///
/// # Errors
///
/// [`LayoutError`] if the format needs weights/alias data the CSR does
/// not carry.
pub fn encode_edge_region(csr: &Csr, format: EdgeFormat) -> Result<Vec<u8>, LayoutError> {
    let n = csr.num_edges() as usize;
    let mut out = Vec::with_capacity(n * format.record_bytes());
    match format {
        EdgeFormat::Unweighted => {
            for &t in csr.targets() {
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
        EdgeFormat::Weighted => {
            let w = csr.weights().ok_or(LayoutError::MissingWeights)?;
            for (&t, &wt) in csr.targets().iter().zip(w) {
                out.extend_from_slice(&t.to_le_bytes());
                out.extend_from_slice(&wt.to_le_bytes());
            }
        }
        EdgeFormat::WeightedAlias => {
            for v in 0..csr.num_vertices() as VertexId {
                let targets = csr.neighbors(v);
                let (prob, alias) = csr.alias_slices(v).ok_or(LayoutError::MissingAliasTables)?;
                for i in 0..targets.len() {
                    out.extend_from_slice(&targets[i].to_le_bytes());
                    out.extend_from_slice(&prob[i].to_le_bytes());
                    out.extend_from_slice(&alias[i].to_le_bytes());
                }
            }
        }
    }
    Ok(out)
}

/// Reads a little-endian `u32` at `off`; panics if out of bounds, which
/// accessor index contracts already guarantee against.
fn le_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

/// Reads a little-endian `f32` at `off`.
fn le_f32(bytes: &[u8], off: usize) -> f32 {
    f32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

/// A read-only view of one vertex's out-edges, either borrowed from an
/// in-memory [`Csr`] or decoded on the fly from raw loaded device bytes.
///
/// This is the `Vertex` argument of the paper's `Sample(Vertex v)` API
/// (Algorithm 2): applications see degree, targets, weights and alias slots
/// without knowing where the bytes came from.
#[derive(Debug, Clone, Copy)]
pub enum VertexEdges<'a> {
    /// Borrowed from an in-memory CSR.
    Mem {
        /// Neighbor targets.
        targets: &'a [VertexId],
        /// Parallel weights, if the graph is weighted.
        weights: Option<&'a [f32]>,
        /// Parallel alias slots, if built.
        alias: Option<(&'a [f32], &'a [u32])>,
    },
    /// Raw little-endian edge records loaded from a device.
    Raw {
        /// The record bytes (`degree × record_bytes` long).
        bytes: &'a [u8],
        /// Record layout.
        format: EdgeFormat,
    },
}

impl<'a> VertexEdges<'a> {
    /// Builds a view over an in-memory CSR vertex.
    pub fn from_csr(csr: &'a Csr, v: VertexId) -> Self {
        VertexEdges::Mem {
            targets: csr.neighbors(v),
            weights: csr.edge_weights(v),
            alias: csr.alias_slices(v),
        }
    }

    /// Builds a view over raw loaded bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not a multiple of the record size.
    pub fn from_raw(bytes: &'a [u8], format: EdgeFormat) -> Self {
        assert!(
            bytes.len().is_multiple_of(format.record_bytes()),
            "raw edge bytes must be a whole number of records"
        );
        VertexEdges::Raw { bytes, format }
    }

    /// Out-degree of the vertex.
    pub fn degree(&self) -> usize {
        match self {
            VertexEdges::Mem { targets, .. } => targets.len(),
            VertexEdges::Raw { bytes, format } => bytes.len() / format.record_bytes(),
        }
    }

    /// True if the vertex has no out-edges.
    pub fn is_empty(&self) -> bool {
        self.degree() == 0
    }

    /// Destination of edge `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= degree()`.
    pub fn target(&self, i: usize) -> VertexId {
        match self {
            VertexEdges::Mem { targets, .. } => targets[i],
            VertexEdges::Raw { bytes, format } => le_u32(bytes, i * format.record_bytes()),
        }
    }

    /// Weight of edge `i`, if the layout carries weights.
    pub fn weight(&self, i: usize) -> Option<f32> {
        match self {
            VertexEdges::Mem { weights, .. } => weights.map(|w| w[i]),
            VertexEdges::Raw { bytes, format } => match format {
                // WeightedAlias records carry the alias slot instead of the
                // raw weight — the alias table alone suffices for sampling.
                EdgeFormat::Unweighted | EdgeFormat::WeightedAlias => None,
                EdgeFormat::Weighted => Some(le_f32(bytes, i * format.record_bytes() + 4)),
            },
        }
    }

    /// Alias slot `(prob, alias_index)` of edge `i`, if the layout carries
    /// alias tables.
    pub fn alias_slot(&self, i: usize) -> Option<(f32, u32)> {
        match self {
            VertexEdges::Mem { alias, .. } => alias.map(|(p, a)| (p[i], a[i])),
            VertexEdges::Raw { bytes, format } => match format {
                EdgeFormat::WeightedAlias => {
                    let off = i * format.record_bytes();
                    Some((le_f32(bytes, off + 4), le_u32(bytes, off + 8)))
                }
                _ => None,
            },
        }
    }

    /// True if the directed edge to `dst` is present (linear scan — used by
    /// second-order rejection to compute `d_ux`, Appendix A).
    pub fn contains_target(&self, dst: VertexId) -> bool {
        (0..self.degree()).any(|i| self.target(i) == dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    fn weighted_graph() -> Csr {
        CsrBuilder::new(3)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 0)
            .build()
            .with_weights(vec![1.0, 2.0, 5.0])
            .build_alias_tables()
    }

    #[test]
    fn record_sizes() {
        assert_eq!(EdgeFormat::Unweighted.record_bytes(), 4);
        assert_eq!(EdgeFormat::Weighted.record_bytes(), 8);
        assert_eq!(EdgeFormat::WeightedAlias.record_bytes(), 12);
    }

    #[test]
    fn encode_unweighted_roundtrip() {
        let g = CsrBuilder::new(3).edge(0, 2).edge(1, 0).build();
        let bytes = encode_edge_region(&g, EdgeFormat::Unweighted).unwrap();
        assert_eq!(bytes.len(), 8);
        let view = VertexEdges::from_raw(&bytes[0..4], EdgeFormat::Unweighted);
        assert_eq!(view.target(0), 2);
    }

    #[test]
    fn encode_weighted_roundtrip() {
        let g = weighted_graph();
        let bytes = encode_edge_region(&g, EdgeFormat::Weighted).unwrap();
        assert_eq!(bytes.len(), 3 * 8);
        let view = VertexEdges::from_raw(&bytes[8..16], EdgeFormat::Weighted);
        assert_eq!(view.target(0), 2);
        assert_eq!(view.weight(0), Some(2.0));
    }

    #[test]
    fn encode_alias_roundtrip_matches_mem_view() {
        let g = weighted_graph();
        let bytes = encode_edge_region(&g, EdgeFormat::WeightedAlias).unwrap();
        assert_eq!(bytes.len(), 3 * 12);
        // Vertex 0 has edges [0, 2) in the flat array.
        let raw = VertexEdges::from_raw(&bytes[0..24], EdgeFormat::WeightedAlias);
        let mem = VertexEdges::from_csr(&g, 0);
        assert_eq!(raw.degree(), mem.degree());
        for i in 0..raw.degree() {
            assert_eq!(raw.target(i), mem.target(i));
            // Raw WeightedAlias records drop the weight; the alias slot is
            // the sampling-relevant payload and must round-trip exactly.
            assert_eq!(raw.weight(i), None);
            assert_eq!(raw.alias_slot(i), mem.alias_slot(i));
        }
    }

    #[test]
    fn contains_target_scans() {
        let g = weighted_graph();
        let view = VertexEdges::from_csr(&g, 0);
        assert!(view.contains_target(1));
        assert!(view.contains_target(2));
        assert!(!view.contains_target(0));
    }

    #[test]
    #[should_panic(expected = "whole number of records")]
    fn raw_view_rejects_partial_records() {
        let bytes = [0u8; 6];
        let _ = VertexEdges::from_raw(&bytes, EdgeFormat::Unweighted);
    }
}
