//! The `noswalker` binary.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match noswalker_cli::args::parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match noswalker_cli::run(cli) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
