//! Library backing the `noswalker` command-line tool.
//!
//! The CLI wires the workspace together for end users:
//!
//! ```text
//! noswalker convert  edges.txt graph.csr          # edge list → binary CSR
//! noswalker info     graph.csr                    # dataset statistics
//! noswalker generate rmat --scale 16 --degree 32 out.csr
//! noswalker run      graph.csr --app ppr --engine noswalker --budget-pct 12
//! noswalker serve    graph.csr --script queries.txt       # online multi-query
//! ```
//!
//! Argument parsing is hand-rolled (no external CLI dependency); every
//! subcommand is a pure function from parsed options to an exit report, so
//! the whole surface is unit-testable.

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{Cli, Command, ParseError};

/// Runs a parsed CLI invocation, returning the text to print.
///
/// # Errors
///
/// Returns a human-readable error string on any failure (bad input file,
/// infeasible budget, unknown app, …).
pub fn run(cli: Cli) -> Result<String, String> {
    match cli.command {
        Command::Convert { input, output } => commands::convert(&input, &output),
        Command::Info { graph } => commands::info(&graph),
        Command::Generate {
            family,
            scale,
            degree,
            output,
            seed,
        } => commands::generate(&family, scale, degree, &output, seed),
        Command::Run {
            graph,
            app,
            engine,
            budget_pct,
            walkers,
            length,
            seed,
            trace_out,
        } => commands::run_walk(
            &graph,
            &app,
            &engine,
            budget_pct,
            walkers,
            length,
            seed,
            trace_out.as_deref(),
        ),
        Command::Serve {
            graph,
            script,
            budget_pct,
            seed,
            backend,
            shards,
            mode,
            duration_ms,
        } => commands::run_serve(
            &graph,
            &script,
            budget_pct,
            seed,
            &backend,
            shards,
            &mode,
            duration_ms,
        ),
    }
}
