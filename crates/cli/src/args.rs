//! Hand-rolled argument parsing for the `noswalker` binary.

use std::fmt;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to execute.
    pub command: Command,
}

/// The CLI subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Convert a text edge list into the binary CSR container.
    Convert {
        /// Input edge-list path.
        input: String,
        /// Output `.csr` path.
        output: String,
    },
    /// Print statistics of a binary CSR graph.
    Info {
        /// Graph path.
        graph: String,
    },
    /// Generate a synthetic graph.
    Generate {
        /// Generator family: `rmat`, `uniform`, or `powerlaw`.
        family: String,
        /// log2 of the vertex count.
        scale: u32,
        /// Average (rmat) / exact (uniform) / minimum (powerlaw) degree.
        degree: u32,
        /// Output `.csr` path.
        output: String,
        /// RNG seed.
        seed: u64,
    },
    /// Run a random walk application on a stored graph.
    Run {
        /// Graph path (`.csr`) or text edge list.
        graph: String,
        /// Application: `basic`, `ppr`, `rwr`, `rwd`, `graphlet`,
        /// `deepwalk`, `node2vec`.
        app: String,
        /// Engine: `noswalker`, `graphwalker`, `drunkardmob`, `graphene`,
        /// `inmemory`, `parallel`.
        engine: String,
        /// Memory budget as a percentage of the edge region.
        budget_pct: u32,
        /// Number of walkers (app-specific default when 0).
        walkers: u64,
        /// Walk length.
        length: u32,
        /// RNG seed.
        seed: u64,
        /// Optional path for a structured run trace (`.json` or `.tsv`).
        trace_out: Option<String>,
    },
    /// Replay a query trace against the online serving engine.
    Serve {
        /// Graph path (`.csr`) or text edge list.
        graph: String,
        /// Query script path (`at_us class walkers length [deadline_us]`).
        script: String,
        /// Memory budget as a percentage of the edge region.
        budget_pct: u32,
        /// RNG seed.
        seed: u64,
        /// Step-kernel backend: `seq`, `par`, or `auto`.
        backend: String,
        /// Number of serve-plane shards (1 = the unsharded engine).
        shards: u32,
        /// Serving mode: `lockstep` (deterministic modeled-time replay)
        /// or `realtime` (background tick thread, wall-paced arrivals).
        mode: String,
        /// Realtime only: hard wall-time cap in milliseconds (0 = serve
        /// the whole trace).
        duration_ms: u64,
    },
}

/// A CLI parse failure; `Display` is the message shown to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
noswalker — out-of-core random walk processing (ASPLOS '23 reproduction)

USAGE:
  noswalker convert  <edges.txt> <out.csr>
  noswalker info     <graph.csr>
  noswalker generate <rmat|uniform|powerlaw> --scale N --degree D [--seed S] <out.csr>
  noswalker run      <graph> --app APP [--engine ENGINE] [--walkers N]
                     [--length L] [--budget-pct P] [--seed S]
                     [--trace-out run.json|run.tsv]
  noswalker serve    <graph> --script <trace.txt> [--budget-pct P] [--seed S]
                     [--backend seq|par|auto] [--shards N]
                     [--mode lockstep|realtime] [--duration-ms D]

APPS:     basic ppr rwr rwd graphlet deepwalk node2vec
ENGINES:  noswalker (default) graphwalker drunkardmob graphene inmemory parallel
";

fn bad(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, ParseError> {
    let v = v.ok_or_else(|| bad(format!("{flag} needs a value")))?;
    v.parse()
        .map_err(|_| bad(format!("invalid value {v:?} for {flag}")))
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// [`ParseError`] with a user-facing message on any malformed input.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, ParseError> {
    let mut it = args.into_iter().peekable();
    let sub = it.next().ok_or_else(|| bad(USAGE))?;
    let command = match sub.as_str() {
        "convert" => {
            let input = it.next().ok_or_else(|| bad("convert needs <edges.txt>"))?;
            let output = it.next().ok_or_else(|| bad("convert needs <out.csr>"))?;
            Command::Convert { input, output }
        }
        "info" => {
            let graph = it.next().ok_or_else(|| bad("info needs <graph.csr>"))?;
            Command::Info { graph }
        }
        "generate" => {
            let family = it.next().ok_or_else(|| bad("generate needs a family"))?;
            let mut scale = None;
            let mut degree = None;
            let mut seed = 42u64;
            let mut output = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--scale" => scale = Some(parse_num("--scale", it.next())?),
                    "--degree" => degree = Some(parse_num("--degree", it.next())?),
                    "--seed" => seed = parse_num("--seed", it.next())?,
                    other if !other.starts_with('-') => output = Some(other.to_string()),
                    other => return Err(bad(format!("unknown flag {other}"))),
                }
            }
            Command::Generate {
                family,
                scale: scale.ok_or_else(|| bad("generate needs --scale"))?,
                degree: degree.ok_or_else(|| bad("generate needs --degree"))?,
                output: output.ok_or_else(|| bad("generate needs an output path"))?,
                seed,
            }
        }
        "run" => {
            let graph = it.next().ok_or_else(|| bad("run needs a graph path"))?;
            let mut app = None;
            let mut engine = "noswalker".to_string();
            let mut budget_pct = 12u32;
            let mut walkers = 0u64;
            let mut length = 10u32;
            let mut seed = 42u64;
            let mut trace_out = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--app" => app = it.next(),
                    "--engine" => {
                        engine = it.next().ok_or_else(|| bad("--engine needs a value"))?;
                    }
                    "--budget-pct" => budget_pct = parse_num("--budget-pct", it.next())?,
                    "--walkers" => walkers = parse_num("--walkers", it.next())?,
                    "--length" => length = parse_num("--length", it.next())?,
                    "--seed" => seed = parse_num("--seed", it.next())?,
                    "--trace-out" => {
                        trace_out = Some(it.next().ok_or_else(|| bad("--trace-out needs a path"))?);
                    }
                    other => return Err(bad(format!("unknown flag {other}"))),
                }
            }
            Command::Run {
                graph,
                app: app.ok_or_else(|| bad("run needs --app"))?,
                engine,
                budget_pct,
                walkers,
                length,
                seed,
                trace_out,
            }
        }
        "serve" => {
            let graph = it.next().ok_or_else(|| bad("serve needs a graph path"))?;
            let mut script = None;
            let mut budget_pct = 12u32;
            let mut seed = 42u64;
            let mut backend = "seq".to_string();
            let mut shards = 1u32;
            let mut mode = "lockstep".to_string();
            let mut duration_ms = 0u64;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--script" => {
                        script = Some(it.next().ok_or_else(|| bad("--script needs a path"))?);
                    }
                    "--budget-pct" => budget_pct = parse_num("--budget-pct", it.next())?,
                    "--seed" => seed = parse_num("--seed", it.next())?,
                    "--backend" => {
                        backend = it.next().ok_or_else(|| bad("--backend needs a value"))?;
                        if !matches!(backend.as_str(), "seq" | "par" | "auto") {
                            return Err(bad(format!(
                                "invalid value {backend:?} for --backend (expected seq, par or auto)"
                            )));
                        }
                    }
                    "--shards" => {
                        shards = parse_num("--shards", it.next())?;
                        if shards == 0 {
                            return Err(bad("--shards must be at least 1"));
                        }
                    }
                    "--mode" => {
                        mode = it.next().ok_or_else(|| bad("--mode needs a value"))?;
                        if !matches!(mode.as_str(), "lockstep" | "realtime") {
                            return Err(bad(format!(
                                "invalid value {mode:?} for --mode (expected lockstep or realtime)"
                            )));
                        }
                    }
                    "--duration-ms" => duration_ms = parse_num("--duration-ms", it.next())?,
                    other => return Err(bad(format!("unknown flag {other}"))),
                }
            }
            if duration_ms != 0 && mode != "realtime" {
                return Err(bad("--duration-ms requires --mode realtime"));
            }
            if mode == "realtime" && shards != 1 {
                return Err(bad("--mode realtime serves unsharded (drop --shards)"));
            }
            Command::Serve {
                graph,
                script: script.ok_or_else(|| bad("serve needs --script"))?,
                budget_pct,
                seed,
                backend,
                shards,
                mode,
                duration_ms,
            }
        }
        "--help" | "-h" | "help" => return Err(bad(USAGE)),
        other => return Err(bad(format!("unknown subcommand {other}\n\n{USAGE}"))),
    };
    Ok(Cli { command })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Result<Cli, ParseError> {
        parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_convert() {
        let cli = p("convert in.txt out.csr").unwrap();
        assert_eq!(
            cli.command,
            Command::Convert {
                input: "in.txt".into(),
                output: "out.csr".into()
            }
        );
    }

    #[test]
    fn parses_generate_with_flags_in_any_order() {
        let cli = p("generate rmat --degree 8 --scale 12 out.csr --seed 7").unwrap();
        assert_eq!(
            cli.command,
            Command::Generate {
                family: "rmat".into(),
                scale: 12,
                degree: 8,
                output: "out.csr".into(),
                seed: 7
            }
        );
    }

    #[test]
    fn parses_run_with_defaults() {
        let cli = p("run g.csr --app ppr").unwrap();
        match cli.command {
            Command::Run {
                engine,
                budget_pct,
                length,
                trace_out,
                ..
            } => {
                assert_eq!(engine, "noswalker");
                assert_eq!(budget_pct, 12);
                assert_eq!(length, 10);
                assert_eq!(trace_out, None);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_trace_out() {
        let cli = p("run g.csr --app basic --trace-out run.json").unwrap();
        match cli.command {
            Command::Run { trace_out, .. } => assert_eq!(trace_out.as_deref(), Some("run.json")),
            other => panic!("wrong command {other:?}"),
        }
        assert!(p("run g.csr --app basic --trace-out")
            .unwrap_err()
            .0
            .contains("--trace-out"));
    }

    #[test]
    fn rejects_missing_values_and_unknown_flags() {
        assert!(p("run g.csr").unwrap_err().0.contains("--app"));
        assert!(p("generate rmat --scale")
            .unwrap_err()
            .0
            .contains("--scale"));
        assert!(p("run g.csr --app basic --frob 1")
            .unwrap_err()
            .0
            .contains("unknown flag"));
        assert!(p("frobnicate")
            .unwrap_err()
            .0
            .contains("unknown subcommand"));
        assert!(p("run g.csr --app basic --walkers abc")
            .unwrap_err()
            .0
            .contains("invalid value"));
    }

    #[test]
    fn parses_serve() {
        let cli = p("serve g.csr --script trace.txt --budget-pct 25 --seed 9").unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                graph: "g.csr".into(),
                script: "trace.txt".into(),
                budget_pct: 25,
                seed: 9,
                backend: "seq".into(),
                shards: 1,
                mode: "lockstep".into(),
                duration_ms: 0,
            }
        );
        assert!(p("serve g.csr").unwrap_err().0.contains("--script"));
        assert!(p("serve g.csr --script")
            .unwrap_err()
            .0
            .contains("--script"));
        assert!(p("serve g.csr --script t --frob 1")
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn parses_serve_backend() {
        for b in ["seq", "par", "auto"] {
            let cli = p(&format!("serve g.csr --script t.txt --backend {b}")).unwrap();
            match cli.command {
                Command::Serve { backend, .. } => assert_eq!(backend, b),
                other => panic!("wrong command {other:?}"),
            }
        }
        assert!(p("serve g.csr --script t.txt --backend threads")
            .unwrap_err()
            .0
            .contains("--backend"));
        assert!(p("serve g.csr --script t.txt --backend")
            .unwrap_err()
            .0
            .contains("--backend"));
    }

    #[test]
    fn parses_serve_shards() {
        let cli = p("serve g.csr --script t.txt --shards 4").unwrap();
        match cli.command {
            Command::Serve { shards, .. } => assert_eq!(shards, 4),
            other => panic!("wrong command {other:?}"),
        }
        assert!(p("serve g.csr --script t.txt --shards 0")
            .unwrap_err()
            .0
            .contains("--shards"));
        assert!(p("serve g.csr --script t.txt --shards")
            .unwrap_err()
            .0
            .contains("--shards"));
        assert!(p("serve g.csr --script t.txt --shards four")
            .unwrap_err()
            .0
            .contains("invalid value"));
    }

    #[test]
    fn parses_serve_mode_and_duration() {
        let cli = p("serve g.csr --script t.txt --mode realtime --duration-ms 250").unwrap();
        match cli.command {
            Command::Serve {
                mode, duration_ms, ..
            } => {
                assert_eq!(mode, "realtime");
                assert_eq!(duration_ms, 250);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(p("serve g.csr --script t.txt --mode turbo")
            .unwrap_err()
            .0
            .contains("--mode"));
        // A duration cap is a realtime concept; lockstep replays run on
        // modeled time, so wall caps there are a user error.
        assert!(p("serve g.csr --script t.txt --duration-ms 5")
            .unwrap_err()
            .0
            .contains("--mode realtime"));
        assert!(p("serve g.csr --script t.txt --mode realtime --shards 2")
            .unwrap_err()
            .0
            .contains("unsharded"));
    }

    #[test]
    fn help_prints_usage() {
        assert!(p("--help").unwrap_err().0.contains("USAGE"));
    }
}
