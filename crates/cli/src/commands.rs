//! Implementations of the CLI subcommands.

use noswalker_apps::{
    BasicRw, DeepWalk, GraphletConcentration, Node2Vec, Ppr, RandomWalkDomination,
    RandomWalkWithRestart,
};
use noswalker_baselines::{DrunkardMob, GraphWalker, Graphene, InMemory};
use noswalker_core::audit::{MemorySink, TraceSink};
use noswalker_core::parallel::ParallelRunner;
use noswalker_core::StaticQuerySource;
use noswalker_core::{EngineOptions, NosWalkerEngine, OnDiskGraph, RunMetrics, Walk, WallTimer};
use noswalker_graph::io::{load_csr, read_edge_list, save_csr};
use noswalker_graph::stats::DegreeStats;
use noswalker_graph::{generators, Csr};
use noswalker_serve::{
    parse_script, render_report, Backend, RealtimeOptions, RealtimeServer, ServeEngine,
    ServeOptions,
};
use noswalker_shard::ShardPlane;
use noswalker_storage::{per_shard_devices, MemoryBudget, SimSsd, SsdProfile};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::sync::Arc;

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

fn load_graph(path: &str) -> Result<Csr, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    if path.ends_with(".csr") {
        load_csr(BufReader::new(file)).map_err(err)
    } else {
        read_edge_list(BufReader::new(file)).map_err(err)
    }
}

/// `noswalker convert <edges> <out.csr>`.
pub fn convert(input: &str, output: &str) -> Result<String, String> {
    let g = load_graph(input)?;
    let out = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    save_csr(&g, BufWriter::new(out)).map_err(err)?;
    Ok(format!(
        "wrote {output}: {} vertices, {} edges{}",
        g.num_vertices(),
        g.num_edges(),
        if g.is_weighted() { " (weighted)" } else { "" }
    ))
}

/// `noswalker info <graph>`.
pub fn info(path: &str) -> Result<String, String> {
    let g = load_graph(path)?;
    let s = DegreeStats::of(&g);
    Ok(format!(
        "{path}\n  vertices:          {}\n  edges:             {}\n  csr bytes:         {}\n  avg degree:        {:.2}\n  max degree:        {}\n  degree gini:       {:.3}\n  low-degree (≤4):   {:.1}% of vertices, {:.2}% of edges\n  weighted:          {}",
        s.num_vertices,
        s.num_edges,
        g.csr_bytes(),
        s.avg_degree,
        s.max_degree,
        s.gini,
        s.low_degree_fraction * 100.0,
        s.low_degree_edge_fraction * 100.0,
        g.is_weighted(),
    ))
}

/// `noswalker generate <family> --scale N --degree D <out.csr>`.
pub fn generate(
    family: &str,
    scale: u32,
    degree: u32,
    output: &str,
    seed: u64,
) -> Result<String, String> {
    let g = match family {
        "rmat" => generators::rmat(scale, degree, generators::RmatParams::default(), seed),
        "uniform" => generators::uniform_degree(1usize << scale, degree, seed),
        "powerlaw" => {
            generators::configuration_model(1usize << scale, 2.7, degree.max(1), 256, seed)
        }
        other => return Err(format!("unknown generator family {other:?}")),
    };
    let out = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    save_csr(&g, BufWriter::new(out)).map_err(err)?;
    Ok(format!(
        "generated {family} graph: {} vertices, {} edges → {output}",
        g.num_vertices(),
        g.num_edges()
    ))
}

fn format_metrics(label: &str, m: &RunMetrics) -> String {
    // Derived figures are computed here; every raw counter comes from the
    // shared RunMetrics snapshot writer (the same enumeration the bench
    // JSON artifacts use), so a new counter appears in this report
    // without touching the CLI.
    let mut out = format!(
        "{label}\n  derived:           {:.1} edges/step, {:.2} M steps/s, {:.4} s simulated, {:.4} s wall",
        m.edges_per_step(),
        m.steps_per_sec() / 1e6,
        m.sim_secs(),
        m.wall_ns as f64 / 1e9,
    );
    for (name, value) in m.snapshot_fields() {
        out.push_str(&format!("\n  {name:<19}{value}"));
    }
    out
}

/// Reborrows a sink with a fresh (shorter) trait-object lifetime, so it
/// can be handed to an engine constructed as a temporary in the same
/// statement.
fn reborrow<'a>(s: &'a mut Option<&mut dyn TraceSink>) -> Option<&'a mut dyn TraceSink> {
    s.as_deref_mut().map(|x| x as &mut dyn TraceSink)
}

fn dispatch_engine<A: Walk + 'static>(
    engine: &str,
    app: Arc<A>,
    csr: &Csr,
    budget_bytes: u64,
    seed: u64,
    mut sink: Option<&mut dyn TraceSink>,
) -> Result<RunMetrics, String> {
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let block_bytes = (csr.num_edges() * 4 / 32).max(4096);
    let graph = Arc::new(OnDiskGraph::store(csr, device, block_bytes).map_err(err)?);
    let budget = MemoryBudget::new(budget_bytes);
    let opts = EngineOptions::default();
    match engine {
        "noswalker" => NosWalkerEngine::new(app, graph, opts, budget)
            .run_with_sink(seed, reborrow(&mut sink))
            .map_err(err),
        "graphwalker" => GraphWalker::new(app, graph, opts, budget)
            .run_with_sink(seed, reborrow(&mut sink))
            .map_err(err),
        "drunkardmob" => DrunkardMob::new(app, graph, opts, budget)
            .run_with_sink(seed, reborrow(&mut sink))
            .map_err(err),
        "graphene" => Graphene::new(app, graph, opts, budget)
            .run_with_sink(seed, reborrow(&mut sink))
            .map_err(err),
        "inmemory" => Ok(
            InMemory::new(app, Arc::new(csr.clone()), opts, SsdProfile::nvme_p4618())
                .run_with_sink(seed, reborrow(&mut sink)),
        ),
        "parallel" => {
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            ParallelRunner::new(app, graph, opts, budget)
                .run_with_sink(seed, workers, reborrow(&mut sink))
                .map_err(err)
        }
        other => Err(format!("unknown engine {other:?}")),
    }
}

/// Serializes a recorded trace to `path` (JSON unless the extension is
/// `.tsv`) and returns report lines summarizing it, including stall
/// attribution (which block the engine was waiting on, worst first).
fn write_trace(path: &str, sink: &MemorySink) -> Result<String, String> {
    let body = if path.ends_with(".tsv") {
        sink.to_tsv()
    } else {
        sink.to_json()
    };
    std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
    let mut note = format!(
        "\n  trace:             {} events → {path}",
        sink.events.len()
    );
    let total = sink.total_stall_ns();
    if total > 0 {
        note.push_str(&format!(
            "\n  stall attribution: {:.4} s total",
            total as f64 / 1e9
        ));
        for (block, ns) in sink.stall_by_block().into_iter().take(3) {
            let who = match block {
                Some(b) => format!("block {b}"),
                None => "unattributed".into(),
            };
            note.push_str(&format!(
                "\n    {who}: {:.4} s ({:.1}%)",
                ns as f64 / 1e9,
                ns as f64 * 100.0 / total as f64
            ));
        }
    }
    Ok(note)
}

/// `noswalker run <graph> --app APP ... [--trace-out PATH]`.
#[allow(clippy::too_many_arguments)]
pub fn run_walk(
    graph_path: &str,
    app: &str,
    engine: &str,
    budget_pct: u32,
    walkers: u64,
    length: u32,
    seed: u64,
    trace_out: Option<&str>,
) -> Result<String, String> {
    let csr = load_graph(graph_path)?;
    let n = csr.num_vertices();
    if n == 0 {
        return Err("graph has no vertices".into());
    }
    let budget_bytes = (csr.edge_region_bytes() * budget_pct as u64 / 100).max(64 << 10);
    let label =
        format!("{app} on {graph_path} via {engine} (budget {budget_pct}% = {budget_bytes} bytes)");

    let mut sink: Option<MemorySink> = trace_out.map(|_| MemorySink::new());
    fn as_dyn(s: &mut Option<MemorySink>) -> Option<&mut dyn TraceSink> {
        s.as_mut().map(|m| m as &mut dyn TraceSink)
    }

    // App-specific defaults follow the paper's settings.
    let m = match app {
        "basic" => {
            let w = if walkers == 0 { n as u64 } else { walkers };
            dispatch_engine(
                engine,
                Arc::new(BasicRw::new(w, length, n)),
                &csr,
                budget_bytes,
                seed,
                as_dyn(&mut sink),
            )?
        }
        "ppr" => {
            let per = if walkers == 0 { 2000 } else { walkers };
            let sources = vec![0u32, (n as u32) / 3, (n as u32) / 2];
            dispatch_engine(
                engine,
                Arc::new(Ppr::new(sources, per, length, n)),
                &csr,
                budget_bytes,
                seed,
                as_dyn(&mut sink),
            )?
        }
        "rwr" => {
            let per = if walkers == 0 { 2000 } else { walkers };
            dispatch_engine(
                engine,
                Arc::new(RandomWalkWithRestart::new(vec![0], per, 0.15, length, n)),
                &csr,
                budget_bytes,
                seed,
                as_dyn(&mut sink),
            )?
        }
        "rwd" => dispatch_engine(
            engine,
            Arc::new(RandomWalkDomination::new(n, length.min(6))),
            &csr,
            budget_bytes,
            seed,
            as_dyn(&mut sink),
        )?,
        "graphlet" => dispatch_engine(
            engine,
            Arc::new(GraphletConcentration::paper_scale(n)),
            &csr,
            budget_bytes,
            seed,
            as_dyn(&mut sink),
        )?,
        "deepwalk" => {
            let per = if walkers == 0 {
                1
            } else {
                walkers.min(u32::MAX as u64) as u32
            };
            dispatch_engine(
                engine,
                Arc::new(DeepWalk::new(n, per, length, 0)),
                &csr,
                budget_bytes,
                seed,
                as_dyn(&mut sink),
            )?
        }
        "node2vec" => {
            if engine != "noswalker" {
                return Err("node2vec (second order) runs on --engine noswalker only".into());
            }
            let und = csr.to_undirected();
            let per = if walkers == 0 {
                1
            } else {
                walkers.min(u32::MAX as u64) as u32
            };
            let app = Arc::new(Node2Vec::new(und.num_vertices(), per, length, 2.0, 0.5));
            let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
            let block_bytes = (und.num_edges() * 4 / 32).max(4096);
            let graph = Arc::new(OnDiskGraph::store(&und, device, block_bytes).map_err(err)?);
            NosWalkerEngine::new(
                app,
                graph,
                EngineOptions::default(),
                MemoryBudget::new(budget_bytes),
            )
            .run_second_order_with_sink(seed, as_dyn(&mut sink))
            .map_err(err)?
        }
        other => return Err(format!("unknown app {other:?}")),
    };
    let mut report = format_metrics(&label, &m);
    if let (Some(path), Some(sink)) = (trace_out, sink.as_ref()) {
        report.push_str(&write_trace(path, sink)?);
    }
    Ok(report)
}

/// `noswalker serve <graph> --script <trace.txt> [--shards N]
/// [--mode lockstep|realtime]`.
///
/// Replays a query trace against the online serving engine and prints a
/// latency / shed report. The trace file format is one query per line:
/// `at_us class walkers length [deadline_us|-]` (`#` starts a comment).
/// With `--shards N > 1` the trace runs on the sharded serve plane: one
/// simulated device and walker-pool share per shard, cross-shard walker
/// handoff between rounds. With `--mode realtime` the trace is *paced*:
/// a background tick thread serves continuously while this thread
/// submits each query when its `at_us` of wall time has elapsed;
/// `--duration-ms` caps the run, shutting the server down mid-serve
/// (in-flight queries report degraded partials, nothing is lost).
#[allow(clippy::too_many_arguments)]
pub fn run_serve(
    graph_path: &str,
    script_path: &str,
    budget_pct: u32,
    seed: u64,
    backend: &str,
    shards: u32,
    mode: &str,
    duration_ms: u64,
) -> Result<String, String> {
    let backend = Backend::parse(backend)
        .ok_or_else(|| format!("unknown backend {backend:?} (expected seq, par or auto)"))?;
    let csr = load_graph(graph_path)?;
    if csr.num_vertices() == 0 {
        return Err("graph has no vertices".into());
    }
    let text = std::fs::read_to_string(script_path)
        .map_err(|e| format!("cannot open {script_path}: {e}"))?;
    let specs = parse_script(&text).map_err(err)?;
    if specs.is_empty() {
        return Err(format!("{script_path}: script has no queries"));
    }

    let budget_bytes = (csr.edge_region_bytes() * budget_pct as u64 / 100).max(64 << 10);
    let block_bytes = (csr.num_edges() * 4 / 32).max(4096);
    let opts = ServeOptions {
        seed,
        backend,
        ..ServeOptions::default()
    };
    let queries = specs.len();
    let header = format!(
        "{queries} queries from {script_path} on {graph_path} (backend {}, budget {budget_pct}% = {budget_bytes} bytes",
        backend.name()
    );
    if mode == "realtime" {
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, block_bytes).map_err(err)?);
        let budget = MemoryBudget::new(budget_bytes);
        return run_serve_realtime(graph, budget, opts, specs, duration_ms, &header);
    }
    let mut source = StaticQuerySource::new(specs);
    if shards <= 1 {
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, block_bytes).map_err(err)?);
        let budget = MemoryBudget::new(budget_bytes);
        let engine = ServeEngine::new(graph, budget, opts);
        let report = engine.run(&mut source, None).map_err(err)?;
        Ok(format!("{header})\n{}", render_report(&report)))
    } else {
        let devices = per_shard_devices(shards as usize, 1, SsdProfile::nvme_p4618(), 64 << 10);
        let plane =
            ShardPlane::build(&csr, devices, budget_bytes, block_bytes, opts).map_err(err)?;
        let r = plane.run(&mut source, None).map_err(err)?;
        Ok(format!(
            "{header}, {shards} shards)\n{}\nhandoffs: {} walkers emigrated, {} re-admitted",
            render_report(&r.report),
            r.walkers_emigrated,
            r.walkers_immigrated
        ))
    }
}

/// The realtime leg of `run_serve`: a background tick thread serves
/// while this thread paces the script's arrivals against the wall clock
/// (the CLI is the sanctioned wall-time boundary). With a duration cap
/// the server is shut down when the cap elapses — whatever is in flight
/// reports a degraded partial, and every submitted query still gets
/// exactly one outcome.
fn run_serve_realtime(
    graph: Arc<OnDiskGraph>,
    budget: Arc<MemoryBudget>,
    opts: ServeOptions,
    specs: Vec<noswalker_core::QuerySpec>,
    duration_ms: u64,
    header: &str,
) -> Result<String, String> {
    let queries = specs.len();
    let cap_ns = if duration_ms == 0 {
        u64::MAX
    } else {
        duration_ms.saturating_mul(1_000_000)
    };
    let server = RealtimeServer::single(graph, budget, opts, RealtimeOptions::default());
    let wall = WallTimer::start();
    let handle = server.start();
    let mut submitted = 0usize;
    for q in specs {
        if q.arrival_ns >= cap_ns {
            break; // arrives after the cap: the run ends first
        }
        let now = wall.elapsed_ns();
        if q.arrival_ns > now {
            std::thread::sleep(std::time::Duration::from_nanos(q.arrival_ns - now));
        }
        if handle.submit_blocking(q).is_err() {
            break; // server stopped (round backstop); report what we have
        }
        submitted += 1;
    }
    let capped = cap_ns != u64::MAX;
    if capped {
        let now = wall.elapsed_ns();
        if cap_ns > now {
            std::thread::sleep(std::time::Duration::from_nanos(cap_ns - now));
        }
    }
    let t = if capped {
        handle.shutdown_and_join().map_err(err)?
    } else {
        handle.drain_and_join().map_err(err)?
    };
    let wall_ms = wall.elapsed_ns() / 1_000_000;
    let cap = if capped {
        format!(", cap {duration_ms} ms")
    } else {
        String::new()
    };
    Ok(format!(
        "{header}, mode realtime)\n{}\nrealtime: {submitted}/{queries} submitted, wall {wall_ms} ms{cap}",
        render_report(&t.report)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("noswalker-cli-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_info_run_roundtrip() {
        let path = tmp("g.csr");
        let out = generate("rmat", 10, 8, &path, 5).unwrap();
        assert!(out.contains("1024 vertices"));
        let info = info(&path).unwrap();
        assert!(info.contains("vertices:          1024"));
        let report = run_walk(&path, "basic", "noswalker", 12, 500, 5, 3, None).unwrap();
        assert!(report.contains("walkers_finished   500"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn convert_handles_edge_lists() {
        let el = tmp("edges.txt");
        std::fs::write(&el, "0 1\n1 2\n2 0\n").unwrap();
        let out = tmp("conv.csr");
        let msg = convert(&el, &out).unwrap();
        assert!(msg.contains("3 vertices, 3 edges"));
        let report = run_walk(&out, "basic", "inmemory", 50, 10, 4, 1, None).unwrap();
        assert!(report.contains("walkers_finished   10"));
        std::fs::remove_file(&el).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn run_every_engine_and_app_smoke() {
        let path = tmp("smoke.csr");
        generate("uniform", 9, 6, &path, 7).unwrap();
        for engine in [
            "noswalker",
            "graphwalker",
            "drunkardmob",
            "graphene",
            "inmemory",
            "parallel",
        ] {
            let r = run_walk(&path, "basic", engine, 25, 200, 4, 2, None);
            assert!(r.is_ok(), "{engine}: {r:?}");
        }
        for app in ["ppr", "rwr", "rwd", "graphlet", "deepwalk", "node2vec"] {
            let r = run_walk(&path, app, "noswalker", 25, 50, 4, 2, None);
            assert!(r.is_ok(), "{app}: {r:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_out_writes_parseable_trace_with_stall_attribution() {
        let path = tmp("traced.csr");
        generate("uniform", 9, 6, &path, 7).unwrap();

        let json_path = tmp("run.json");
        let report =
            run_walk(&path, "basic", "noswalker", 25, 200, 4, 2, Some(&json_path)).unwrap();
        assert!(report.contains("trace:"), "{report}");
        let body = std::fs::read_to_string(&json_path).unwrap();
        assert!(body.trim_start().starts_with('['), "JSON array: {body}");
        assert!(body.contains("\"event\":\"run_end\""), "{body}");
        assert!(body.contains("\"event\":\"coarse_load\""), "{body}");
        // Stalls carry attribution: the block the engine waited on.
        if body.contains("\"event\":\"stall\"") {
            assert!(body.contains("\"waiting_for\""), "{body}");
            assert!(report.contains("stall attribution"), "{report}");
        }

        let tsv_path = tmp("run.tsv");
        run_walk(
            &path,
            "basic",
            "drunkardmob",
            25,
            200,
            4,
            2,
            Some(&tsv_path),
        )
        .unwrap();
        let tsv = std::fs::read_to_string(&tsv_path).unwrap();
        assert!(tsv.lines().any(|l| l.starts_with("run_end\t")), "{tsv}");

        for f in [&path, &json_path, &tsv_path] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn serve_replays_a_script_and_reports_latency() {
        let path = tmp("serve.csr");
        generate("uniform", 9, 6, &path, 7).unwrap();
        let script = tmp("serve.txt");
        std::fs::write(
            &script,
            "# at_us class walkers length deadline_us\n\
             0    ppr:3      40 8 -\n\
             100  basic      40 8 900000\n\
             200  deepwalk:0 40 8 -\n",
        )
        .unwrap();

        for backend in ["seq", "par", "auto"] {
            let report = run_serve(&path, &script, 25, 3, backend, 1, "lockstep", 0).unwrap();
            assert!(report.contains("3 queries"), "{report}");
            assert!(report.contains(&format!("backend {backend}")), "{report}");
            assert!(report.contains("served 3"), "{report}");
            assert!(report.contains("ppr"), "{report}");
            assert!(report.contains("p99="), "{report}");
            // Same inputs, same report: the serving loop runs on modeled
            // time on every backend.
            assert_eq!(
                report,
                run_serve(&path, &script, 25, 3, backend, 1, "lockstep", 0).unwrap()
            );
        }

        assert!(
            run_serve(&path, &script, 25, 3, "threads", 1, "lockstep", 0)
                .unwrap_err()
                .contains("unknown backend")
        );
        std::fs::write(&script, "0 node2vec:0 4 4 -\n").unwrap();
        assert!(run_serve(&path, &script, 25, 3, "seq", 1, "lockstep", 0)
            .unwrap_err()
            .contains("node2vec"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&script).ok();
    }

    #[test]
    fn serve_realtime_drains_and_caps() {
        let path = tmp("rt.csr");
        generate("uniform", 9, 6, &path, 7).unwrap();
        let script = tmp("rt.txt");
        std::fs::write(
            &script,
            "0   ppr:3 40 8 -\n\
             200 basic 40 8 -\n",
        )
        .unwrap();

        // Uncapped: pace the whole trace, drain, serve everything.
        let report = run_serve(&path, &script, 25, 3, "seq", 1, "realtime", 0).unwrap();
        assert!(report.contains("mode realtime"), "{report}");
        assert!(report.contains("served 2"), "{report}");
        assert!(report.contains("2/2 submitted"), "{report}");

        // Capped: the run is cut off by wall time, but every submitted
        // query still reports exactly one outcome (possibly degraded).
        let capped = run_serve(&path, &script, 25, 3, "seq", 1, "realtime", 50).unwrap();
        assert!(capped.contains("cap 50 ms"), "{capped}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&script).ok();
    }

    #[test]
    fn serve_runs_sharded_and_reports_handoffs() {
        let path = tmp("shards.csr");
        generate("uniform", 9, 6, &path, 7).unwrap();
        let script = tmp("shards.txt");
        std::fs::write(
            &script,
            "0    ppr:3    40 8 -\n\
             100  basic    40 8 -\n\
             200  ppr:400  40 8 -\n",
        )
        .unwrap();

        let sharded = run_serve(&path, &script, 25, 3, "seq", 4, "lockstep", 0).unwrap();
        assert!(sharded.contains("4 shards"), "{sharded}");
        assert!(sharded.contains("served 3"), "{sharded}");
        assert!(sharded.contains("walkers emigrated"), "{sharded}");
        // Deterministic: replaying the same trace reproduces the report.
        assert_eq!(
            sharded,
            run_serve(&path, &script, 25, 3, "seq", 4, "lockstep", 0).unwrap()
        );

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&script).ok();
    }

    #[test]
    fn errors_are_user_readable() {
        assert!(info("/no/such/file.csr")
            .unwrap_err()
            .contains("cannot open"));
        let path = tmp("err.csr");
        generate("uniform", 8, 4, &path, 1).unwrap();
        assert!(run_walk(&path, "nope", "noswalker", 12, 1, 1, 1, None)
            .unwrap_err()
            .contains("unknown app"));
        assert!(run_walk(&path, "basic", "nope", 12, 1, 1, 1, None)
            .unwrap_err()
            .contains("unknown engine"));
        assert!(
            run_walk(&path, "node2vec", "graphwalker", 12, 1, 1, 1, None)
                .unwrap_err()
                .contains("second order")
        );
        assert!(generate("nope", 8, 4, &path, 1)
            .unwrap_err()
            .contains("family"));
        std::fs::remove_file(&path).ok();
    }
}
