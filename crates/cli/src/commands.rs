//! Implementations of the CLI subcommands.

use noswalker_apps::{
    BasicRw, DeepWalk, GraphletConcentration, Node2Vec, Ppr, RandomWalkDomination,
    RandomWalkWithRestart,
};
use noswalker_baselines::{DrunkardMob, Graphene, GraphWalker, InMemory};
use noswalker_core::parallel::ParallelRunner;
use noswalker_core::{EngineOptions, NosWalkerEngine, OnDiskGraph, RunMetrics, Walk};
use noswalker_graph::io::{load_csr, read_edge_list, save_csr};
use noswalker_graph::stats::DegreeStats;
use noswalker_graph::{generators, Csr};
use noswalker_storage::{MemoryBudget, SimSsd, SsdProfile};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::sync::Arc;

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

fn load_graph(path: &str) -> Result<Csr, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    if path.ends_with(".csr") {
        load_csr(BufReader::new(file)).map_err(err)
    } else {
        read_edge_list(BufReader::new(file)).map_err(err)
    }
}

/// `noswalker convert <edges> <out.csr>`.
pub fn convert(input: &str, output: &str) -> Result<String, String> {
    let g = load_graph(input)?;
    let out = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    save_csr(&g, BufWriter::new(out)).map_err(err)?;
    Ok(format!(
        "wrote {output}: {} vertices, {} edges{}",
        g.num_vertices(),
        g.num_edges(),
        if g.is_weighted() { " (weighted)" } else { "" }
    ))
}

/// `noswalker info <graph>`.
pub fn info(path: &str) -> Result<String, String> {
    let g = load_graph(path)?;
    let s = DegreeStats::of(&g);
    Ok(format!(
        "{path}\n  vertices:          {}\n  edges:             {}\n  csr bytes:         {}\n  avg degree:        {:.2}\n  max degree:        {}\n  degree gini:       {:.3}\n  low-degree (≤4):   {:.1}% of vertices, {:.2}% of edges\n  weighted:          {}",
        s.num_vertices,
        s.num_edges,
        g.csr_bytes(),
        s.avg_degree,
        s.max_degree,
        s.gini,
        s.low_degree_fraction * 100.0,
        s.low_degree_edge_fraction * 100.0,
        g.is_weighted(),
    ))
}

/// `noswalker generate <family> --scale N --degree D <out.csr>`.
pub fn generate(
    family: &str,
    scale: u32,
    degree: u32,
    output: &str,
    seed: u64,
) -> Result<String, String> {
    let g = match family {
        "rmat" => generators::rmat(scale, degree, generators::RmatParams::default(), seed),
        "uniform" => generators::uniform_degree(1usize << scale, degree, seed),
        "powerlaw" => {
            generators::configuration_model(1usize << scale, 2.7, degree.max(1), 256, seed)
        }
        other => return Err(format!("unknown generator family {other:?}")),
    };
    let out = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    save_csr(&g, BufWriter::new(out)).map_err(err)?;
    Ok(format!(
        "generated {family} graph: {} vertices, {} edges → {output}",
        g.num_vertices(),
        g.num_edges()
    ))
}

fn format_metrics(label: &str, m: &RunMetrics) -> String {
    format!(
        "{label}\n  walkers finished:  {}\n  steps:             {} (block {}, pre-sample {}, raw {})\n  edge I/O:          {} bytes in {} ops ({:.1} edges/step)\n  swap/aux I/O:      {} bytes\n  simulated time:    {:.4} s ({:.2} M steps/s)\n  wall time:         {:.4} s\n  peak memory:       {} bytes\n  fine mode:         {}",
        m.walkers_finished,
        m.steps,
        m.steps_on_block,
        m.steps_on_presample,
        m.steps_on_raw,
        m.edge_bytes_loaded,
        m.io_ops,
        m.edges_per_step(),
        m.swap_bytes,
        m.sim_secs(),
        m.steps_per_sec() / 1e6,
        m.wall_ns as f64 / 1e9,
        m.peak_memory,
        match m.fine_mode_at_step {
            Some(s) => format!("engaged at step {s}"),
            None => "not engaged".into(),
        }
    )
}

fn dispatch_engine<A: Walk + 'static>(
    engine: &str,
    app: Arc<A>,
    csr: &Csr,
    budget_bytes: u64,
    seed: u64,
) -> Result<RunMetrics, String> {
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let block_bytes = (csr.num_edges() * 4 / 32).max(4096);
    let graph = Arc::new(OnDiskGraph::store(csr, device, block_bytes).map_err(err)?);
    let budget = MemoryBudget::new(budget_bytes);
    let opts = EngineOptions::default();
    match engine {
        "noswalker" => NosWalkerEngine::new(app, graph, opts, budget)
            .run(seed)
            .map_err(err),
        "graphwalker" => GraphWalker::new(app, graph, opts, budget)
            .run(seed)
            .map_err(err),
        "drunkardmob" => DrunkardMob::new(app, graph, opts, budget)
            .run(seed)
            .map_err(err),
        "graphene" => Graphene::new(app, graph, opts, budget)
            .run(seed)
            .map_err(err),
        "inmemory" => Ok(InMemory::new(
            app,
            Arc::new(csr.clone()),
            opts,
            SsdProfile::nvme_p4618(),
        )
        .run(seed)),
        "parallel" => {
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            ParallelRunner::new(app, graph, opts, budget)
                .run(seed, workers)
                .map_err(err)
        }
        other => Err(format!("unknown engine {other:?}")),
    }
}

/// `noswalker run <graph> --app APP ...`.
pub fn run_walk(
    graph_path: &str,
    app: &str,
    engine: &str,
    budget_pct: u32,
    walkers: u64,
    length: u32,
    seed: u64,
) -> Result<String, String> {
    let csr = load_graph(graph_path)?;
    let n = csr.num_vertices();
    if n == 0 {
        return Err("graph has no vertices".into());
    }
    let budget_bytes = (csr.edge_region_bytes() * budget_pct as u64 / 100).max(64 << 10);
    let label = format!(
        "{app} on {graph_path} via {engine} (budget {budget_pct}% = {budget_bytes} bytes)"
    );

    // App-specific defaults follow the paper's settings.
    let m = match app {
        "basic" => {
            let w = if walkers == 0 { n as u64 } else { walkers };
            dispatch_engine(engine, Arc::new(BasicRw::new(w, length, n)), &csr, budget_bytes, seed)?
        }
        "ppr" => {
            let per = if walkers == 0 { 2000 } else { walkers };
            let sources = vec![0u32, (n as u32) / 3, (n as u32) / 2];
            dispatch_engine(
                engine,
                Arc::new(Ppr::new(sources, per, length, n)),
                &csr,
                budget_bytes,
                seed,
            )?
        }
        "rwr" => {
            let per = if walkers == 0 { 2000 } else { walkers };
            dispatch_engine(
                engine,
                Arc::new(RandomWalkWithRestart::new(vec![0], per, 0.15, length, n)),
                &csr,
                budget_bytes,
                seed,
            )?
        }
        "rwd" => dispatch_engine(
            engine,
            Arc::new(RandomWalkDomination::new(n, length.min(6))),
            &csr,
            budget_bytes,
            seed,
        )?,
        "graphlet" => dispatch_engine(
            engine,
            Arc::new(GraphletConcentration::paper_scale(n)),
            &csr,
            budget_bytes,
            seed,
        )?,
        "deepwalk" => {
            let per = if walkers == 0 { 1 } else { walkers.min(u32::MAX as u64) as u32 };
            dispatch_engine(
                engine,
                Arc::new(DeepWalk::new(n, per, length, 0)),
                &csr,
                budget_bytes,
                seed,
            )?
        }
        "node2vec" => {
            if engine != "noswalker" {
                return Err("node2vec (second order) runs on --engine noswalker only".into());
            }
            let und = csr.to_undirected();
            let per = if walkers == 0 { 1 } else { walkers.min(u32::MAX as u64) as u32 };
            let app = Arc::new(Node2Vec::new(und.num_vertices(), per, length, 2.0, 0.5));
            let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
            let block_bytes = (und.num_edges() * 4 / 32).max(4096);
            let graph = Arc::new(OnDiskGraph::store(&und, device, block_bytes).map_err(err)?);
            NosWalkerEngine::new(
                app,
                graph,
                EngineOptions::default(),
                MemoryBudget::new(budget_bytes),
            )
            .run_second_order(seed)
            .map_err(err)?
        }
        other => return Err(format!("unknown app {other:?}")),
    };
    Ok(format_metrics(&label, &m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("noswalker-cli-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_info_run_roundtrip() {
        let path = tmp("g.csr");
        let out = generate("rmat", 10, 8, &path, 5).unwrap();
        assert!(out.contains("1024 vertices"));
        let info = info(&path).unwrap();
        assert!(info.contains("vertices:          1024"));
        let report = run_walk(&path, "basic", "noswalker", 12, 500, 5, 3).unwrap();
        assert!(report.contains("walkers finished:  500"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn convert_handles_edge_lists() {
        let el = tmp("edges.txt");
        std::fs::write(&el, "0 1\n1 2\n2 0\n").unwrap();
        let out = tmp("conv.csr");
        let msg = convert(&el, &out).unwrap();
        assert!(msg.contains("3 vertices, 3 edges"));
        let report = run_walk(&out, "basic", "inmemory", 50, 10, 4, 1).unwrap();
        assert!(report.contains("walkers finished:  10"));
        std::fs::remove_file(&el).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn run_every_engine_and_app_smoke() {
        let path = tmp("smoke.csr");
        generate("uniform", 9, 6, &path, 7).unwrap();
        for engine in ["noswalker", "graphwalker", "drunkardmob", "graphene", "inmemory", "parallel"] {
            let r = run_walk(&path, "basic", engine, 25, 200, 4, 2);
            assert!(r.is_ok(), "{engine}: {r:?}");
        }
        for app in ["ppr", "rwr", "rwd", "graphlet", "deepwalk", "node2vec"] {
            let r = run_walk(&path, app, "noswalker", 25, 50, 4, 2);
            assert!(r.is_ok(), "{app}: {r:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_are_user_readable() {
        assert!(info("/no/such/file.csr").unwrap_err().contains("cannot open"));
        let path = tmp("err.csr");
        generate("uniform", 8, 4, &path, 1).unwrap();
        assert!(run_walk(&path, "nope", "noswalker", 12, 1, 1, 1)
            .unwrap_err()
            .contains("unknown app"));
        assert!(run_walk(&path, "basic", "nope", 12, 1, 1, 1)
            .unwrap_err()
            .contains("unknown engine"));
        assert!(run_walk(&path, "node2vec", "graphwalker", 12, 1, 1, 1)
            .unwrap_err()
            .contains("second order"));
        assert!(generate("nope", 8, 4, &path, 1).unwrap_err().contains("family"));
        std::fs::remove_file(&path).ok();
    }
}
