//! Realtime-async serving: an autonomous background thread ticking the
//! shared [`TickCore`] state machine against real time.
//!
//! This module is the **only** place in the serving crates where wall
//! time exists (nosw-lint rules L3/L8 carve out exactly this file).
//! Everything time-*semantic* — deadlines, latency, retry-after hints —
//! still runs through the [`TickClock`] seam, so the realtime driver and
//! the lockstep [`ServeEngine`](crate::ServeEngine) execute the identical
//! round state machine; only the waiting policy differs:
//!
//! * [`WallClock`] reads a [`WallTimer`] for `now_ns` and lets real time
//!   pass on its own (`advance_round` is a no-op; `advance_idle` returns
//!   `false`, telling the driver to actually wait).
//! * Any deterministic [`TickClock`] (e.g. a
//!   [`ModelClock`](noswalker_core::ModelClock)) can be injected through
//!   [`RealtimeServer::start_with_clock`]; combined with
//!   [`IngressMode::Replay`] the run is **bit-identical** to a lockstep
//!   [`ServeEngine`](crate::ServeEngine) run over the same trace (the
//!   `serve_realtime` parity test pins this, on both kernels).
//!
//! # Protocol
//!
//! The caller talks to the server thread over a *bounded* command channel
//! ([`RealtimeHandle`]): `Submit` enqueues a query (backpressure, not
//! unbounded buffering, when the ingress is full), `Cancel` revokes one
//! wherever it currently is (ingress queue, admission queue, or active —
//! an active query drains and reports a degraded partial), `Drain` closes
//! the ingress so the run finishes once everything queued has been
//! served, and `Shutdown` aborts: in-flight queries finalize as degraded
//! partials, queued ones shed — **every accepted submit still gets
//! exactly one outcome** (the ingress stress test pins this). Results
//! stream back per tick through an epoch-swapped snapshot pool
//! ([`RealtimeHandle::snapshot`] / [`RealtimeHandle::take_outcomes`])
//! that readers poll without ever blocking the tick thread for more than
//! an [`Arc`] clone.

use crate::engine::{QueryOutcome, ServeError, ServeOptions};
use crate::tick::{LaneConfig, LaneRouter, SingleLane, Tick, TickCore, TickReport};
use noswalker_core::audit::Trace;
use noswalker_core::{
    BufferedQuerySource, OnDiskGraph, QueryId, QuerySource, QuerySpec, TickClock, WallTimer,
};
use noswalker_storage::MemoryBudget;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A [`TickClock`] over real elapsed time, measured from server start by
/// the sanctioned [`WallTimer`] gateway. Rounds charge nothing (real time
/// passes on its own) and idle gaps are not jumpable — `advance_idle`
/// returns `false` so the driver waits out real time (or the next
/// command) instead.
#[derive(Debug)]
pub struct WallClock {
    timer: WallTimer,
}

impl WallClock {
    /// Starts counting now.
    pub fn start() -> Self {
        WallClock {
            timer: WallTimer::start(),
        }
    }
}

impl TickClock for WallClock {
    fn now_ns(&mut self) -> u64 {
        self.timer.elapsed_ns()
    }

    fn advance_round(&mut self, _advance_ns: u64) {}

    fn advance_idle(&mut self, _t_ns: u64) -> bool {
        false
    }
}

/// How `Submit` timestamps arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngressMode {
    /// Live serving: each submit is re-stamped with the wall clock's
    /// *arrival* reading, so latency measures real queueing + service
    /// time.
    #[default]
    Wall,
    /// Trace replay: submitted `arrival_ns` stamps are preserved and the
    /// first tick is gated until `Drain` arrives, so the state machine
    /// sees the complete trace up front — exactly what a lockstep run
    /// sees. With a deterministic injected clock this makes the replay
    /// bit-identical to [`crate::ServeEngine::run`] on the same trace.
    Replay,
}

/// Knobs for the realtime driver (the round semantics all live in
/// [`ServeOptions`]).
#[derive(Debug, Clone)]
pub struct RealtimeOptions {
    /// Bound on queued ingress commands; a full queue pushes back on
    /// submitters ([`IngressError::Backpressure`]) instead of buffering
    /// without limit.
    pub ingress_capacity: usize,
    /// Arrival timestamping policy.
    pub mode: IngressMode,
}

impl Default for RealtimeOptions {
    fn default() -> Self {
        RealtimeOptions {
            ingress_capacity: 256,
            mode: IngressMode::Wall,
        }
    }
}

/// Why an ingress command was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressError {
    /// The bounded ingress queue is full — backpressure; retry later.
    Backpressure,
    /// The server thread has terminated; no further commands are
    /// accepted.
    Closed,
}

impl std::fmt::Display for IngressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngressError::Backpressure => write!(f, "ingress queue full (backpressure)"),
            IngressError::Closed => write!(f, "realtime server closed"),
        }
    }
}

impl std::error::Error for IngressError {}

/// The ingress command set.
#[derive(Debug)]
enum Command {
    Submit(QuerySpec),
    Cancel(QueryId),
    Drain,
    Shutdown,
}

/// A point-in-time view of the running server, published per tick.
///
/// `outcomes` is cumulative (termination order), so a poller can diff
/// against the last length it saw — [`RealtimeHandle::take_outcomes`]
/// does exactly that.
#[derive(Debug, Clone, Default)]
pub struct ServeSnapshot {
    /// Serving rounds executed so far.
    pub rounds: u64,
    /// Queries currently active.
    pub active: usize,
    /// Queries admitted but not yet activated.
    pub pending: usize,
    /// Every outcome recorded so far, in termination order.
    pub outcomes: Vec<QueryOutcome>,
    /// The tick clock's reading when this snapshot was published.
    pub now_ns: u64,
}

/// Two-slot epoch-swapped snapshot pool: the single writer (the tick
/// thread) installs each new generation into the slot *not* currently
/// published, then swings the epoch index; readers resolve the index and
/// clone the [`Arc`] out from under a momentary lock. A reader can never
/// block the writer for longer than one `Arc` clone, and a generation
/// swap is safe under any number of concurrent readers.
#[derive(Debug)]
struct EgressPool {
    slots: [Mutex<Arc<ServeSnapshot>>; 2],
    epoch: AtomicUsize,
}

impl EgressPool {
    fn new() -> Self {
        EgressPool {
            slots: [
                Mutex::new(Arc::new(ServeSnapshot::default())),
                Mutex::new(Arc::new(ServeSnapshot::default())),
            ],
            epoch: AtomicUsize::new(0),
        }
    }

    /// Publishes the next generation. `cur` is the writer's private
    /// record of the currently published slot (single-writer protocol —
    /// the writer never needs to read the atomic back).
    fn publish(&self, snap: ServeSnapshot, cur: &mut usize) {
        let next = (*cur + 1) % 2;
        *self.slots[next].lock().expect("egress slot poisoned") = Arc::new(snap);
        // ORDERING: Release pairs with the Acquire load in `read`: a
        // reader that observes the new epoch index also observes the
        // fully written slot contents behind it.
        self.epoch.store(next, Ordering::Release);
        *cur = next;
    }

    fn read(&self) -> Arc<ServeSnapshot> {
        // ORDERING: Acquire pairs with the Release store in `publish`, so
        // the slot this index points at is fully initialized before we
        // lock and clone it.
        let cur = self.epoch.load(Ordering::Acquire);
        Arc::clone(&self.slots[cur].lock().expect("egress slot poisoned"))
    }
}

/// A configured-but-not-yet-started realtime server.
pub struct RealtimeServer {
    lanes: Vec<LaneConfig>,
    router: Box<dyn LaneRouter>,
    opts: ServeOptions,
    rt: RealtimeOptions,
}

impl std::fmt::Debug for RealtimeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealtimeServer")
            .field("lanes", &self.lanes.len())
            .field("opts", &self.opts)
            .field("rt", &self.rt)
            .finish()
    }
}

impl RealtimeServer {
    /// A single-lane server over one stored graph — the realtime
    /// counterpart of [`crate::ServeEngine::new`].
    pub fn single(
        graph: Arc<OnDiskGraph>,
        budget: Arc<MemoryBudget>,
        opts: ServeOptions,
        rt: RealtimeOptions,
    ) -> Self {
        let nv = graph.num_vertices() as u32;
        RealtimeServer::new(
            vec![LaneConfig {
                graph,
                budget,
                owned: 0..nv,
            }],
            Box::new(SingleLane),
            opts,
            rt,
        )
    }

    /// A multi-lane server with an explicit router.
    pub fn new(
        lanes: Vec<LaneConfig>,
        router: Box<dyn LaneRouter>,
        opts: ServeOptions,
        rt: RealtimeOptions,
    ) -> Self {
        RealtimeServer {
            lanes,
            router,
            opts,
            rt,
        }
    }

    /// Starts the server thread against real time ([`WallClock`]).
    pub fn start(self) -> RealtimeHandle {
        self.start_with_clock(Box::new(WallClock::start()))
    }

    /// Starts the server thread against an injected clock. With a
    /// deterministic clock and [`IngressMode::Replay`] the run replays a
    /// trace bit-identically to the lockstep engine.
    pub fn start_with_clock(self, clock: Box<dyn TickClock + Send>) -> RealtimeHandle {
        let core = TickCore::new(self.lanes, self.router, self.opts);
        let (tx, rx) = std::sync::mpsc::sync_channel(self.rt.ingress_capacity.max(1));
        let pool = Arc::new(EgressPool::new());
        let thread_pool = Arc::clone(&pool);
        let mode = self.rt.mode;
        let join = std::thread::Builder::new()
            .name("nosw-serve-tick".into())
            .spawn(move || serve_thread(core, clock, rx, &thread_pool, mode))
            .expect("spawn serve tick thread");
        RealtimeHandle {
            tx,
            pool,
            join,
            taken: 0,
        }
    }
}

/// Per-thread driver state shared by the command-application sites.
struct Ingress {
    source: BufferedQuerySource,
    shutdown: bool,
    /// Submits accepted into `source` (used by the idle completion check
    /// only indirectly — the source itself tracks exhaustion).
    accepted: u64,
}

impl Ingress {
    fn apply(&mut self, cmd: Command, core: &mut TickCore, clock: &mut dyn TickClock, wall: bool) {
        let now = clock.now_ns();
        match cmd {
            Command::Submit(mut q) => {
                if self.source.is_closed() || self.shutdown {
                    // Drained or shutting down: reject with backpressure
                    // semantics so the submit still gets its one outcome.
                    core.shed_rejected(q, now, &mut Trace::off());
                    return;
                }
                if wall {
                    q.arrival_ns = now;
                }
                self.accepted += 1;
                self.source.push(q);
            }
            Command::Cancel(id) => {
                if !core.cancel(id, now, &mut Trace::off()) {
                    if let Some(q) = self.source.remove(id) {
                        core.cancel_unstarted(q, now, &mut Trace::off());
                    }
                }
            }
            Command::Drain => self.source.close(),
            Command::Shutdown => {
                self.shutdown = true;
                self.source.close();
            }
        }
    }
}

/// The autonomous tick loop (see module docs for the protocol).
fn serve_thread(
    mut core: TickCore,
    mut clock: Box<dyn TickClock + Send>,
    rx: Receiver<Command>,
    pool: &EgressPool,
    mode: IngressMode,
) -> Result<TickReport, ServeError> {
    let wall = mode == IngressMode::Wall;
    let mut ing = Ingress {
        source: BufferedQuerySource::new(),
        shutdown: false,
        accepted: 0,
    };
    let mut cur_slot = 0usize;
    loop {
        // (a) Drain every immediately available command.
        loop {
            match rx.try_recv() {
                Ok(cmd) => ing.apply(cmd, &mut core, clock.as_mut(), wall),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    // Every handle is gone: nothing more can arrive.
                    ing.source.close();
                    break;
                }
            }
        }

        if ing.shutdown {
            // Abort: parked walkers retire (conservation preserved),
            // in-flight queries finalize as degraded partials, queued
            // ones shed — then keep shedding late submits until every
            // sender is gone, so no accepted submit ever loses its
            // outcome.
            let now = clock.now_ns();
            core.abort(now, &mut Trace::off());
            while let Some(q) = ing.source.next_ready(u64::MAX, u64::MAX) {
                core.shed_rejected(q, now, &mut Trace::off());
            }
            while let Ok(cmd) = rx.recv() {
                if let Command::Submit(q) = cmd {
                    let now = clock.now_ns();
                    core.shed_rejected(q, now, &mut Trace::off());
                }
            }
            break;
        }

        // (b) Replay mode gates the first tick until the trace is fully
        // submitted (`Drain`), so the state machine sees exactly what a
        // lockstep run would.
        if mode == IngressMode::Replay && !ing.source.is_closed() {
            match rx.recv() {
                Ok(cmd) => {
                    ing.apply(cmd, &mut core, clock.as_mut(), wall);
                    continue;
                }
                Err(_) => {
                    ing.source.close();
                    continue;
                }
            }
        }

        // (c) One tick of the shared state machine.
        match core.tick(clock.as_mut(), &mut ing.source, &mut Trace::off())? {
            Tick::Ran => publish(pool, &core, &mut clock, &mut cur_slot),
            Tick::Exhausted => break,
            Tick::Idle { next_arrival_ns } => {
                publish(pool, &core, &mut clock, &mut cur_slot);
                if ing.source.is_exhausted() && next_arrival_ns.is_none() {
                    break; // drained and fully served
                }
                match next_arrival_ns {
                    Some(t) => {
                        if !clock.advance_idle(t) {
                            // Wall clock: actually wait, but wake early
                            // for any command.
                            let now = clock.now_ns();
                            let wait = Duration::from_nanos(t.saturating_sub(now).max(1));
                            match rx.recv_timeout(wait) {
                                Ok(cmd) => ing.apply(cmd, &mut core, clock.as_mut(), wall),
                                Err(RecvTimeoutError::Timeout) => {}
                                Err(RecvTimeoutError::Disconnected) => ing.source.close(),
                            }
                        }
                    }
                    None => {
                        // Nothing scheduled: block until the next command
                        // (or until every handle is gone).
                        match rx.recv() {
                            Ok(cmd) => ing.apply(cmd, &mut core, clock.as_mut(), wall),
                            Err(_) => ing.source.close(),
                        }
                    }
                }
            }
        }
    }
    publish(pool, &core, &mut clock, &mut cur_slot);
    let end_ns = clock.now_ns();
    Ok(core.finish(end_ns))
}

fn publish(
    pool: &EgressPool,
    core: &TickCore,
    clock: &mut Box<dyn TickClock + Send>,
    cur_slot: &mut usize,
) {
    pool.publish(
        ServeSnapshot {
            rounds: core.rounds(),
            active: core.active_len(),
            pending: core.pending_len(),
            outcomes: core.outcomes().to_vec(),
            now_ns: clock.now_ns(),
        },
        cur_slot,
    );
}

/// The caller's side of a running realtime server: submit/cancel/drain/
/// shutdown commands in, streamed snapshots and outcomes out.
#[derive(Debug)]
pub struct RealtimeHandle {
    tx: SyncSender<Command>,
    pool: Arc<EgressPool>,
    join: std::thread::JoinHandle<Result<TickReport, ServeError>>,
    taken: usize,
}

/// A clonable submit/cancel endpoint for worker threads. While any
/// sender (or the handle) is alive, an accepted command is guaranteed to
/// be processed — the server thread drains the channel to disconnection
/// even through shutdown.
#[derive(Debug, Clone)]
pub struct IngressSender {
    tx: SyncSender<Command>,
}

fn map_try_send(r: Result<(), TrySendError<Command>>) -> Result<(), IngressError> {
    r.map_err(|e| match e {
        TrySendError::Full(_) => IngressError::Backpressure,
        TrySendError::Disconnected(_) => IngressError::Closed,
    })
}

impl IngressSender {
    /// Submits a query; fails fast with backpressure when the bounded
    /// ingress is full.
    pub fn submit(&self, q: QuerySpec) -> Result<(), IngressError> {
        map_try_send(self.tx.try_send(Command::Submit(q)))
    }

    /// Submits a query, blocking while the bounded ingress is full.
    pub fn submit_blocking(&self, q: QuerySpec) -> Result<(), IngressError> {
        self.tx
            .send(Command::Submit(q))
            .map_err(|_| IngressError::Closed)
    }

    /// Requests cancellation of a query wherever it currently is.
    pub fn cancel(&self, id: QueryId) -> Result<(), IngressError> {
        self.tx
            .send(Command::Cancel(id))
            .map_err(|_| IngressError::Closed)
    }
}

impl RealtimeHandle {
    /// A clonable submit/cancel endpoint for worker threads.
    pub fn sender(&self) -> IngressSender {
        IngressSender {
            tx: self.tx.clone(),
        }
    }

    /// Submits a query; fails fast with backpressure when the bounded
    /// ingress is full.
    pub fn submit(&self, q: QuerySpec) -> Result<(), IngressError> {
        map_try_send(self.tx.try_send(Command::Submit(q)))
    }

    /// Submits a query, blocking while the bounded ingress is full.
    pub fn submit_blocking(&self, q: QuerySpec) -> Result<(), IngressError> {
        self.tx
            .send(Command::Submit(q))
            .map_err(|_| IngressError::Closed)
    }

    /// Requests cancellation of a query wherever it currently is
    /// (ingress, admission queue, or active set).
    pub fn cancel(&self, id: QueryId) -> Result<(), IngressError> {
        self.tx
            .send(Command::Cancel(id))
            .map_err(|_| IngressError::Closed)
    }

    /// Closes the ingress: the server finishes everything queued, then
    /// stops. Join with [`join`](Self::join) afterwards.
    pub fn drain(&self) -> Result<(), IngressError> {
        self.tx
            .send(Command::Drain)
            .map_err(|_| IngressError::Closed)
    }

    /// Requests an abort: in-flight queries finalize as degraded
    /// partials, queued ones shed; every accepted submit still gets an
    /// outcome.
    pub fn shutdown(&self) -> Result<(), IngressError> {
        self.tx
            .send(Command::Shutdown)
            .map_err(|_| IngressError::Closed)
    }

    /// The latest published snapshot (never blocks the tick thread for
    /// more than an `Arc` clone).
    pub fn snapshot(&self) -> Arc<ServeSnapshot> {
        self.pool.read()
    }

    /// Outcomes newly published since the last call — the streamed
    /// partial-results view.
    pub fn take_outcomes(&mut self) -> Vec<QueryOutcome> {
        let snap = self.pool.read();
        let fresh = snap.outcomes.get(self.taken..).unwrap_or_default().to_vec();
        self.taken = snap.outcomes.len();
        fresh
    }

    /// Closes the ingress and waits for the server to finish serving
    /// everything queued.
    pub fn drain_and_join(self) -> Result<TickReport, ServeError> {
        let _ = self.tx.send(Command::Drain);
        self.join()
    }

    /// Aborts and waits for the server thread.
    pub fn shutdown_and_join(self) -> Result<TickReport, ServeError> {
        let _ = self.tx.send(Command::Shutdown);
        self.join()
    }

    /// Waits for the server thread and returns its final report. The
    /// thread ends after a `Drain` has been fully served, on `Shutdown`
    /// (once every [`IngressSender`] clone is dropped), or when the
    /// round backstop trips. Dropping this handle's sender is part of
    /// `join`, so callers keeping [`IngressSender`] clones alive must
    /// drop them for a shutdown join to complete.
    pub fn join(self) -> Result<TickReport, ServeError> {
        let RealtimeHandle { tx, join, .. } = self;
        drop(tx);
        join.join().expect("serve tick thread panicked")
    }
}
