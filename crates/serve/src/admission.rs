//! Admission control: bounded queueing with explicit backpressure.
//!
//! Arrivals pass through [`AdmissionController::offer`], which either
//! admits them into a *bounded* pending queue or sheds them with a
//! retry-after hint. Two conditions shed:
//!
//! * **queue full** — the pending queue holds `max_pending` admitted
//!   queries; unbounded queueing would only convert overload into
//!   unbounded latency, so the excess is rejected at the door;
//! * **overload mode** — the engine observed the pre-sample pool stall
//!   rate crossing its threshold last round (the backend is I/O-saturated
//!   and adding load cannot increase throughput). Overload does not shut
//!   the door: it throttles admission to one query at a time (admit only
//!   into an *empty* queue), so the backend keeps serving serially and
//!   later rounds can observe recovery and lift the mode. Shedding stays
//!   graceful — never a total blackout.
//!
//! Admitted queries are released to the engine in earliest-deadline-first
//! order, falling back to FIFO (arrival, then id) among queries with equal
//! or no deadlines — the controller is the serving layer's
//! [`QuerySource`].

use noswalker_core::{QuerySource, QuerySpec};
use std::collections::VecDeque;

/// Knobs for [`AdmissionController`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionOptions {
    /// Bound on admitted-but-not-yet-running queries.
    pub max_pending: usize,
    /// Base retry-after hint; the hint returned to a shed query scales
    /// with the current queue depth.
    pub retry_after_ns: u64,
    /// Throttle admission to one pending query at a time while the
    /// observed pre-sample stall rate (stalls per step, as reported by
    /// the previous round's metrics) is above this threshold.
    pub shed_stall_rate: f64,
}

impl Default for AdmissionOptions {
    fn default() -> Self {
        AdmissionOptions {
            max_pending: 64,
            retry_after_ns: 1_000_000, // 1 ms modeled
            shed_stall_rate: 0.5,
        }
    }
}

/// The verdict on one offered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued; the engine will activate it in EDF-then-FIFO order.
    Admitted,
    /// Rejected with backpressure: retry after the given modeled delay.
    Shed {
        /// Suggested modeled wait before re-offering the query.
        retry_after_ns: u64,
    },
}

/// Bounded, deadline-aware admission queue (see module docs).
#[derive(Debug)]
pub struct AdmissionController {
    opts: AdmissionOptions,
    pending: VecDeque<QuerySpec>,
    overloaded: bool,
    shed: u64,
    admitted: u64,
}

fn order_key(q: &QuerySpec) -> (u64, u64, u64) {
    (q.deadline_ns.unwrap_or(u64::MAX), q.arrival_ns, q.id)
}

impl AdmissionController {
    /// Creates an empty controller.
    pub fn new(opts: AdmissionOptions) -> Self {
        AdmissionController {
            opts,
            pending: VecDeque::new(),
            overloaded: false,
            shed: 0,
            admitted: 0,
        }
    }

    /// Offers an arrival for admission.
    pub fn offer(&mut self, q: QuerySpec) -> Admission {
        let cap = if self.overloaded {
            // Overloaded: serialize. One pending query keeps the backend
            // busy (and producing fresh stall-rate observations) without
            // piling concurrency onto a saturated pre-sample pool.
            1
        } else {
            self.opts.max_pending
        };
        if self.pending.len() >= cap {
            self.shed += 1;
            return Admission::Shed {
                retry_after_ns: self.retry_after(),
            };
        }
        let at = self
            .pending
            .iter()
            .position(|p| order_key(&q) < order_key(p))
            .unwrap_or(self.pending.len());
        self.pending.insert(at, q);
        self.admitted += 1;
        Admission::Admitted
    }

    /// The retry-after hint for a shed query: the base backoff scaled by
    /// queue depth, so heavier backlogs push retries further out.
    pub fn retry_after(&self) -> u64 {
        self.opts.retry_after_ns * (self.pending.len() as u64 + 1)
    }

    /// Updates overload mode from the last round's observed pre-sample
    /// stall rate (stalls per step). Returns the new mode.
    pub fn observe_stall_rate(&mut self, stalls: u64, steps: u64) -> bool {
        let rate = stalls as f64 / steps.max(1) as f64;
        self.overloaded = rate > self.opts.shed_stall_rate;
        self.overloaded
    }

    /// Whether the controller is currently shedding due to backend
    /// overload.
    pub fn is_overloaded(&self) -> bool {
        self.overloaded
    }

    /// Admitted-but-not-yet-activated queries.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Removes a pending query by id (a cancellation arriving before
    /// activation); returns it if it was still queued. The freed slot is
    /// immediately available to later offers.
    pub fn remove(&mut self, id: noswalker_core::QueryId) -> Option<QuerySpec> {
        let at = self.pending.iter().position(|p| p.id == id)?;
        self.pending.remove(at)
    }

    /// Total queries shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Total queries admitted so far.
    pub fn admitted_count(&self) -> u64 {
        self.admitted
    }
}

impl QuerySource for AdmissionController {
    fn next_ready(&mut self, _now_ns: u64, room: u64) -> Option<QuerySpec> {
        if room == 0 {
            return None;
        }
        self.pending.pop_front()
    }

    fn next_pending_at(&self, _now_ns: u64) -> Option<u64> {
        // Admitted queries are runnable immediately.
        self.pending.front().map(|q| q.arrival_ns)
    }

    fn is_exhausted(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, arrival_ns: u64, deadline_ns: Option<u64>) -> QuerySpec {
        QuerySpec {
            id,
            class: "basic".into(),
            walkers: 10,
            walk_length: 4,
            deadline_ns,
            arrival_ns,
        }
    }

    #[test]
    fn releases_in_edf_then_fifo_order() {
        let mut c = AdmissionController::new(AdmissionOptions::default());
        assert_eq!(c.offer(spec(1, 0, None)), Admission::Admitted);
        assert_eq!(c.offer(spec(2, 10, Some(500))), Admission::Admitted);
        assert_eq!(c.offer(spec(3, 20, Some(100))), Admission::Admitted);
        assert_eq!(c.offer(spec(4, 5, None)), Admission::Admitted);
        let order: Vec<u64> = std::iter::from_fn(|| c.next_ready(0, u64::MAX))
            .map(|q| q.id)
            .collect();
        // Deadlines first (tightest first), then FIFO by arrival.
        assert_eq!(order, vec![3, 2, 1, 4]);
        assert!(c.is_exhausted());
    }

    #[test]
    fn full_queue_sheds_with_growing_retry_hint() {
        let mut c = AdmissionController::new(AdmissionOptions {
            max_pending: 2,
            retry_after_ns: 100,
            ..Default::default()
        });
        assert_eq!(c.offer(spec(1, 0, None)), Admission::Admitted);
        assert_eq!(c.offer(spec(2, 0, None)), Admission::Admitted);
        assert_eq!(
            c.offer(spec(3, 0, None)),
            Admission::Shed {
                retry_after_ns: 300
            }
        );
        assert_eq!(c.shed_count(), 1);
        assert_eq!(c.admitted_count(), 2);
    }

    #[test]
    fn overload_mode_follows_the_stall_rate() {
        let mut c = AdmissionController::new(AdmissionOptions {
            shed_stall_rate: 0.25,
            ..Default::default()
        });
        assert!(!c.observe_stall_rate(10, 100));
        assert_eq!(c.offer(spec(1, 0, None)), Admission::Admitted);
        assert!(c.observe_stall_rate(50, 100));
        assert!(matches!(c.offer(spec(2, 0, None)), Admission::Shed { .. }));
        // Recovery re-opens admission.
        assert!(!c.observe_stall_rate(0, 100));
        assert_eq!(c.offer(spec(3, 0, None)), Admission::Admitted);
    }

    #[test]
    fn overload_throttles_to_serial_rather_than_blackout() {
        let mut c = AdmissionController::new(AdmissionOptions {
            shed_stall_rate: 0.25,
            ..Default::default()
        });
        assert!(c.observe_stall_rate(50, 100));
        // An empty queue still admits — the backend must keep serving
        // (and producing stall-rate observations that can lift the mode).
        assert_eq!(c.offer(spec(1, 0, None)), Admission::Admitted);
        // A second concurrent query is what overload refuses.
        assert!(matches!(c.offer(spec(2, 0, None)), Admission::Shed { .. }));
        // Once the pending query is activated, the next arrival gets in.
        assert!(c.next_ready(0, u64::MAX).is_some());
        assert_eq!(c.offer(spec(3, 0, None)), Admission::Admitted);
    }

    #[test]
    fn next_ready_respects_room() {
        let mut c = AdmissionController::new(AdmissionOptions::default());
        c.offer(spec(1, 0, None));
        assert!(c.next_ready(0, 0).is_none());
        assert!(c.next_ready(0, 1).is_some());
    }
}
