//! The serving loop: deterministic round-based multiplexing of live
//! queries over the pooled NosWalker engine.
//!
//! Each round the engine (1) drains time-ready arrivals through the
//! admission controller, (2) expires queries whose deadline already
//! passed, (3) activates pending queries up to the in-flight walker quota
//! ([`EngineOptions::walker_pool_quota`] — the same sizing rule the
//! offline engine uses), (4) multiplexes every active query's next walker
//! chunk into one [`RoundApp`] per selected backend and runs each to
//! completion on a [`StepKernel`] — the sequential engine, the lock-free
//! parallel runner, or both ([`Backend::Auto`] routes
//! deadline-constrained queries to the sequential kernel and the rest to
//! the parallel one) — and (5) advances the [`ModelClock`] by the
//! kernels' deterministic `advance_ns` charges. Latency, deadlines,
//! retry-after hints and the shed decision all read that clock — never
//! the host clock — so the same trace replays to an identical
//! [`ServeReport`] on every backend: walker movement draws only
//! walker-private randomness (see [`crate::app`]), and serving rounds
//! force all-raw pre-sample retention so no kernel ever consumes a
//! pre-drawn slot whose value depends on refill scheduling.

use crate::admission::{Admission, AdmissionController};
use crate::app::{query_stream_seed, QueryClass, QueryTable, RoundApp, ServeWalker};
use noswalker_core::audit::{Trace, TraceEvent, TraceSink};
use noswalker_core::{
    audit_queries, Backend, EngineError, EngineOptions, LatencyHistogram, ModelClock, OnDiskGraph,
    ParallelKernel, QueryId, QuerySource, QuerySpec, QueryStats, RunMetrics, SequentialKernel,
    StepKernel,
};
use noswalker_storage::MemoryBudget;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration for [`ServeEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Options for the per-round walk engine (the pool quota, step costs
    /// and pre-sample knobs all apply unchanged).
    pub engine: EngineOptions,
    /// Admission-control knobs (queue bound, backoff, shed threshold).
    pub admission: crate::admission::AdmissionOptions,
    /// Base RNG seed; each round derives its own seed from it.
    pub seed: u64,
    /// Additional cap on walkers issued per round, so one giant query
    /// cannot monopolize a round even when the pool quota is large.
    pub round_walkers: u64,
    /// Hard bound on serving rounds — a backstop against a misbehaving
    /// [`QuerySource`] that keeps reporting future work it never yields.
    /// On exhaustion every in-flight query terminates as a degraded
    /// partial and the pending queue drains as shed, so each offered
    /// query still gets an outcome.
    pub max_rounds: u64,
    /// Which [`StepKernel`] executes rounds. [`Backend::Auto`] selects
    /// per query class: deadline-constrained queries run on the
    /// sequential kernel (whose cancellation timing is deterministic),
    /// best-effort queries on the parallel one.
    pub backend: Backend,
    /// Worker threads for the parallel kernel. A fixed constant rather
    /// than a host-derived figure, so a trace replays identically on any
    /// machine.
    pub par_workers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            engine: EngineOptions::default(),
            admission: crate::admission::AdmissionOptions::default(),
            seed: 42,
            round_walkers: 4096,
            max_rounds: 1_000_000,
            backend: Backend::Seq,
            par_workers: 4,
        }
    }
}

/// The one deadline predicate every serving site uses: a deadline landing
/// exactly on the clock has passed. (The round boundary and post-round
/// accounting previously disagreed on this edge — `d <= now` vs
/// `d < after` — so an exact-deadline query was expired at a boundary but
/// not flagged after a round.)
fn deadline_passed(deadline_ns: Option<u64>, now_ns: u64) -> bool {
    deadline_ns.is_some_and(|d| d <= now_ns)
}

/// Round-carve state for one kernel group: the [`QueryTable`] slot
/// entries, the walker chunks `(slot, base, count)`, and the charge list
/// `(active idx, slot, count)` used for post-round accounting.
type RoundGroup = (
    Vec<(QueryClass, u32, Option<u64>, u64)>,
    Vec<(u32, u64, u64)>,
    Vec<ChargeList>,
);

/// One charged chunk: (index into `active`, table slot, walkers issued).
type ChargeList = (usize, u32, u64);

/// A serving-layer failure.
#[derive(Debug)]
pub enum ServeError {
    /// The per-round walk engine failed.
    Engine(EngineError),
    /// A query carried a class spec [`QueryClass::parse`] rejects.
    BadQueryClass {
        /// The offending query.
        id: QueryId,
        /// Its unparseable class spec.
        class: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "serving round failed: {e}"),
            ServeError::BadQueryClass { id, class } => {
                write!(f, "query {id}: unknown query class {class:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// The terminal record of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The query.
    pub id: QueryId,
    /// Its reporting class (`"ppr"`, `"basic"`, …).
    pub class: String,
    /// Walker accounting (the per-query conservation law's input).
    pub stats: QueryStats,
    /// Arrival → completion in modeled nanoseconds (`None` when shed).
    pub latency_ns: Option<u64>,
    /// True when the result is partial: walkers were cancelled or budget
    /// was left unissued at the deadline.
    pub degraded: bool,
    /// True when the deadline passed before the query finished.
    pub deadline_missed: bool,
    /// True when admission rejected the query outright.
    pub shed: bool,
    /// Backpressure hint returned with a shed (modeled ns).
    pub retry_after_ns: Option<u64>,
    /// Order-independent digest of the vertices the query's walkers
    /// visited — the deterministic stand-in for its result payload.
    pub digest: u64,
}

/// Everything a serving run produced.
#[derive(Debug)]
pub struct ServeReport {
    /// One entry per offered query, in termination order.
    pub outcomes: Vec<QueryOutcome>,
    /// Completion-latency histogram per query class.
    pub histograms: BTreeMap<String, LatencyHistogram>,
    /// All per-round [`RunMetrics`], merged.
    pub metrics: RunMetrics,
    /// Serving rounds executed.
    pub rounds: u64,
    /// Modeled time when the last query terminated.
    pub end_ns: u64,
}

impl ServeReport {
    /// Queries that ran to termination (admitted, not shed).
    pub fn completed_count(&self) -> u64 {
        self.outcomes.iter().filter(|o| !o.shed).count() as u64
    }

    /// Queries rejected by admission control.
    pub fn shed_count(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.shed).count() as u64
    }

    /// Served queries whose deadline passed before they finished.
    pub fn deadline_miss_count(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.deadline_missed).count() as u64
    }

    /// Served queries returned partial/degraded.
    pub fn degraded_count(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.degraded).count() as u64
    }

    /// Served queries per modeled second.
    pub fn achieved_qps(&self) -> f64 {
        self.completed_count() as f64 / (self.end_ns.max(1) as f64 / 1e9)
    }

    /// The walker accounting of every served query, for
    /// [`audit_queries`].
    pub fn query_stats(&self) -> Vec<QueryStats> {
        self.outcomes
            .iter()
            .filter(|o| !o.shed)
            .map(|o| o.stats.clone())
            .collect()
    }
}

/// A query in the active set: admitted, activated, not yet terminated.
#[derive(Debug)]
struct ActiveQuery {
    spec: QuerySpec,
    class: QueryClass,
    stats: QueryStats,
    digest: u64,
    deadline_missed: bool,
}

impl ActiveQuery {
    fn unissued(&self) -> u64 {
        self.spec.walkers - self.stats.issued
    }
}

/// The online serving engine (see module docs).
pub struct ServeEngine {
    graph: Arc<OnDiskGraph>,
    budget: Arc<MemoryBudget>,
    opts: ServeOptions,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("opts", &self.opts)
            .finish()
    }
}

/// Mutable serving state threaded through the run's helpers.
struct ServeState<'a> {
    clock: ModelClock,
    outcomes: Vec<QueryOutcome>,
    histograms: BTreeMap<String, LatencyHistogram>,
    trace: Trace<'a>,
}

impl ServeState<'_> {
    /// Terminates an active query: records its outcome, its latency
    /// histogram sample, and the `QueryDeadlineMiss`/`QueryCompleted`
    /// trace events.
    fn finalize(&mut self, q: ActiveQuery) {
        let now = self.clock.now_ns();
        let degraded = q.stats.cancelled > 0 || q.stats.issued < q.spec.walkers;
        if q.deadline_missed {
            let deadline_ns = q.spec.deadline_ns.unwrap_or(now);
            let query = q.spec.id;
            self.trace.emit(|| TraceEvent::QueryDeadlineMiss {
                query,
                deadline_ns,
                at_ns: now,
            });
        }
        let latency = now.saturating_sub(q.spec.arrival_ns);
        self.histograms
            .entry(q.class.name().to_string())
            .or_default()
            .record(latency);
        let (query, issued, completed, cancelled) = (
            q.spec.id,
            q.stats.issued,
            q.stats.completed,
            q.stats.cancelled,
        );
        self.trace.emit(|| TraceEvent::QueryCompleted {
            query,
            issued,
            completed,
            cancelled,
            degraded,
            at_ns: now,
        });
        self.outcomes.push(QueryOutcome {
            id: q.spec.id,
            class: q.class.name().to_string(),
            stats: q.stats,
            latency_ns: Some(latency),
            degraded,
            deadline_missed: q.deadline_missed,
            shed: false,
            retry_after_ns: None,
            digest: q.digest,
        });
    }
}

impl ServeEngine {
    /// Creates a serving engine over a stored graph.
    pub fn new(graph: Arc<OnDiskGraph>, budget: Arc<MemoryBudget>, opts: ServeOptions) -> Self {
        ServeEngine {
            graph,
            budget,
            opts,
        }
    }

    /// The serving options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Serves every query `source` yields, to completion, and returns the
    /// report. In debug builds the per-query conservation law
    /// ([`audit_queries`]) and the per-round engine laws are asserted.
    ///
    /// # Errors
    ///
    /// [`ServeError::Engine`] when a round fails;
    /// [`ServeError::BadQueryClass`] when an admitted query's class spec
    /// does not parse.
    pub fn run(
        &self,
        source: &mut dyn QuerySource,
        sink: Option<&mut dyn TraceSink>,
    ) -> Result<ServeReport, ServeError> {
        let quota = self.opts.engine.walker_pool_quota(
            &self.budget,
            std::mem::size_of::<ServeWalker>(),
            u64::MAX,
        );
        let nv = self.graph.num_vertices() as u32;
        let step_cost = self.opts.engine.step_cost();
        // Serving rounds force all-raw pre-sample retention: a pre-drawn
        // sampled slot would embed the refill path's RNG into walker
        // movement, and the refill path differs per kernel. With every
        // retained buffer raw, destinations come only from
        // `Walk::sample_for` (walker-private randomness) on either
        // backend, which is what makes cross-backend digests
        // bit-identical.
        let mut round_opts = self.opts.engine.clone();
        round_opts.low_degree_threshold = u32::MAX;
        let seq_kernel = SequentialKernel::new(
            Arc::clone(&self.graph),
            round_opts.clone(),
            Arc::clone(&self.budget),
        );
        let par_kernel = ParallelKernel::new(
            Arc::clone(&self.graph),
            round_opts,
            Arc::clone(&self.budget),
            self.opts.par_workers,
        );
        let mut admission = AdmissionController::new(self.opts.admission.clone());
        let mut active: Vec<ActiveQuery> = Vec::new();
        let mut st = ServeState {
            clock: ModelClock::new(),
            outcomes: Vec::new(),
            histograms: BTreeMap::new(),
            trace: Trace::from_option(sink),
        };
        let mut metrics = RunMetrics::default();
        let mut rounds = 0u64;

        loop {
            let now = st.clock.now_ns();

            // (1) Drain time-ready arrivals through admission control.
            while let Some(q) = source.next_ready(now, u64::MAX) {
                match admission.offer(q.clone()) {
                    Admission::Admitted => {
                        let (query, walkers, deadline_ns) = (q.id, q.walkers, q.deadline_ns);
                        st.trace.emit(|| TraceEvent::QueryAdmitted {
                            query,
                            walkers,
                            deadline_ns,
                            at_ns: now,
                        });
                    }
                    Admission::Shed { retry_after_ns } => {
                        let query = q.id;
                        st.trace.emit(|| TraceEvent::QueryShed {
                            query,
                            retry_after_ns,
                            at_ns: now,
                        });
                        st.outcomes.push(QueryOutcome {
                            id: q.id,
                            class: q.class.clone(),
                            stats: QueryStats {
                                id: q.id,
                                budget: q.walkers,
                                ..QueryStats::default()
                            },
                            latency_ns: None,
                            degraded: false,
                            deadline_missed: false,
                            shed: true,
                            retry_after_ns: Some(retry_after_ns),
                            digest: 0,
                        });
                    }
                }
            }

            // (2) Activate pending queries while the in-flight walker
            // quota has room (a partially fitting query still activates —
            // it just spans rounds).
            let mut unissued: u64 = active.iter().map(ActiveQuery::unissued).sum();
            while unissued < quota {
                let Some(q) = admission.next_ready(now, quota - unissued) else {
                    break;
                };
                let Some(class) = QueryClass::parse(&q.class) else {
                    return Err(ServeError::BadQueryClass {
                        id: q.id,
                        class: q.class,
                    });
                };
                unissued += q.walkers;
                active.push(ActiveQuery {
                    stats: QueryStats {
                        id: q.id,
                        budget: q.walkers,
                        ..QueryStats::default()
                    },
                    class,
                    digest: 0,
                    deadline_missed: false,
                    spec: q,
                });
            }

            // (3) Expire at the round boundary: deadlines already past
            // (partial, degraded results) and exhausted/empty budgets.
            let mut i = 0;
            while i < active.len() {
                let q = &mut active[i];
                let expired = deadline_passed(q.spec.deadline_ns, now) && q.unissued() > 0;
                if expired {
                    q.deadline_missed = true;
                }
                if expired || q.unissued() == 0 {
                    let q = active.remove(i);
                    st.finalize(q);
                } else {
                    i += 1;
                }
            }

            // EDF-then-FIFO priority for this round's pool shares.
            active.sort_by_key(|q| {
                (
                    q.spec.deadline_ns.unwrap_or(u64::MAX),
                    q.spec.arrival_ns,
                    q.spec.id,
                )
            });

            // (4) Carve the round's walker chunks, one group per step
            // kernel this round uses. The cap is global across groups
            // (EDF order decides who gets pool share first); group
            // membership follows the configured backend, with `Auto`
            // routing deadline-constrained queries to the sequential
            // kernel — its cancellation timing is deterministic — and
            // best-effort ones to the parallel kernel.
            let mut cap = quota.max(1).min(self.opts.round_walkers.max(1));
            // Index 0 = sequential, 1 = parallel.
            let mut groups: [RoundGroup; 2] = Default::default();
            for (idx, q) in active.iter().enumerate() {
                if cap == 0 {
                    break;
                }
                let count = q.unissued().min(cap);
                if count == 0 {
                    continue;
                }
                cap -= count;
                let on_par = match self.opts.backend {
                    Backend::Seq => false,
                    Backend::Par => true,
                    Backend::Auto => q.spec.deadline_ns.is_none(),
                };
                let (entries, chunks, charged) = &mut groups[usize::from(on_par)];
                let slot = entries.len() as u32;
                let allowance = q
                    .spec
                    .deadline_ns
                    .map(|d| d.saturating_sub(now) / step_cost.max(1));
                entries.push((
                    q.class,
                    q.spec.walk_length,
                    allowance,
                    query_stream_seed(self.opts.seed, q.spec.id),
                ));
                chunks.push((slot, q.stats.issued, count));
                charged.push((idx, slot, count));
            }

            if groups.iter().all(|(entries, _, _)| entries.is_empty()) {
                // Nothing runnable: jump to the next arrival or stop.
                debug_assert!(active.is_empty(), "active queries always have work");
                match source.next_pending_at(st.clock.now_ns()) {
                    Some(t) if !source.is_exhausted() => {
                        st.clock.advance_to(t.max(st.clock.now_ns() + 1));
                        continue;
                    }
                    _ => break,
                }
            }

            rounds += 1;
            if rounds > self.opts.max_rounds {
                // Round budget exhausted: nothing more will run. Every
                // in-flight query terminates as a degraded partial and
                // the pending queue drains as shed, so each offered query
                // still reaches `ServeReport::outcomes` (and the audit).
                rounds -= 1;
                for q in active.drain(..) {
                    st.finalize(q);
                }
                let retry_after_ns = admission.retry_after();
                while let Some(q) = admission.next_ready(now, u64::MAX) {
                    let query = q.id;
                    st.trace.emit(|| TraceEvent::QueryShed {
                        query,
                        retry_after_ns,
                        at_ns: now,
                    });
                    st.outcomes.push(QueryOutcome {
                        id: q.id,
                        class: q.class.clone(),
                        stats: QueryStats {
                            id: q.id,
                            budget: q.walkers,
                            ..QueryStats::default()
                        },
                        latency_ns: None,
                        degraded: false,
                        deadline_missed: false,
                        shed: true,
                        retry_after_ns: Some(retry_after_ns),
                        digest: 0,
                    });
                }
                break;
            }

            // (5) Run each group to completion on its kernel — identical
            // derived per-round seed for both; walker movement only draws
            // walker-private randomness, so the engine seed steers
            // scheduling, never trajectories. The clock is charged with
            // the kernels' deterministic advance figures (sequential:
            // modeled pipeline time; parallel: compute-only step model).
            let seed = self
                .opts
                .seed
                .wrapping_add(rounds.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut advance_ns = 0u64;
            let mut round_stalls = 0u64;
            let mut round_steps = 0u64;
            let mut ran: Vec<(Arc<QueryTable>, Vec<ChargeList>)> = Vec::new();
            for (on_par, (entries, chunks, charged)) in groups.into_iter().enumerate() {
                if entries.is_empty() {
                    continue;
                }
                let table = Arc::new(QueryTable::new(entries));
                let app = Arc::new(RoundApp::new(Arc::clone(&table), chunks, nv));
                let out = if on_par == 1 {
                    par_kernel.run_round(app, seed)?
                } else {
                    seq_kernel.run_round(app, seed)?
                };
                advance_ns += out.advance_ns;
                round_stalls += out.metrics.presample_stalls + out.metrics.pool_stalls;
                round_steps += out.metrics.steps;
                metrics.merge(&out.metrics);
                ran.push((table, charged));
            }
            st.clock.advance(advance_ns);
            admission.observe_stall_rate(round_stalls, round_steps);

            // (6) Post-round accounting: fold the round's per-slot
            // counters back into each query and terminate the finished
            // ones.
            let after = st.clock.now_ns();
            let mut done: Vec<usize> = Vec::new();
            for (table, charged) in &ran {
                for &(idx, slot, count) in charged {
                    let q = &mut active[idx];
                    q.stats.issued += count;
                    q.stats.completed += table.completed_walkers(slot);
                    q.stats.cancelled += table.cancelled_walkers(slot);
                    q.digest = q.digest.wrapping_add(table.digest(slot));
                    let timed_out = table.is_cancelled(slot);
                    let missed = deadline_passed(q.spec.deadline_ns, after);
                    if timed_out || missed {
                        q.deadline_missed = true;
                    }
                    // A timed-out or overdue query keeps its partial
                    // results and gives up its remaining budget *now* —
                    // leaving a missed query active would let it hold its
                    // pool share for another activation pass before the
                    // next boundary expiry caught it.
                    if timed_out || missed || q.unissued() == 0 {
                        done.push(idx);
                    }
                }
            }
            done.sort_unstable_by(|a, b| b.cmp(a));
            for idx in done {
                let q = active.remove(idx);
                st.finalize(q);
            }
        }

        // The serving layer reports modeled time only: the inner rounds'
        // host wall time would make otherwise bit-identical replays (and
        // the bench artifacts built from them) differ run to run.
        metrics.set_wall_ns(0);

        let report = ServeReport {
            end_ns: st.clock.now_ns(),
            outcomes: st.outcomes,
            histograms: st.histograms,
            metrics,
            rounds,
        };
        if cfg!(debug_assertions) {
            audit_queries(&report.query_stats()).assert_clean();
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noswalker_core::StaticQuerySource;
    use noswalker_graph::generators;
    use noswalker_storage::{SimSsd, SsdProfile};

    fn engine(budget_bytes: u64) -> ServeEngine {
        engine_with(budget_bytes, ServeOptions::default()).0
    }

    fn engine_with(budget_bytes: u64, opts: ServeOptions) -> (ServeEngine, Arc<MemoryBudget>) {
        let csr = generators::uniform_degree(64, 4, 11);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).expect("store"));
        let budget = MemoryBudget::new(budget_bytes);
        (ServeEngine::new(graph, Arc::clone(&budget), opts), budget)
    }

    fn pool_quota(e: &ServeEngine, budget: &MemoryBudget) -> u64 {
        e.options()
            .engine
            .walker_pool_quota(budget, std::mem::size_of::<ServeWalker>(), u64::MAX)
    }

    fn spec(id: u64, class: &str, walkers: u64, arrival_ns: u64) -> QuerySpec {
        QuerySpec {
            id,
            class: class.into(),
            walkers,
            walk_length: 5,
            deadline_ns: None,
            arrival_ns,
        }
    }

    #[test]
    fn serves_a_simple_query_stream_to_completion() {
        let e = engine(64 << 10);
        let mut src = StaticQuerySource::new(vec![
            spec(1, "ppr:3", 40, 0),
            spec(2, "basic", 30, 1_000),
            spec(3, "deepwalk:0", 20, 2_000),
        ]);
        let report = e.run(&mut src, None).expect("serve");
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.completed_count(), 3);
        assert_eq!(report.shed_count(), 0);
        for o in &report.outcomes {
            assert_eq!(o.stats.issued, o.stats.budget);
            assert_eq!(o.stats.completed + o.stats.cancelled, o.stats.issued);
            assert!(o.latency_ns.is_some());
            assert_ne!(o.digest, 0);
        }
        assert!(report.histograms.contains_key("ppr"));
        assert!(report.metrics.steps > 0);
        assert_eq!(
            report.metrics.walkers_finished + report.metrics.walkers_cancelled,
            90
        );
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let mk = || {
            let e = engine(64 << 10);
            let mut src = StaticQuerySource::new(vec![
                spec(1, "ppr:3", 25, 0),
                spec(2, "rwr:5:0.2", 25, 500),
            ]);
            e.run(&mut src, None).expect("serve")
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.end_ns, b.end_ns);
        assert_eq!(a.metrics.steps, b.metrics.steps);
    }

    #[test]
    fn impossible_deadline_returns_degraded_partial_results() {
        let e = engine(64 << 10);
        let mut q = spec(9, "basic", 3_000, 0);
        q.deadline_ns = Some(1); // 1 ns for 15k steps: hopeless
        let mut src = StaticQuerySource::new(vec![q]);
        let report = e.run(&mut src, None).expect("serve");
        assert_eq!(report.outcomes.len(), 1);
        let o = &report.outcomes[0];
        assert!(o.deadline_missed);
        assert!(o.degraded);
        assert!(!o.shed);
        assert!(o.stats.issued < o.stats.budget || o.stats.cancelled > 0);
        assert_eq!(o.stats.completed + o.stats.cancelled, o.stats.issued);
        assert_eq!(report.deadline_miss_count(), 1);
    }

    #[test]
    fn unknown_class_is_an_error() {
        let e = engine(64 << 10);
        let mut src = StaticQuerySource::new(vec![spec(1, "node2vec:0", 10, 0)]);
        match e.run(&mut src, None) {
            Err(ServeError::BadQueryClass { id, class }) => {
                assert_eq!(id, 1);
                assert_eq!(class, "node2vec:0");
            }
            other => panic!("expected BadQueryClass, got {other:?}"),
        }
    }

    #[test]
    fn a_deadline_landing_exactly_on_completion_counts_as_missed() {
        // Regression: the round boundary used `d <= now` but post-round
        // accounting used `d < after`, so a deadline falling exactly on
        // the completion clock was silently not a miss.
        let run = |deadline_ns: Option<u64>| {
            let e = engine(64 << 10);
            let mut q = spec(1, "basic", 10, 0);
            q.deadline_ns = deadline_ns;
            let mut src = StaticQuerySource::new(vec![q]);
            e.run(&mut src, None).expect("serve")
        };
        let free = run(None);
        let exact = run(Some(free.end_ns));
        // The allowance is nowhere near exhausted, so the walk — and the
        // modeled clock — replay identically with the deadline attached.
        assert_eq!(exact.end_ns, free.end_ns);
        let o = &exact.outcomes[0];
        assert!(o.deadline_missed, "deadline == completion time is a miss");
        assert!(!o.degraded);
        assert_eq!(o.stats.issued, 10);
        assert_eq!(o.stats.cancelled, 0);
        assert_eq!(o.digest, free.outcomes[0].digest);
    }

    #[test]
    fn exhausted_round_budget_still_gives_every_offered_query_an_outcome() {
        // Regression: the `max_rounds` backstop broke out of the loop
        // without finalizing in-flight queries or draining the pending
        // queue, so offered queries vanished from the report.
        let opts = ServeOptions {
            max_rounds: 1,
            ..ServeOptions::default()
        };
        let (e, budget) = engine_with(64 << 10, opts);
        let quota = pool_quota(&e, &budget);
        // Query 1 overfills the pool quota so query 2 stays pending in
        // admission when the round budget runs out.
        let mut src = StaticQuerySource::new(vec![
            spec(1, "basic", quota * 2, 0),
            spec(2, "ppr:3", 10, 0),
        ]);
        let report = e.run(&mut src, None).expect("serve");
        assert_eq!(report.rounds, 1);
        assert_eq!(report.outcomes.len(), 2, "every offered query reports");
        let a = report.outcomes.iter().find(|o| o.id == 1).expect("q1");
        assert!(!a.shed);
        assert!(a.degraded, "in-flight work finalizes as a degraded partial");
        assert!(a.stats.issued > 0 && a.stats.issued < a.stats.budget);
        assert_eq!(a.stats.completed + a.stats.cancelled, a.stats.issued);
        let b = report.outcomes.iter().find(|o| o.id == 2).expect("q2");
        assert!(b.shed);
        assert!(b.retry_after_ns.expect("hint") > 0);
        assert!(b.latency_ns.is_none());
    }

    #[test]
    fn a_missed_query_releases_its_pool_share_immediately() {
        // Regression: a query flagged `deadline_missed` after a round —
        // but neither cancelled mid-round nor exhausted — stayed in the
        // active set holding its pool share, stranding pending queries.
        let (e, budget) = engine_with(64 << 10, ServeOptions::default());
        let quota = pool_quota(&e, &budget);
        let chunk = quota.min(e.options().round_walkers);
        // Deadline = the first round's compute-only time: the step
        // allowance (deadline / step cost) comfortably covers the chunk,
        // but the round's modeled I/O pushes the clock past the deadline,
        // so the query misses without a single walker being cancelled.
        let eng = &e.options().engine;
        let d = chunk * 5 * (eng.step_cost() + eng.sample_cost());
        let mut a = spec(1, "basic", quota * 2 + 10, 0);
        a.deadline_ns = Some(d);
        let mut src = StaticQuerySource::new(vec![a, spec(2, "ppr:3", 10, 0)]);
        let report = e.run(&mut src, None).expect("serve");
        assert_eq!(report.outcomes.len(), 2);
        let a = report.outcomes.iter().find(|o| o.id == 1).expect("q1");
        assert!(a.deadline_missed);
        assert_eq!(a.stats.cancelled, 0, "the allowance was never exhausted");
        assert_eq!(a.stats.issued, chunk, "exactly one round's chunk ran");
        // The share freed by the miss lets the pending query run to
        // completion instead of being stranded behind a dead query.
        let b = report.outcomes.iter().find(|o| o.id == 2).expect("q2");
        assert!(!b.shed && !b.degraded && !b.deadline_missed);
        assert_eq!(b.stats.completed, 10);
    }

    #[test]
    fn query_events_land_in_the_trace() {
        let e = engine(64 << 10);
        let mut src = StaticQuerySource::new(vec![spec(1, "basic", 10, 0)]);
        let mut sink = noswalker_core::MemorySink::new();
        e.run(&mut src, Some(&mut sink)).expect("serve");
        let kinds: Vec<&'static str> = sink.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"query_admitted"), "{kinds:?}");
        assert!(kinds.contains(&"query_completed"), "{kinds:?}");
    }
}
