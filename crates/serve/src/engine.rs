//! The lockstep serving engine: deterministic round-based multiplexing
//! of live queries over the pooled NosWalker engine.
//!
//! The round state machine itself — drain arrivals through admission,
//! activate up to the walker-pool quota
//! ([`EngineOptions::walker_pool_quota`]), expire deadlines, carve walker
//! chunks per backend ([`Backend::Auto`] routes deadline-constrained
//! queries to the sequential kernel and the rest to the parallel one),
//! run each group on a `StepKernel`, and finalize — lives in
//! [`TickCore`](crate::tick::TickCore), shared with the shard plane and
//! the realtime driver. [`ServeEngine`] is the *lockstep* shell around
//! it: one single-lane core driven by a [`ModelClock`], advancing by the
//! kernels' deterministic `advance_ns` charges and jumping idle gaps to
//! the next arrival. Latency, deadlines, retry-after hints and the shed
//! decision all read that clock — never the host clock — so the same
//! trace replays to an identical [`ServeReport`] on every backend: walker
//! movement draws only walker-private randomness (see [`crate::app`]),
//! and serving rounds force all-raw pre-sample retention so no kernel
//! ever consumes a pre-drawn slot whose value depends on refill
//! scheduling.

use crate::tick::{LaneConfig, SingleLane, Tick, TickCore};
use noswalker_core::audit::{Trace, TraceSink};
use noswalker_core::{
    Backend, EngineError, EngineOptions, LatencyHistogram, ModelClock, OnDiskGraph, QueryId,
    QuerySource, QueryStats, RunMetrics, TickClock,
};
use noswalker_storage::MemoryBudget;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration for [`ServeEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Options for the per-round walk engine (the pool quota, step costs
    /// and pre-sample knobs all apply unchanged).
    pub engine: EngineOptions,
    /// Admission-control knobs (queue bound, backoff, shed threshold).
    pub admission: crate::admission::AdmissionOptions,
    /// Base RNG seed; each round derives its own seed from it.
    pub seed: u64,
    /// Additional cap on walkers issued per round, so one giant query
    /// cannot monopolize a round even when the pool quota is large.
    pub round_walkers: u64,
    /// Hard bound on serving rounds — a backstop against a misbehaving
    /// [`QuerySource`] that keeps reporting future work it never yields.
    /// On exhaustion every in-flight query terminates as a degraded
    /// partial and the pending queue drains as shed, so each offered
    /// query still gets an outcome.
    pub max_rounds: u64,
    /// Which [`StepKernel`] executes rounds. [`Backend::Auto`] selects
    /// per query class: deadline-constrained queries run on the
    /// sequential kernel (whose cancellation timing is deterministic),
    /// best-effort queries on the parallel one.
    pub backend: Backend,
    /// Worker threads for the parallel kernel. A fixed constant rather
    /// than a host-derived figure, so a trace replays identically on any
    /// machine.
    pub par_workers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            engine: EngineOptions::default(),
            admission: crate::admission::AdmissionOptions::default(),
            seed: 42,
            round_walkers: 4096,
            max_rounds: 1_000_000,
            backend: Backend::Seq,
            par_workers: 4,
        }
    }
}

/// A serving-layer failure.
#[derive(Debug)]
pub enum ServeError {
    /// The per-round walk engine failed.
    Engine(EngineError),
    /// A query carried a class spec [`QueryClass::parse`] rejects.
    BadQueryClass {
        /// The offending query.
        id: QueryId,
        /// Its unparseable class spec.
        class: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "serving round failed: {e}"),
            ServeError::BadQueryClass { id, class } => {
                write!(f, "query {id}: unknown query class {class:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// The terminal record of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The query.
    pub id: QueryId,
    /// Its reporting class (`"ppr"`, `"basic"`, …).
    pub class: String,
    /// Walker accounting (the per-query conservation law's input).
    pub stats: QueryStats,
    /// Arrival → completion in modeled nanoseconds (`None` when shed).
    pub latency_ns: Option<u64>,
    /// True when the result is partial: walkers were cancelled or budget
    /// was left unissued at the deadline.
    pub degraded: bool,
    /// True when the deadline passed before the query finished.
    pub deadline_missed: bool,
    /// True when admission rejected the query outright.
    pub shed: bool,
    /// Backpressure hint returned with a shed (modeled ns).
    pub retry_after_ns: Option<u64>,
    /// Order-independent digest of the vertices the query's walkers
    /// visited — the deterministic stand-in for its result payload.
    pub digest: u64,
}

/// Everything a serving run produced.
#[derive(Debug)]
pub struct ServeReport {
    /// One entry per offered query, in termination order.
    pub outcomes: Vec<QueryOutcome>,
    /// Completion-latency histogram per query class.
    pub histograms: BTreeMap<String, LatencyHistogram>,
    /// All per-round [`RunMetrics`], merged.
    pub metrics: RunMetrics,
    /// Serving rounds executed.
    pub rounds: u64,
    /// Modeled time when the last query terminated.
    pub end_ns: u64,
}

impl ServeReport {
    /// Queries that ran to termination (admitted, not shed).
    pub fn completed_count(&self) -> u64 {
        self.outcomes.iter().filter(|o| !o.shed).count() as u64
    }

    /// Queries rejected by admission control.
    pub fn shed_count(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.shed).count() as u64
    }

    /// Served queries whose deadline passed before they finished.
    pub fn deadline_miss_count(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.deadline_missed).count() as u64
    }

    /// Served queries returned partial/degraded.
    pub fn degraded_count(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.degraded).count() as u64
    }

    /// Served queries per modeled second.
    pub fn achieved_qps(&self) -> f64 {
        self.completed_count() as f64 / (self.end_ns.max(1) as f64 / 1e9)
    }

    /// The walker accounting of every served query, for
    /// [`noswalker_core::audit_queries`].
    pub fn query_stats(&self) -> Vec<QueryStats> {
        self.outcomes
            .iter()
            .filter(|o| !o.shed)
            .map(|o| o.stats.clone())
            .collect()
    }
}

/// The online serving engine (see module docs).
pub struct ServeEngine {
    graph: Arc<OnDiskGraph>,
    budget: Arc<MemoryBudget>,
    opts: ServeOptions,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("opts", &self.opts)
            .finish()
    }
}

impl ServeEngine {
    /// Creates a serving engine over a stored graph.
    pub fn new(graph: Arc<OnDiskGraph>, budget: Arc<MemoryBudget>, opts: ServeOptions) -> Self {
        ServeEngine {
            graph,
            budget,
            opts,
        }
    }

    /// The serving options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Serves every query `source` yields, to completion, and returns the
    /// report. In debug builds the per-query conservation law
    /// ([`noswalker_core::audit_queries`]) and the per-round engine laws
    /// are asserted.
    ///
    /// # Errors
    ///
    /// [`ServeError::Engine`] when a round fails;
    /// [`ServeError::BadQueryClass`] when an admitted query's class spec
    /// does not parse.
    pub fn run(
        &self,
        source: &mut dyn QuerySource,
        sink: Option<&mut dyn TraceSink>,
    ) -> Result<ServeReport, ServeError> {
        let nv = self.graph.num_vertices() as u32;
        let mut core = TickCore::new(
            vec![LaneConfig {
                graph: Arc::clone(&self.graph),
                budget: Arc::clone(&self.budget),
                owned: 0..nv,
            }],
            Box::new(SingleLane),
            self.opts.clone(),
        );
        let mut clock = ModelClock::new();
        let mut trace = Trace::from_option(sink);
        loop {
            match core.tick(&mut clock, source, &mut trace)? {
                Tick::Ran => {}
                Tick::Exhausted => break,
                Tick::Idle { next_arrival_ns } => match next_arrival_ns {
                    // Nothing runnable: jump to the next arrival or stop.
                    Some(t) if !source.is_exhausted() => {
                        clock.advance_idle(t);
                    }
                    _ => break,
                },
            }
        }
        let end_ns = TickClock::now_ns(&mut clock);
        Ok(core.finish(end_ns).report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::ServeWalker;
    use noswalker_core::{QuerySpec, StaticQuerySource};
    use noswalker_graph::generators;
    use noswalker_storage::{SimSsd, SsdProfile};

    fn engine(budget_bytes: u64) -> ServeEngine {
        engine_with(budget_bytes, ServeOptions::default()).0
    }

    fn engine_with(budget_bytes: u64, opts: ServeOptions) -> (ServeEngine, Arc<MemoryBudget>) {
        let csr = generators::uniform_degree(64, 4, 11);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 2048).expect("store"));
        let budget = MemoryBudget::new(budget_bytes);
        (ServeEngine::new(graph, Arc::clone(&budget), opts), budget)
    }

    fn pool_quota(e: &ServeEngine, budget: &MemoryBudget) -> u64 {
        e.options()
            .engine
            .walker_pool_quota(budget, std::mem::size_of::<ServeWalker>(), u64::MAX)
    }

    fn spec(id: u64, class: &str, walkers: u64, arrival_ns: u64) -> QuerySpec {
        QuerySpec {
            id,
            class: class.into(),
            walkers,
            walk_length: 5,
            deadline_ns: None,
            arrival_ns,
        }
    }

    #[test]
    fn serves_a_simple_query_stream_to_completion() {
        let e = engine(64 << 10);
        let mut src = StaticQuerySource::new(vec![
            spec(1, "ppr:3", 40, 0),
            spec(2, "basic", 30, 1_000),
            spec(3, "deepwalk:0", 20, 2_000),
        ]);
        let report = e.run(&mut src, None).expect("serve");
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.completed_count(), 3);
        assert_eq!(report.shed_count(), 0);
        for o in &report.outcomes {
            assert_eq!(o.stats.issued, o.stats.budget);
            assert_eq!(o.stats.completed + o.stats.cancelled, o.stats.issued);
            assert!(o.latency_ns.is_some());
            assert_ne!(o.digest, 0);
        }
        assert!(report.histograms.contains_key("ppr"));
        assert!(report.metrics.steps > 0);
        assert_eq!(
            report.metrics.walkers_finished + report.metrics.walkers_cancelled,
            90
        );
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let mk = || {
            let e = engine(64 << 10);
            let mut src = StaticQuerySource::new(vec![
                spec(1, "ppr:3", 25, 0),
                spec(2, "rwr:5:0.2", 25, 500),
            ]);
            e.run(&mut src, None).expect("serve")
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.end_ns, b.end_ns);
        assert_eq!(a.metrics.steps, b.metrics.steps);
    }

    #[test]
    fn impossible_deadline_returns_degraded_partial_results() {
        let e = engine(64 << 10);
        let mut q = spec(9, "basic", 3_000, 0);
        q.deadline_ns = Some(1); // 1 ns for 15k steps: hopeless
        let mut src = StaticQuerySource::new(vec![q]);
        let report = e.run(&mut src, None).expect("serve");
        assert_eq!(report.outcomes.len(), 1);
        let o = &report.outcomes[0];
        assert!(o.deadline_missed);
        assert!(o.degraded);
        assert!(!o.shed);
        assert!(o.stats.issued < o.stats.budget || o.stats.cancelled > 0);
        assert_eq!(o.stats.completed + o.stats.cancelled, o.stats.issued);
        assert_eq!(report.deadline_miss_count(), 1);
    }

    #[test]
    fn unknown_class_is_an_error() {
        let e = engine(64 << 10);
        let mut src = StaticQuerySource::new(vec![spec(1, "node2vec:0", 10, 0)]);
        match e.run(&mut src, None) {
            Err(ServeError::BadQueryClass { id, class }) => {
                assert_eq!(id, 1);
                assert_eq!(class, "node2vec:0");
            }
            other => panic!("expected BadQueryClass, got {other:?}"),
        }
    }

    #[test]
    fn a_deadline_landing_exactly_on_completion_counts_as_missed() {
        // Regression: the round boundary used `d <= now` but post-round
        // accounting used `d < after`, so a deadline falling exactly on
        // the completion clock was silently not a miss.
        let run = |deadline_ns: Option<u64>| {
            let e = engine(64 << 10);
            let mut q = spec(1, "basic", 10, 0);
            q.deadline_ns = deadline_ns;
            let mut src = StaticQuerySource::new(vec![q]);
            e.run(&mut src, None).expect("serve")
        };
        let free = run(None);
        let exact = run(Some(free.end_ns));
        // The allowance is nowhere near exhausted, so the walk — and the
        // modeled clock — replay identically with the deadline attached.
        assert_eq!(exact.end_ns, free.end_ns);
        let o = &exact.outcomes[0];
        assert!(o.deadline_missed, "deadline == completion time is a miss");
        assert!(!o.degraded);
        assert_eq!(o.stats.issued, 10);
        assert_eq!(o.stats.cancelled, 0);
        assert_eq!(o.digest, free.outcomes[0].digest);
    }

    #[test]
    fn exhausted_round_budget_still_gives_every_offered_query_an_outcome() {
        // Regression: the `max_rounds` backstop broke out of the loop
        // without finalizing in-flight queries or draining the pending
        // queue, so offered queries vanished from the report.
        let opts = ServeOptions {
            max_rounds: 1,
            ..ServeOptions::default()
        };
        let (e, budget) = engine_with(64 << 10, opts);
        let quota = pool_quota(&e, &budget);
        // Query 1 overfills the pool quota so query 2 stays pending in
        // admission when the round budget runs out.
        let mut src = StaticQuerySource::new(vec![
            spec(1, "basic", quota * 2, 0),
            spec(2, "ppr:3", 10, 0),
        ]);
        let report = e.run(&mut src, None).expect("serve");
        assert_eq!(report.rounds, 1);
        assert_eq!(report.outcomes.len(), 2, "every offered query reports");
        let a = report.outcomes.iter().find(|o| o.id == 1).expect("q1");
        assert!(!a.shed);
        assert!(a.degraded, "in-flight work finalizes as a degraded partial");
        assert!(a.stats.issued > 0 && a.stats.issued < a.stats.budget);
        assert_eq!(a.stats.completed + a.stats.cancelled, a.stats.issued);
        let b = report.outcomes.iter().find(|o| o.id == 2).expect("q2");
        assert!(b.shed);
        assert!(b.retry_after_ns.expect("hint") > 0);
        assert!(b.latency_ns.is_none());
    }

    #[test]
    fn a_missed_query_releases_its_pool_share_immediately() {
        // Regression: a query flagged `deadline_missed` after a round —
        // but neither cancelled mid-round nor exhausted — stayed in the
        // active set holding its pool share, stranding pending queries.
        let (e, budget) = engine_with(64 << 10, ServeOptions::default());
        let quota = pool_quota(&e, &budget);
        let chunk = quota.min(e.options().round_walkers);
        // Deadline = the first round's compute-only time: the step
        // allowance (deadline / step cost) comfortably covers the chunk,
        // but the round's modeled I/O pushes the clock past the deadline,
        // so the query misses without a single walker being cancelled.
        let eng = &e.options().engine;
        let d = chunk * 5 * (eng.step_cost() + eng.sample_cost());
        let mut a = spec(1, "basic", quota * 2 + 10, 0);
        a.deadline_ns = Some(d);
        let mut src = StaticQuerySource::new(vec![a, spec(2, "ppr:3", 10, 0)]);
        let report = e.run(&mut src, None).expect("serve");
        assert_eq!(report.outcomes.len(), 2);
        let a = report.outcomes.iter().find(|o| o.id == 1).expect("q1");
        assert!(a.deadline_missed);
        assert_eq!(a.stats.cancelled, 0, "the allowance was never exhausted");
        assert_eq!(a.stats.issued, chunk, "exactly one round's chunk ran");
        // The share freed by the miss lets the pending query run to
        // completion instead of being stranded behind a dead query.
        let b = report.outcomes.iter().find(|o| o.id == 2).expect("q2");
        assert!(!b.shed && !b.degraded && !b.deadline_missed);
        assert_eq!(b.stats.completed, 10);
    }

    #[test]
    fn query_events_land_in_the_trace() {
        let e = engine(64 << 10);
        let mut src = StaticQuerySource::new(vec![spec(1, "basic", 10, 0)]);
        let mut sink = noswalker_core::MemorySink::new();
        e.run(&mut src, Some(&mut sink)).expect("serve");
        let kinds: Vec<&'static str> = sink.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"query_admitted"), "{kinds:?}");
        assert!(kinds.contains(&"query_completed"), "{kinds:?}");
    }
}
