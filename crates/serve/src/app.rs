//! Multiplexing many live queries into one engine run.
//!
//! Each serving round, the engine snapshots its active queries into a
//! [`QueryTable`] and wraps them in a [`RoundApp`] — a single
//! [`Walk`] application whose walkers carry the index of the query they
//! belong to. Deadline enforcement is embedded in the walk itself: every
//! step decrements the owning query's modeled step allowance, and when it
//! runs out the query's `cancelled` flag flips, its walkers stop being
//! active, and the engine retires them through the cancellation path
//! ([`Walk::is_cancelled`]) so the walker-completion audit law stays
//! balanced.

use noswalker_core::apps_prelude::*;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The application a query binds its walkers to.
///
/// All bindings are first-order (paper property (a)), so their samples can
/// be served from pre-sample buffers; second-order queries (node2vec) need
/// the rejection-sampling run loop and are out of the serving layer's
/// scope (see DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryClass {
    /// Plain fixed-length walks from vertices `k mod |V|`.
    Basic,
    /// Personalized PageRank: every walker starts at `source`.
    Ppr {
        /// The PPR query source vertex.
        source: VertexId,
    },
    /// Random walk with restart: like PPR but each step teleports back to
    /// `source` with probability `restart`.
    Rwr {
        /// The restart anchor vertex.
        source: VertexId,
        /// Per-step teleport probability.
        restart: f32,
    },
    /// DeepWalk corpus slice: walker `k` starts at vertex `start + k`.
    DeepWalk {
        /// First vertex of the slice.
        start: VertexId,
    },
}

impl QueryClass {
    /// Parses a class spec: `basic`, `ppr:<src>`, `rwr:<src>:<restart>`,
    /// `deepwalk:<start>`.
    pub fn parse(spec: &str) -> Option<QueryClass> {
        let mut parts = spec.split(':');
        let head = parts.next()?;
        let class = match head {
            "basic" => QueryClass::Basic,
            "ppr" => QueryClass::Ppr {
                source: parts.next()?.parse().ok()?,
            },
            "rwr" => QueryClass::Rwr {
                source: parts.next()?.parse().ok()?,
                restart: match parts.next() {
                    Some(r) => r.parse().ok().filter(|r| (0.0..=1.0).contains(r))?,
                    None => 0.15,
                },
            },
            "deepwalk" => QueryClass::DeepWalk {
                start: parts.next()?.parse().ok()?,
            },
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(class)
    }

    /// The histogram/reporting class name.
    pub fn name(&self) -> &'static str {
        match self {
            QueryClass::Basic => "basic",
            QueryClass::Ppr { .. } => "ppr",
            QueryClass::Rwr { .. } => "rwr",
            QueryClass::DeepWalk { .. } => "deepwalk",
        }
    }

    /// Start vertex of the query's `k`-th walker on a graph of
    /// `num_vertices` vertices.
    pub fn start_vertex(&self, k: u64, num_vertices: u32) -> VertexId {
        let nv = num_vertices.max(1);
        match self {
            QueryClass::Basic => (k % nv as u64) as VertexId,
            QueryClass::Ppr { source } => source % nv,
            QueryClass::Rwr { source, .. } => source % nv,
            QueryClass::DeepWalk { start } => ((*start as u64 + k) % nv as u64) as VertexId,
        }
    }
}

/// One splitmix64 draw, advancing `state` in place. The serving layer's
/// walkers each carry a private stream of these, so a walker's trajectory
/// is a pure function of its own seed — identical on every step kernel,
/// which is what makes cross-backend replay digests bit-identical.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform f32 in `[0, 1)` from one stream draw.
fn u01(x: u64) -> f32 {
    (x >> 40) as f32 / (1u64 << 24) as f32
}

/// The per-query stream seed: derived from the serving engine's base seed
/// and the query id only — never from round state — so a query spanning
/// several rounds (or carved differently by another backend's quota) still
/// hands each of its walkers the same private stream. Public so the
/// sharded serve plane seeds queries identically to [`crate::ServeEngine`]
/// (the N=1 parity contract).
pub fn query_stream_seed(base: u64, query: u64) -> u64 {
    let mut s = base ^ query.wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(&mut s)
}

/// Walker `k`'s private stream seed within its query's stream. Public for
/// the same reason as [`query_stream_seed`].
pub fn walker_stream_seed(query_seed: u64, k: u64) -> u64 {
    let mut s = query_seed ^ k.wrapping_mul(0x9E6C_63D0_876A_8AD1);
    splitmix64(&mut s)
}

/// Per-round, per-query shared state read and written by walker callbacks.
///
/// Callbacks take `&self`, so the mutable pieces are atomics; under the
/// sequential engine they are plain interior mutability and every round is
/// deterministic.
///
/// Every access here is `Ordering::Relaxed`, and this file is one of the
/// lint's sanctioned-Relaxed modules (L10): each atomic is a commutative
/// per-query tally (step counts, walker completions, the xor/add digest
/// mix) or a monotonic cancel latch, never a publication handshake. The
/// round barrier in the serving loop joins all steppers before any slot is
/// folded into query results, so that join — not the atomics — provides
/// the happens-before edge readers rely on; ordering inside the round
/// genuinely does not matter.
#[derive(Debug)]
struct Slot {
    class: QueryClass,
    length: u32,
    /// Modeled steps the query may take this round before its deadline
    /// passes (`None` = no deadline).
    allowance: Option<u64>,
    /// The owning query's private RNG stream seed (see
    /// [`query_stream_seed`]).
    walker_seed: u64,
    steps_taken: AtomicU64,
    cancel_flag: AtomicBool,
    completed_walkers: AtomicU64,
    cancelled_walkers: AtomicU64,
    /// Walkers parked at a vertex outside the round's owned shard range:
    /// retired through the engine's cancellation path here, then handed
    /// off to the owning shard (sharded serving only).
    emigrated_walkers: AtomicU64,
    digest: AtomicU64,
}

/// The active-query table for one serving round.
#[derive(Debug, Default)]
pub struct QueryTable {
    slots: Vec<Slot>,
}

fn mix(v: VertexId) -> u64 {
    (v as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl QueryTable {
    /// Builds the table; one entry per active query:
    /// `(class, walk_length, step_allowance, walker_stream_seed)`.
    pub fn new(entries: Vec<(QueryClass, u32, Option<u64>, u64)>) -> Self {
        QueryTable {
            slots: entries
                .into_iter()
                .map(|(class, length, allowance, walker_seed)| Slot {
                    class,
                    length,
                    allowance,
                    walker_seed,
                    steps_taken: AtomicU64::new(0),
                    cancel_flag: AtomicBool::new(false),
                    completed_walkers: AtomicU64::new(0),
                    cancelled_walkers: AtomicU64::new(0),
                    emigrated_walkers: AtomicU64::new(0),
                    digest: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `slot`'s query has been cancelled (deadline allowance
    /// exhausted).
    pub fn is_cancelled(&self, slot: u32) -> bool {
        self.slots[slot as usize]
            .cancel_flag
            .load(Ordering::Relaxed)
    }

    /// Walkers of `slot` retired as completed this round.
    pub fn completed_walkers(&self, slot: u32) -> u64 {
        self.slots[slot as usize]
            .completed_walkers
            .load(Ordering::Relaxed)
    }

    /// Walkers of `slot` retired as cancelled this round.
    pub fn cancelled_walkers(&self, slot: u32) -> u64 {
        self.slots[slot as usize]
            .cancelled_walkers
            .load(Ordering::Relaxed)
    }

    /// Walkers of `slot` parked for cross-shard handoff this round
    /// (counted as neither completed nor cancelled at the query level —
    /// they resume on their destination shard next round).
    pub fn emigrated_walkers(&self, slot: u32) -> u64 {
        self.slots[slot as usize]
            .emigrated_walkers
            .load(Ordering::Relaxed)
    }

    /// Pre-cancels `slot` before the round runs: its walkers retire
    /// through the cancellation path on first contact. The sharded plane
    /// uses this to drain handed-off walkers of a query whose deadline
    /// already fired (the query stays active until every in-flight walker
    /// is accounted for, keeping the query-conservation law balanced).
    pub fn cancel(&self, slot: u32) {
        self.slots[slot as usize]
            .cancel_flag
            .store(true, Ordering::Relaxed);
    }

    /// Steps taken by `slot`'s walkers this round.
    pub fn steps_taken(&self, slot: u32) -> u64 {
        self.slots[slot as usize]
            .steps_taken
            .load(Ordering::Relaxed)
    }

    /// Order-independent digest of the vertices `slot`'s walkers visited
    /// this round (wrapping sum of per-visit hashes) — the query's
    /// deterministic "result".
    pub fn digest(&self, slot: u32) -> u64 {
        self.slots[slot as usize].digest.load(Ordering::Relaxed)
    }
}

/// One walker of one multiplexed query.
#[derive(Debug, Clone)]
pub struct ServeWalker {
    /// Current vertex.
    pub at: VertexId,
    /// Steps taken by this walker.
    pub step: u32,
    /// Index of the owning query's slot in the round's [`QueryTable`].
    pub slot: u32,
    /// Private splitmix64 stream state: every random decision this walker
    /// makes (destination draws, RWR teleports) comes from here, so its
    /// trajectory does not depend on which step kernel moves it.
    pub rng: u64,
}

struct Chunk {
    slot: u32,
    /// The owning query's walker index of this chunk's first walker
    /// (queries spanning several rounds keep a stable start-vertex
    /// sequence).
    base: u64,
    count: u64,
}

/// One serving round's walk application: the union of every active query's
/// walker chunk, multiplexed into the engine's single bounded pool.
///
/// Under sharded serving ([`RoundApp::sharded`]) the app additionally owns
/// a contiguous vertex range: walkers whose current vertex falls outside
/// it go inactive, retire through the engine's cancellation path (keeping
/// the per-round walker-completion law balanced), and are parked in the
/// emigrant list for the plane to hand off; walkers handed off *to* this
/// shard in a previous round are injected ahead of the fresh chunks with
/// their full state (vertex, step count, private RNG stream) intact, so a
/// walker's trajectory is identical whether or not it ever crossed a
/// boundary.
pub struct RoundApp {
    table: Arc<QueryTable>,
    chunks: Vec<Chunk>,
    /// `prefix[i]` = total walkers in chunks `0..i`.
    prefix: Vec<u64>,
    total: u64,
    num_vertices: u32,
    /// Vertices this round's shard owns; walkers outside it emigrate.
    /// The unsharded engine owns everything (`0..num_vertices`).
    owned: Range<u32>,
    /// Walkers resuming after a cross-shard handoff, occupying generation
    /// indices `0..resumed.len()` ahead of the chunk walkers.
    resumed: Vec<ServeWalker>,
    /// Walkers parked mid-walk at a foreign vertex this round, in
    /// retirement order (the plane sorts them on a deterministic key
    /// before re-admission, so parallel retirement order never leaks).
    emigrants: Mutex<Vec<ServeWalker>>,
}

impl std::fmt::Debug for RoundApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundApp")
            .field("queries", &self.chunks.len())
            .field("total_walkers", &self.total)
            .finish()
    }
}

impl RoundApp {
    /// Builds the round application. `chunks` lists, per active query,
    /// `(slot, base_walker_index, walker_count)`; zero-count chunks are
    /// dropped.
    pub fn new(table: Arc<QueryTable>, chunks: Vec<(u32, u64, u64)>, num_vertices: u32) -> Self {
        Self::sharded(table, chunks, num_vertices, 0..num_vertices, Vec::new())
    }

    /// Builds a shard's round application: like [`RoundApp::new`] but the
    /// app owns only `owned` of the vertex space and starts with `resumed`
    /// walkers handed off from other shards in earlier rounds.
    pub fn sharded(
        table: Arc<QueryTable>,
        chunks: Vec<(u32, u64, u64)>,
        num_vertices: u32,
        owned: Range<u32>,
        resumed: Vec<ServeWalker>,
    ) -> Self {
        let chunks: Vec<Chunk> = chunks
            .into_iter()
            .filter(|&(_, _, count)| count > 0)
            .map(|(slot, base, count)| Chunk { slot, base, count })
            .collect();
        let mut prefix = Vec::with_capacity(chunks.len());
        let mut total = resumed.len() as u64;
        for c in &chunks {
            prefix.push(total);
            total += c.count;
        }
        RoundApp {
            table,
            chunks,
            prefix,
            total,
            num_vertices,
            owned,
            resumed,
            emigrants: Mutex::new(Vec::new()),
        }
    }

    /// Drains the walkers parked for cross-shard handoff this round.
    pub fn take_emigrants(&self) -> Vec<ServeWalker> {
        std::mem::take(&mut *self.emigrants.lock().expect("emigrant list poisoned"))
    }

    fn owns(&self, v: VertexId) -> bool {
        self.owned.contains(&v)
    }

    fn slot_of(&self, n: u64) -> (&Chunk, u64) {
        let i = self.prefix.partition_point(|&p| p <= n) - 1;
        let c = &self.chunks[i];
        (c, n - self.prefix[i])
    }

    fn slot(&self, w: &ServeWalker) -> &Slot {
        &self.table.slots[w.slot as usize]
    }
}

impl Walk for RoundApp {
    type Walker = ServeWalker;

    fn total_walkers(&self) -> u64 {
        self.total
    }

    fn generate(&self, n: u64, _rng: &mut WalkRng) -> ServeWalker {
        if let Some(w) = self.resumed.get(n as usize) {
            // A handed-off walker resumes exactly where it parked: same
            // vertex, same step count, same private stream state.
            return w.clone();
        }
        let (chunk, k) = self.slot_of(n);
        let s = &self.table.slots[chunk.slot as usize];
        ServeWalker {
            at: s.class.start_vertex(chunk.base + k, self.num_vertices),
            step: 0,
            slot: chunk.slot,
            // Seeded by the query's global walker index, not the round's,
            // so chunking a query differently (other backend, other quota)
            // never changes any walker's stream.
            rng: walker_stream_seed(s.walker_seed, chunk.base + k),
        }
    }

    fn location(&self, w: &ServeWalker) -> VertexId {
        w.at
    }

    fn is_active(&self, w: &ServeWalker) -> bool {
        let s = self.slot(w);
        w.step < s.length && !s.cancel_flag.load(Ordering::Relaxed) && self.owns(w.at)
    }

    fn sample(&self, v: &VertexEdges<'_>, rng: &mut WalkRng) -> VertexId {
        uniform_sample(v, rng)
    }

    fn sample_for(&self, w: &mut ServeWalker, v: &VertexEdges<'_>, _rng: &mut WalkRng) -> VertexId {
        // Engine-independent movement: the destination comes from the
        // walker's own stream, never the engine's RNG, so every step
        // kernel walks this walker along the same trajectory.
        let d = v.degree() as u64;
        debug_assert!(d > 0, "engines never sample an empty vertex");
        v.target((splitmix64(&mut w.rng) % d.max(1)) as usize)
    }

    fn action(&self, w: &mut ServeWalker, next: VertexId, _rng: &mut WalkRng) -> bool {
        let s = self.slot(w);
        let taken = s.steps_taken.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(allow) = s.allowance {
            if taken > allow {
                // The query's modeled time budget ran out mid-round: stop
                // every remaining walker of this query (they retire as
                // cancelled) and keep what was computed as the partial,
                // degraded result.
                s.cancel_flag.store(true, Ordering::Relaxed);
            }
        }
        w.at = match s.class {
            QueryClass::Rwr { source, restart } if u01(splitmix64(&mut w.rng)) < restart => {
                source % self.num_vertices.max(1)
            }
            _ => next,
        };
        w.step += 1;
        s.digest.fetch_add(mix(w.at), Ordering::Relaxed);
        true
    }

    fn on_terminate(&self, w: &ServeWalker) {
        let s = self.slot(w);
        // Same predicate as `is_cancelled`: a walker that already took all
        // its steps finished naturally even if its query got cancelled in
        // the same round; dead-end retirements also count as completed. A
        // mid-walk walker parked at a foreign vertex is an emigrant: it is
        // neither completed nor cancelled at the query level — the plane
        // hands it to the owning shard, where it resumes next round.
        if s.cancel_flag.load(Ordering::Relaxed) && w.step < s.length {
            s.cancelled_walkers.fetch_add(1, Ordering::Relaxed);
        } else if w.step < s.length && !self.owns(w.at) {
            s.emigrated_walkers.fetch_add(1, Ordering::Relaxed);
            self.emigrants
                .lock()
                .expect("emigrant list poisoned")
                .push(w.clone());
        } else {
            s.completed_walkers.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn is_cancelled(&self, w: &ServeWalker) -> bool {
        // Emigrants count as cancelled *at the engine level* (so each
        // kernel round's walker-completion law balances); the query-level
        // attribution above keeps them out of the cancelled tally.
        let s = self.slot(w);
        w.step < s.length && (s.cancel_flag.load(Ordering::Relaxed) || !self.owns(w.at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> WalkRng {
        WalkRng::seed_from_u64(7)
    }

    #[test]
    fn class_specs_round_trip() {
        assert_eq!(QueryClass::parse("basic"), Some(QueryClass::Basic));
        assert_eq!(
            QueryClass::parse("ppr:12"),
            Some(QueryClass::Ppr { source: 12 })
        );
        assert_eq!(
            QueryClass::parse("rwr:3:0.25"),
            Some(QueryClass::Rwr {
                source: 3,
                restart: 0.25
            })
        );
        assert_eq!(
            QueryClass::parse("rwr:3"),
            Some(QueryClass::Rwr {
                source: 3,
                restart: 0.15
            })
        );
        assert_eq!(
            QueryClass::parse("deepwalk:5"),
            Some(QueryClass::DeepWalk { start: 5 })
        );
        for bad in ["", "ppr", "ppr:x", "rwr:1:2.0", "node2vec:1", "basic:1"] {
            assert_eq!(QueryClass::parse(bad), None, "{bad}");
        }
    }

    #[test]
    fn walkers_map_to_their_chunk_and_start_vertex() {
        let table = Arc::new(QueryTable::new(vec![
            (QueryClass::Ppr { source: 9 }, 4, None, 1),
            (QueryClass::DeepWalk { start: 2 }, 4, None, 2),
        ]));
        // Query 1's chunk resumes at base walker index 10.
        let app = RoundApp::new(Arc::clone(&table), vec![(0, 0, 3), (1, 10, 2)], 16);
        assert_eq!(app.total_walkers(), 5);
        let mut r = rng();
        let w = app.generate(0, &mut r);
        assert_eq!((w.slot, w.at), (0, 9));
        let w = app.generate(2, &mut r);
        assert_eq!((w.slot, w.at), (0, 9));
        let w = app.generate(3, &mut r);
        assert_eq!((w.slot, w.at), (1, 12)); // deepwalk start 2 + base 10
        let w = app.generate(4, &mut r);
        assert_eq!((w.slot, w.at), (1, 13));
    }

    #[test]
    fn exhausted_allowance_cancels_remaining_walkers_only() {
        let table = Arc::new(QueryTable::new(vec![(QueryClass::Basic, 3, Some(4), 1)]));
        let app = RoundApp::new(Arc::clone(&table), vec![(0, 0, 2)], 8);
        let mut r = rng();
        // First walker finishes all 3 steps within the allowance.
        let mut w = app.generate(0, &mut r);
        for _ in 0..3 {
            assert!(app.is_active(&w));
            app.action(&mut w, 1, &mut r);
        }
        assert!(!app.is_active(&w));
        assert!(!app.is_cancelled(&w), "natural completion");
        app.on_terminate(&w);
        // Second walker trips the 4-step allowance on its second step.
        let mut w = app.generate(1, &mut r);
        app.action(&mut w, 2, &mut r);
        app.action(&mut w, 3, &mut r);
        assert!(table.is_cancelled(0));
        assert!(!app.is_active(&w));
        assert!(app.is_cancelled(&w), "cut short mid-walk");
        app.on_terminate(&w);
        assert_eq!(table.completed_walkers(0), 1);
        assert_eq!(table.cancelled_walkers(0), 1);
        assert_eq!(table.steps_taken(0), 5);
    }

    #[test]
    fn rwr_restarts_return_to_the_anchor() {
        let table = Arc::new(QueryTable::new(vec![(
            QueryClass::Rwr {
                source: 4,
                restart: 1.0,
            },
            8,
            None,
            1,
        )]));
        let app = RoundApp::new(Arc::clone(&table), vec![(0, 0, 1)], 16);
        let mut r = rng();
        let mut w = app.generate(0, &mut r);
        app.action(&mut w, 11, &mut r);
        assert_eq!(w.at, 4, "restart=1.0 always teleports home");
    }

    #[test]
    fn walker_streams_are_chunk_layout_invariant() {
        // The same global walker index seeds the same private stream no
        // matter how a round carved the query into chunks — the property
        // that makes multi-round queries replay identically across
        // backends with different per-round quotas.
        let mk = |chunks: Vec<(u32, u64, u64)>| {
            let t = Arc::new(QueryTable::new(vec![(QueryClass::Basic, 8, None, 99)]));
            RoundApp::new(t, chunks, 16)
        };
        let whole = mk(vec![(0, 0, 8)]);
        let resumed = mk(vec![(0, 5, 3)]);
        let mut r = rng();
        let a = whole.generate(6, &mut r); // global walker 6
        let b = resumed.generate(1, &mut r); // base 5 + 1 = global walker 6
        assert_eq!(a.rng, b.rng);
        assert_eq!(a.at, b.at);
        assert_ne!(whole.generate(0, &mut r).rng, whole.generate(1, &mut r).rng);
    }

    #[test]
    fn sample_for_ignores_the_engine_rng() {
        let t = Arc::new(QueryTable::new(vec![(QueryClass::Basic, 8, None, 7)]));
        let app = RoundApp::new(t, vec![(0, 0, 1)], 16);
        let targets = [3u32, 9, 27, 31];
        let v = VertexEdges::Mem {
            targets: &targets,
            weights: None,
            alias: None,
        };
        let mut r1 = rng();
        let mut r2 = WalkRng::seed_from_u64(12345);
        let mut w1 = app.generate(0, &mut r1);
        let mut w2 = app.generate(0, &mut r2);
        // Different engine RNGs, same walker: identical destination draws.
        let d1: Vec<u32> = (0..6)
            .map(|_| app.sample_for(&mut w1, &v, &mut r1))
            .collect();
        let d2: Vec<u32> = (0..6)
            .map(|_| app.sample_for(&mut w2, &v, &mut r2))
            .collect();
        assert_eq!(d1, d2);
        assert!(d1.iter().all(|d| targets.contains(d)));
    }

    #[test]
    fn foreign_walkers_park_as_emigrants_and_resume_intact() {
        let table = Arc::new(QueryTable::new(vec![(QueryClass::Basic, 8, None, 5)]));
        // Shard owning vertices 0..8 of a 16-vertex graph.
        let app = RoundApp::sharded(Arc::clone(&table), vec![(0, 0, 1)], 16, 0..8, Vec::new());
        let mut r = rng();
        let mut w = app.generate(0, &mut r);
        assert!(app.is_active(&w));
        // Step onto a foreign vertex: inactive, engine-cancelled, parked.
        app.action(&mut w, 12, &mut r);
        assert!(!app.is_active(&w));
        assert!(app.is_cancelled(&w));
        app.on_terminate(&w);
        assert_eq!(table.emigrated_walkers(0), 1);
        assert_eq!(table.completed_walkers(0), 0);
        assert_eq!(table.cancelled_walkers(0), 0);
        let parked = app.take_emigrants();
        assert_eq!(parked.len(), 1);
        assert_eq!((parked[0].at, parked[0].step), (12, 1));
        assert_eq!(parked[0].rng, w.rng);
        assert!(app.take_emigrants().is_empty(), "drained once");

        // The destination shard resumes the walker with identical state.
        let t2 = Arc::new(QueryTable::new(vec![(QueryClass::Basic, 8, None, 5)]));
        let app2 = RoundApp::sharded(Arc::clone(&t2), Vec::new(), 16, 8..16, parked);
        assert_eq!(app2.total_walkers(), 1);
        let resumed = app2.generate(0, &mut r);
        assert_eq!((resumed.at, resumed.step, resumed.rng), (12, 1, w.rng));
        assert!(app2.is_active(&resumed));

        // A walker that finishes its last step onto a foreign vertex
        // completed — the walk is over, nothing to hand off.
        let t3 = Arc::new(QueryTable::new(vec![(QueryClass::Basic, 1, None, 5)]));
        let app3 = RoundApp::sharded(Arc::clone(&t3), vec![(0, 0, 1)], 16, 0..8, Vec::new());
        let mut w = app3.generate(0, &mut r);
        app3.action(&mut w, 12, &mut r);
        assert!(!app3.is_cancelled(&w));
        app3.on_terminate(&w);
        assert_eq!(t3.completed_walkers(0), 1);
        assert_eq!(t3.emigrated_walkers(0), 0);
    }

    #[test]
    fn precancelled_slot_drains_resumed_walkers_as_cancelled() {
        let table = Arc::new(QueryTable::new(vec![(QueryClass::Basic, 8, None, 5)]));
        table.cancel(0);
        let resumed = vec![ServeWalker {
            at: 9,
            step: 3,
            slot: 0,
            rng: 77,
        }];
        let app = RoundApp::sharded(Arc::clone(&table), Vec::new(), 16, 8..16, resumed);
        let mut r = rng();
        let w = app.generate(0, &mut r);
        assert!(!app.is_active(&w));
        assert!(app.is_cancelled(&w));
        app.on_terminate(&w);
        assert_eq!(table.cancelled_walkers(0), 1);
        assert_eq!(table.emigrated_walkers(0), 0);
    }

    #[test]
    fn digest_is_order_independent() {
        let mk = || Arc::new(QueryTable::new(vec![(QueryClass::Basic, 8, None, 1)]));
        let t1 = mk();
        let a1 = RoundApp::new(Arc::clone(&t1), vec![(0, 0, 2)], 16);
        let t2 = mk();
        let a2 = RoundApp::new(Arc::clone(&t2), vec![(0, 0, 2)], 16);
        let mut r = rng();
        let mut w = a1.generate(0, &mut r);
        for v in [1, 2, 3] {
            a1.action(&mut w, v, &mut r);
        }
        let mut w = a2.generate(0, &mut r);
        for v in [3, 1, 2] {
            a2.action(&mut w, v, &mut r);
        }
        assert_eq!(t1.digest(0), t2.digest(0));
        assert_ne!(t1.digest(0), 0);
    }
}
