//! Query-trace scripts and the human latency/shed report.
//!
//! A script is a plain-text query trace, one query per line:
//!
//! ```text
//! # at_us  class         walkers  length  deadline_us (- = none)
//! 0        ppr:7         2000     10      5000
//! 150      deepwalk:0    500      10      -
//! 300      rwr:7:0.15    1000     10      8000
//! ```
//!
//! `noswalker serve --script <file>` replays one through
//! [`crate::ServeEngine`] and prints [`render_report`]'s latency/shed
//! summary. Times are microseconds of *modeled* time, so a script replay
//! is deterministic.

use crate::app::QueryClass;
use crate::engine::ServeReport;
use noswalker_core::QuerySpec;

/// A script parse failure (`Display` carries line number and reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "script line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ScriptError {}

fn field<T: std::str::FromStr>(line: usize, name: &str, v: Option<&str>) -> Result<T, ScriptError> {
    let v = v.ok_or_else(|| ScriptError {
        line,
        reason: format!("missing {name} column"),
    })?;
    v.parse().map_err(|_| ScriptError {
        line,
        reason: format!("invalid {name} {v:?}"),
    })
}

/// Parses a query-trace script into arrival-ordered [`QuerySpec`]s.
/// Blank lines and `#` comments are skipped; query ids are assigned in
/// file order starting at 1.
///
/// # Errors
///
/// [`ScriptError`] naming the offending line on malformed input,
/// unknown query classes included.
pub fn parse_script(text: &str) -> Result<Vec<QuerySpec>, ScriptError> {
    let mut specs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut cols = body.split_whitespace();
        let at_us: u64 = field(line, "at_us", cols.next())?;
        let class = cols
            .next()
            .ok_or_else(|| ScriptError {
                line,
                reason: "missing class column".into(),
            })?
            .to_string();
        if QueryClass::parse(&class).is_none() {
            return Err(ScriptError {
                line,
                reason: format!("unknown query class {class:?}"),
            });
        }
        let walkers: u64 = field(line, "walkers", cols.next())?;
        let walk_length: u32 = field(line, "length", cols.next())?;
        let deadline_ns = match cols.next() {
            None | Some("-") => None,
            v => Some(field::<u64>(line, "deadline_us", v)? * 1_000),
        };
        if let Some(extra) = cols.next() {
            return Err(ScriptError {
                line,
                reason: format!("unexpected trailing column {extra:?}"),
            });
        }
        specs.push(QuerySpec {
            id: specs.len() as u64 + 1,
            class,
            walkers,
            walk_length,
            deadline_ns,
            arrival_ns: at_us * 1_000,
        });
    }
    Ok(specs)
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Renders the latency/shed report the `noswalker serve` CLI prints: one
/// block of totals, one latency line per query class, then per-query
/// outcome lines.
pub fn render_report(r: &ServeReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "served {} queries in {} rounds over {:.1} us modeled ({:.1} q/s)\n",
        r.completed_count(),
        r.rounds,
        us(r.end_ns),
        r.achieved_qps(),
    ));
    out.push_str(&format!(
        "  shed: {}   deadline misses: {}   degraded: {}\n",
        r.shed_count(),
        r.deadline_miss_count(),
        r.degraded_count(),
    ));
    out.push_str(&format!(
        "  walkers: {} finished, {} cancelled, {} steps\n",
        r.metrics.walkers_finished, r.metrics.walkers_cancelled, r.metrics.steps,
    ));
    for (class, h) in &r.histograms {
        out.push_str(&format!(
            "  {class:<10} n={:<5} p50={:.1}us p90={:.1}us p99={:.1}us max={:.1}us\n",
            h.count(),
            us(h.quantile(0.50)),
            us(h.quantile(0.90)),
            us(h.quantile(0.99)),
            us(h.max()),
        ));
    }
    for o in &r.outcomes {
        if o.shed {
            out.push_str(&format!(
                "  query {:<4} {:<10} SHED (retry after {:.1} us)\n",
                o.id,
                o.class,
                us(o.retry_after_ns.unwrap_or(0)),
            ));
        } else {
            out.push_str(&format!(
                "  query {:<4} {:<10} {}/{} walkers ({} cancelled) in {:.1} us{}{}\n",
                o.id,
                o.class,
                o.stats.completed,
                o.stats.budget,
                o.stats.cancelled,
                us(o.latency_ns.unwrap_or(0)),
                if o.deadline_missed {
                    "  DEADLINE MISS"
                } else {
                    ""
                },
                if o.degraded { "  (degraded)" } else { "" },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_script_with_comments_and_defaults() {
        let specs = parse_script(
            "# header comment\n\
             0    ppr:7       200  10  5000\n\
             \n\
             150  deepwalk:0  50   10  -   # best effort\n\
             300  basic       10   4\n",
        )
        .expect("parse");
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].id, 1);
        assert_eq!(specs[0].arrival_ns, 0);
        assert_eq!(specs[0].deadline_ns, Some(5_000_000));
        assert_eq!(specs[1].class, "deepwalk:0");
        assert_eq!(specs[1].deadline_ns, None);
        assert_eq!(specs[2].arrival_ns, 300_000);
        assert_eq!(specs[2].deadline_ns, None);
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, needle, line) in [
            ("0 ppr:7", "missing walkers", 1),
            ("\n0 nope 5 4 -", "unknown query class", 2),
            ("x ppr:1 5 4 -", "invalid at_us", 1),
            ("0 ppr:1 5 4 9 9", "trailing column", 1),
        ] {
            let err = parse_script(text).expect_err(text);
            assert_eq!(err.line, line, "{text}");
            assert!(err.reason.contains(needle), "{text}: {err}");
        }
    }
}
