//! Online multi-query walk serving on top of the NosWalker engine.
//!
//! The paper's property (b) — walkers are independent and the engine only
//! needs a handful runnable at once, generating new ones as old ones
//! terminate (Algorithm 1) — makes the offline engine directly usable as
//! the backend of an *online* service: queries (PPR, RWR, DeepWalk corpus
//! slices, plain walks) arrive continuously and are multiplexed into the
//! same bounded walker pool instead of being batched up front.
//!
//! The subsystem decomposes into three layers:
//!
//! ```text
//!   QuerySource ──▶ AdmissionController ──▶ ServeEngine ──▶ ServeReport
//!   (arrivals)      (bounded pending queue,  (round-based     (per-query
//!                    EDF-then-FIFO order,     multiplexing     outcomes,
//!                    reject-with-retry-after, over the pooled  per-class
//!                    stall-rate shedding)     engine)          histograms)
//! ```
//!
//! * [`admission::AdmissionController`] holds the *admitted but not yet
//!   running* queries. It is itself a [`noswalker_core::QuerySource`], so
//!   the engine activates queries by pulling from it; a full queue or a
//!   stalling pre-sample pool sheds new arrivals with an explicit
//!   retry-after hint instead of queueing without bound.
//! * [`app::RoundApp`] multiplexes every active query's walkers into one
//!   [`noswalker_core::Walk`] application per serving round. Deadline
//!   enforcement happens *inside* the walk: a query that exhausts its
//!   modeled step allowance flips a cancelled flag, and the engine retires
//!   its remaining walkers through the `walkers_cancelled` path.
//! * [`engine::ServeEngine`] owns the deterministic
//!   [`noswalker_core::ModelClock`], drives rounds to completion, merges
//!   per-round [`noswalker_core::RunMetrics`], tracks per-class latency
//!   histograms, and emits the `Query*` trace events checked by
//!   `noswalker_core::audit`.
//!
//! The round loop itself lives in [`tick::TickCore`], a mode-agnostic
//! state machine shared by every serving driver: [`engine::ServeEngine`]
//! (lockstep, unsharded), the shard plane in `noswalker-shard` (lockstep,
//! N lanes), and [`realtime::RealtimeServer`] (an autonomous background
//! thread ticking against the wall clock, with a bounded command ingress
//! and a streamed result egress).
//!
//! Determinism is load-bearing: outside the explicitly wall-clocked
//! [`realtime`] module, no code in this crate reads the host clock or
//! sleeps (nosw-lint rule L8 enforces this) — latency is modeled from
//! each round's deterministic `advance_ns` charge, and walker movement
//! draws only walker-private randomness, so a replayed trace produces
//! identical reports on every [`Backend`]. The realtime driver reuses the
//! same state machine and confines wall time to pacing, which is why a
//! replayed ingress trace under a scripted clock is bit-identical to a
//! lockstep run (the `serve_realtime` parity test pins this).

#![forbid(unsafe_code)]

pub mod admission;
pub mod app;
pub mod engine;
pub mod realtime;
pub mod tick;
pub mod trace;

pub use admission::{Admission, AdmissionController, AdmissionOptions};
pub use app::{
    query_stream_seed, walker_stream_seed, QueryClass, QueryTable, RoundApp, ServeWalker,
};
pub use engine::{QueryOutcome, ServeEngine, ServeError, ServeOptions, ServeReport};
pub use noswalker_core::Backend;
pub use realtime::{
    IngressError, IngressMode, IngressSender, RealtimeHandle, RealtimeOptions, RealtimeServer,
    ServeSnapshot, WallClock,
};
pub use tick::{LaneConfig, LaneRouter, SingleLane, Tick, TickCore, TickReport};
pub use trace::{parse_script, render_report, ScriptError};
